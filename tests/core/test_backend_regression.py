"""Regression pins: the registry refactor changed no numbers.

The values below were produced by the pre-registry estimator (string-dispatch
branches inside ``estimate_from_laplacian``) on fixed complexes and seeds.
The refactored backends must reproduce them **bit-identically** — estimation
is deterministic given (complex, config, seed), so any drift here means a
backend's execution path changed, not just its packaging.
"""

import pytest

from repro.core.estimator import QTDABettiEstimator
from repro.experiments.worked_example import appendix_complex
from repro.tda.complexes import SimplicialComplex


def _square_tail() -> SimplicialComplex:
    """Hollow square plus a tail edge: Δ_1 is 5x5 (padded to 8)."""
    return SimplicialComplex(
        [(0,), (1,), (2,), (3,), (4,), (0, 1), (1, 2), (2, 3), (0, 3), (3, 4)]
    )


_CASES = {
    "appendix": (appendix_complex, 1),
    "square_tail": (_square_tail, 1),
    "square_tail_b0": (_square_tail, 0),
}

#: (backend, shots, case) -> (betti_estimate, p_zero, betti_rounded, q, lambda_max)
#: captured at commit 93335dd with precision_qubits=3, delta=6.0,
#: trotter_steps=4, seed=11, use_purification=False for circuit backends.
#: Since the ensemble execution engine became the default noise-free route,
#: circuit backends pin the legacy route explicitly via
#: ``circuit_engine="density"`` (same route those numbers were captured on);
#: the ensemble route is pinned separately, to 1e-10 agreement, in
#: tests/core/test_circuit_engine.py.
_PINNED = {
    ("exact", None, "appendix"): (1.0979011690891878, 0.13723764613614847, 1, 3, 6.0),
    ("exact", None, "square_tail"): (1.0714667568731957, 0.13393334460914946, 1, 3, 5.0),
    ("exact", None, "square_tail_b0"): (1.069913472721037, 0.13373918409012964, 1, 3, 6.0),
    ("exact", 500, "appendix"): (1.04, 0.13, 1, 3, 6.0),
    ("exact", 500, "square_tail"): (1.024, 0.128, 1, 3, 5.0),
    ("exact", 500, "square_tail_b0"): (1.024, 0.128, 1, 3, 6.0),
    ("statevector", None, "appendix"): (1.0979011690891882, 0.13723764613614853, 1, 3, 6.0),
    ("statevector", None, "square_tail"): (1.0714667568731957, 0.13393334460914946, 1, 3, 5.0),
    ("statevector", None, "square_tail_b0"): (1.0699134727210375, 0.1337391840901297, 1, 3, 6.0),
    ("statevector", 500, "appendix"): (1.04, 0.13, 1, 3, 6.0),
    ("statevector", 500, "square_tail"): (1.024, 0.128, 1, 3, 5.0),
    ("statevector", 500, "square_tail_b0"): (1.024, 0.128, 1, 3, 6.0),
    ("trotter", None, "appendix"): (1.0968693760887662, 0.13710867201109578, 1, 3, 6.0),
    ("trotter", None, "square_tail"): (1.078979614840782, 0.13487245185509775, 1, 3, 5.0),
    ("trotter", None, "square_tail_b0"): (1.0743412408355308, 0.13429265510444136, 1, 3, 6.0),
    ("trotter", 500, "appendix"): (1.04, 0.13, 1, 3, 6.0),
    ("trotter", 500, "square_tail"): (1.024, 0.128, 1, 3, 5.0),
    ("trotter", 500, "square_tail_b0"): (1.024, 0.128, 1, 3, 6.0),
}

#: Purified statevector route, captured with the same settings (shots=None).
_PINNED_PURIFIED = (1.0979011690891878, 0.13723764613614847, 1)


@pytest.mark.parametrize("backend,shots,case", sorted(_PINNED, key=str))
def test_backends_bit_identical_to_pre_registry_estimator(backend, shots, case):
    make, k = _CASES[case]
    expected_estimate, expected_p_zero, expected_rounded, expected_q, expected_lam = _PINNED[
        (backend, shots, case)
    ]
    kwargs = (
        {"use_purification": False, "circuit_engine": "density"} if backend != "exact" else {}
    )
    estimate = QTDABettiEstimator(
        precision_qubits=3,
        shots=shots,
        backend=backend,
        delta=6.0,
        trotter_steps=4,
        seed=11,
        **kwargs,
    ).estimate(make(), k)
    assert estimate.betti_estimate == expected_estimate
    assert estimate.p_zero == expected_p_zero
    assert estimate.betti_rounded == expected_rounded
    assert estimate.num_system_qubits == expected_q
    assert estimate.lambda_max == expected_lam


def test_purified_statevector_bit_identical():
    estimate = QTDABettiEstimator(
        precision_qubits=3,
        shots=None,
        backend="statevector",
        delta=6.0,
        use_purification=True,
        circuit_engine="purified",
    ).estimate(appendix_complex(), 1)
    expected_estimate, expected_p_zero, expected_rounded = _PINNED_PURIFIED
    assert estimate.betti_estimate == expected_estimate
    assert estimate.p_zero == expected_p_zero
    assert estimate.betti_rounded == expected_rounded


def test_sparse_exact_matches_exact_on_worked_example():
    """Paper-scale complexes sit below the dense-fallback threshold, so the
    sparse backend must be bit-identical to ``exact``, not merely close."""
    exact = QTDABettiEstimator(precision_qubits=3, shots=None, backend="exact", delta=6.0)
    sparse = QTDABettiEstimator(precision_qubits=3, shots=None, backend="sparse-exact", delta=6.0)
    for k in (0, 1):
        a = exact.estimate(appendix_complex(), k)
        b = sparse.estimate(appendix_complex(), k)
        assert b.betti_estimate == a.betti_estimate
        assert b.p_zero == a.p_zero
        assert b.num_system_qubits == a.num_system_qubits
        assert b.lambda_max == a.lambda_max


def _operator_view(laplacian, view: str):
    from scipy import sparse

    from repro.core.operators import MatrixFreeOperator, as_operator

    if view == "dense-operator":
        return as_operator(laplacian)
    if view == "sparse-operator":
        return as_operator(sparse.csr_matrix(laplacian))
    if view == "matrix-free":
        return MatrixFreeOperator(lambda x: laplacian @ x, laplacian.shape)
    raise AssertionError(view)


@pytest.mark.parametrize("view", ["dense-operator", "sparse-operator", "matrix-free"])
@pytest.mark.parametrize("backend", ["exact", "sparse-exact", "statevector", "trotter"])
def test_operator_layer_is_bit_identical_to_raw_matrices(backend, view):
    """Acceptance gate: wrapping the Laplacian in any LaplacianOperator view
    changes nothing — every existing backend produces the same BettiEstimate
    bit for bit."""
    from repro.tda.laplacian import combinatorial_laplacian

    kwargs = {"use_purification": False} if backend != "exact" else {}
    for make, k in (_CASES["appendix"], _CASES["square_tail"]):
        laplacian = combinatorial_laplacian(make(), k)
        raw = QTDABettiEstimator(
            precision_qubits=3, shots=None, backend=backend, delta=6.0, seed=11, **kwargs
        ).estimate_from_laplacian(laplacian)
        wrapped = QTDABettiEstimator(
            precision_qubits=3, shots=None, backend=backend, delta=6.0, seed=11, **kwargs
        ).estimate_from_laplacian(_operator_view(laplacian, view))
        assert wrapped.betti_estimate == raw.betti_estimate
        assert wrapped.p_zero == raw.p_zero
        assert wrapped.num_system_qubits == raw.num_system_qubits
        assert wrapped.lambda_max == raw.lambda_max


def test_pinned_estimates_unchanged_by_operator_negotiation():
    """The estimator now negotiates formats through preferred_format; the
    pinned pre-registry numbers must still come out bit-identically (the
    `exact` default remains a dense handoff)."""
    make, k = _CASES["appendix"]
    estimate = QTDABettiEstimator(
        precision_qubits=3, shots=None, backend="exact", delta=6.0, seed=11
    ).estimate(make(), k)
    expected_estimate, expected_p_zero, *_ = _PINNED[("exact", None, "appendix")]
    assert estimate.betti_estimate == expected_estimate
    assert estimate.p_zero == expected_p_zero


def test_noisy_density_zero_strength_matches_statevector():
    """Acceptance gate: noisy-density at strength 0 equals the statevector
    density route (same circuit, same simulator, identity channel)."""
    sv = QTDABettiEstimator(
        precision_qubits=3,
        shots=None,
        backend="statevector",
        delta=6.0,
        circuit_engine="density",
    ).estimate(appendix_complex(), 1)
    noisy = QTDABettiEstimator(
        precision_qubits=3, shots=None, backend="noisy-density", delta=6.0
    ).estimate(appendix_complex(), 1)
    assert noisy.p_zero == pytest.approx(sv.p_zero, abs=1e-12)
    assert noisy.betti_estimate == pytest.approx(sv.betti_estimate, abs=1e-10)
    noisy_zero_channel = QTDABettiEstimator(
        precision_qubits=3,
        shots=None,
        backend="noisy-density",
        delta=6.0,
        noise_channel="depolarizing",
        noise_strength=0.0,
    ).estimate(appendix_complex(), 1)
    assert noisy_zero_channel.p_zero == pytest.approx(sv.p_zero, abs=1e-12)
