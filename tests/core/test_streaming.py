"""Tests for the streaming sweep engine and the service observe endpoint.

The contract under test (DESIGN.md §13): a :class:`StreamingFeatureEngine`
fed one raw series produces features **bit-identical** to Takens-embedding
every sliding window and running the batch sweep — whatever the stride
(aligned strides advance incrementally, misaligned ones fall back to full
rebuilds through the same delta path), whatever the estimator (classical or
seeded quantum).  On top of that sit the session semantics of
``QTDAService.observe``.
"""

import json

import numpy as np
import pytest

from repro.core.api import EstimationResult, ObserveRequest, QTDAService, request_from_dict
from repro.core.batch import BatchFeatureEngine, StreamingFeatureEngine
from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig
from repro.datasets.windows import sliding_windows

EPSILONS = (0.6, 1.1, 1.7)


def _config(use_quantum=False, takens_stride=4, **estimator_overrides):
    estimator = QTDAConfig(seed=123, shots=64, precision_qubits=3, **estimator_overrides)
    return PipelineConfig(
        epsilon=1.0,
        use_quantum=use_quantum,
        takens_dimension=3,
        takens_delay=2,
        takens_stride=takens_stride,
        homology_dimensions=(0, 1),
        estimator=estimator,
    )


def _batch_features(config, series, window_length, stride, epsilons=EPSILONS):
    engine = BatchFeatureEngine(config)
    windows = sliding_windows(series, window_length, stride)
    clouds = [engine._takens.transform(w) for w in windows]
    return engine.sweep(clouds, epsilons)


@pytest.mark.parametrize(
    "use_quantum,stride,expect_incremental",
    [
        (False, 32, True),  # stride % takens_stride == 0: the delta path
        (True, 32, True),  # quantum estimates, per-window derived seeds
        (False, 7, False),  # misaligned stride: full-rebuild fallback
        (False, 300, False),  # non-overlapping windows: full replacement
    ],
)
def test_streaming_bit_identical_to_batch_sweep(use_quantum, stride, expect_incremental):
    rng = np.random.default_rng(42)
    series = rng.standard_normal(700)
    config = _config(use_quantum=use_quantum)
    baseline = _batch_features(config, series, 256, stride)
    engine = StreamingFeatureEngine(
        config, window_length=256, stride=stride, epsilons=EPSILONS
    )
    features = engine.process(series)
    assert np.array_equal(features, baseline)
    assert engine.stats["windows"] == baseline.shape[1]
    if expect_incremental:
        assert engine.stats["incremental_advances"] == engine.stats["windows"] - 1
    else:
        assert engine.stats["incremental_advances"] == 0
        assert engine.stats["full_builds"] == engine.stats["windows"]


def test_observe_one_sample_at_a_time_matches_extend():
    rng = np.random.default_rng(1)
    series = rng.standard_normal(420)
    config = _config()
    chunked = StreamingFeatureEngine(config, window_length=256, stride=32, epsilons=EPSILONS)
    expected = chunked.extend(series)
    sampled = StreamingFeatureEngine(config, window_length=256, stride=32, epsilons=EPSILONS)
    emitted = [w for s in series if (w := sampled.observe(s)) is not None]
    assert len(emitted) == len(expected)
    for got, want in zip(emitted, expected):
        assert got.index == want.index and got.start == want.start
        assert np.array_equal(got.features, want.features)
    assert sampled.samples_seen == series.size
    assert sampled.windows_emitted == len(expected)


def test_periodic_stream_reuses_unchanged_windows():
    rng = np.random.default_rng(9)
    period = rng.standard_normal(32)
    series = np.tile(period, 25)  # bitwise-periodic: every advance is a no-op
    config = _config()
    baseline = _batch_features(config, series, 256, 32)
    engine = StreamingFeatureEngine(config, window_length=256, stride=32, epsilons=EPSILONS)
    features = engine.process(series)
    assert np.array_equal(features, baseline)
    assert engine.stats["unchanged_windows"] == engine.stats["windows"] - 1
    # Classical features depend only on geometry, so unchanged windows reuse
    # their rows outright.
    assert engine.stats["feature_rows_reused"] > 0


def test_periodic_stream_quantum_rows_not_reused():
    # Quantum estimates carry per-window derived seeds: identical geometry
    # must still be re-estimated, and stay bit-identical to the batch route.
    rng = np.random.default_rng(10)
    series = np.tile(rng.standard_normal(24), 8)
    config = _config(use_quantum=True)
    baseline = _batch_features(config, series, 120, 24, epsilons=(0.8, 1.3))
    engine = StreamingFeatureEngine(config, window_length=120, stride=24, epsilons=(0.8, 1.3))
    features = engine.process(series)
    assert np.array_equal(features, baseline)
    assert engine.stats["feature_rows_reused"] == 0


def test_iter_windows_lazily_matches_streaming_engine():
    rng = np.random.default_rng(11)
    series = rng.standard_normal(500)
    config = _config()
    reference = StreamingFeatureEngine(
        config, window_length=256, stride=32, epsilons=EPSILONS
    ).extend(series)
    windows = list(
        BatchFeatureEngine(config).iter_windows(series, 256, stride=32, epsilons=EPSILONS)
    )
    assert len(windows) == len(reference)
    for got, want in zip(windows, reference):
        assert np.array_equal(got.features, want.features)
        assert got.incremental == want.incremental


def test_streaming_engine_validation():
    config = _config()
    with pytest.raises(ValueError):
        StreamingFeatureEngine(config, window_length=0, stride=32, epsilons=EPSILONS)
    with pytest.raises(ValueError):
        StreamingFeatureEngine(config, window_length=256, stride=0, epsilons=EPSILONS)
    with pytest.raises(ValueError):
        # Window shorter than the Takens span: not a single embedded point.
        StreamingFeatureEngine(config, window_length=4, stride=2, epsilons=EPSILONS)


# -- the service endpoint -------------------------------------------------------


def _observe_request(series, session="default", **overrides):
    kwargs = dict(
        samples=tuple(series),
        session=session,
        window_length=256,
        stride=32,
        epsilons=EPSILONS,
        pipeline=_config(),
    )
    kwargs.update(overrides)
    return ObserveRequest(**kwargs)


def test_observe_endpoint_bit_identical_across_chunked_feeds():
    rng = np.random.default_rng(12)
    series = rng.standard_normal(600)
    config = _config()
    baseline = _batch_features(config, series, 256, 32)
    with QTDAService() as service:
        windows = []
        for chunk in np.array_split(series, 7):
            result = service.observe(_observe_request(chunk))
            windows.extend(result.payload["windows"])
            assert result.provenance.request_fingerprint == ""  # stateful: uncacheable
        stacked = np.stack([np.asarray(w["features"]) for w in windows], axis=1)
        assert np.array_equal(stacked, baseline)
        assert result.payload["windows_emitted"] == baseline.shape[1]
        assert result.payload["engine_stats"]["incremental_advances"] == baseline.shape[1] - 1


def test_observe_wire_schema_round_trip():
    rng = np.random.default_rng(13)
    request = _observe_request(rng.standard_normal(50))
    document = json.loads(json.dumps(request.as_dict()))
    assert document["kind"] == "observe"
    restored = request_from_dict(document)
    assert restored == request
    with QTDAService() as service:
        result = service.run_dict(document)
        envelope = json.loads(result.to_json())
        EstimationResult.validate_dict(envelope)
        assert envelope["provenance"]["backend"] == "classical-exact"


def test_observe_session_semantics():
    rng = np.random.default_rng(14)
    series = rng.standard_normal(300)
    with QTDAService() as service:
        service.observe(_observe_request(series, session="a"))
        service.observe(_observe_request(series, session="b", stride=64))
        assert service.open_sessions == ("a", "b")
        assert service.stats["open_sessions"] == 2
        # Config mismatch against an existing session is rejected...
        with pytest.raises(ValueError, match="does not match"):
            service.observe(_observe_request(series, session="a", stride=64))
        # ...until the session is closed and recreated.
        assert service.close_session("a")
        assert not service.close_session("a")
        service.observe(_observe_request(series, session="a", stride=64))
        assert service.open_sessions == ("a", "b")
    # close() drops all sessions.
    assert service.open_sessions == ()


def test_observe_request_validation():
    with pytest.raises(ValueError):
        _observe_request([1.0], session="")
    with pytest.raises(ValueError):
        _observe_request([1.0], window_length=0)
    with pytest.raises(ValueError):
        _observe_request([1.0], epsilons=())
    with pytest.raises(ValueError):
        _observe_request([1.0], epsilons=(-0.5,))
    with pytest.raises(ValueError):
        _observe_request(np.zeros((2, 2)))  # not 1-D
    with pytest.raises(TypeError):
        _observe_request([1.0], pipeline=42)
    # An empty priming request is legal and opens the session.
    with QTDAService() as service:
        result = service.observe(_observe_request([], session="primed"))
        assert result.payload["new_windows"] == 0
        assert service.open_sessions == ("primed",)


def test_cache_stats_shape_and_hit_rate():
    with QTDAService() as service:
        stats = service.cache_stats()
        assert stats["spectrum_hit_rate"] is None  # no lookups yet
        rng = np.random.default_rng(15)
        service.observe(_observe_request(rng.standard_normal(300)))
        stats = service.cache_stats()
        assert set(stats) == {
            "result_cache_entries",
            "result_cache_hits",
            "spectrum_hits",
            "spectrum_misses",
            "spectrum_entries",
            "spectrum_hit_rate",
        }
        assert stats["spectrum_entries"] > 0
        json.dumps(stats)  # JSON-safe by construction
