"""Tests for the assembled QTDA circuit (Fig. 6)."""

import numpy as np
import pytest

from repro.core.hamiltonian import build_hamiltonian
from repro.core.qtda_circuit import QTDACircuitSpec, circuit_resource_summary, qtda_circuit
from repro.experiments.worked_example import EXPECTED_LAPLACIAN
from repro.quantum.statevector import StatevectorSimulator


@pytest.fixture(scope="module")
def hamiltonian():
    return build_hamiltonian(EXPECTED_LAPLACIAN, delta=6.0)


def test_register_layout_with_purification(hamiltonian):
    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=3, use_purification=True)
    assert spec == QTDACircuitSpec(precision_qubits=3, system_qubits=3, auxiliary_qubits=3)
    assert circuit.num_qubits == 9
    assert spec.precision_register == (0, 1, 2)
    assert spec.system_register == (3, 4, 5)
    assert spec.auxiliary_register == (6, 7, 8)


def test_register_layout_without_purification(hamiltonian):
    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=2, use_purification=False)
    assert spec.auxiliary_qubits == 0
    assert circuit.num_qubits == 5


def test_measurement_on_precision_register(hamiltonian):
    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=3)
    assert circuit.measured_qubits == spec.precision_register


def test_p_zero_matches_analytical_prediction(hamiltonian):
    """The full Fig. 6 circuit reproduces p(0) = β_1 / 2^q plus QPE leakage."""
    from repro.quantum.qpe import qpe_outcome_distribution

    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=3, use_purification=True)
    probs = StatevectorSimulator().probabilities(circuit, qubits=list(spec.precision_register))
    expected = qpe_outcome_distribution(hamiltonian.eigenphases(), 3)
    assert np.allclose(probs, expected, atol=1e-9)


def test_trotter_synthesis_close_to_exact(hamiltonian):
    circuit_exact, spec = qtda_circuit(hamiltonian, precision_qubits=2, use_purification=False)
    circuit_trotter, _ = qtda_circuit(
        hamiltonian, precision_qubits=2, use_purification=False, synthesis="trotter", trotter_steps=8
    )
    sim = StatevectorSimulator()
    # Compare on a fixed basis-state input of the system register.
    init = np.zeros(2**spec.total_qubits, dtype=complex)
    init[3] = 1.0
    p_exact = sim.probabilities(circuit_exact, initial_state=init, qubits=list(spec.precision_register))
    p_trotter = sim.probabilities(circuit_trotter, initial_state=init, qubits=list(spec.precision_register))
    assert np.allclose(p_exact, p_trotter, atol=0.05)


def test_invalid_synthesis_rejected(hamiltonian):
    with pytest.raises(ValueError):
        qtda_circuit(hamiltonian, precision_qubits=2, synthesis="magic")


def test_resource_summary(hamiltonian):
    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=3)
    summary = circuit_resource_summary(circuit, spec)
    assert summary["total_qubits"] == 9
    assert summary["num_gates"] == circuit.num_gates
    assert summary["depth"] > 0
    assert isinstance(summary["gate_histogram"], dict)


def test_more_precision_qubits_means_deeper_circuit(hamiltonian):
    shallow, _ = qtda_circuit(hamiltonian, precision_qubits=2)
    deep, _ = qtda_circuit(hamiltonian, precision_qubits=4)
    assert deep.num_gates > shallow.num_gates
