"""Spawn-context pickling audit of every wire-facing object.

The sharded executor ships circuits, gate plans, and channel IR to
spawn-context process workers (``repro.quantum.sharding``), and the service
requests are the cross-process wire format — so each of these must survive
``pickle`` byte-for-byte *and* its own ``as_dict``/``from_dict`` round trip.
Frozen dataclasses with precomputed derived fields (the usual spawn-pickling
culprits) get their derived state checked explicitly.
"""

import pickle

import numpy as np
import pytest

from repro.core.api import (
    EstimationRequest,
    ExperimentRequest,
    ObserveRequest,
    PipelineRequest,
    SweepRequest,
    request_from_dict,
)
from repro.core.batch import BatchConfig
from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig
from repro.quantum.channels import NoiseSpec, QuantumChannel
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.engine import EnsembleExecutor


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


TRIANGLE = ((1,), (2,), (3,), (1, 2), (1, 3), (2, 3))


# ---------------------------------------------------------------------------
# Quantum IR: circuits, gate plans, channels
# ---------------------------------------------------------------------------


def test_quantum_circuit_pickles_with_content_intact():
    rng = np.random.default_rng(1)
    m = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
    q, _ = np.linalg.qr(m)
    circuit = QuantumCircuit(3, name="wire").h(0).cnot(0, 1).unitary(q, [1, 2])
    circuit.barrier()
    circuit.measure([0, 1])
    copy = _roundtrip(circuit)
    assert copy.num_qubits == circuit.num_qubits
    assert copy.name == circuit.name
    assert len(copy.instructions) == len(circuit.instructions)
    # Content equality via the fusion-cache fingerprint — the exact property
    # the sharded workers rely on when executing a shipped plan.
    assert copy.fingerprint() == circuit.fingerprint()


def test_fused_gate_plan_pickles():
    """The coordinator ships the *fused* plan once per shard — it must pickle."""
    rng = np.random.default_rng(2)
    circuit = QuantumCircuit(3)
    m = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
    q, _ = np.linalg.qr(m)
    for _ in range(6):
        circuit.unitary(q, [0, 1])
    plan = EnsembleExecutor(fuse=True).gate_plan(circuit)
    copy = _roundtrip(plan)
    assert len(copy) == len(plan)
    for got, expected in zip(copy, plan):
        assert got.qubits == expected.qubits
        assert np.array_equal(got.matrix, expected.matrix)


@pytest.mark.parametrize(
    "name,strength", [("depolarizing", 0.05), ("bit-flip", 0.1), ("amplitude-damping", 0.2)]
)
def test_quantum_channel_pickles_with_derived_tables(name, strength):
    channel = QuantumChannel.from_name(name, strength)
    copy = _roundtrip(channel)
    assert copy.name == channel.name
    assert copy.arity == channel.arity
    assert copy.is_mixed_unitary == channel.is_mixed_unitary
    for got, expected in zip(copy.kraus_ops, channel.kraus_ops):
        assert np.array_equal(got, expected)
    if channel.is_mixed_unitary:
        # The precomputed trajectory branch tables survive (frozen dataclass
        # __post_init__ recomputes them from kraus_ops on unpickle — they
        # must land on the same values).
        assert np.array_equal(copy.branch_probabilities, channel.branch_probabilities)
        assert np.array_equal(copy.cumulative_probabilities, channel.cumulative_probabilities)
        assert np.array_equal(copy.identity_branches, channel.identity_branches)


def test_noise_spec_pickle_and_wire_roundtrip():
    spec = NoiseSpec(
        channel="depolarizing",
        strength=0.01,
        two_qubit_channel="two-qubit-depolarizing",
        two_qubit_strength=0.02,
        readout_error=0.03,
    )
    assert _roundtrip(spec) == spec
    assert NoiseSpec.from_dict(spec.as_dict()) == spec


# ---------------------------------------------------------------------------
# Configs
# ---------------------------------------------------------------------------


def test_qtda_config_pickle_and_wire_roundtrip_including_shard_fields():
    config = QTDAConfig(
        precision_qubits=4,
        shots=256,
        seed=11,
        noise_channel="depolarizing",
        noise_strength=0.01,
        shards=4,
        shard_backend="thread",
    )
    assert _roundtrip(config) == config
    assert QTDAConfig.from_dict(config.as_dict()) == config


# ---------------------------------------------------------------------------
# Service requests (the wire format)
# ---------------------------------------------------------------------------


def _request_zoo():
    yield EstimationRequest(
        k=1,
        simplices=TRIANGLE,
        config=QTDAConfig(precision_qubits=3, shots=None, seed=3, shards=2, shard_backend="serial"),
    )
    yield EstimationRequest(
        k=0, points=((0.0, 0.0), (1.0, 0.0), (0.0, 1.0)), epsilon=1.5, config=QTDAConfig(seed=5)
    )
    yield PipelineRequest(
        point_clouds=(((0.0, 0.0), (1.0, 0.0), (0.5, 1.0)),),
        epsilon=1.5,
        pipeline=PipelineConfig(),
        batch=BatchConfig(),
    )
    yield SweepRequest(
        epsilons=(0.5, 1.0),
        time_series=((0.1, 0.4, 0.9, 0.2, 0.7, 0.3, 0.8, 0.1),),
        pipeline=PipelineConfig(),
    )
    yield ExperimentRequest(experiment="appendix", params={"shots": 100, "seed": 2})
    yield ObserveRequest(
        samples=(0.1, 0.2, 0.3),
        session="s1",
        window_length=8,
        stride=2,
        epsilons=(1.0,),
        pipeline=PipelineConfig(),
    )


@pytest.mark.parametrize("request_", _request_zoo(), ids=lambda r: r.kind)
def test_requests_survive_pickle_and_wire_roundtrips(request_):
    copy = _roundtrip(request_)
    assert copy == request_
    assert hash(copy) == hash(request_)
    # The dict wire form round-trips through the kind-dispatching rebuilder.
    rebuilt = request_from_dict(request_.as_dict())
    assert rebuilt == request_
    # And the rebuilt request still pickles (frozen dataclass + derived state).
    assert _roundtrip(rebuilt) == request_
