"""Tests for Laplacian padding (Eq. 7 / Eq. 18)."""

import numpy as np
import pytest

from repro.core.padding import pad_laplacian, zero_pad_laplacian
from repro.experiments.worked_example import EXPECTED_LAPLACIAN

#: The padded Laplacian printed as Eq. 18 (identity block filled with λ̃_max/2 = 3).
EXPECTED_PADDED = np.zeros((8, 8))
EXPECTED_PADDED[:6, :6] = EXPECTED_LAPLACIAN
EXPECTED_PADDED[6, 6] = 3.0
EXPECTED_PADDED[7, 7] = 3.0


def test_appendix_padding_matches_equation_18():
    padded = pad_laplacian(EXPECTED_LAPLACIAN)
    assert padded.lambda_max == pytest.approx(6.0)
    assert padded.num_qubits == 3
    assert np.array_equal(padded.matrix, EXPECTED_PADDED)


def test_identity_padding_adds_no_zero_eigenvalues():
    padded = pad_laplacian(EXPECTED_LAPLACIAN, mode="identity")
    zeros = np.count_nonzero(np.abs(np.linalg.eigvalsh(padded.matrix)) < 1e-9)
    unpadded_zeros = np.count_nonzero(np.abs(np.linalg.eigvalsh(EXPECTED_LAPLACIAN)) < 1e-9)
    assert zeros == unpadded_zeros
    assert padded.spurious_zero_eigenvalues() == 0


def test_zero_padding_adds_spurious_zeros():
    padded = zero_pad_laplacian(EXPECTED_LAPLACIAN)
    zeros = np.count_nonzero(np.abs(np.linalg.eigvalsh(padded.matrix)) < 1e-9)
    unpadded_zeros = np.count_nonzero(np.abs(np.linalg.eigvalsh(EXPECTED_LAPLACIAN)) < 1e-9)
    assert zeros == unpadded_zeros + padded.num_padding_rows
    assert padded.spurious_zero_eigenvalues() == 2


def test_power_of_two_input_needs_no_padding():
    lap = np.diag([0.0, 1.0, 2.0, 3.0])
    padded = pad_laplacian(lap)
    assert padded.num_padding_rows == 0
    assert np.array_equal(padded.matrix, lap)


def test_single_element_laplacian():
    padded = pad_laplacian(np.array([[0.0]]))
    assert padded.num_qubits == 1
    assert padded.padded_dimension == 2


def test_zero_laplacian_identity_padding_degenerates():
    """When λ̃_max = 0 the identity padding value is 0, which is flagged as spurious."""
    padded = pad_laplacian(np.zeros((3, 3)))
    assert padded.lambda_max == 0.0
    assert padded.spurious_zero_eigenvalues() == 1


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        pad_laplacian(np.zeros((0, 0)))
    with pytest.raises(ValueError):
        pad_laplacian(np.array([[0.0, 1.0], [2.0, 0.0]]))  # asymmetric
    with pytest.raises(ValueError):
        pad_laplacian(EXPECTED_LAPLACIAN, mode="reflect")


def test_metadata_fields():
    padded = pad_laplacian(EXPECTED_LAPLACIAN)
    assert padded.original_dimension == 6
    assert padded.padded_dimension == 8
    assert padded.num_padding_rows == 2
    assert padded.mode == "identity"
