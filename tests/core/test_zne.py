"""Tests for zero-noise extrapolation (repro.core.zne)."""

import numpy as np
import pytest

from repro.core import QTDAConfig, richardson_extrapolate, zero_noise_extrapolation
from repro.experiments.worked_example import appendix_complex


def test_richardson_recovers_polynomial_exactly():
    # Quadratic data is recovered exactly by the default quadratic fit.
    strengths = [0.01, 0.02, 0.03, 0.04]
    values = [0.5 - 3.0 * s + 7.0 * s**2 for s in strengths]
    at_zero, coefficients = richardson_extrapolate(strengths, values)
    assert at_zero == pytest.approx(0.5, abs=1e-12)
    assert len(coefficients) == 3  # degree 2


def test_richardson_linear_fit_on_two_points():
    at_zero, coefficients = richardson_extrapolate([1.0, 2.0], [3.0, 5.0])
    assert at_zero == pytest.approx(1.0)
    assert len(coefficients) == 2  # degree 1 is all two points afford


def test_richardson_explicit_order():
    strengths = [0.01, 0.02, 0.03, 0.04]
    values = [1.0 - 2.0 * s for s in strengths]
    at_zero, coefficients = richardson_extrapolate(strengths, values, order=1)
    assert at_zero == pytest.approx(1.0, abs=1e-12)
    assert len(coefficients) == 2


def test_richardson_validation():
    with pytest.raises(ValueError, match="equal length"):
        richardson_extrapolate([0.1, 0.2], [1.0])
    with pytest.raises(ValueError, match="at least two"):
        richardson_extrapolate([0.1], [1.0])
    with pytest.raises(ValueError, match="distinct"):
        richardson_extrapolate([0.1, 0.1], [1.0, 2.0])
    with pytest.raises(ValueError, match="order"):
        richardson_extrapolate([0.1, 0.2], [1.0, 2.0], order=5)


def _noisy_config(**overrides):
    params = dict(
        precision_qubits=3,
        shots=None,
        delta=6.0,
        backend="statevector",
        noise_channel="depolarizing",
        noise_strength=0.01,
        n_trajectories=8,
        seed=11,
    )
    params.update(overrides)
    return QTDAConfig(**params)


def test_zne_requires_declarative_noise():
    noiseless = QTDAConfig(precision_qubits=3, backend="statevector")
    with pytest.raises(ValueError, match="noise_channel"):
        zero_noise_extrapolation(appendix_complex(), 1, noiseless)


def test_zne_validates_scale_factors():
    config = _noisy_config()
    with pytest.raises(ValueError, match="at least two"):
        zero_noise_extrapolation(appendix_complex(), 1, config, scale_factors=(1.0,))
    with pytest.raises(ValueError, match="positive"):
        zero_noise_extrapolation(appendix_complex(), 1, config, scale_factors=(1.0, -2.0))
    with pytest.raises(ValueError, match="exceed 1.0"):
        zero_noise_extrapolation(
            appendix_complex(), 1, _noisy_config(noise_strength=0.5), scale_factors=(1.0, 3.0)
        )


def test_zne_sweep_runs_on_the_exact_ptm_route():
    # `auto` resolves the declarative-noise sweep to the fused-PTM route,
    # so every point in the extrapolation fit is an exact expectation.
    result = zero_noise_extrapolation(
        appendix_complex(), 1, _noisy_config(), scale_factors=(1.0, 2.0, 3.0)
    )
    assert result.strengths == (0.01, 0.02, 0.03)
    assert len(result.estimates) == 3
    assert all(e.engine_route == "ptm" for e in result.estimates)
    # β̃ = 2^q · p(0) holds for the extrapolated pair too.
    dim = 2 ** result.estimates[0].num_system_qubits
    assert result.betti_extrapolated == pytest.approx(dim * result.p_zero_extrapolated)
    assert result.betti_rounded == int(round(result.betti_extrapolated))
    # The extrapolation pulls the noisy estimates towards the noiseless value.
    np.testing.assert_allclose(result.betti_estimates, [e.betti_estimate for e in result.estimates])
    payload = result.as_dict()
    assert payload["engine_routes"] == ["ptm", "ptm", "ptm"]
    assert payload["strengths"] == [0.01, 0.02, 0.03]


def test_zne_sweep_honours_an_explicit_trajectory_engine():
    result = zero_noise_extrapolation(
        appendix_complex(),
        1,
        _noisy_config(circuit_engine="trajectory"),
        scale_factors=(1.0, 2.0),
    )
    assert all(e.engine_route == "trajectory" for e in result.estimates)
    assert all(e.betti_std is not None for e in result.estimates)
