"""Tests for QTDAConfig validation."""

import numpy as np
import pytest

from repro.core.config import QTDAConfig
from repro.quantum.noise import NoiseModel


def test_defaults_are_valid():
    config = QTDAConfig()
    assert config.precision_qubits == 3
    assert config.backend == "exact"
    assert 0 < config.delta < 2 * np.pi


def test_invalid_backend_and_padding():
    with pytest.raises(ValueError):
        QTDAConfig(backend="qiskit")
    with pytest.raises(ValueError):
        QTDAConfig(padding="mirror")


def test_delta_bounds():
    with pytest.raises(ValueError):
        QTDAConfig(delta=0.0)
    with pytest.raises(ValueError):
        QTDAConfig(delta=2 * np.pi)
    QTDAConfig(delta=6.0)


def test_precision_and_shots_validation():
    with pytest.raises(ValueError):
        QTDAConfig(precision_qubits=0)
    with pytest.raises(ValueError):
        QTDAConfig(shots=0)
    assert QTDAConfig(shots=None).shots is None


def test_trotter_parameters():
    with pytest.raises(ValueError):
        QTDAConfig(trotter_order=3)
    with pytest.raises(ValueError):
        QTDAConfig(trotter_steps=0)


def test_noise_model_type_checked():
    with pytest.raises(TypeError):
        QTDAConfig(noise_model="noisy")
    QTDAConfig(noise_model=NoiseModel.depolarizing(0.01))


def test_replace_creates_modified_copy():
    base = QTDAConfig(precision_qubits=2)
    other = base.replace(precision_qubits=5)
    assert base.precision_qubits == 2
    assert other.precision_qubits == 5
