"""Tests for QTDAConfig validation."""

import numpy as np
import pytest

from repro.core.config import QTDAConfig
from repro.quantum.noise import NoiseModel


def test_defaults_are_valid():
    config = QTDAConfig()
    assert config.precision_qubits == 3
    assert config.backend == "exact"
    assert 0 < config.delta < 2 * np.pi


def test_invalid_backend_and_padding():
    with pytest.raises(ValueError):
        QTDAConfig(backend="qiskit")
    with pytest.raises(ValueError):
        QTDAConfig(padding="mirror")


def test_delta_bounds():
    with pytest.raises(ValueError):
        QTDAConfig(delta=0.0)
    with pytest.raises(ValueError):
        QTDAConfig(delta=2 * np.pi)
    QTDAConfig(delta=6.0)


def test_precision_and_shots_validation():
    with pytest.raises(ValueError):
        QTDAConfig(precision_qubits=0)
    with pytest.raises(ValueError):
        QTDAConfig(shots=0)
    assert QTDAConfig(shots=None).shots is None


def test_trotter_parameters():
    with pytest.raises(ValueError):
        QTDAConfig(trotter_order=3)
    with pytest.raises(ValueError):
        QTDAConfig(trotter_steps=0)


def test_noise_model_type_checked():
    with pytest.raises(TypeError):
        QTDAConfig(noise_model="noisy")
    QTDAConfig(noise_model=NoiseModel.depolarizing(0.01))


def test_replace_creates_modified_copy():
    base = QTDAConfig(precision_qubits=2)
    other = base.replace(precision_qubits=5)
    assert base.precision_qubits == 2
    assert other.precision_qubits == 5


def test_backend_validated_against_registry():
    from repro.core.backends import available_backends

    for name in available_backends():
        assert QTDAConfig(backend=name).backend == name


def test_noise_field_validation():
    with pytest.raises(ValueError):
        QTDAConfig(noise_channel="cosmic-rays")
    with pytest.raises(ValueError):
        QTDAConfig(noise_strength=1.5)
    with pytest.raises(ValueError):
        QTDAConfig(noise_strength=-0.1)
    config = QTDAConfig(noise_channel="bit-flip", noise_strength=0.25)
    assert config.noise_channel == "bit-flip"
    assert config.noise_strength == 0.25


def test_positive_noise_strength_requires_a_channel_or_model():
    """A strength with no channel would be silently ignored — reject it."""
    with pytest.raises(ValueError, match="noise_channel"):
        QTDAConfig(noise_strength=0.05)
    QTDAConfig(noise_strength=0.05, noise_channel="depolarizing")
    QTDAConfig(noise_strength=0.05, noise_model=NoiseModel.depolarizing(0.05))
    QTDAConfig(noise_strength=0.0)  # noiseless stays valid without a channel


def test_round_trip_through_dict_covers_noise_fields():
    config = QTDAConfig(
        precision_qubits=5,
        shots=None,
        delta=6.0,
        backend="noisy-density",
        noise_channel="amplitude-damping",
        noise_strength=0.125,
        seed=7,
    )
    data = config.as_dict()
    assert data["noise_channel"] == "amplitude-damping"
    assert data["noise_strength"] == 0.125
    assert "noise_model" not in data
    restored = QTDAConfig.from_dict(data)
    assert restored == config


def test_as_dict_rejects_explicit_noise_model_object():
    config = QTDAConfig(noise_model=NoiseModel.depolarizing(0.01))
    with pytest.raises(ValueError, match="noise_channel"):
        config.as_dict()


def test_extended_noise_field_validation():
    with pytest.raises(ValueError):
        QTDAConfig(noise_two_qubit_channel="depolarizing")  # wrong arity
    with pytest.raises(ValueError, match="noise_two_qubit_channel"):
        QTDAConfig(noise_two_qubit_strength=0.1)
    with pytest.raises(ValueError, match="noise_channel"):
        QTDAConfig(noise_gate_strengths={"CNOT": 0.1})
    with pytest.raises(ValueError):
        QTDAConfig(readout_error=1.5)
    with pytest.raises(ValueError):
        QTDAConfig(n_trajectories=0)
    config = QTDAConfig(
        noise_channel="depolarizing",
        noise_strength=0.01,
        noise_gate_strengths={"CNOT": 0.05},
        noise_two_qubit_channel="correlated-zz",
        noise_two_qubit_strength=0.02,
        readout_error=0.03,
        n_trajectories=16,
    )
    assert config.n_trajectories == 16
    spec = config.resolved_noise_spec()
    assert spec.channel == "depolarizing"
    assert spec.gate_strengths == {"CNOT": 0.05}
    assert spec.two_qubit_channel == "correlated-zz"
    assert spec.readout_error == 0.03


def test_round_trip_covers_extended_noise_fields():
    config = QTDAConfig(
        backend="statevector",
        shots=None,
        noise_channel="depolarizing",
        noise_strength=0.01,
        noise_gate_strengths={"CNOT": 0.05, "H": 0.0},
        noise_two_qubit_channel="two-qubit-depolarizing",
        noise_two_qubit_strength=0.02,
        readout_error=0.04,
        n_trajectories=12,
        fuse_purified=True,
        seed=9,
    )
    restored = QTDAConfig.from_dict(config.as_dict())
    assert restored == config
    # The wire layer freezes the mapping into a tuple of pairs; the config
    # must rebuild the same dict from that shape too.
    frozen = config.replace(noise_gate_strengths=(("CNOT", 0.05), ("H", 0.0)))
    assert frozen.noise_gate_strengths == config.noise_gate_strengths


def test_pure_state_engines_reject_extended_gate_noise():
    with pytest.raises(ValueError):
        QTDAConfig(
            backend="statevector",
            circuit_engine="ensemble",
            noise_two_qubit_channel="correlated-zz",
            noise_two_qubit_strength=0.05,
        )
    # Readout error is classical post-processing — allowed on every engine.
    QTDAConfig(backend="statevector", circuit_engine="ensemble", readout_error=0.05)
