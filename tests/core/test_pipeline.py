"""Tests for the end-to-end feature pipeline (Section 5 plumbing)."""

import numpy as np
import pytest

from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig, QTDAPipeline, betti_feature_vector
from repro.datasets.point_clouds import circle_cloud, clusters_cloud


def test_pipeline_config_validation():
    with pytest.raises(ValueError):
        PipelineConfig(epsilon=-1.0)
    with pytest.raises(ValueError):
        PipelineConfig(homology_dimensions=())
    with pytest.raises(ValueError):
        PipelineConfig(homology_dimensions=(0, 1), max_complex_dimension=1)
    config = PipelineConfig(homology_dimensions=(0, 1))
    assert config.max_complex_dimension == 2


def test_classical_features_on_circle():
    pipeline = QTDAPipeline(PipelineConfig(epsilon=0.7, use_quantum=False))
    features = pipeline.features_from_point_cloud(circle_cloud(12))
    assert np.allclose(features, [1.0, 1.0])


def test_quantum_features_close_to_classical_on_circle():
    config = PipelineConfig(
        epsilon=0.7,
        use_quantum=True,
        estimator=QTDAConfig(precision_qubits=8, shots=None),
    )
    features = QTDAPipeline(config).features_from_point_cloud(circle_cloud(12))
    assert np.allclose(np.round(features), [1.0, 1.0])
    assert np.all(np.abs(features - [1.0, 1.0]) < 0.5)


def test_cluster_counting():
    cloud = clusters_cloud(num_clusters=3, points_per_cluster=5, seed=2)
    pipeline = QTDAPipeline(PipelineConfig(epsilon=1.5, use_quantum=False))
    features = pipeline.features_from_point_cloud(cloud)
    assert features[0] == 3.0


def test_estimates_from_point_cloud_report_exact_values():
    config = PipelineConfig(epsilon=0.7, estimator=QTDAConfig(precision_qubits=4, shots=None))
    estimates = QTDAPipeline(config).estimates_from_point_cloud(circle_cloud(10))
    assert len(estimates) == 2
    assert all(e.exact_betti is not None for e in estimates)


def test_features_from_time_series():
    config = PipelineConfig(
        epsilon=0.6,
        use_quantum=False,
        takens_dimension=2,
        takens_delay=25,
        takens_stride=7,
    )
    t = np.linspace(0, 6 * np.pi, 300, endpoint=False)
    features = QTDAPipeline(config).features_from_time_series(np.sin(t))
    assert features.shape == (2,)
    assert features[0] == 1.0


def test_batch_transforms():
    pipeline = QTDAPipeline(PipelineConfig(epsilon=0.7, use_quantum=False))
    clouds = [circle_cloud(10), clusters_cloud(2, 5, seed=1)]
    matrix = pipeline.transform_point_clouds(clouds)
    assert matrix.shape == (2, 2)
    series = np.vstack([np.sin(np.linspace(0, 4 * np.pi, 60))] * 3)
    config = PipelineConfig(epsilon=0.8, use_quantum=False, takens_dimension=2, takens_delay=5, takens_stride=3)
    matrix_ts = QTDAPipeline(config).transform_time_series(series)
    assert matrix_ts.shape == (3, 2)
    with pytest.raises(ValueError):
        QTDAPipeline(config).transform_time_series(series[0])


def test_feature_names():
    pipeline = QTDAPipeline(PipelineConfig(homology_dimensions=(0, 1, 2)))
    assert pipeline.feature_names == ("betti_0", "betti_1", "betti_2")


def test_epsilon_override_per_call():
    pipeline = QTDAPipeline(PipelineConfig(epsilon=0.1, use_quantum=False))
    cloud = circle_cloud(12)
    tight = pipeline.features_from_point_cloud(cloud)
    loose = pipeline.features_from_point_cloud(cloud, epsilon=0.7)
    assert tight[0] == 12.0  # all points isolated at tiny epsilon
    assert loose[0] == 1.0


def test_betti_feature_vector_convenience():
    features = betti_feature_vector(circle_cloud(10), epsilon=0.8, use_quantum=False)
    assert np.allclose(features, [1.0, 1.0])


def test_pipeline_keyword_overrides():
    pipeline = QTDAPipeline(epsilon=0.5, use_quantum=False)
    assert pipeline.config.epsilon == 0.5


def test_homology_dimensions_override_rederives_max_complex_dimension():
    """Regression: overriding only homology_dimensions must not carry the base
    config's already-resolved max_complex_dimension through the replace."""
    pipeline = QTDAPipeline(homology_dimensions=(0, 1, 2))
    assert pipeline.config.max_complex_dimension == 3
    # An explicit max_complex_dimension override still wins (and still validates).
    pipeline = QTDAPipeline(homology_dimensions=(0,), max_complex_dimension=2)
    assert pipeline.config.max_complex_dimension == 2
    with pytest.raises(ValueError):
        QTDAPipeline(homology_dimensions=(0, 1, 2), max_complex_dimension=2)
