"""Backend-agreement tests: exact ≡ statevector ≡ (converged) trotter.

These are the integration tests that justify using the fast ``exact`` backend
for the paper-scale sweeps: all three backends implement the same algorithm
and must agree on the infinite-shot probability of the all-zero readout.
"""

import numpy as np
import pytest

from repro.core.estimator import QTDABettiEstimator
from repro.quantum.noise import NoiseModel
from repro.tda.complexes import SimplicialComplex


@pytest.fixture(scope="module")
def small_complex():
    """A complex whose Δ_1 is 5x5 (padded to 8): hollow square plus a tail edge."""
    return SimplicialComplex(
        [(0,), (1,), (2,), (3,), (4,), (0, 1), (1, 2), (2, 3), (0, 3), (3, 4)]
    )


def _estimate(complex_, backend, **kwargs):
    estimator = QTDABettiEstimator(precision_qubits=3, shots=None, backend=backend, **kwargs)
    return estimator.estimate(complex_, 1)


def test_exact_equals_statevector_purified(small_complex):
    exact = _estimate(small_complex, "exact")
    statevector = _estimate(small_complex, "statevector", circuit_engine="purified")
    assert statevector.engine_route == "purified"
    assert statevector.p_zero == pytest.approx(exact.p_zero, abs=1e-9)


def test_exact_equals_statevector_density_route(small_complex):
    exact = _estimate(small_complex, "exact")
    density = _estimate(small_complex, "statevector", circuit_engine="density")
    assert density.engine_route == "density"
    assert density.p_zero == pytest.approx(exact.p_zero, abs=1e-9)


def test_exact_equals_statevector_ensemble_route(small_complex):
    exact = _estimate(small_complex, "exact")
    ensemble = _estimate(small_complex, "statevector")  # circuit_engine="auto"
    assert ensemble.engine_route == "ensemble"
    assert ensemble.p_zero == pytest.approx(exact.p_zero, abs=1e-9)


def test_trotter_converges_to_exact(small_complex):
    exact = _estimate(small_complex, "exact")
    coarse = _estimate(small_complex, "trotter", trotter_steps=1, use_purification=False)
    fine = _estimate(small_complex, "trotter", trotter_steps=12, use_purification=False)
    assert abs(fine.p_zero - exact.p_zero) <= abs(coarse.p_zero - exact.p_zero) + 1e-12
    assert fine.p_zero == pytest.approx(exact.p_zero, abs=0.02)


def test_all_backends_round_to_true_betti(appendix_k):
    for backend in ("exact", "statevector", "trotter"):
        kwargs = {"use_purification": False} if backend != "exact" else {}
        estimator = QTDABettiEstimator(
            precision_qubits=3, shots=None, backend=backend, delta=6.0, trotter_steps=8, **kwargs
        )
        assert estimator.estimate(appendix_k, 1).betti_rounded == 1, backend


def test_noise_degrades_estimate_smoothly(small_complex):
    clean = _estimate(small_complex, "statevector", use_purification=False)
    noisy = QTDABettiEstimator(
        precision_qubits=3,
        shots=None,
        backend="statevector",
        use_purification=False,
        noise_model=NoiseModel.depolarizing(0.02),
    ).estimate(small_complex, 1)
    # Noise perturbs but does not destroy the estimate at this strength.
    assert noisy.p_zero != pytest.approx(clean.p_zero, abs=1e-12)
    assert abs(noisy.betti_estimate - clean.betti_estimate) < 1.5


def test_shot_sampling_consistent_across_backends(small_complex):
    exact = QTDABettiEstimator(precision_qubits=3, shots=4000, backend="exact", seed=3).estimate(small_complex, 1)
    sv = QTDABettiEstimator(
        precision_qubits=3, shots=4000, backend="statevector", seed=3, use_purification=True
    ).estimate(small_complex, 1)
    # Same underlying distribution → estimates within a few shot-noise sigmas.
    sigma = 8 * np.sqrt(0.25 / 4000)
    assert abs(exact.betti_estimate - sv.betti_estimate) < 6 * sigma
