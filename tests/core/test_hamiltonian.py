"""Tests for the rescaled Hamiltonian and QTDA unitary (Eqs. 8–9)."""

import numpy as np
import pytest

from repro.core.hamiltonian import build_hamiltonian, qtda_unitary
from repro.experiments.worked_example import EXPECTED_LAPLACIAN


def test_appendix_delta_six_gives_unscaled_padded_laplacian():
    hamiltonian = build_hamiltonian(EXPECTED_LAPLACIAN, delta=6.0)
    assert hamiltonian.scale == pytest.approx(1.0)
    assert np.array_equal(hamiltonian.matrix, hamiltonian.padded.matrix)


def test_default_delta_slightly_below_two_pi():
    hamiltonian = build_hamiltonian(EXPECTED_LAPLACIAN)
    assert hamiltonian.delta == pytest.approx(2 * np.pi * 0.9)
    # Spectrum fits strictly inside [0, 2π).
    eigenvalues = np.linalg.eigvalsh(hamiltonian.matrix)
    assert eigenvalues.min() >= -1e-10
    assert eigenvalues.max() < 2 * np.pi


def test_eigenphases_in_unit_interval_and_zero_preserved():
    hamiltonian = build_hamiltonian(EXPECTED_LAPLACIAN)
    phases = hamiltonian.eigenphases()
    assert np.all((phases >= 0) & (phases < 1))
    # The kernel of the Laplacian maps to phase 0 exactly.
    assert np.count_nonzero(np.isclose(phases, 0.0, atol=1e-10)) == 1


def test_unitary_is_unitary_and_has_expected_eigenvalues():
    hamiltonian = build_hamiltonian(EXPECTED_LAPLACIAN, delta=6.0)
    unitary = hamiltonian.unitary()
    assert np.allclose(unitary @ unitary.conj().T, np.eye(8), atol=1e-10)
    eigs_u = np.sort(np.angle(np.linalg.eigvals(unitary)) % (2 * np.pi))
    eigs_h = np.sort(np.linalg.eigvalsh(hamiltonian.matrix) % (2 * np.pi))
    assert np.allclose(eigs_u, eigs_h, atol=1e-8)


def test_zero_eigenvalue_count_matches_betti(appendix_k):
    from repro.tda.laplacian import combinatorial_laplacian

    hamiltonian = build_hamiltonian(combinatorial_laplacian(appendix_k, 1))
    assert hamiltonian.zero_eigenvalue_count() == 1


def test_zero_laplacian_handled():
    hamiltonian = build_hamiltonian(np.zeros((2, 2)))
    assert hamiltonian.scale == 1.0
    assert np.allclose(hamiltonian.matrix, 0.0)


def test_delta_validation():
    with pytest.raises(ValueError):
        build_hamiltonian(EXPECTED_LAPLACIAN, delta=7.0)
    with pytest.raises(ValueError):
        build_hamiltonian(EXPECTED_LAPLACIAN, delta=0.0)


def test_qtda_unitary_convenience():
    direct = qtda_unitary(EXPECTED_LAPLACIAN, delta=6.0)
    via_object = build_hamiltonian(EXPECTED_LAPLACIAN, delta=6.0).unitary()
    assert np.allclose(direct, via_object)


def test_pauli_decomposition_reconstructs_hamiltonian():
    hamiltonian = build_hamiltonian(EXPECTED_LAPLACIAN, delta=6.0)
    assert np.allclose(hamiltonian.pauli_decomposition().to_matrix(), hamiltonian.matrix, atol=1e-10)


def test_zero_padding_mode_propagates():
    hamiltonian = build_hamiltonian(EXPECTED_LAPLACIAN, padding="zero")
    assert hamiltonian.padded.mode == "zero"
    assert hamiltonian.zero_eigenvalue_count() == 3  # 1 true + 2 spurious
