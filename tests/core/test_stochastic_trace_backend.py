"""Tests for the ``stochastic-trace`` backend (Hutchinson/SLQ estimation).

The acceptance criterion of the ISSUE: on the reference complexes the
stochastic estimate must match the exact kernel dimension within its own
reported error bars (and round to the exact Betti number).
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core.backends import get_backend
from repro.core.backends.stochastic_trace import StochasticTraceBackend
from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator
from repro.core.operators import MatrixFreeOperator
from repro.experiments.worked_example import appendix_complex
from repro.tda.betti import betti_number
from repro.tda.complexes import SimplicialComplex
from repro.tda.laplacian import combinatorial_laplacian
from repro.tda.rips import rips_complex
from repro.datasets.point_clouds import circle_cloud


def _square_tail() -> SimplicialComplex:
    return SimplicialComplex(
        [(0,), (1,), (2,), (3,), (4,), (0, 1), (1, 2), (2, 3), (0, 3), (3, 4)]
    )


REFERENCE_COMPLEXES = {
    "appendix": appendix_complex,
    "square_tail": _square_tail,
    "hollow_triangle": lambda: SimplicialComplex(
        [(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)]
    ),
}


def _estimator(**overrides) -> QTDABettiEstimator:
    defaults = dict(precision_qubits=5, shots=None, delta=6.0, seed=17)
    defaults.update(overrides)
    return QTDABettiEstimator(backend="stochastic-trace", **defaults)


@pytest.mark.parametrize("case", sorted(REFERENCE_COMPLEXES))
@pytest.mark.parametrize("k", [0, 1])
def test_matches_exact_kernel_dimension_within_error_bars(case, k):
    """The ISSUE acceptance gate, on every reference complex and dimension."""
    complex_ = REFERENCE_COMPLEXES[case]()
    if complex_.num_simplices(k) == 0:
        pytest.skip("no k-simplices")
    stochastic = _estimator().estimate(complex_, k)
    exact = QTDABettiEstimator(
        precision_qubits=5, shots=None, delta=6.0, backend="exact"
    ).estimate(complex_, k)
    assert stochastic.betti_std is not None and stochastic.betti_std >= 0.0
    assert stochastic.betti_rounded == betti_number(complex_, k)
    # Within the reported error bars of the *deterministic* target the probes
    # are sampling (three standard errors, plus a hair of atol for the
    # zero-variance corner where every probe is exact).
    assert abs(stochastic.betti_estimate - exact.betti_estimate) <= (
        3.0 * stochastic.betti_std + 1e-9
    )


def test_error_bar_shrinks_with_more_probes(appendix_k):
    laplacian = combinatorial_laplacian(appendix_k, 1, sparse_format=True)
    few = StochasticTraceBackend(num_probes=8, lanczos_steps=32)
    many = StochasticTraceBackend(num_probes=256, lanczos_steps=32)
    from repro.core.backends import EstimationProblem
    from repro.core.config import QTDAConfig

    config = QTDAConfig(precision_qubits=4, shots=None, delta=6.0, backend="stochastic-trace")
    rng_few = np.random.default_rng(3)
    rng_many = np.random.default_rng(3)
    sigma_few = few.run(EstimationProblem(laplacian), config, rng_few).p_zero_std
    sigma_many = many.run(EstimationProblem(laplacian), config, rng_many).p_zero_std
    assert sigma_many < sigma_few


def test_matrix_free_operator_only_uses_matvec(appendix_k):
    """The backend never touches entries — a pure-closure operator works."""
    laplacian = combinatorial_laplacian(appendix_k, 1)
    calls = {"matvec": 0, "dense": 0}

    class _Spy(MatrixFreeOperator):
        def to_dense(self):
            calls["dense"] += 1
            return super().to_dense()

    def matvec(x):
        calls["matvec"] += 1
        return laplacian @ x

    from repro.paulis.gershgorin import gershgorin_bound

    operator = _Spy(matvec, laplacian.shape, gershgorin=gershgorin_bound(laplacian))
    estimate = _estimator().estimate_from_laplacian(operator)
    assert estimate.betti_rounded == 1
    assert calls["matvec"] > 0
    assert calls["dense"] == 0


def test_deterministic_given_seed(appendix_k):
    a = _estimator(seed=23).estimate(appendix_k, 1)
    b = _estimator(seed=23).estimate(appendix_k, 1)
    c = _estimator(seed=24).estimate(appendix_k, 1)
    assert a.betti_estimate == b.betti_estimate
    assert a.betti_std == b.betti_std
    # A different stream gives a different (but still valid) estimate.
    assert a.betti_estimate != c.betti_estimate


def test_distribution_is_normalised_and_nonnegative(appendix_k):
    from repro.core.backends import EstimationProblem
    from repro.core.config import QTDAConfig

    laplacian = combinatorial_laplacian(appendix_k, 1, sparse_format=True)
    backend = get_backend("stochastic-trace")
    config = QTDAConfig(precision_qubits=4, shots=None, delta=6.0, backend="stochastic-trace")
    result = backend.run(EstimationProblem(laplacian), config, np.random.default_rng(0))
    assert np.all(result.distribution >= -1e-12)
    assert result.distribution.sum() == pytest.approx(1.0, abs=1e-10)


def test_zero_laplacian_reads_full_kernel():
    """All-zero Δ (every simplex harmonic): β̃ = 2^q, no crash on breakdown."""
    estimate = _estimator().estimate_from_laplacian(sparse.csr_matrix((4, 4)))
    assert estimate.betti_estimate == pytest.approx(4.0)
    assert estimate.betti_std == pytest.approx(0.0)


def test_one_dimensional_laplacian():
    estimate = _estimator().estimate_from_laplacian(np.array([[0.0]]))
    # β̃ = 2^q · p(0) with q = 1 and a phase-0 eigenvalue plus identity
    # padding at λ̃_max/2 = 0 — everything reads phase 0.
    assert estimate.betti_estimate == pytest.approx(2.0)


def test_shots_sampling_composes_with_stochastic_backend(appendix_k):
    estimate = _estimator(shots=500, seed=5).estimate(appendix_k, 1)
    assert estimate.counts  # finite-shot counts recorded as for any backend
    assert estimate.betti_std is not None


def test_scales_to_larger_sparse_complex_without_factorisation():
    """A few hundred simplices through matvecs only — sane rounded answer."""
    cloud = circle_cloud(60)
    epsilon = 2.0 * np.sin(4.0 * np.pi / 60) + 1e-9
    complex_ = rips_complex(cloud, epsilon, 2)
    laplacian = combinatorial_laplacian(complex_, 1, sparse_format=True)
    assert laplacian.shape[0] >= 200
    backend = StochasticTraceBackend(num_probes=48, lanczos_steps=80)
    from repro.core.backends import EstimationProblem
    from repro.core.config import QTDAConfig

    config = QTDAConfig(precision_qubits=6, shots=None, delta=6.0, backend="stochastic-trace")
    result = backend.run(EstimationProblem(laplacian), config, np.random.default_rng(11))
    betti = 2**result.num_system_qubits * result.distribution[0]
    exact = betti_number(complex_, 1)
    sigma = 2**result.num_system_qubits * result.p_zero_std
    assert abs(betti - exact) <= max(3.0 * sigma, 0.75)


def test_single_probe_reports_unknown_error_bar(appendix_k):
    """One probe has no empirical spread: σ is unknown (None), never 0.0."""
    from repro.core.backends import EstimationProblem
    from repro.core.config import QTDAConfig

    laplacian = combinatorial_laplacian(appendix_k, 1, sparse_format=True)
    backend = StochasticTraceBackend(num_probes=1, lanczos_steps=16)
    config = QTDAConfig(precision_qubits=4, shots=None, delta=6.0, backend="stochastic-trace")
    result = backend.run(EstimationProblem(laplacian), config, np.random.default_rng(2))
    assert result.p_zero_std is None


def test_constructor_validation():
    with pytest.raises(ValueError):
        StochasticTraceBackend(num_probes=0)
    with pytest.raises(ValueError):
        StochasticTraceBackend(lanczos_steps=0)
    with pytest.raises(ValueError):
        StochasticTraceBackend(breakdown_tol=0.0)


# -- Hutch++-style deflated probing (QTDAConfig.trace_deflation_rank) ------------

def _stochastic_estimate(complex_, k, rank, seed, precision_qubits=4):
    estimator = QTDABettiEstimator(
        QTDAConfig(
            precision_qubits=precision_qubits,
            shots=None,
            backend="stochastic-trace",
            trace_deflation_rank=rank,
            seed=seed,
        )
    )
    return estimator.estimate(complex_, k)


def test_deflation_rank_validated():
    with pytest.raises(ValueError):
        QTDAConfig(trace_deflation_rank=-1)
    assert QTDAConfig(trace_deflation_rank=4).trace_deflation_rank == 4
    # Round-trips through the serialisable config surface.
    assert QTDAConfig.from_dict(QTDAConfig(trace_deflation_rank=4).as_dict()).trace_deflation_rank == 4


def test_deflated_estimate_stays_accurate(appendix_k):
    """Deflation must not bias the estimate: still within error bars of exact."""
    result = _stochastic_estimate(appendix_k, 1, rank=3, seed=7)
    assert result.betti_std is not None
    assert abs(result.betti_estimate - result.exact_betti) <= max(3 * result.betti_std, 0.75)
    assert result.betti_rounded == result.exact_betti


def test_deflation_shrinks_error_bar_at_equal_matvec_budget():
    """The satellite's headline claim: smaller betti_std for the same budget.

    The matvec budget is equalised *inside* the backend (the deflation run's
    Lanczos steps are subtracted from the per-probe depth), so comparing
    plain rank=0 against rank>0 at identical backend parameters is an
    equal-budget comparison by construction.  Averaged over seeds to keep
    the check robust.
    """
    from repro.datasets.point_clouds import figure_eight_cloud
    from repro.tda.rips import RipsComplex

    points = figure_eight_cloud(24, seed=2)
    complex_ = RipsComplex.from_points(points, epsilon=0.75, max_dimension=2).complex()
    seeds = range(6)
    plain = np.mean([_stochastic_estimate(complex_, 1, 0, s).betti_std for s in seeds])
    deflated = np.mean([_stochastic_estimate(complex_, 1, 8, s).betti_std for s in seeds])
    assert deflated < plain, f"deflated std {deflated} not below plain {plain}"


def test_deflation_rank_zero_is_bit_identical_to_plain(appendix_k):
    """rank=0 must take exactly the pre-deflation code path."""
    plain = _stochastic_estimate(appendix_k, 1, 0, seed=3)
    default = QTDABettiEstimator(
        QTDAConfig(precision_qubits=4, shots=None, backend="stochastic-trace", seed=3)
    ).estimate(appendix_k, 1)
    assert plain.as_dict() == default.as_dict()


def test_deflation_rank_capped_at_dimension():
    """rank ≥ |S_k| degrades gracefully (capped, no crash, still accurate)."""
    complex_ = SimplicialComplex([(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)])
    result = _stochastic_estimate(complex_, 1, rank=50, seed=1)
    assert result.betti_rounded == result.exact_betti == 1
