"""Tests for the batched feature engine, the spectrum cache and the fast paths."""

import numpy as np
import pytest

from repro.core.batch import BATCH_BACKENDS, BatchConfig, BatchFeatureEngine
from repro.core.config import QTDAConfig
from repro.core.hamiltonian import SpectrumCache, build_hamiltonian, padded_spectrum
from repro.core.pipeline import PipelineConfig, QTDAPipeline
from repro.datasets.point_clouds import circle_cloud, clusters_cloud
from repro.tda.betti import betti_number
from repro.tda.laplacian import combinatorial_laplacian, laplacian_from_flag_arrays
from repro.tda.rips import RipsComplex, flag_complex_arrays, rips_complex, rips_sweep


@pytest.fixture()
def clouds():
    return [circle_cloud(12), clusters_cloud(3, 5, seed=2), circle_cloud(8), clusters_cloud(2, 4, seed=5)]


@pytest.fixture()
def quantum_config():
    return PipelineConfig(
        epsilon=0.7,
        use_quantum=True,
        estimator=QTDAConfig(precision_qubits=4, shots=200, seed=42),
    )


# -- backend equivalence ---------------------------------------------------------

@pytest.mark.parametrize("backend", BATCH_BACKENDS)
def test_backends_bit_identical_under_fixed_seed(clouds, quantum_config, backend):
    """Same seed ⇒ identical feature matrices, regardless of execution backend."""
    reference = BatchFeatureEngine(quantum_config).transform_point_clouds(clouds)
    engine = BatchFeatureEngine(
        quantum_config, batch=BatchConfig(backend=backend, max_workers=2, chunk_size=1)
    )
    assert np.array_equal(reference, engine.transform_point_clouds(clouds))


def test_pipeline_batch_methods_match_engine(clouds, quantum_config):
    pipeline = QTDAPipeline(quantum_config)
    engine = BatchFeatureEngine(quantum_config)
    assert np.array_equal(
        pipeline.transform_point_clouds(clouds), engine.transform_point_clouds(clouds)
    )


def test_chunking_does_not_change_results(clouds, quantum_config):
    whole = BatchFeatureEngine(
        quantum_config, batch=BatchConfig(backend="threads", chunk_size=len(clouds))
    ).transform_point_clouds(clouds)
    split = BatchFeatureEngine(
        quantum_config, batch=BatchConfig(backend="threads", chunk_size=1)
    ).transform_point_clouds(clouds)
    assert np.array_equal(whole, split)


def test_transform_time_series_matches_pipeline():
    series = np.vstack([np.sin(np.linspace(0, 4 * np.pi, 60) + phase) for phase in (0.0, 0.5, 1.0)])
    config = PipelineConfig(
        epsilon=0.8, use_quantum=False, takens_dimension=2, takens_delay=5, takens_stride=3
    )
    engine_matrix = BatchFeatureEngine(config).transform_time_series(series)
    pipeline_matrix = QTDAPipeline(config).transform_time_series(series)
    assert np.array_equal(engine_matrix, pipeline_matrix)
    with pytest.raises(ValueError):
        BatchFeatureEngine(config).transform_time_series(series[0])


def test_empty_batch(quantum_config):
    engine = BatchFeatureEngine(quantum_config)
    assert engine.transform_point_clouds([]).shape == (0, 2)
    assert engine.sweep([], [0.5, 1.0]).shape == (2, 0, 2)


# -- sweep fast path -------------------------------------------------------------

def test_sweep_matches_per_epsilon_transforms(clouds):
    engine = BatchFeatureEngine(PipelineConfig(use_quantum=False))
    epsilons = [0.4, 0.7, 1.2]
    swept = engine.sweep(clouds, epsilons)
    assert swept.shape == (3, len(clouds), 2)
    for index, epsilon in enumerate(epsilons):
        assert np.array_equal(swept[index], engine.transform_point_clouds(clouds, epsilon=epsilon))


def test_features_and_exact_against_classical_betti(clouds, quantum_config):
    estimated, exact = BatchFeatureEngine(quantum_config).features_and_exact(clouds, epsilon=0.7)
    assert estimated.shape == exact.shape == (len(clouds), 2)
    for row, cloud in enumerate(clouds):
        complex_ = rips_complex(np.asarray(cloud, dtype=float), 0.7, 2)
        for col, k in enumerate((0, 1)):
            assert exact[row, col] == betti_number(complex_, k)


def test_fallback_path_above_dimension_two(clouds):
    """max_complex_dimension > 2 routes through the generic clique path."""
    config = PipelineConfig(epsilon=0.7, use_quantum=False, homology_dimensions=(0, 1, 2))
    assert config.max_complex_dimension == 3
    features = BatchFeatureEngine(config).transform_point_clouds(clouds[:2])
    assert features.shape == (2, 3)
    pipeline_features = QTDAPipeline(config).transform_point_clouds(clouds[:2])
    assert np.array_equal(features, pipeline_features)


# -- flag-complex fast path ------------------------------------------------------

def test_flag_arrays_match_clique_complex_and_laplacians():
    rng = np.random.default_rng(3)
    for _ in range(15):
        points = rng.normal(size=(int(rng.integers(2, 16)), 3))
        epsilon = float(rng.uniform(0.3, 2.5))
        rips = RipsComplex.from_points(points, epsilon, max_dimension=2)
        complex_ = rips.complex()
        arrays = rips.flag_arrays()
        assert arrays.to_complex() == complex_
        assert arrays.f_vector() == complex_.f_vector()
        for k in (0, 1, 2):
            assert np.array_equal(
                combinatorial_laplacian(complex_, k), laplacian_from_flag_arrays(arrays, k)
            )


def test_flag_arrays_reject_high_dimensions():
    with pytest.raises(ValueError):
        flag_complex_arrays(np.zeros((3, 3)), 1.0, max_dimension=3)


def test_with_epsilon_shares_distances_and_rips_sweep():
    points = circle_cloud(10)
    rips = RipsComplex.from_points(points, 0.3)
    wider = rips.with_epsilon(0.9)
    assert wider.epsilon == 0.9
    assert wider.distance_matrix is rips.distance_matrix
    assert wider.complex() == RipsComplex.from_points(points, 0.9).complex()
    sweep = rips_sweep(points, [0.3, 0.6, 0.9])
    assert [r.epsilon for r in sweep] == [0.3, 0.6, 0.9]
    assert sweep[0].distance_matrix is sweep[2].distance_matrix


# -- spectrum cache --------------------------------------------------------------

def test_padded_spectrum_matches_dense_padded_eigendecomposition():
    """The satellite criterion: analytic phases vs np.linalg.eigvalsh of the dense padded matrix."""
    rng = np.random.default_rng(11)
    cache = SpectrumCache()
    for _ in range(10):
        points = rng.normal(size=(int(rng.integers(3, 14)), 3))
        complex_ = rips_complex(points, float(rng.uniform(0.5, 2.0)), 2)
        for k in (0, 1):
            if complex_.num_simplices(k) == 0:
                continue
            laplacian = combinatorial_laplacian(complex_, k)
            for padding in ("identity", "zero"):
                spectrum = padded_spectrum(laplacian, delta=6.0, padding=padding, cache=cache)
                hamiltonian = build_hamiltonian(laplacian, delta=6.0, padding=padding)
                assert spectrum.num_qubits == hamiltonian.num_qubits
                assert spectrum.lambda_max == hamiltonian.padded.lambda_max
                dense_eigenvalues = np.linalg.eigvalsh(hamiltonian.matrix)
                np.testing.assert_allclose(
                    np.sort(spectrum.hamiltonian_eigenvalues()), dense_eigenvalues, atol=1e-9
                )
                np.testing.assert_allclose(
                    np.sort(spectrum.eigenphases()), np.sort(hamiltonian.eigenphases()), atol=1e-10
                )


def test_spectrum_cache_hits_are_bit_identical():
    laplacian = combinatorial_laplacian(rips_complex(circle_cloud(10), 0.7, 2), 1)
    cache = SpectrumCache(maxsize=4)
    first, lam_first = cache.spectrum(laplacian)
    second, lam_second = cache.spectrum(laplacian)
    assert cache.hits == 1 and cache.misses == 1
    assert lam_first == lam_second
    assert np.array_equal(first, second)


def test_spectrum_cache_sparse_hits_never_densify(monkeypatch):
    """Satellite regression: a cached sparse lookup must not materialise a
    dense matrix — the key comes from the CSR arrays (operator fingerprint),
    not from dense bytes."""
    from repro.core.operators import SparseOperator

    laplacian = combinatorial_laplacian(
        rips_complex(circle_cloud(10), 0.7, 2), 1, sparse_format=True
    )
    cache = SpectrumCache(maxsize=4)
    first = cache.spectrum(laplacian)  # miss — the eigendecomposition densifies
    assert cache.misses == 1

    def forbidden_to_dense(self):
        raise AssertionError("cached sparse lookup densified the Laplacian")

    monkeypatch.setattr(SparseOperator, "to_dense", forbidden_to_dense)
    second = cache.spectrum(laplacian)            # same object
    third = cache.spectrum(laplacian.copy())      # same content, fresh arrays
    assert cache.hits == 2
    assert np.array_equal(first[0], second[0]) and first[1] == second[1]
    assert np.array_equal(first[0], third[0]) and first[1] == third[1]


def test_spectrum_cache_bypasses_unfingerprintable_operators():
    """Untagged matrix-free operators compute uncached rather than densify-to-key."""
    from repro.core.operators import MatrixFreeOperator

    laplacian = combinatorial_laplacian(rips_complex(circle_cloud(8), 0.8, 2), 1)
    operator = MatrixFreeOperator(lambda x: laplacian @ x, laplacian.shape)
    cache = SpectrumCache(maxsize=4)
    a = cache.spectrum(operator)
    b = cache.spectrum(operator)
    assert cache.hits == 0 and cache.misses == 0 and len(cache) == 0
    assert np.array_equal(a[0], b[0])
    # A *tagged* matrix-free operator is cacheable.
    tagged = MatrixFreeOperator(lambda x: laplacian @ x, laplacian.shape, fingerprint=b"tag")
    cache.spectrum(tagged)
    cache.spectrum(tagged)
    assert cache.hits == 1 and cache.misses == 1


def test_spectrum_cache_lru_eviction():
    cache = SpectrumCache(maxsize=2)
    matrices = [np.diag([float(i), float(i + 1)]) for i in range(3)]
    for matrix in matrices:
        cache.spectrum(matrix)
    assert len(cache) == 2
    cache.spectrum(matrices[0])  # evicted above -> miss again
    assert cache.misses == 4


def test_cache_reuse_across_precision_sweep(clouds):
    """Table 1 pattern: same complexes under several precision settings hit the cache."""
    cache = SpectrumCache()
    for precision in (1, 3, 5):
        config = PipelineConfig(
            epsilon=0.7,
            use_quantum=True,
            estimator=QTDAConfig(precision_qubits=precision, shots=None),
        )
        BatchFeatureEngine(config, spectrum_cache=cache).transform_point_clouds(clouds)
    assert cache.hits >= 2 * cache.misses  # two of three sweeps fully served from cache


# -- operator-format negotiation (DESIGN.md §9) -----------------------------------

def test_engine_negotiates_format_from_estimator_backend():
    dense_engine = BatchFeatureEngine(PipelineConfig(use_quantum=True))
    assert dense_engine._laplacian_format() == "dense"
    for backend in ("sparse-exact", "stochastic-trace"):
        engine = BatchFeatureEngine(
            PipelineConfig(use_quantum=True, estimator=QTDAConfig(backend=backend))
        )
        assert engine._laplacian_format() == "sparse"
    classical = BatchFeatureEngine(
        PipelineConfig(use_quantum=False, estimator=QTDAConfig(backend="sparse-exact"))
    )
    assert classical._laplacian_format() == "dense"
    forced = BatchFeatureEngine(
        PipelineConfig(use_quantum=True, estimator=QTDAConfig(backend="sparse-exact")),
        batch=BatchConfig(operator_format="dense"),
    )
    assert forced._laplacian_format() == "dense"


@pytest.mark.parametrize("backend", ["exact", "sparse-exact"])
def test_sparse_and_dense_handoff_are_bit_identical(clouds, backend):
    """Forcing either operator format changes cost only, never features."""
    config = PipelineConfig(
        epsilon=0.7,
        use_quantum=True,
        estimator=QTDAConfig(precision_qubits=4, shots=None, backend=backend),
    )
    dense = BatchFeatureEngine(config, batch=BatchConfig(operator_format="dense"))
    sparse_ = BatchFeatureEngine(config, batch=BatchConfig(operator_format="sparse"))
    negotiated = BatchFeatureEngine(config)
    features = negotiated.transform_point_clouds(clouds)
    assert np.array_equal(features, dense.transform_point_clouds(clouds))
    assert np.array_equal(features, sparse_.transform_point_clouds(clouds))


def test_sparse_handoff_on_generic_clique_route(clouds):
    """Above dimension 2 the clique path also honours the negotiated format."""
    config = PipelineConfig(
        epsilon=0.7,
        use_quantum=True,
        homology_dimensions=(0, 1, 2),
        estimator=QTDAConfig(precision_qubits=3, shots=None, backend="sparse-exact"),
    )
    features = BatchFeatureEngine(config).transform_point_clouds(clouds[:2])
    dense = BatchFeatureEngine(
        config, batch=BatchConfig(operator_format="dense")
    ).transform_point_clouds(clouds[:2])
    assert np.array_equal(features, dense)


# -- configuration ---------------------------------------------------------------

def test_batch_config_validation():
    with pytest.raises(ValueError):
        BatchConfig(backend="fibers")
    with pytest.raises(ValueError):
        BatchConfig(max_workers=0)
    with pytest.raises(ValueError):
        BatchConfig(chunk_size=0)
    with pytest.raises(ValueError):
        BatchConfig(operator_format="csr")
    assert BatchConfig(spectrum_cache_size=0).spectrum_cache_size == 0
    assert BatchConfig(operator_format="sparse").operator_format == "sparse"


def test_cache_disabled_still_correct(clouds, quantum_config):
    cached = BatchFeatureEngine(quantum_config).transform_point_clouds(clouds)
    uncached = BatchFeatureEngine(
        quantum_config, batch=BatchConfig(spectrum_cache_size=0)
    ).transform_point_clouds(clouds)
    assert np.array_equal(cached, uncached)


# -- incremental sweeps (iter_sweep) ---------------------------------------------

def test_iter_sweep_bit_identical_to_sweep(clouds, quantum_config):
    """The streaming ε-major path reproduces the sample-major sweep exactly."""
    epsilons = (0.4, 0.7, 1.0)
    materialised = BatchFeatureEngine(quantum_config).sweep(clouds, epsilons)
    streamed = list(BatchFeatureEngine(quantum_config).iter_sweep(clouds, epsilons))
    assert [eps for eps, _ in streamed] == list(epsilons)
    assert np.array_equal(np.stack([block for _, block in streamed]), materialised)


def test_iter_sweep_bit_identical_with_stochastic_backend(clouds):
    """Per-sample estimator RNG state persists across yields (finite-shot +
    probe-heavy backend is the hardest case for ε-major reordering)."""
    config = PipelineConfig(
        epsilon=0.7,
        use_quantum=True,
        estimator=QTDAConfig(precision_qubits=3, shots=50, seed=11, backend="stochastic-trace"),
    )
    epsilons = (0.5, 0.9)
    materialised = BatchFeatureEngine(config).sweep(clouds, epsilons)
    streamed = np.stack([block for _, block in BatchFeatureEngine(config).iter_sweep(clouds, epsilons)])
    assert np.array_equal(streamed, materialised)


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_iter_sweep_parallel_backends_match_serial(clouds, quantum_config, backend):
    epsilons = (0.4, 0.8)
    serial = np.stack([b for _, b in BatchFeatureEngine(quantum_config).iter_sweep(clouds, epsilons)])
    engine = BatchFeatureEngine(quantum_config, batch=BatchConfig(backend=backend, max_workers=2))
    parallel = np.stack([b for _, b in engine.iter_sweep(clouds, epsilons)])
    assert np.array_equal(serial, parallel)


def test_iter_sweep_empty_clouds(quantum_config):
    blocks = list(BatchFeatureEngine(quantum_config).iter_sweep([], (0.5, 0.9)))
    assert [eps for eps, _ in blocks] == [0.5, 0.9]
    assert all(block.shape == (0, 2) for _, block in blocks)


def test_iter_sweep_early_exit_is_cheap(clouds, quantum_config):
    """Consuming only the first scale must not compute the rest."""
    calls = []

    class CountingCache(SpectrumCache):
        def spectrum(self, laplacian):
            calls.append(1)
            return super().spectrum(laplacian)

    engine = BatchFeatureEngine(quantum_config, spectrum_cache=CountingCache())
    iterator = engine.iter_sweep(clouds, (0.4, 0.7, 1.0))
    next(iterator)
    first_scale_calls = len(calls)
    iterator.close()
    assert len(calls) == first_scale_calls  # nothing ran past the first yield
