"""Concurrency tests for QTDAService (ISSUE 4 satellite).

Three properties must hold under parallel submission:

1. parallel ``submit()``s share one :class:`SpectrumCache` safely (no
   corruption, answers bit-identical to serial execution);
2. identical requests are served from the result cache rather than
   recomputed;
3. per-request seeds make results reproducible regardless of completion
   order.
"""

import random

import numpy as np
import pytest

from repro.api import EstimationRequest, PipelineRequest, QTDAService
from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig
from repro.datasets.point_clouds import circle_cloud
from repro.experiments.worked_example import APPENDIX_SIMPLICES


def _estimate_request(seed: int, shots: int = 200) -> EstimationRequest:
    return EstimationRequest(
        simplices=APPENDIX_SIMPLICES,
        k=1,
        config=QTDAConfig(precision_qubits=4, shots=shots, seed=seed),
    )


def test_parallel_submits_share_spectrum_cache():
    """Many concurrent requests over the same Laplacian: one shared cache,
    bit-identical answers, and far fewer eigendecompositions than requests."""
    requests = [_estimate_request(seed) for seed in range(16)]
    with QTDAService(max_workers=8, result_cache_size=0) as service:
        serial_payloads = [QTDAService(result_cache_size=0).run(r).payload for r in requests]
        results = service.map(requests)
        stats = service.stats
    assert [r.payload for r in results] == serial_payloads
    # All 16 requests share one Laplacian; concurrent first touches may each
    # miss, but the shared cache must hold exactly the one spectrum.
    assert stats["spectrum_cache"]["entries"] == 1
    assert stats["spectrum_cache"]["hits"] >= len(requests) - stats["spectrum_cache"]["misses"]


def test_identical_requests_served_from_result_cache():
    request = _estimate_request(seed=5)
    with QTDAService(max_workers=4) as service:
        results = service.map([request] * 8)
        stats = service.stats
    payloads = [r.payload for r in results]
    assert all(p == payloads[0] for p in payloads)
    # At least the requests that arrived after the first completion must be
    # cache hits; all of them carry identical payloads either way.
    assert stats["result_cache_entries"] == 1
    assert stats["result_cache_hits"] >= 1
    assert any(r.provenance.result_cache_hit for r in results)


def test_seeds_reproducible_regardless_of_completion_order():
    """Shuffled parallel submission reproduces serial per-request results."""
    seeds = list(range(12))
    serial = {}
    for seed in seeds:
        serial[seed] = QTDAService().run(_estimate_request(seed)).payload

    rng = random.Random(3)
    for _ in range(3):
        shuffled = seeds[:]
        rng.shuffle(shuffled)
        requests = [_estimate_request(seed) for seed in shuffled]
        with QTDAService(max_workers=6, result_cache_size=0) as service:
            results = service.map(requests)
        for seed, result in zip(shuffled, results):
            assert result.payload == serial[seed], f"seed {seed} diverged under concurrency"
            assert result.provenance.seed == seed


def test_parallel_pipeline_requests_are_deterministic():
    clouds = [circle_cloud(9, seed=i) for i in range(4)]
    pipeline = PipelineConfig(epsilon=0.8, estimator=QTDAConfig(precision_qubits=3, shots=100, seed=21))
    request = PipelineRequest(point_clouds=clouds, pipeline=pipeline)
    reference = QTDAService().run(request).payload["features"]
    with QTDAService(max_workers=4, result_cache_size=0) as service:
        results = service.map([request] * 6)
    for result in results:
        assert np.array_equal(result.payload["features"], reference)


def test_concurrent_submit_during_streaming():
    """submit() and stream_sweep() may interleave on one service instance."""
    clouds = [circle_cloud(8, seed=i) for i in range(3)]
    pipeline = PipelineConfig(estimator=QTDAConfig(precision_qubits=3, shots=50, seed=2))
    from repro.api import SweepRequest

    sweep = SweepRequest(point_clouds=clouds, epsilons=(0.5, 0.8), pipeline=pipeline)
    with QTDAService(max_workers=2) as service:
        futures = [service.submit(_estimate_request(seed)) for seed in range(4)]
        streamed = list(service.stream_sweep(sweep))
        for future in futures:
            assert future.result(timeout=60).payload["betti_rounded"] == 1
    assert len(streamed) == 2
