"""Tests for the maximally-mixed-state preparation circuit (Fig. 2)."""

import numpy as np
import pytest

from repro.core.mixed_state import maximally_mixed_state_circuit, mixed_state_purification_qubits
from repro.quantum.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.quantum.statevector import StatevectorSimulator


def test_purification_qubit_count():
    assert mixed_state_purification_qubits(3) == 3
    with pytest.raises(ValueError):
        mixed_state_purification_qubits(0)


@pytest.mark.parametrize("q", [1, 2, 3])
def test_system_register_is_maximally_mixed(q):
    """Tracing out the auxiliaries of the Fig. 2 circuit leaves I/2^q (its defining property)."""
    circ = maximally_mixed_state_circuit(q)
    rho = DensityMatrixSimulator().run(circ)
    system = rho.partial_trace(list(range(q)))
    assert np.allclose(system.matrix, np.eye(2**q) / 2**q, atol=1e-10)


def test_auxiliary_register_also_maximally_mixed():
    circ = maximally_mixed_state_circuit(2)
    rho = DensityMatrixSimulator().run(circ)
    aux = rho.partial_trace([2, 3])
    assert np.allclose(aux.matrix, np.eye(4) / 4, atol=1e-10)


def test_gate_structure_matches_figure_2():
    """q Hadamards on the auxiliaries and q CNOTs onto the system qubits."""
    circ = maximally_mixed_state_circuit(3)
    counts = circ.count_ops()
    assert counts == {"H": 3, "CNOT": 3}
    for gate in circ.gates:
        if gate.name == "CNOT":
            control, target = gate.qubits
            assert control >= 3 and target < 3  # auxiliary controls, system target


def test_offsets_and_total_qubits():
    circ = maximally_mixed_state_circuit(2, system_offset=3, auxiliary_offset=5, total_qubits=8)
    assert circ.num_qubits == 8
    touched = {q for gate in circ.gates for q in gate.qubits}
    assert touched == {3, 4, 5, 6}


def test_overlapping_registers_rejected():
    with pytest.raises(ValueError):
        maximally_mixed_state_circuit(2, system_offset=0, auxiliary_offset=1)
    with pytest.raises(ValueError):
        maximally_mixed_state_circuit(2, total_qubits=3)


def test_state_is_uniform_superposition_of_bell_pairs():
    """On the full register the state is pure with uniform marginals on the system."""
    circ = maximally_mixed_state_circuit(1)
    state = StatevectorSimulator().run(circ)
    # (|00> + |11>)/sqrt(2) on (system, auxiliary) in some ordering.
    probs = state.probabilities()
    assert np.allclose(np.sort(probs), [0, 0, 0.5, 0.5], atol=1e-10)
    rho = DensityMatrix.from_statevector(state)
    assert rho.partial_trace([0]).purity() == pytest.approx(0.5)
