"""Tests for the service-grade front door (repro.core.api / repro.api).

Covers the request layer (validation, immutability, hashability, wire-format
round trips), the result envelope (schema validation, JSON emission) and —
most importantly — the acceptance criterion that every legacy entry point is
expressible as a request and produces bit-identical numerics through the
service.
"""

import json

import numpy as np
import pytest

from repro.api import (
    SCHEMA_VERSION,
    EstimationRequest,
    EstimationResult,
    ExperimentRequest,
    ObserveRequest,
    PipelineRequest,
    QTDAService,
    SweepRequest,
    deterministic_request,
    request_from_dict,
)
from repro.core.batch import BatchConfig, BatchFeatureEngine
from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator
from repro.core.pipeline import PipelineConfig, QTDAPipeline
from repro.datasets.point_clouds import circle_cloud
from repro.experiments.worked_example import APPENDIX_SIMPLICES
from repro.tda.complexes import SimplicialComplex

TRIANGLE = ((0,), (1,), (2,), (0, 1), (0, 2), (1, 2))


@pytest.fixture
def clouds():
    return [circle_cloud(10, seed=i) for i in range(3)]


@pytest.fixture
def quantum_pipeline():
    return PipelineConfig(
        epsilon=0.8, estimator=QTDAConfig(precision_qubits=3, shots=100, seed=3)
    )


# -- request layer --------------------------------------------------------------


class TestRequestValidation:
    def test_exactly_one_geometry_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            EstimationRequest(k=1)
        with pytest.raises(ValueError, match="exactly one"):
            EstimationRequest(k=1, simplices=TRIANGLE, points=((0.0, 0.0),), epsilon=1.0)

    def test_points_require_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            EstimationRequest(k=1, points=((0.0, 0.0), (1.0, 0.0)))

    def test_simplices_reject_cloud_only_fields(self):
        with pytest.raises(ValueError, match="point-cloud"):
            EstimationRequest(k=1, simplices=TRIANGLE, epsilon=1.0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            EstimationRequest(k=-1, simplices=TRIANGLE)

    def test_config_mapping_coerced(self):
        request = EstimationRequest(simplices=TRIANGLE, config={"shots": 5, "seed": 1})
        assert isinstance(request.config, QTDAConfig)
        assert request.config.shots == 5

    def test_geometry_normalised_to_tuples(self):
        request = EstimationRequest(
            k=1, points=np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]]), epsilon=1.5
        )
        assert isinstance(request.points, tuple)
        assert all(isinstance(row, tuple) for row in request.points)

    def test_sweep_requires_epsilons(self):
        with pytest.raises(ValueError, match="epsilons"):
            SweepRequest(point_clouds=[circle_cloud(6, seed=0)], epsilons=())

    def test_pipeline_include_exact_needs_clouds(self):
        series = np.vstack([np.sin(np.linspace(0, 7, 40))] * 2)
        with pytest.raises(ValueError, match="include_exact"):
            PipelineRequest(time_series=series, include_exact=True)

    def test_experiment_name_validated(self):
        with pytest.raises(ValueError, match="experiment"):
            ExperimentRequest(experiment="fig99")

    def test_requests_are_frozen(self):
        request = EstimationRequest(simplices=TRIANGLE)
        with pytest.raises(AttributeError):
            request.k = 2


class TestRequestHashingAndRoundTrip:
    def test_hashable_and_equal(self):
        a = EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 7})
        b = EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 7})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_fingerprint_distinguishes_requests(self):
        a = EstimationRequest(simplices=TRIANGLE, k=0)
        b = EstimationRequest(simplices=TRIANGLE, k=1)
        assert a.fingerprint() != b.fingerprint()

    @pytest.mark.parametrize("build", [
        lambda: EstimationRequest(simplices=APPENDIX_SIMPLICES, k=1, config={"shots": 10, "seed": 2}),
        lambda: EstimationRequest(points=circle_cloud(8, seed=1), epsilon=0.9, k=1),
        lambda: PipelineRequest(
            point_clouds=[circle_cloud(6, seed=0)],
            epsilon=0.7,
            pipeline=PipelineConfig(estimator=QTDAConfig(seed=4)),
        ),
        lambda: SweepRequest(
            point_clouds=[circle_cloud(6, seed=0)],
            epsilons=(0.4, 0.8),
            pipeline=PipelineConfig(use_quantum=False),
        ),
        lambda: ExperimentRequest(
            experiment="timeseries",
            params={"num_samples_per_class": 2, "batch": BatchConfig().as_dict()},
        ),
        lambda: ObserveRequest(
            samples=np.sin(np.linspace(0.0, 4.0, 32)),
            session="wire-test",
            window_length=16,
            stride=4,
            epsilons=(0.3, 0.6),
            pipeline=PipelineConfig(estimator=QTDAConfig(seed=5)),
        ),
        # Noise-rich config: per-gate strength overrides (pairs on the wire),
        # two-qubit channel, readout error, trajectory count.
        lambda: EstimationRequest(
            simplices=TRIANGLE,
            k=1,
            config=QTDAConfig(
                precision_qubits=2,
                shots=20,
                backend="statevector",
                circuit_engine="trajectory",
                noise_channel="depolarizing",
                noise_strength=0.01,
                noise_gate_strengths=(("h", 0.02), ("cp", 0.005)),
                noise_two_qubit_channel="two-qubit-depolarizing",
                noise_two_qubit_strength=0.03,
                readout_error=0.01,
                n_trajectories=4,
                seed=2,
            ),
        ),
        # Sharded/device config: the devices tuple must survive the wire.
        lambda: EstimationRequest(
            simplices=TRIANGLE,
            k=1,
            config=QTDAConfig(shards=2, shard_backend="device", devices=(0, 1), seed=3),
        ),
    ])
    def test_wire_format_round_trip(self, build):
        """as_dict -> actual JSON bytes -> from_dict preserves equality and fingerprint.

        The serialisation goes through real ``bytes`` (encode/decode), the
        path an HTTP body takes — not just ``json.dumps``/``loads`` — so any
        type JSON cannot represent fails here rather than in production.
        """
        request = build()
        wire = json.dumps(request.as_dict()).encode("utf-8")
        data = json.loads(wire.decode("utf-8"))
        assert data["schema_version"] == SCHEMA_VERSION
        rebuilt = request_from_dict(data)
        assert rebuilt == request
        assert rebuilt.fingerprint() == request.fingerprint()
        # And the round trip is idempotent: re-serialising produces the
        # byte-identical document (canonical field ordering, exact floats).
        assert json.dumps(rebuilt.as_dict()).encode("utf-8") == wire

    def test_float64_values_survive_json_bytes_exactly(self):
        """Awkward float64s (1/3, 1e-17, big magnitudes) round-trip exactly —
        JSON's repr-based emission is shortest-round-trip, so byte-level
        equality over HTTP is a sound assertion for the serve layer."""
        cloud = np.array(
            [[1.0 / 3.0, 2.0 / 7.0], [1e-17, 1e17], [np.pi, -np.e], [0.1 + 0.2, 0.0]]
        )
        request = EstimationRequest(points=cloud, epsilon=1.0 / 3.0, k=1)
        wire = json.dumps(request.as_dict()).encode("utf-8")
        rebuilt = request_from_dict(json.loads(wire.decode("utf-8")))
        assert rebuilt.points == request.points  # exact, not approximate
        assert rebuilt.epsilon == request.epsilon

    def test_noise_gate_strengths_normalise_identically_from_wire(self):
        """Mapping and pair-sequence spellings of noise_gate_strengths are the
        same request (same fingerprint) and survive JSON, which only has the
        pair-free object spelling."""
        as_pairs = EstimationRequest(
            simplices=TRIANGLE,
            config=QTDAConfig(noise_channel="depolarizing", noise_gate_strengths=(("h", 0.02),), seed=1),
        )
        as_mapping = EstimationRequest(
            simplices=TRIANGLE,
            config=QTDAConfig(noise_channel="depolarizing", noise_gate_strengths={"h": 0.02}, seed=1),
        )
        assert as_pairs == as_mapping
        assert as_pairs.fingerprint() == as_mapping.fingerprint()
        rebuilt = request_from_dict(json.loads(json.dumps(as_pairs.as_dict())))
        assert rebuilt.config.noise_gate_strengths == {"h": 0.02}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            request_from_dict({"kind": "nope"})

    def test_future_schema_version_rejected(self):
        data = EstimationRequest(simplices=TRIANGLE).as_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            request_from_dict(data)


# -- bit-identity with the legacy entry points ----------------------------------


class TestLegacyEquivalence:
    def test_estimator_entry_point(self):
        """QTDABettiEstimator.estimate == service.run(EstimationRequest)."""
        config = QTDAConfig(precision_qubits=4, shots=500, seed=7)
        legacy = QTDABettiEstimator(config).estimate(SimplicialComplex(APPENDIX_SIMPLICES), 1)
        with QTDAService() as service:
            result = service.run(
                EstimationRequest(simplices=APPENDIX_SIMPLICES, k=1, config=config)
            )
        assert result.payload == legacy.as_dict()

    def test_pipeline_entry_point(self, clouds, quantum_pipeline):
        """QTDAPipeline.transform_point_clouds == service.run(PipelineRequest)."""
        legacy = BatchFeatureEngine(quantum_pipeline).transform_point_clouds(clouds)
        shim = QTDAPipeline(quantum_pipeline).transform_point_clouds(clouds)
        with QTDAService() as service:
            result = service.run(
                PipelineRequest(point_clouds=clouds, pipeline=quantum_pipeline)
            )
        assert np.array_equal(result.payload["features"], legacy)
        assert np.array_equal(shim, legacy)

    def test_pipeline_time_series_entry_point(self, quantum_pipeline):
        series = np.vstack([np.sin(np.linspace(0, 4 * np.pi, 60)) + 0.1 * i for i in range(3)])
        legacy = BatchFeatureEngine(quantum_pipeline).transform_time_series(series)
        shim = QTDAPipeline(quantum_pipeline).transform_time_series(series)
        with QTDAService() as service:
            result = service.run(
                PipelineRequest(time_series=series, pipeline=quantum_pipeline)
            )
        assert np.array_equal(result.payload["features"], legacy)
        assert np.array_equal(shim, legacy)

    def test_batch_sweep_entry_point(self, clouds, quantum_pipeline):
        """BatchFeatureEngine.sweep == service.run(SweepRequest)."""
        epsilons = (0.5, 0.8, 1.1)
        legacy = BatchFeatureEngine(quantum_pipeline).sweep(clouds, epsilons)
        with QTDAService() as service:
            result = service.run(
                SweepRequest(point_clouds=clouds, epsilons=epsilons, pipeline=quantum_pipeline)
            )
        assert np.array_equal(result.payload["features"], legacy)

    def test_features_and_exact_entry_point(self, clouds, quantum_pipeline):
        estimated, exact = BatchFeatureEngine(quantum_pipeline).features_and_exact(clouds)
        with QTDAService() as service:
            result = service.run(
                PipelineRequest(point_clouds=clouds, include_exact=True, pipeline=quantum_pipeline)
            )
        assert np.array_equal(result.payload["features"], estimated)
        assert np.array_equal(result.payload["exact"], exact)

    def test_experiment_driver_entry_point(self):
        """run_timeseries_classification == service.run(ExperimentRequest)."""
        from repro.experiments.gearbox_table1 import run_timeseries_classification

        params = {
            "num_samples_per_class": 3,
            "window_length": 200,
            "takens_stride": 24,
            "use_quantum": False,
            "seed": 7,
        }
        legacy = run_timeseries_classification(**params)
        with QTDAService() as service:
            result = service.run(ExperimentRequest(experiment="timeseries", params=params))
        assert result.payload["training_accuracy"] == legacy.training_accuracy
        assert result.payload["validation_accuracy"] == legacy.validation_accuracy
        assert result.payload["epsilon"] == legacy.epsilon
        assert "report" in result.payload


# -- streaming sweeps -----------------------------------------------------------


class TestStreamSweep:
    def test_stream_matches_materialised_sweep(self, clouds, quantum_pipeline):
        epsilons = (0.5, 0.8, 1.1)
        request = SweepRequest(point_clouds=clouds, epsilons=epsilons, pipeline=quantum_pipeline)
        with QTDAService() as service:
            full = service.run(request)
            streamed = list(service.stream_sweep(request))
        assert [r.payload["epsilon"] for r in streamed] == list(epsilons)
        stacked = np.stack([r.payload["features"] for r in streamed])
        assert np.array_equal(stacked, full.payload["features"])

    def test_stream_is_incremental(self, clouds, quantum_pipeline):
        """Results arrive one scale at a time; early exit skips later work."""
        request = SweepRequest(
            point_clouds=clouds, epsilons=(0.5, 0.8, 1.1), pipeline=quantum_pipeline
        )
        with QTDAService() as service:
            stream = service.stream_sweep(request)
            first = next(stream)
            assert first.payload["epsilon_index"] == 0
            assert first.payload["num_epsilons"] == 3
            assert first.payload["features"].shape == (len(clouds), 2)
            stream.close()  # abandoning mid-sweep must not raise

    def test_stream_provenance_populated(self, clouds, quantum_pipeline):
        request = SweepRequest(point_clouds=clouds, epsilons=(0.5, 0.9), pipeline=quantum_pipeline)
        with QTDAService() as service:
            for result in service.stream_sweep(request):
                provenance = result.provenance
                assert provenance.backend == "exact"
                assert provenance.operator_format in ("dense", "sparse")
                assert provenance.request_fingerprint == request.fingerprint()
                assert provenance.wall_time_s >= 0.0
                assert provenance.seed == 3

    def test_stream_rejects_non_sweep_requests(self):
        with QTDAService() as service:
            with pytest.raises(TypeError, match="SweepRequest"):
                next(service.stream_sweep(EstimationRequest(simplices=TRIANGLE)))


# -- the result envelope --------------------------------------------------------


class TestResultEnvelope:
    def test_provenance_fields(self):
        config = QTDAConfig(precision_qubits=3, shots=None, seed=11, backend="stochastic-trace")
        with QTDAService() as service:
            result = service.run(EstimationRequest(simplices=APPENDIX_SIMPLICES, k=1, config=config))
        provenance = result.provenance
        assert provenance.backend == "stochastic-trace"
        assert provenance.operator_format == "sparse"
        assert provenance.seed == 11
        assert provenance.betti_std is not None and provenance.betti_std > 0
        assert provenance.wall_time_s > 0
        assert not provenance.result_cache_hit

    def test_json_emission_validates(self):
        with QTDAService() as service:
            result = service.run(EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 5}))
        data = json.loads(result.to_json())
        EstimationResult.validate_dict(data)  # must not raise

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.pop("schema_version"), "schema_version"),
        (lambda d: d.update(kind="nope"), "kind"),
        (lambda d: d.update(payload=[1, 2]), "payload"),
        (lambda d: d["provenance"].pop("backend"), "missing"),
        (lambda d: d["provenance"].update(request_fingerprint="0" * 64), "fingerprint"),
    ])
    def test_schema_violations_rejected(self, mutate, match):
        with QTDAService() as service:
            result = service.run(EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 5}))
        data = json.loads(result.to_json())
        mutate(data)
        with pytest.raises(ValueError, match=match):
            EstimationResult.validate_dict(data)

    def test_spectrum_cache_deltas_surface(self):
        request = EstimationRequest(simplices=APPENDIX_SIMPLICES, k=1, config={"seed": 1})
        with QTDAService(result_cache_size=0) as service:
            first = service.run(request)
            second = service.run(request)
        assert first.provenance.cache_misses >= 1
        assert second.provenance.cache_hits >= 1
        assert second.provenance.cache_misses == 0


# -- service behaviour ----------------------------------------------------------


class TestServiceBehaviour:
    def test_result_cache_serves_identical_requests(self):
        request = EstimationRequest(simplices=TRIANGLE, k=1, config={"shots": 50, "seed": 9})
        with QTDAService() as service:
            first = service.run(request)
            second = service.run(request)
            assert not first.provenance.result_cache_hit
            assert second.provenance.result_cache_hit
            assert second.payload == first.payload
            assert service.stats["result_cache_hits"] == 1

    def test_unseeded_requests_bypass_result_cache(self):
        request = EstimationRequest(simplices=TRIANGLE, k=1, config={"shots": 50, "seed": None})
        with QTDAService() as service:
            service.run(request)
            second = service.run(request)
        assert not second.provenance.result_cache_hit

    def test_classical_pipeline_is_cacheable_without_seed(self, clouds):
        request = PipelineRequest(
            point_clouds=clouds, pipeline=PipelineConfig(epsilon=0.8, use_quantum=False)
        )
        with QTDAService() as service:
            service.run(request)
            assert service.run(request).provenance.result_cache_hit

    def test_map_preserves_request_order(self, clouds, quantum_pipeline):
        requests = [
            EstimationRequest(simplices=TRIANGLE, k=0, config={"seed": 1}),
            PipelineRequest(point_clouds=clouds, pipeline=quantum_pipeline),
            EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 1}),
        ]
        with QTDAService(max_workers=3) as service:
            results = service.map(requests)
        assert [r.request for r in results] == requests
        assert results[0].payload["betti_rounded"] == 1  # β_0 of the hollow triangle
        assert results[2].payload["betti_rounded"] == 1  # β_1

    def test_submit_returns_future(self):
        request = EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 2})
        with QTDAService() as service:
            future = service.submit(request)
            result = future.result(timeout=30)
        assert result.payload["betti_rounded"] == 1

    def test_closed_service_rejects_submissions(self):
        service = QTDAService()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(EstimationRequest(simplices=TRIANGLE))

    def test_run_rejects_non_requests(self):
        with QTDAService() as service:
            with pytest.raises(TypeError):
                service.run({"kind": "estimate"})

    def test_run_dict_wire_entry_point(self):
        request = EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 3})
        with QTDAService() as service:
            result = service.run_dict(json.loads(json.dumps(request.as_dict())))
        assert result.payload["betti_rounded"] == 1


class TestCacheIsolation:
    def test_cached_payload_arrays_are_not_aliased(self, clouds):
        """Mutating a returned feature matrix must not corrupt later cache hits."""
        pipeline = PipelineConfig(epsilon=0.8, use_quantum=False)
        request = PipelineRequest(point_clouds=clouds, pipeline=pipeline)
        with QTDAService() as service:
            first = service.run(request)
            pristine = first.payload["features"].copy()
            first.payload["features"] *= 100.0  # caller-side in-place scaling
            second = service.run(request)
        assert second.provenance.result_cache_hit
        assert np.array_equal(second.payload["features"], pristine)
        assert second.payload["features"] is not first.payload["features"]

    def test_pipeline_shim_returns_fresh_arrays(self, clouds, quantum_pipeline):
        pipeline = QTDAPipeline(quantum_pipeline)
        first = pipeline.transform_point_clouds(clouds)
        pristine = first.copy()
        first *= 100.0
        second = pipeline.transform_point_clouds(clouds)
        assert np.array_equal(second, pristine)


class TestExperimentParamValidation:
    def test_fig3_paper_scale_rejects_unknown_params(self):
        with QTDAService() as service:
            with pytest.raises(TypeError, match="backend"):
                service.run(
                    ExperimentRequest(
                        experiment="fig3", params={"paper_scale": True, "shot_grid": (10,)}
                    )
                )

    def test_classical_timeseries_provenance_backend(self):
        params = {
            "num_samples_per_class": 2,
            "window_length": 200,
            "takens_stride": 24,
            "use_quantum": False,
        }
        with QTDAService() as service:
            result = service.run(ExperimentRequest(experiment="timeseries", params=params))
        assert result.provenance.backend == "classical-exact"


class TestUnserialisableConfigs:
    def test_shim_works_with_explicit_noise_model(self, clouds):
        """Legacy call sites with a noise_model object keep working (shim policy):
        such requests execute fine, they are just uncacheable/unserialisable."""
        from repro.quantum.noise import NoiseModel

        config = PipelineConfig(
            epsilon=0.8,
            estimator=QTDAConfig(
                precision_qubits=2,
                shots=50,
                backend="noisy-density",
                noise_model=NoiseModel.from_channel("depolarizing", 0.01),
                seed=1,
            ),
        )
        legacy = BatchFeatureEngine(config).transform_point_clouds(clouds[:1])
        shim = QTDAPipeline(config).transform_point_clouds(clouds[:1])
        assert np.array_equal(shim, legacy)

    def test_service_runs_unserialisable_request_uncached(self, clouds):
        from repro.quantum.noise import NoiseModel

        config = PipelineConfig(
            epsilon=0.8,
            estimator=QTDAConfig(
                precision_qubits=2,
                shots=50,
                backend="noisy-density",
                noise_model=NoiseModel.from_channel("depolarizing", 0.01),
                seed=1,
            ),
        )
        request = PipelineRequest(point_clouds=clouds[:1], pipeline=config)
        with QTDAService() as service:
            first = service.run(request)
            second = service.run(request)
        assert first.provenance.request_fingerprint == ""
        assert not second.provenance.result_cache_hit
        assert np.array_equal(first.payload["features"], second.payload["features"])

    def test_experiment_batch_none_uses_defaults(self):
        params = {
            "num_rows": 16,
            "num_healthy": 6,
            "precision_grid": (2,),
            "batch": None,
            "seed": 5,
        }
        with QTDAService() as service:
            result = service.run(ExperimentRequest(experiment="table1", params=params))
        assert result.payload["rows"][0]["precision_qubits"] == 2


def test_unserialisable_request_is_still_hashable():
    """hash() must not raise for noise_model-bearing requests (set/dict use)."""
    from repro.quantum.noise import NoiseModel

    config = QTDAConfig(
        backend="noisy-density",
        noise_model=NoiseModel.from_channel("depolarizing", 0.01),
    )
    request = EstimationRequest(simplices=TRIANGLE, config=config)
    assert isinstance(hash(request), int)
    assert request in {request}
    with pytest.raises(ValueError):
        request.fingerprint()


def test_fingerprint_is_memoised():
    request = EstimationRequest(simplices=TRIANGLE, config={"seed": 1})
    assert request.fingerprint() is request.fingerprint()


def test_appendix_json_carries_requested_drawing():
    params = {"shots": 50, "include_drawing": True, "seed": 1, "backend": "exact"}
    with QTDAService() as service:
        result = service.run(ExperimentRequest(experiment="appendix", params=params))
    assert isinstance(result.payload["circuit_drawing"], str)
    assert result.payload["circuit_drawing"].strip()


def test_unversioned_request_dict_rejected():
    """Documents without schema_version are rejected, never assumed current."""
    data = EstimationRequest(simplices=TRIANGLE).as_dict()
    del data["schema_version"]
    with pytest.raises(ValueError, match="schema_version"):
        request_from_dict(data)


def test_request_isolated_from_caller_config_mutation():
    """Mutating the caller's config after building a request must not change
    the request (or its memoised fingerprint / cache identity)."""
    config = QTDAConfig(shots=100, seed=1)
    request = EstimationRequest(simplices=TRIANGLE, config=config)
    before = request.fingerprint()
    config.shots = 10000
    assert request.config.shots == 100
    assert request.fingerprint() == before
    fresh = EstimationRequest(simplices=TRIANGLE, config=config)
    assert fresh.fingerprint() != before


def test_stream_sweep_validates_eagerly():
    """The type check fires at the call site, not at first iteration."""
    with QTDAService() as service:
        with pytest.raises(TypeError, match="SweepRequest"):
            service.stream_sweep(EstimationRequest(simplices=TRIANGLE))


# -- reuse predicate, geometry fingerprint, service lifecycle -------------------


class TestDeterministicRequest:
    def test_seeded_estimation_is_deterministic(self):
        assert deterministic_request(EstimationRequest(simplices=TRIANGLE, config={"seed": 1}))

    def test_unseeded_estimation_is_not(self):
        assert not deterministic_request(EstimationRequest(simplices=TRIANGLE, config={"seed": None}))

    def test_classical_pipeline_is_deterministic_without_seed(self, clouds):
        request = PipelineRequest(
            point_clouds=clouds, pipeline=PipelineConfig(epsilon=0.8, use_quantum=False)
        )
        assert deterministic_request(request)

    def test_observe_is_never_deterministic(self):
        request = ObserveRequest(
            session="s", window_length=8, epsilons=(0.5,),
            pipeline=PipelineConfig(estimator=QTDAConfig(seed=1)),
        )
        assert not deterministic_request(request)

    def test_experiment_with_explicit_none_seed_is_not(self):
        assert not deterministic_request(
            ExperimentRequest(experiment="fig3", params={"seed": None})
        )
        assert deterministic_request(ExperimentRequest(experiment="fig3", params={}))

    def test_matches_service_result_cache_behaviour(self):
        """The predicate and the result cache must never disagree."""
        seeded = EstimationRequest(simplices=TRIANGLE, k=1, config={"shots": 20, "seed": 9})
        unseeded = EstimationRequest(simplices=TRIANGLE, k=1, config={"shots": 20, "seed": None})
        with QTDAService() as service:
            service.run(seeded)
            service.run(unseeded)
            assert service.run(seeded).provenance.result_cache_hit == deterministic_request(seeded)
            assert (
                service.run(unseeded).provenance.result_cache_hit
                == deterministic_request(unseeded)
            )


class TestGeometryFingerprint:
    def test_same_geometry_different_config_share_fingerprint(self):
        a = EstimationRequest(simplices=TRIANGLE, k=1, config={"shots": 10, "seed": 1})
        b = EstimationRequest(simplices=TRIANGLE, k=1, config={"shots": 9999, "seed": 2})
        assert a.fingerprint() != b.fingerprint()
        assert a.geometry_fingerprint() == b.geometry_fingerprint()

    def test_different_geometry_differs(self):
        a = EstimationRequest(simplices=TRIANGLE)
        b = EstimationRequest(simplices=APPENDIX_SIMPLICES)
        c = EstimationRequest(points=circle_cloud(8, seed=1), epsilon=0.9)
        assert len({a.geometry_fingerprint(), b.geometry_fingerprint(), c.geometry_fingerprint()}) == 3

    def test_unserialisable_config_does_not_break_geometry_hash(self):
        """The geometry fingerprint ignores the config, so requests whose
        config cannot serialise still group by geometry."""
        from repro.quantum.noise import NoiseModel

        config = QTDAConfig(
            backend="noisy-density", noise_model=NoiseModel.from_channel("depolarizing", 0.01)
        )
        request = EstimationRequest(simplices=TRIANGLE, config=config)
        assert request.geometry_fingerprint() == EstimationRequest(simplices=TRIANGLE).geometry_fingerprint()

    def test_memoised(self):
        request = EstimationRequest(simplices=TRIANGLE)
        assert request.geometry_fingerprint() is request.geometry_fingerprint()


class TestServiceLifecycle:
    def test_close_is_idempotent(self):
        service = QTDAService()
        service.run(EstimationRequest(simplices=TRIANGLE, k=1, config={"seed": 1}))
        service.close()
        service.close()  # second close must be a no-op, not an error
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(EstimationRequest(simplices=TRIANGLE))

    def test_services_registered_for_atexit_until_closed(self):
        import repro.core.api as api_module

        service = QTDAService()
        # The hook is registered lazily, on first service construction.
        assert api_module._ATEXIT_REGISTERED
        assert service in api_module._LIVE_SERVICES
        service.close()
        assert service not in api_module._LIVE_SERVICES

    def test_atexit_hook_closes_leaked_services(self):
        from repro.core.api import _LIVE_SERVICES, _close_live_services

        service = QTDAService()
        try:
            _close_live_services()  # what the interpreter-exit hook runs
            assert service not in _LIVE_SERVICES
            with pytest.raises(RuntimeError, match="closed"):
                service.submit(EstimationRequest(simplices=TRIANGLE))
        finally:
            service.close()


def test_result_envelope_through_json_bytes():
    """The full envelope survives actual JSON bytes and re-validates."""
    request = EstimationRequest(simplices=TRIANGLE, k=1, config={"shots": 50, "seed": 5})
    with QTDAService() as service:
        result = service.run(request)
    wire = json.dumps(result.as_dict()).encode("utf-8")
    data = json.loads(wire.decode("utf-8"))
    EstimationResult.validate_dict(data)
    assert data["payload"]["betti_estimate"] == result.payload["betti_estimate"]
    assert data["provenance"]["request_fingerprint"] == request.fingerprint()
