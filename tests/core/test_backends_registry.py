"""Tests for the pluggable backend registry (repro.core.backends)."""

import numpy as np
import pytest

from repro.core.backends import (
    BackendResult,
    EstimationProblem,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator

BUILTIN_BACKENDS = {"exact", "sparse-exact", "statevector", "trotter", "noisy-density"}


class _ConstantBackend:
    """Minimal protocol implementation used by the extension tests."""

    name = "test-constant"
    description = "returns a fixed distribution"
    prefers_sparse = False

    def run(self, problem, config, rng):
        distribution = np.zeros(2**config.precision_qubits)
        distribution[0] = 1.0
        return BackendResult(
            distribution=distribution,
            num_system_qubits=max(1, int(np.ceil(np.log2(problem.dimension)))),
            lambda_max=1.0,
        )


def test_builtin_backends_are_registered():
    assert BUILTIN_BACKENDS <= set(available_backends())


def test_available_backends_is_sorted():
    names = available_backends()
    assert list(names) == sorted(names)


def test_unknown_backend_error_lists_available_names():
    with pytest.raises(ValueError) as excinfo:
        get_backend("qiskit")
    message = str(excinfo.value)
    assert "qiskit" in message
    for name in BUILTIN_BACKENDS:
        assert name in message


def test_config_rejects_unknown_backend_with_available_list():
    with pytest.raises(ValueError, match="sparse-exact"):
        QTDAConfig(backend="definitely-not-a-backend")


def test_reregistering_a_name_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("exact", _ConstantBackend())


def test_register_rejects_objects_without_run():
    with pytest.raises(TypeError, match="run"):
        register_backend("broken", object())


def test_register_rejects_incomplete_protocol():
    """Consumers read description/prefers_sparse without fallbacks, so a
    backend missing them must fail at registration, not mid-estimate."""

    class _NoSparseFlag:
        description = "missing prefers_sparse"

        def run(self, problem, config, rng):  # pragma: no cover - never called
            raise NotImplementedError

    with pytest.raises(TypeError, match="prefers_sparse"):
        register_backend("broken", _NoSparseFlag())


def test_register_rejects_empty_name():
    with pytest.raises(ValueError):
        register_backend("", _ConstantBackend())


def test_unregister_unknown_name_raises():
    with pytest.raises(ValueError, match="available backends"):
        unregister_backend("never-registered")


def test_custom_backend_round_trip(hollow_triangle):
    """A registered third-party backend is usable from config + estimator."""
    backend = _ConstantBackend()
    register_backend(backend.name, backend)
    try:
        assert backend.name in available_backends()
        estimator = QTDABettiEstimator(precision_qubits=3, shots=None, backend=backend.name)
        estimate = estimator.estimate(hollow_triangle, 1)
        # p(0) = 1 and the hollow triangle's Δ_1 is 3x3 -> q = 2.
        assert estimate.p_zero == 1.0
        assert estimate.betti_estimate == 4.0
        assert estimate.backend == backend.name
    finally:
        unregister_backend(backend.name)
    assert backend.name not in available_backends()


def test_estimation_problem_views(appendix_k):
    from scipy import sparse

    from repro.tda.laplacian import combinatorial_laplacian

    laplacian = combinatorial_laplacian(appendix_k, 1, sparse_format=True)
    problem = EstimationProblem(laplacian=laplacian)
    assert problem.is_sparse
    assert problem.dimension == 6
    hamiltonian = problem.dense_hamiltonian(QTDAConfig(delta=6.0))
    assert hamiltonian.num_qubits == 3
    assert not sparse.issparse(hamiltonian.matrix)


def test_estimator_exposes_resolved_backend():
    estimator = QTDABettiEstimator(backend="sparse-exact")
    assert estimator.backend.name == "sparse-exact"
    assert estimator.backend.prefers_sparse
