"""Tests for the pluggable backend registry (repro.core.backends)."""

import numpy as np
import pytest

from repro.core.backends import (
    BackendResult,
    EstimationProblem,
    available_backends,
    backend_formats,
    backend_supports_noise,
    get_backend,
    preferred_format,
    register_backend,
    temporary_backend,
    unregister_backend,
)
from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator

BUILTIN_BACKENDS = {
    "exact",
    "sparse-exact",
    "stochastic-trace",
    "statevector",
    "trotter",
    "noisy-density",
}


class _ConstantBackend:
    """Minimal protocol implementation used by the extension tests."""

    name = "test-constant"
    description = "returns a fixed distribution"
    prefers_sparse = False

    def run(self, problem, config, rng):
        distribution = np.zeros(2**config.precision_qubits)
        distribution[0] = 1.0
        return BackendResult(
            distribution=distribution,
            num_system_qubits=max(1, int(np.ceil(np.log2(problem.dimension)))),
            lambda_max=1.0,
        )


def test_builtin_backends_are_registered():
    assert BUILTIN_BACKENDS <= set(available_backends())


def test_available_backends_is_sorted():
    names = available_backends()
    assert list(names) == sorted(names)


def test_unknown_backend_error_lists_available_names():
    with pytest.raises(ValueError) as excinfo:
        get_backend("qiskit")
    message = str(excinfo.value)
    assert "qiskit" in message
    for name in BUILTIN_BACKENDS:
        assert name in message


def test_config_rejects_unknown_backend_with_available_list():
    with pytest.raises(ValueError, match="sparse-exact"):
        QTDAConfig(backend="definitely-not-a-backend")


def test_reregistering_a_name_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("exact", _ConstantBackend())


def test_register_rejects_objects_without_run():
    with pytest.raises(TypeError, match="run"):
        register_backend("broken", object())


def test_register_rejects_incomplete_protocol():
    """A backend declaring neither supported_formats nor the legacy
    prefers_sparse flag must fail at registration, not mid-estimate."""

    class _NoFormatDeclaration:
        description = "missing any format declaration"

        def run(self, problem, config, rng):  # pragma: no cover - never called
            raise NotImplementedError

    with pytest.raises(TypeError, match="prefers_sparse"):
        register_backend("broken", _NoFormatDeclaration())


def test_register_accepts_supported_formats_without_legacy_flag(hollow_triangle):
    """A backend written purely against the new format API registers fine."""

    class _FormatsOnly:
        name = "test-formats-only"
        description = "declares supported_formats, no prefers_sparse"
        supported_formats = ("dense",)

        def run(self, problem, config, rng):
            distribution = np.zeros(2**config.precision_qubits)
            distribution[0] = 1.0
            return BackendResult(
                distribution=distribution,
                num_system_qubits=max(1, int(np.ceil(np.log2(problem.dimension)))),
                lambda_max=1.0,
            )

    backend = _FormatsOnly()
    with temporary_backend(backend.name, backend):
        assert preferred_format(backend) == "dense"
        estimate = QTDABettiEstimator(
            precision_qubits=3, shots=None, backend=backend.name
        ).estimate(hollow_triangle, 1)
        assert estimate.p_zero == 1.0


def test_register_validates_declared_format_names_eagerly():
    class _BadDeclaration(_ConstantBackend):
        supported_formats = ("dense", "holographic")

    with pytest.raises(ValueError, match="holographic"):
        register_backend("broken-formats", _BadDeclaration())
    assert "broken-formats" not in available_backends()


def test_register_rejects_empty_name():
    with pytest.raises(ValueError):
        register_backend("", _ConstantBackend())


def test_unregister_unknown_name_raises():
    with pytest.raises(ValueError, match="available backends"):
        unregister_backend("never-registered")


def test_custom_backend_round_trip(hollow_triangle):
    """A registered third-party backend is usable from config + estimator."""
    backend = _ConstantBackend()
    with temporary_backend(backend.name, backend):
        assert backend.name in available_backends()
        estimator = QTDABettiEstimator(precision_qubits=3, shots=None, backend=backend.name)
        estimate = estimator.estimate(hollow_triangle, 1)
        # p(0) = 1 and the hollow triangle's Δ_1 is 3x3 -> q = 2.
        assert estimate.p_zero == 1.0
        assert estimate.betti_estimate == 4.0
        assert estimate.backend == backend.name
    assert backend.name not in available_backends()


def test_temporary_backend_unregisters_on_exception():
    """The scoped registration cannot leak registry state past a failure."""
    backend = _ConstantBackend()
    with pytest.raises(RuntimeError, match="boom"):
        with temporary_backend(backend.name, backend):
            assert backend.name in available_backends()
            raise RuntimeError("boom")
    assert backend.name not in available_backends()


def test_temporary_backend_keeps_a_deliberate_replacement():
    """A body that swaps in its own backend under the same name keeps it."""
    first, second = _ConstantBackend(), _ConstantBackend()
    with temporary_backend(first.name, first):
        unregister_backend(first.name)
        register_backend(first.name, second)
    # first is gone; the deliberate replacement survived the context exit.
    assert get_backend(first.name) is second
    unregister_backend(first.name)


def test_temporary_backend_rejects_duplicate_names():
    with pytest.raises(ValueError, match="already registered"):
        with temporary_backend("exact", _ConstantBackend()):
            pass  # pragma: no cover - never entered


# -- format negotiation ----------------------------------------------------------

def test_backend_formats_normalises_legacy_prefers_sparse():
    """A pre-operator backend declaring only prefers_sparse still negotiates."""

    class _LegacySparse(_ConstantBackend):
        prefers_sparse = True

    class _LegacyDense(_ConstantBackend):
        prefers_sparse = False

    assert backend_formats(_LegacySparse()) == ("sparse", "dense")
    assert backend_formats(_LegacyDense()) == ("dense",)
    assert preferred_format(_LegacySparse()) == "sparse"
    assert preferred_format(_LegacyDense()) == "dense"


def test_backend_formats_of_builtins():
    assert backend_formats(get_backend("exact"))[0] == "dense"
    assert preferred_format(get_backend("exact")) == "dense"
    assert preferred_format(get_backend("sparse-exact")) == "sparse"
    assert preferred_format(get_backend("stochastic-trace")) == "sparse"
    assert backend_formats(get_backend("stochastic-trace"))[0] == "matrix-free"
    assert preferred_format(get_backend("statevector")) == "dense"


def test_backend_formats_rejects_unknown_names():
    class _BadFormats(_ConstantBackend):
        supported_formats = ("dense", "quantised")

    with pytest.raises(ValueError, match="quantised"):
        backend_formats(_BadFormats())


def test_backend_supports_noise_flags():
    assert backend_supports_noise(get_backend("noisy-density"))
    assert backend_supports_noise(get_backend("statevector"))
    assert backend_supports_noise(get_backend("trotter"))
    assert not backend_supports_noise(get_backend("exact"))
    assert not backend_supports_noise(get_backend("sparse-exact"))
    assert not backend_supports_noise(get_backend("stochastic-trace"))
    # Pre-operator backends without the attribute default to "no noise".
    assert not backend_supports_noise(_ConstantBackend())


def test_estimation_problem_views(appendix_k):
    from scipy import sparse

    from repro.core.operators import SparseOperator
    from repro.tda.laplacian import combinatorial_laplacian

    laplacian = combinatorial_laplacian(appendix_k, 1, sparse_format=True)
    problem = EstimationProblem(laplacian=laplacian)
    assert problem.is_sparse
    assert problem.format == "sparse"
    assert problem.dimension == 6
    assert isinstance(problem.operator, SparseOperator)
    assert problem.operator is problem.operator  # wrapped once, then reused
    hamiltonian = problem.dense_hamiltonian(QTDAConfig(delta=6.0))
    assert hamiltonian.num_qubits == 3
    assert not sparse.issparse(hamiltonian.matrix)


def test_estimator_exposes_resolved_backend():
    estimator = QTDABettiEstimator(backend="sparse-exact")
    assert estimator.backend.name == "sparse-exact"
    assert estimator.backend.prefers_sparse
