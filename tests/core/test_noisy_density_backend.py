"""Tests for the ``noisy-density`` backend and the noise parametrisation."""

import numpy as np
import pytest

from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator
from repro.quantum.noise import NOISE_CHANNELS, NoiseModel


def _estimate(complex_, **config_kwargs):
    defaults = dict(precision_qubits=3, shots=None, delta=6.0, backend="noisy-density")
    defaults.update(config_kwargs)
    return QTDABettiEstimator(QTDAConfig(**defaults)).estimate(complex_, 1)


def test_noise_degrades_estimate_monotonically_in_strength(hollow_triangle):
    clean = _estimate(hollow_triangle)
    weak = _estimate(hollow_triangle, noise_channel="depolarizing", noise_strength=0.01)
    strong = _estimate(hollow_triangle, noise_channel="depolarizing", noise_strength=0.10)
    assert weak.p_zero != pytest.approx(clean.p_zero, abs=1e-12)
    assert abs(weak.betti_estimate - clean.betti_estimate) < abs(
        strong.betti_estimate - clean.betti_estimate
    )
    # Noise perturbs but does not destroy the estimate at these strengths.
    assert abs(weak.betti_estimate - clean.betti_estimate) < 1.0


@pytest.mark.parametrize("channel", NOISE_CHANNELS)
def test_every_channel_is_runnable(hollow_triangle, channel):
    estimate = _estimate(hollow_triangle, noise_channel=channel, noise_strength=0.02)
    assert np.isfinite(estimate.betti_estimate)
    assert 0.0 <= estimate.p_zero <= 1.0


def test_explicit_noise_model_takes_precedence(hollow_triangle):
    via_fields = _estimate(hollow_triangle, noise_channel="bit-flip", noise_strength=0.05)
    via_object = _estimate(
        hollow_triangle,
        noise_model=NoiseModel.bit_flip(0.05),
        noise_channel="depolarizing",  # ignored: the explicit object wins
        noise_strength=0.9,
    )
    assert via_object.p_zero == pytest.approx(via_fields.p_zero, abs=1e-12)


def test_noise_model_resolution():
    assert QTDAConfig().resolved_noise_model() is None
    built = QTDAConfig(noise_channel="amplitude-damping", noise_strength=0.1).resolved_noise_model()
    assert isinstance(built, NoiseModel)
    explicit = NoiseModel.depolarizing(0.2)
    assert QTDAConfig(noise_model=explicit).resolved_noise_model() is explicit


def test_from_channel_unknown_name_lists_channels():
    with pytest.raises(ValueError, match="amplitude-damping"):
        NoiseModel.from_channel("cosmic-rays", 0.1)


def test_noisy_backend_with_shots_is_reproducible(hollow_triangle):
    kwargs = dict(
        precision_qubits=3,
        shots=200,
        delta=6.0,
        backend="noisy-density",
        noise_channel="depolarizing",
        noise_strength=0.02,
        seed=42,
    )
    a = QTDABettiEstimator(QTDAConfig(**kwargs)).estimate(hollow_triangle, 1)
    b = QTDABettiEstimator(QTDAConfig(**kwargs)).estimate(hollow_triangle, 1)
    assert a.betti_estimate == b.betti_estimate
    assert a.counts == b.counts
    assert sum(a.counts.values()) == 200


def test_noisy_backend_through_pipeline(circle_points):
    from repro.core.pipeline import PipelineConfig, QTDAPipeline

    pipeline = QTDAPipeline(
        PipelineConfig(
            epsilon=0.7,
            estimator=QTDAConfig(
                precision_qubits=2,
                shots=None,
                backend="noisy-density",
                noise_channel="depolarizing",
                noise_strength=0.01,
            ),
        )
    )
    features = pipeline.features_from_point_cloud(circle_points)
    assert features.shape == (2,)
    assert np.all(np.isfinite(features))
