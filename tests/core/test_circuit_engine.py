"""Regression and routing tests for the batched (``ensemble``) circuit route.

The legacy ``purified``/``density`` routes stay bit-identity-pinned in
``test_backend_regression.py``; here the new route is pinned to agree with
the density-matrix evolution of ``|0><0| ⊗ I/2^q`` within 1e-10 on the
reference complexes, and the ``circuit_engine`` knob's resolution rules are
locked down.
"""

import numpy as np
import pytest

from repro.core.backends.statevector import resolve_circuit_route
from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator
from repro.experiments.worked_example import appendix_complex
from repro.quantum.noise import NoiseModel
from repro.tda.complexes import SimplicialComplex


def _square_tail() -> SimplicialComplex:
    return SimplicialComplex(
        [(0,), (1,), (2,), (3,), (4,), (0, 1), (1, 2), (2, 3), (0, 3), (3, 4)]
    )


_REFERENCE = {
    "appendix": (appendix_complex, 1),
    "square_tail": (_square_tail, 1),
    "square_tail_b0": (_square_tail, 0),
}


def _estimate(backend, case, circuit_engine, **overrides):
    make, k = _REFERENCE[case]
    kwargs = {
        "precision_qubits": 3,
        "shots": None,
        "backend": backend,
        "delta": 6.0,
        "trotter_steps": 4,
        "circuit_engine": circuit_engine,
    }
    kwargs.update(overrides)
    return QTDABettiEstimator(**kwargs).estimate(make(), k)


# ---------------------------------------------------------------------------
# Numerical agreement: ensemble vs the density-matrix reference
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["statevector", "trotter"])
@pytest.mark.parametrize("case", sorted(_REFERENCE))
def test_ensemble_route_matches_density_route_to_1e10(backend, case):
    """The PR's acceptance pin: same circuit semantics, 1e-10 agreement."""
    ensemble = _estimate(backend, case, "ensemble")
    density = _estimate(backend, case, "density")
    assert ensemble.engine_route == "ensemble"
    assert density.engine_route == "density"
    assert ensemble.p_zero == pytest.approx(density.p_zero, abs=1e-10)
    assert ensemble.betti_estimate == pytest.approx(density.betti_estimate, abs=1e-10)
    assert ensemble.betti_rounded == density.betti_rounded
    assert ensemble.num_system_qubits == density.num_system_qubits
    assert ensemble.lambda_max == density.lambda_max


def test_ensemble_route_matches_purified_route(case="appendix"):
    ensemble = _estimate("statevector", case, "ensemble")
    purified = _estimate("statevector", case, "purified")
    assert purified.engine_route == "purified"
    assert ensemble.p_zero == pytest.approx(purified.p_zero, abs=1e-10)


def test_ensemble_is_the_default_noise_free_route():
    estimate = _estimate("statevector", "appendix", "auto")
    assert estimate.engine_route == "ensemble"
    assert estimate.fused_gates is not None and estimate.fused_gates > 0
    # The fused plan is shorter than the raw gate list (the inverse QFT run
    # and the Hadamard layer fuse; the wide controlled powers pass through).
    density = _estimate("statevector", "appendix", "density")
    assert density.fused_gates is None


def test_ensemble_shots_are_sampled_from_the_same_distribution():
    """Finite-shot behaviour is the estimator's job and is seeded identically
    across routes; with distributions equal to 1e-10 the sampled counts of
    the two routes coincide for a fixed seed."""
    a = _estimate("statevector", "appendix", "ensemble", shots=2000, seed=11)
    b = _estimate("statevector", "appendix", "density", shots=2000, seed=11)
    assert a.counts == b.counts
    assert a.p_zero == b.p_zero


# ---------------------------------------------------------------------------
# Route resolution and validation
# ---------------------------------------------------------------------------


def test_resolve_circuit_route_table():
    from repro.core.backends.statevector import PTM_AUTO_QUBIT_THRESHOLD

    noiseless = QTDAConfig(backend="statevector")
    assert resolve_circuit_route(noiseless, None) == "ensemble"
    for engine in ("ensemble", "ptm", "trajectory", "purified", "density"):
        config = QTDAConfig(backend="statevector", circuit_engine=engine)
        assert resolve_circuit_route(config, None) == engine
    noise = NoiseModel.depolarizing(0.01)
    # Declarative (spec-expressible) noise resolves auto to the exact PTM
    # route while the register fits, trajectory above the threshold; explicit
    # density/trajectory/ptm requests are honoured.
    assert resolve_circuit_route(noiseless, noise) == "ptm"
    assert (
        resolve_circuit_route(noiseless, noise, total_qubits=PTM_AUTO_QUBIT_THRESHOLD)
        == "ptm"
    )
    assert (
        resolve_circuit_route(
            noiseless, noise, total_qubits=PTM_AUTO_QUBIT_THRESHOLD + 1
        )
        == "trajectory"
    )
    density = QTDAConfig(backend="statevector", circuit_engine="density")
    assert resolve_circuit_route(density, noise) == "density"
    trajectory = QTDAConfig(backend="statevector", circuit_engine="trajectory")
    assert resolve_circuit_route(trajectory, noise) == "trajectory"
    ptm = QTDAConfig(backend="statevector", circuit_engine="ptm")
    assert resolve_circuit_route(ptm, noise) == "ptm"
    # Zero-strength channels count as noise-free.
    assert resolve_circuit_route(noiseless, NoiseModel.depolarizing(0.0)) == "ensemble"
    # Hand-built Kraus lists have no NoiseSpec form: auto falls back to the
    # exact density contraction, and explicit trajectory/ptm requests raise.
    custom = NoiseModel(
        [np.sqrt(0.99) * np.eye(2), np.sqrt(0.01) * np.array([[0, 1], [1, 0]])]
    )
    assert resolve_circuit_route(noiseless, custom) == "density"
    with pytest.raises(ValueError, match="density route"):
        resolve_circuit_route(trajectory, custom)
    with pytest.raises(ValueError, match="density route"):
        resolve_circuit_route(ptm, custom)


def test_pure_state_engines_reject_noise():
    for engine in ("ensemble", "purified"):
        config = QTDAConfig(backend="statevector", circuit_engine=engine)
        with pytest.raises(ValueError, match="noise"):
            resolve_circuit_route(config, NoiseModel.depolarizing(0.01))
        with pytest.raises(ValueError, match="noise"):
            QTDAConfig(
                backend="noisy-density",
                circuit_engine=engine,
                noise_channel="depolarizing",
                noise_strength=0.01,
            )


def test_config_validates_circuit_engine():
    with pytest.raises(ValueError, match="circuit_engine"):
        QTDAConfig(circuit_engine="warp")
    config = QTDAConfig(circuit_engine="ensemble")
    assert QTDAConfig.from_dict(config.as_dict()).circuit_engine == "ensemble"


def test_noisy_density_backend_rejects_pure_state_engines():
    """Even channel-less (where config validation cannot catch it), an
    explicit pure-state engine must raise, not silently run density."""
    for engine in ("ensemble", "purified"):
        estimator = QTDABettiEstimator(
            precision_qubits=3, shots=None, backend="noisy-density", circuit_engine=engine
        )
        with pytest.raises(ValueError, match="density-matrix route"):
            estimator.estimate(appendix_complex(), 1)


def test_noisy_density_backend_still_routes_density():
    estimate = QTDABettiEstimator(
        precision_qubits=3,
        shots=None,
        backend="noisy-density",
        delta=6.0,
        noise_channel="depolarizing",
        noise_strength=0.02,
    ).estimate(appendix_complex(), 1)
    assert estimate.engine_route == "density"


# ---------------------------------------------------------------------------
# Trajectory route
# ---------------------------------------------------------------------------


def test_auto_resolves_small_noisy_config_to_ptm_route():
    """Auto + declarative noise now prefers the exact PTM route while the
    register fits under ``PTM_AUTO_QUBIT_THRESHOLD``."""
    estimate = QTDABettiEstimator(
        precision_qubits=3,
        shots=None,
        backend="statevector",
        delta=6.0,
        noise_channel="depolarizing",
        noise_strength=0.02,
        seed=7,
    ).estimate(appendix_complex(), 1)
    assert estimate.engine_route == "ptm"
    assert estimate.fused_gates is not None and estimate.fused_gates > 0
    assert estimate.n_trajectories is None
    assert estimate.noise_spec is not None
    assert estimate.noise_spec["channel"] == "depolarizing"
    assert estimate.noise_spec["strength"] == 0.02
    # The PTM route is exact: no sampling, no error bar.
    assert estimate.betti_std is None


def test_explicit_trajectory_engine_still_runs_trajectories():
    estimate = QTDABettiEstimator(
        precision_qubits=3,
        shots=None,
        backend="statevector",
        delta=6.0,
        circuit_engine="trajectory",
        noise_channel="depolarizing",
        noise_strength=0.02,
        n_trajectories=4,
        seed=7,
    ).estimate(appendix_complex(), 1)
    assert estimate.engine_route == "trajectory"
    assert estimate.n_trajectories == 4
    assert estimate.betti_std is not None and estimate.betti_std > 0


def test_trajectory_mean_matches_density_within_3_sigma():
    """Satellite acceptance: the trajectory route's mean converges to the
    exact density-matrix contraction within sampling error."""
    common = dict(
        precision_qubits=3,
        shots=None,
        backend="statevector",
        delta=6.0,
        noise_channel="depolarizing",
        noise_strength=0.03,
    )
    for case in sorted(_REFERENCE):
        make, k = _REFERENCE[case]
        density = QTDABettiEstimator(circuit_engine="density", **common).estimate(make(), k)
        trajectory = QTDABettiEstimator(
            circuit_engine="trajectory", n_trajectories=64, seed=5, **common
        ).estimate(make(), k)
        sigma = max(trajectory.betti_std or 0.0, 1e-6)
        assert abs(trajectory.betti_estimate - density.betti_estimate) < 3 * sigma, case


def test_trajectory_route_is_deterministic_given_seed():
    kwargs = dict(
        precision_qubits=3,
        shots=None,
        backend="statevector",
        delta=6.0,
        circuit_engine="trajectory",
        noise_channel="depolarizing",
        noise_strength=0.02,
        n_trajectories=4,
        seed=13,
    )
    a = QTDABettiEstimator(**kwargs).estimate(appendix_complex(), 1)
    b = QTDABettiEstimator(**kwargs).estimate(appendix_complex(), 1)
    assert a.betti_estimate == b.betti_estimate
    assert a.betti_std == b.betti_std


# ---------------------------------------------------------------------------
# PTM route (DESIGN.md §16)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", sorted(_REFERENCE))
def test_ptm_route_matches_noisy_density_to_1e8(case):
    """The PR's acceptance pin: exact agreement (≤1e-8, no statistical
    tolerance) between the fused-PTM route and the density contraction under
    declarative noise on every reference complex."""
    common = dict(
        noise_channel="depolarizing",
        noise_strength=0.02,
        noise_gate_strengths={"c-U": 0.01},
        readout_error=0.01,
    )
    ptm = _estimate("statevector", case, "ptm", **common)
    density = _estimate("statevector", case, "density", **common)
    assert ptm.engine_route == "ptm"
    assert density.engine_route == "density"
    assert ptm.p_zero == pytest.approx(density.p_zero, abs=1e-8)
    assert ptm.betti_estimate == pytest.approx(density.betti_estimate, abs=1e-8)
    assert ptm.fused_gates is not None and ptm.fused_gates > 0


def test_ptm_route_matches_ensemble_when_noise_free():
    ensemble = _estimate("statevector", "appendix", "ensemble")
    ptm = _estimate("statevector", "appendix", "ptm")
    assert ptm.engine_route == "ptm"
    assert ptm.noise_spec is None
    assert ptm.p_zero == pytest.approx(ensemble.p_zero, abs=1e-9)


def test_ptm_route_ignores_shards_gracefully():
    """The PTM route evolves a single Pauli column: ``shards`` has no batch
    axis to split, so the run succeeds and provenance carries no shard
    stamp."""
    sharded = _estimate(
        "statevector",
        "appendix",
        "ptm",
        noise_channel="depolarizing",
        noise_strength=0.02,
        shards=2,
        shard_backend="serial",
    )
    plain = _estimate(
        "statevector",
        "appendix",
        "ptm",
        noise_channel="depolarizing",
        noise_strength=0.02,
    )
    assert sharded.engine_route == "ptm"
    assert sharded.shards is None
    assert sharded.p_zero == plain.p_zero


def test_ptm_runs_leave_density_and_trajectory_routes_bit_identical():
    """Satellite pin: adding the PTM route must not perturb the existing
    noisy routes — identical configs produce bit-identical results whether
    or not a PTM run happened in between."""
    noise = dict(noise_channel="depolarizing", noise_strength=0.02)
    density_before = _estimate("statevector", "appendix", "density", **noise)
    trajectory_before = _estimate(
        "statevector", "appendix", "trajectory", n_trajectories=4, seed=11, **noise
    )
    _estimate("statevector", "appendix", "ptm", **noise)
    density_after = _estimate("statevector", "appendix", "density", **noise)
    trajectory_after = _estimate(
        "statevector", "appendix", "trajectory", n_trajectories=4, seed=11, **noise
    )
    assert density_after.p_zero == density_before.p_zero
    assert density_after.betti_estimate == density_before.betti_estimate
    assert trajectory_after.p_zero == trajectory_before.p_zero
    assert trajectory_after.betti_std == trajectory_before.betti_std


def test_service_provenance_records_ptm_route_and_fused_superoperators():
    """Acceptance: ``engine_route="ptm"`` plus the fused superoperator count
    round-trip through the wire format."""
    import json

    from repro.api import EstimationRequest, EstimationResult, QTDAService
    from repro.experiments.worked_example import APPENDIX_SIMPLICES

    with QTDAService(max_workers=1) as service:
        result = service.run(
            EstimationRequest(
                simplices=APPENDIX_SIMPLICES,
                k=1,
                config=QTDAConfig(
                    precision_qubits=3,
                    shots=None,
                    delta=6.0,
                    backend="statevector",
                    noise_channel="depolarizing",
                    noise_strength=0.02,
                ),
            )
        )
    assert result.provenance.engine_route == "ptm"
    assert result.provenance.fused_gates is not None
    assert result.provenance.fused_gates > 0
    assert result.provenance.noise_spec["channel"] == "depolarizing"
    assert result.payload["engine_route"] == "ptm"
    assert result.payload["fused_gates"] == result.provenance.fused_gates
    document = json.loads(result.to_json())
    EstimationResult.validate_dict(document)
    assert document["provenance"]["engine_route"] == "ptm"
    assert document["provenance"]["fused_gates"] == result.provenance.fused_gates


def test_readout_error_composes_with_the_ensemble_route():
    clean = _estimate("statevector", "appendix", "auto")
    noisy = _estimate("statevector", "appendix", "auto", readout_error=0.05)
    assert noisy.engine_route == "ensemble"
    assert noisy.noise_spec is not None
    assert noisy.noise_spec["readout_error"] == 0.05
    # With bit-flip probability p on each of the t precision bits the
    # all-zero outcome keeps (1-p)^t of its own weight plus leakage from
    # every other outcome, so p(0) moves away from the clean value.
    assert noisy.p_zero != pytest.approx(clean.p_zero, abs=1e-6)


def test_purified_route_fusion_is_opt_in_and_bit_identical_when_off():
    """Satellite: the PR 5 fusion pass wired into the legacy purified route
    behind ``fuse_purified`` — off by default, bit-identical when off."""
    baseline = _estimate("statevector", "appendix", "purified")
    off = _estimate("statevector", "appendix", "purified", fuse_purified=False)
    assert off.p_zero == baseline.p_zero
    assert off.betti_estimate == baseline.betti_estimate
    fused = _estimate("statevector", "appendix", "purified", fuse_purified=True)
    assert fused.engine_route == "purified"
    assert fused.p_zero == pytest.approx(baseline.p_zero, abs=1e-10)


# ---------------------------------------------------------------------------
# Service provenance
# ---------------------------------------------------------------------------


def test_service_provenance_records_engine_route_and_fusion():
    import json

    from repro.api import EstimationRequest, EstimationResult, QTDAService
    from repro.experiments.worked_example import APPENDIX_SIMPLICES

    with QTDAService(max_workers=1) as service:
        result = service.run(
            EstimationRequest(
                simplices=APPENDIX_SIMPLICES,
                k=1,
                config=QTDAConfig(
                    precision_qubits=3, shots=None, delta=6.0, backend="statevector"
                ),
            )
        )
    assert result.provenance.engine_route == "ensemble"
    assert result.provenance.fused_gates == result.payload["fused_gates"]
    assert result.payload["engine_route"] == "ensemble"
    document = json.loads(result.to_json())
    EstimationResult.validate_dict(document)
    assert document["provenance"]["engine_route"] == "ensemble"


def test_service_provenance_records_trajectory_route_and_noise_spec():
    """Wire schema v3: route, trajectory count and resolved noise spec flow
    BackendResult -> BettiEstimate -> Provenance and validate end to end."""
    import json

    from repro.api import EstimationRequest, EstimationResult, QTDAService
    from repro.experiments.worked_example import APPENDIX_SIMPLICES

    with QTDAService(max_workers=1) as service:
        result = service.run(
            EstimationRequest(
                simplices=APPENDIX_SIMPLICES,
                k=1,
                config=QTDAConfig(
                    precision_qubits=3,
                    shots=None,
                    delta=6.0,
                    backend="statevector",
                    circuit_engine="trajectory",
                    noise_channel="depolarizing",
                    noise_strength=0.02,
                    n_trajectories=4,
                    seed=3,
                ),
            )
        )
    assert result.provenance.engine_route == "trajectory"
    assert result.provenance.n_trajectories == 4
    assert result.provenance.noise_spec["channel"] == "depolarizing"
    assert result.payload["engine_route"] == "trajectory"
    assert result.payload["n_trajectories"] == 4
    document = json.loads(result.to_json())
    EstimationResult.validate_dict(document)
    assert document["provenance"]["engine_route"] == "trajectory"
    assert document["provenance"]["n_trajectories"] == 4
    assert document["provenance"]["noise_spec"]["strength"] == 0.02


# ---------------------------------------------------------------------------
# Sharded execution through the service (DESIGN.md §14)
# ---------------------------------------------------------------------------


def test_config_validates_shard_fields():
    with pytest.raises(ValueError):
        QTDAConfig(shards=0)
    with pytest.raises(ValueError):
        QTDAConfig(shard_backend="mpi")
    with pytest.raises(ValueError):
        QTDAConfig(devices=(0,), shard_backend="serial")  # devices need the device backend
    # devices with the default backend auto-select the device backend.
    coerced = QTDAConfig(devices=(0, 1))
    assert coerced.shard_backend == "device"
    assert coerced.devices == (0, 1)
    assert QTDAConfig(devices=()).devices is None  # empty normalises away


def test_sharded_service_run_is_bit_identical_and_stamped_in_provenance():
    import json

    from repro.api import EstimationRequest, EstimationResult, QTDAService
    from repro.experiments.worked_example import APPENDIX_SIMPLICES

    base = dict(precision_qubits=3, shots=None, delta=6.0, backend="statevector")
    with QTDAService(max_workers=1) as service:
        plain = service.run(
            EstimationRequest(simplices=APPENDIX_SIMPLICES, k=1, config=QTDAConfig(**base))
        )
        sharded = service.run(
            EstimationRequest(
                simplices=APPENDIX_SIMPLICES,
                k=1,
                config=QTDAConfig(**base, shards=2, shard_backend="serial"),
            )
        )
    assert sharded.payload["betti_estimate"] == plain.payload["betti_estimate"]
    assert sharded.payload["p_zero"] == plain.payload["p_zero"]
    # Unsharded runs carry nulls; sharded runs carry the full identity.
    assert (plain.provenance.shards, plain.provenance.shard_backend) == (None, None)
    assert plain.provenance.device is None
    assert sharded.provenance.shards == 2
    assert sharded.provenance.shard_backend == "serial"
    assert sharded.provenance.device == "cpu"
    document = json.loads(sharded.to_json())
    EstimationResult.validate_dict(document)
    assert document["schema_version"] == 4
    assert document["provenance"]["shards"] == 2
    assert document["provenance"]["shard_backend"] == "serial"
    assert document["provenance"]["device"] == "cpu"


def test_sharded_trajectory_route_through_service_is_bit_identical():
    from repro.api import EstimationRequest, QTDAService
    from repro.experiments.worked_example import APPENDIX_SIMPLICES

    base = dict(
        precision_qubits=3,
        shots=None,
        delta=6.0,
        backend="statevector",
        circuit_engine="trajectory",
        noise_channel="depolarizing",
        noise_strength=0.02,
        n_trajectories=4,
        seed=3,
    )
    with QTDAService(max_workers=1) as service:
        plain = service.run(
            EstimationRequest(simplices=APPENDIX_SIMPLICES, k=1, config=QTDAConfig(**base))
        )
        sharded = service.run(
            EstimationRequest(
                simplices=APPENDIX_SIMPLICES,
                k=1,
                config=QTDAConfig(**base, shards=2, shard_backend="serial"),
            )
        )
    assert sharded.payload["betti_estimate"] == plain.payload["betti_estimate"]
    assert sharded.payload["betti_std"] == plain.payload["betti_std"]
    assert sharded.provenance.engine_route == "trajectory"
    assert sharded.provenance.shards == 2


def test_executor_registry_schedules_requests_onto_shard_pools():
    from repro.api import EstimationRequest, QTDAService
    from repro.experiments.worked_example import APPENDIX_SIMPLICES
    from repro.quantum.sharding import ShardedExecutor

    request = EstimationRequest(
        simplices=APPENDIX_SIMPLICES,
        k=1,
        config=QTDAConfig(precision_qubits=3, shots=None, delta=6.0, backend="statevector"),
    )
    with QTDAService(max_workers=2) as service:
        service.register_executor("pool", ShardedExecutor(2, backend="thread"))
        assert service.executors == ("pool",)
        with pytest.raises(ValueError, match="pool"):
            service.register_executor("pool", ShardedExecutor(2, backend="thread"))
        direct = service.run(request)
        routed = service.submit(request, executor="pool").result()
        mapped = list(service.map([request], executor="pool"))[0]
        with pytest.raises(ValueError, match="registered"):
            service.submit(request, executor="nope")
    assert routed.provenance.shards == 2
    assert routed.provenance.shard_backend == "thread"
    assert mapped.provenance.shards == 2
    # Scheduling changes where the work ran, never what it computed.
    assert routed.payload["betti_estimate"] == direct.payload["betti_estimate"]
    assert mapped.payload["betti_estimate"] == direct.payload["betti_estimate"]
