"""Tests for the Laplacian operator layer (repro.core.operators)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.operators import (
    OPERATOR_FORMATS,
    DenseOperator,
    MatrixFreeOperator,
    SparseOperator,
    as_operator,
)
from repro.paulis.gershgorin import gershgorin_bound
from repro.tda.laplacian import (
    combinatorial_laplacian,
    combinatorial_laplacian_operator,
    laplacian_operator_from_flag_arrays,
)
from repro.tda.rips import rips_complex


@pytest.fixture()
def laplacian(appendix_k):
    return combinatorial_laplacian(appendix_k, 1)


def _matrix_free(lap: np.ndarray, **kwargs) -> MatrixFreeOperator:
    return MatrixFreeOperator(lambda x: lap @ x, lap.shape, **kwargs)


# -- coercion --------------------------------------------------------------------

def test_as_operator_wraps_each_format(laplacian):
    dense = as_operator(laplacian)
    sparse_op = as_operator(sparse.csr_matrix(laplacian))
    free = _matrix_free(laplacian)
    assert isinstance(dense, DenseOperator) and dense.format == "dense"
    assert isinstance(sparse_op, SparseOperator) and sparse_op.format == "sparse"
    assert free.format == "matrix-free"
    assert {op.format for op in (dense, sparse_op, free)} <= set(OPERATOR_FORMATS)
    # Idempotent: an operator passes through unchanged.
    assert as_operator(dense) is dense


def test_operators_must_be_square():
    with pytest.raises(ValueError, match="square"):
        DenseOperator(np.zeros((2, 3)))
    with pytest.raises(ValueError, match="square"):
        MatrixFreeOperator(lambda x: x, (2, 3))
    with pytest.raises(TypeError):
        SparseOperator(np.zeros((2, 2)))


# -- views are equivalent ---------------------------------------------------------

def test_all_formats_agree_on_every_view(laplacian):
    ops = [
        as_operator(laplacian),
        as_operator(sparse.csr_matrix(laplacian)),
        _matrix_free(laplacian),
    ]
    x = np.arange(laplacian.shape[0], dtype=float)
    expected = laplacian @ x
    for op in ops:
        assert op.shape == laplacian.shape
        assert op.dim == laplacian.shape[0]
        np.testing.assert_array_equal(op.matvec(x), expected)
        np.testing.assert_array_equal(op @ x, expected)
        np.testing.assert_array_equal(op.to_dense(), laplacian)
        np.testing.assert_array_equal(op.to_sparse().toarray(), laplacian)
        assert op.gershgorin_bound() == gershgorin_bound(laplacian)
        assert op.trace() == pytest.approx(np.trace(laplacian))
        assert op.frobenius_norm_squared() == pytest.approx(np.square(laplacian).sum())


# -- fingerprints -----------------------------------------------------------------

def test_dense_fingerprint_is_content_keyed(laplacian):
    a = DenseOperator(laplacian).fingerprint()
    b = DenseOperator(laplacian.copy()).fingerprint()
    c = DenseOperator(laplacian + np.eye(laplacian.shape[0])).fingerprint()
    assert a == b
    assert a != c


def test_sparse_fingerprint_is_layout_invariant(laplacian):
    """Equal matrices hash equally regardless of construction route/layout."""
    csr = sparse.csr_matrix(laplacian)
    coo = sparse.coo_matrix(laplacian)
    csc = sparse.csc_matrix(laplacian)
    prints = {
        SparseOperator(csr).fingerprint(),
        SparseOperator(coo).fingerprint(),
        SparseOperator(csc).fingerprint(),
    }
    assert len(prints) == 1
    # Explicitly stored zeros do not change the key.
    with_zero = sparse.csr_matrix(
        (
            np.append(coo.data, 0.0),
            (np.append(coo.row, 0), np.append(coo.col, csr.shape[0] - 1)),
        ),
        shape=csr.shape,
    )
    assert SparseOperator(with_zero).fingerprint() == SparseOperator(csr).fingerprint()
    # Different content does.
    assert SparseOperator(2.0 * csr).fingerprint() != SparseOperator(csr).fingerprint()


def test_sparse_and_dense_fingerprints_never_collide(laplacian):
    assert DenseOperator(laplacian).fingerprint() != SparseOperator(
        sparse.csr_matrix(laplacian)
    ).fingerprint()


def test_matrix_free_fingerprint_requires_a_tag(laplacian):
    assert _matrix_free(laplacian).fingerprint() is None
    tagged = _matrix_free(laplacian, fingerprint=b"appendix-k1")
    assert tagged.fingerprint() is not None
    assert tagged.fingerprint() != _matrix_free(laplacian, fingerprint=b"other").fingerprint()


# -- matrix-free laziness ---------------------------------------------------------

def test_matrix_free_precomputed_reductions_avoid_materialisation(laplacian):
    calls = {"n": 0}

    def counting_matvec(x):
        calls["n"] += 1
        return laplacian @ x

    op = MatrixFreeOperator(
        counting_matvec,
        laplacian.shape,
        gershgorin=gershgorin_bound(laplacian),
        trace=float(np.trace(laplacian)),
        frobenius_norm_squared=float(np.square(laplacian).sum()),
    )
    assert op.gershgorin_bound() == gershgorin_bound(laplacian)
    assert op.trace() == pytest.approx(np.trace(laplacian))
    assert op.frobenius_norm_squared() == pytest.approx(np.square(laplacian).sum())
    assert calls["n"] == 0  # no reduction forced a materialisation
    op.to_dense()
    assert calls["n"] == laplacian.shape[0]
    op.to_dense()  # cached — no further matvecs
    assert calls["n"] == laplacian.shape[0]


# -- construction helpers ---------------------------------------------------------

def test_operator_returning_laplacian_helpers(appendix_k):
    op = combinatorial_laplacian_operator(appendix_k, 1)
    assert op.format == "sparse"
    np.testing.assert_array_equal(op.to_dense(), combinatorial_laplacian(appendix_k, 1))
    dense_op = combinatorial_laplacian_operator(appendix_k, 1, sparse_format=False)
    assert dense_op.format == "dense"
    np.testing.assert_array_equal(dense_op.to_dense(), op.to_dense())


def test_flag_array_operator_helper():
    rng = np.random.default_rng(5)
    points = rng.normal(size=(9, 3))
    complex_ = rips_complex(points, 1.4, 2)
    from repro.tda.rips import RipsComplex

    arrays = RipsComplex.from_points(points, 1.4, max_dimension=2).flag_arrays()
    for k in (0, 1):
        if complex_.num_simplices(k) == 0:
            continue
        op = laplacian_operator_from_flag_arrays(arrays, k)
        assert op.format == "sparse"
        np.testing.assert_array_equal(op.to_dense(), combinatorial_laplacian(complex_, k))
