"""Tests for the ``sparse-exact`` backend (shift-invert partial spectrum)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.backends import EstimationProblem
from repro.core.backends.sparse_exact import SparseExactBackend
from repro.core.config import QTDAConfig
from repro.core.estimator import QTDABettiEstimator
from repro.datasets.point_clouds import circle_cloud
from repro.tda.betti import betti_number
from repro.tda.laplacian import combinatorial_laplacian
from repro.tda.rips import rips_complex


def _medium_complex():
    """An annulus Rips complex whose Δ_1 is ~100x100 — big enough to force
    the sparse path with a low threshold, small enough for fast tests."""
    cloud = circle_cloud(100)
    eps = 2 * np.sin(2 * np.pi / 100) + 1e-9  # connect 2 neighbours per side
    return rips_complex(cloud, eps, max_dimension=2)


def _run(backend, laplacian, config, cache=None):
    rng = np.random.default_rng(0)
    return backend.run(EstimationProblem(laplacian=laplacian, spectrum_cache=cache), config, rng)


def test_constructor_validation():
    with pytest.raises(ValueError):
        SparseExactBackend(dense_threshold=0)
    with pytest.raises(ValueError):
        SparseExactBackend(num_eigenvalues=0)
    with pytest.raises(ValueError):
        SparseExactBackend(shift=0.0)


def test_dense_input_uses_dense_path_bit_identically(appendix_k):
    from repro.core.backends.exact import ExactBackend

    laplacian = combinatorial_laplacian(appendix_k, 1)
    config = QTDAConfig(precision_qubits=4, shots=None, delta=6.0, backend="sparse-exact")
    sparse_result = _run(SparseExactBackend(), laplacian, config)
    exact_result = _run(ExactBackend(), laplacian, config.replace(backend="exact"))
    np.testing.assert_array_equal(sparse_result.distribution, exact_result.distribution)
    assert sparse_result.lambda_max == exact_result.lambda_max


def test_sparse_path_agrees_with_exact_distribution():
    """Above the threshold the surrogate spectrum's readout distribution is
    within a few hundredths of the full-spectrum one."""
    complex_ = _medium_complex()
    laplacian = combinatorial_laplacian(complex_, 1, sparse_format=True)
    assert laplacian.shape[0] > 64
    config = QTDAConfig(precision_qubits=5, shots=None, backend="sparse-exact")
    backend = SparseExactBackend(dense_threshold=32, num_eigenvalues=24)
    result = _run(backend, laplacian, config)

    from repro.core.backends.exact import ExactBackend

    exact = _run(ExactBackend(), laplacian, config.replace(backend="exact"))
    est_sparse = 2**result.num_system_qubits * result.distribution[0]
    est_exact = 2**exact.num_system_qubits * exact.distribution[0]
    assert result.num_system_qubits == exact.num_system_qubits
    assert result.lambda_max == pytest.approx(exact.lambda_max)
    assert est_sparse == pytest.approx(est_exact, abs=0.15)


def test_sparse_path_rounds_to_true_betti_number():
    """Needs 8 precision qubits: the annulus Laplacian's smallest non-zero
    eigenvalues are tiny, and even the full-spectrum estimate only resolves
    the single loop once t = 8 (the same precision-dependence as Fig. 3)."""
    complex_ = _medium_complex()
    # Use a low-threshold instance directly so the sparse route is exercised.
    backend = SparseExactBackend(dense_threshold=16, num_eigenvalues=16)
    laplacian = combinatorial_laplacian(complex_, 1, sparse_format=True)
    config = QTDAConfig(precision_qubits=8, shots=None, backend="sparse-exact")
    result = _run(backend, laplacian, config)
    estimate = 2**result.num_system_qubits * result.distribution[0]
    assert int(round(estimate)) == betti_number(complex_, 1) == 1


def test_kernel_window_widens_until_nonzero_eigenvalue():
    """A Laplacian whose kernel exceeds ``num_eigenvalues`` must not truncate
    the kernel: the window doubles until a non-zero eigenvalue appears."""
    # 30 disjoint edges: graph Laplacian (Δ_0) is 60x60 with a 30-dim kernel.
    blocks = [np.array([[1.0, -1.0], [-1.0, 1.0]]) for _ in range(30)]
    laplacian = sparse.block_diag(blocks, format="csr")
    backend = SparseExactBackend(dense_threshold=8, num_eigenvalues=4)
    config = QTDAConfig(precision_qubits=6, shots=None, backend="sparse-exact")
    result = _run(backend, laplacian, config)
    estimate = 2**result.num_system_qubits * result.distribution[0]
    assert int(round(estimate)) == 30


def test_sparse_backend_rejects_asymmetric_matrices():
    mat = sparse.csr_matrix(np.triu(np.ones((40, 40))))
    backend = SparseExactBackend(dense_threshold=8)
    config = QTDAConfig(precision_qubits=3, shots=None, backend="sparse-exact")
    with pytest.raises(ValueError, match="symmetric"):
        _run(backend, mat, config)


def test_estimate_hands_sparse_laplacian_to_the_backend(appendix_k):
    """``estimate`` consults ``prefers_sparse`` when building the Laplacian."""
    estimator = QTDABettiEstimator(precision_qubits=4, shots=None, delta=6.0, backend="sparse-exact")
    exact = QTDABettiEstimator(precision_qubits=4, shots=None, delta=6.0, backend="exact")
    a = estimator.estimate(appendix_k, 1)
    b = exact.estimate(appendix_k, 1)
    assert a.betti_estimate == b.betti_estimate
    assert a.exact_betti == b.exact_betti == 1


def test_sparse_backend_through_pipeline_and_batch_engine(circle_points):
    """The pipeline/batch layers pass any registered backend through unchanged."""
    from repro.core.batch import BatchFeatureEngine
    from repro.core.pipeline import PipelineConfig, QTDAPipeline

    config = PipelineConfig(
        epsilon=0.7,
        estimator=QTDAConfig(precision_qubits=4, shots=None, backend="sparse-exact"),
    )
    features = QTDAPipeline(config).features_from_point_cloud(circle_points)
    engine_features = BatchFeatureEngine(config).transform_point_clouds([circle_points])
    reference = QTDAPipeline(
        PipelineConfig(epsilon=0.7, estimator=QTDAConfig(precision_qubits=4, shots=None))
    ).features_from_point_cloud(circle_points)
    np.testing.assert_allclose(features, reference)
    np.testing.assert_allclose(engine_features[0], reference)
