"""Tests for the QPE-based Betti estimator (Eqs. 10–11)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.config import QTDAConfig
from repro.core.estimator import BettiEstimate, QTDABettiEstimator
from repro.tda.complexes import SimplicialComplex
from repro.tda.laplacian import combinatorial_laplacian
from repro.tda.rips import rips_complex


def test_appendix_worked_example_estimate(appendix_k):
    """β̃_1 rounds to the correct value β_1 = 1 (Appendix A result)."""
    estimator = QTDABettiEstimator(precision_qubits=3, shots=1000, delta=6.0, seed=5)
    result = estimator.estimate(appendix_k, 1)
    assert result.exact_betti == 1
    assert result.betti_rounded == 1
    assert 0.5 < result.betti_estimate < 1.7
    assert result.lambda_max == pytest.approx(6.0)


def test_infinite_shots_uses_exact_probability(appendix_k):
    estimator = QTDABettiEstimator(precision_qubits=4, shots=None, delta=6.0)
    result = estimator.estimate(appendix_k, 1)
    assert result.counts == {}
    assert result.betti_estimate == pytest.approx(8 * result.p_zero)


def test_estimate_beta_zero(appendix_k, two_components):
    estimator = QTDABettiEstimator(precision_qubits=6, shots=None)
    assert estimator.estimate(appendix_k, 0).betti_rounded == 1
    assert estimator.estimate(two_components, 0).betti_rounded == 2


def test_error_decreases_with_precision(appendix_k):
    errors = []
    for t in (1, 3, 6):
        result = QTDABettiEstimator(precision_qubits=t, shots=None, delta=6.0).estimate(appendix_k, 1)
        errors.append(result.absolute_error)
    assert errors[0] >= errors[1] >= errors[2]
    assert errors[2] < 0.2


def test_no_k_simplices_short_circuit(hollow_triangle):
    estimator = QTDABettiEstimator(precision_qubits=3, shots=100)
    result = estimator.estimate(hollow_triangle, 2)
    assert result.betti_estimate == 0.0
    assert result.num_system_qubits == 0
    assert result.exact_betti == 0


def test_no_k_simplices_without_compute_exact_reports_no_ground_truth(hollow_triangle):
    """Regression: the num_k == 0 path must not invent exact_betti=0 when
    compute_exact=False — absolute_error would then claim a ground truth
    that was never computed."""
    estimator = QTDABettiEstimator(precision_qubits=3, shots=100)
    result = estimator.estimate(hollow_triangle, 2, compute_exact=False)
    assert result.exact_betti is None
    assert result.absolute_error is None
    assert result.rounded_error is None


def test_estimate_from_laplacian_directly(appendix_k):
    laplacian = combinatorial_laplacian(appendix_k, 1)
    estimator = QTDABettiEstimator(precision_qubits=4, shots=None, delta=6.0)
    result = estimator.estimate_from_laplacian(laplacian, exact_betti=1)
    assert result.exact_betti == 1
    assert result.absolute_error is not None
    assert result.rounded_error == 0


def test_estimate_requires_complex_type():
    estimator = QTDABettiEstimator()
    with pytest.raises(TypeError):
        estimator.estimate(np.eye(4), 1)


@pytest.mark.parametrize("backend", ["exact", "statevector"])
def test_estimate_from_laplacian_rejects_asymmetric_matrices(backend):
    """Every backend validates symmetry — eigvalsh would silently read one
    triangle of a garbage matrix on the exact fast path."""
    estimator = QTDABettiEstimator(precision_qubits=3, shots=None, backend=backend)
    with pytest.raises(ValueError, match="symmetric"):
        estimator.estimate_from_laplacian(np.array([[1.0, 5.0], [0.0, 1.0]]))


@pytest.mark.parametrize("backend", ["exact", "statevector"])
def test_estimate_from_laplacian_accepts_sparse_input(appendix_k, backend):
    laplacian = sparse.csr_matrix(combinatorial_laplacian(appendix_k, 1))
    estimator = QTDABettiEstimator(precision_qubits=4, shots=None, delta=6.0, backend=backend)
    assert estimator.estimate_from_laplacian(laplacian).betti_rounded == 1


def test_shot_sampling_reproducible_with_seed(appendix_k):
    a = QTDABettiEstimator(precision_qubits=3, shots=500, seed=11).estimate(appendix_k, 1)
    b = QTDABettiEstimator(precision_qubits=3, shots=500, seed=11).estimate(appendix_k, 1)
    assert a.betti_estimate == b.betti_estimate
    assert a.counts == b.counts


def test_estimate_betti_numbers_multiple_dimensions(appendix_k):
    estimator = QTDABettiEstimator(precision_qubits=4, shots=None)
    results = estimator.estimate_betti_numbers(appendix_k, [0, 1])
    assert [r.betti_rounded for r in results] == [1, 1]


def test_rips_pipeline_circle(circle_points):
    """The circle's loop is found, but only once the precision register can
    resolve the circle Laplacian's small non-zero eigenvalues — the same
    precision-dependence the paper's Fig. 3 reports."""
    complex_ = rips_complex(circle_points, 0.7, max_dimension=2)
    coarse = QTDABettiEstimator(precision_qubits=4, shots=None).estimate(complex_, 1)
    fine = QTDABettiEstimator(precision_qubits=8, shots=None).estimate(complex_, 1)
    assert fine.absolute_error < coarse.absolute_error
    assert fine.betti_rounded == 1


def test_zero_padding_overestimates_without_correction(appendix_k):
    """The ablation the paper motivates: zero padding inflates β̃ by the padding count."""
    identity = QTDABettiEstimator(precision_qubits=6, shots=None, delta=6.0, padding="identity")
    zero = QTDABettiEstimator(precision_qubits=6, shots=None, delta=6.0, padding="zero")
    est_identity = identity.estimate(appendix_k, 1)
    est_zero = zero.estimate(appendix_k, 1)
    assert est_identity.betti_rounded == 1
    assert est_zero.betti_rounded == pytest.approx(1 + 2)  # 2 spurious zeros from padding


def test_config_and_overrides():
    config = QTDAConfig(precision_qubits=2, shots=10)
    estimator = QTDABettiEstimator(config, shots=50)
    assert estimator.config.shots == 50
    assert estimator.config.precision_qubits == 2


def test_as_dict_contains_key_fields(appendix_k):
    result = QTDABettiEstimator(precision_qubits=3, shots=None).estimate(appendix_k, 1)
    data = result.as_dict()
    assert set(data) >= {"betti_estimate", "p_zero", "backend", "absolute_error"}


def test_betti_estimate_error_properties():
    estimate = BettiEstimate(
        betti_estimate=1.2,
        betti_rounded=1,
        p_zero=0.15,
        num_system_qubits=3,
        precision_qubits=3,
        shots=100,
        backend="exact",
        exact_betti=None,
    )
    assert estimate.absolute_error is None
    assert estimate.rounded_error is None
