"""Tests for the density-matrix simulator."""

import numpy as np
import pytest

from repro.quantum import gates as g
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix, DensityMatrixSimulator, apply_kraus
from repro.quantum.noise import NoiseModel, depolarizing_kraus
from repro.quantum.statevector import Statevector, StatevectorSimulator


def test_zero_and_mixed_constructors():
    zero = DensityMatrix.zero_state(2)
    assert zero.purity() == pytest.approx(1.0)
    mixed = DensityMatrix.maximally_mixed(2)
    assert mixed.purity() == pytest.approx(0.25)
    assert mixed.is_valid()


def test_from_statevector():
    rho = DensityMatrix.from_statevector(Statevector.basis_state(1, 1))
    assert np.allclose(rho.matrix, [[0, 0], [0, 1]])


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        DensityMatrix(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        DensityMatrix(np.zeros((3, 3)))


def test_pure_state_evolution_matches_statevector():
    circ = QuantumCircuit(2).h(0).cnot(0, 1).rz(0.4, 1)
    sv = StatevectorSimulator().run(circ)
    dm = DensityMatrixSimulator().run(circ)
    assert np.allclose(dm.matrix, sv.density_matrix(), atol=1e-10)


def test_mixed_initial_state_is_invariant_under_unitaries():
    circ = QuantumCircuit(2).h(0).cnot(0, 1).rx(1.1, 1)
    result = DensityMatrixSimulator().run(circ, initial_state=DensityMatrix.maximally_mixed(2))
    assert np.allclose(result.matrix, np.eye(4) / 4, atol=1e-10)


def test_initial_state_size_checked():
    with pytest.raises(ValueError):
        DensityMatrixSimulator().run(QuantumCircuit(2).h(0), initial_state=DensityMatrix.zero_state(1))


def test_probabilities_and_sampling():
    circ = QuantumCircuit(1).h(0)
    rho = DensityMatrixSimulator().run(circ)
    assert np.allclose(rho.probabilities(), [0.5, 0.5])
    counts = rho.sample(2000, seed=1)
    assert abs(counts.get("0", 0) / 2000 - 0.5) < 0.08


def test_expectation():
    rho = DensityMatrixSimulator().run(QuantumCircuit(1).h(0))
    assert rho.expectation(g.PAULI_X) == pytest.approx(1.0)


def test_partial_trace_of_bell_pair_is_maximally_mixed():
    circ = QuantumCircuit(2).h(0).cnot(0, 1)
    rho = DensityMatrixSimulator().run(circ)
    reduced = rho.partial_trace([1])
    assert np.allclose(reduced.matrix, np.eye(2) / 2, atol=1e-10)


def test_partial_trace_keeps_order():
    circ = QuantumCircuit(2).x(0)  # |10>
    rho = DensityMatrixSimulator().run(circ)
    keep0 = rho.partial_trace([0])
    keep1 = rho.partial_trace([1])
    assert np.allclose(keep0.matrix, [[0, 0], [0, 1]])
    assert np.allclose(keep1.matrix, [[1, 0], [0, 0]])


def test_noise_model_depolarizes_towards_identity():
    noisy_sim = DensityMatrixSimulator(noise_model=NoiseModel.depolarizing(0.5))
    circ = QuantumCircuit(1).x(0)
    rho = noisy_sim.run(circ)
    # Heavily depolarised X|0> should be close to the maximally mixed state.
    assert rho.is_valid()
    assert rho.purity() < 1.0
    assert rho.matrix[1, 1].real < 1.0


def test_apply_kraus_preserves_trace():
    rho = DensityMatrix.zero_state(2)
    tensor = rho.matrix.reshape([2] * 4)
    out = apply_kraus(tensor, depolarizing_kraus(0.3), [0], 2)
    out_mat = out.reshape(4, 4)
    assert np.trace(out_mat) == pytest.approx(1.0)
    assert DensityMatrix(out_mat).is_valid()


def test_sample_uses_measured_register():
    circ = QuantumCircuit(2).x(0).measure([0])
    counts = DensityMatrixSimulator().sample(circ, shots=50, seed=2)
    assert set(counts) == {"1"}
