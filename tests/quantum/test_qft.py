"""Tests for the QFT circuits."""

import numpy as np
import pytest

from repro.quantum.qft import inverse_qft_circuit, qft_circuit, qft_matrix


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_qft_circuit_matches_dft_matrix(n):
    assert np.allclose(qft_circuit(n).to_unitary(), qft_matrix(n), atol=1e-10)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_inverse_qft_is_adjoint(n):
    qft = qft_circuit(n).to_unitary()
    inv = inverse_qft_circuit(n).to_unitary()
    assert np.allclose(inv @ qft, np.eye(2**n), atol=1e-10)


def test_qft_on_zero_state_is_uniform():
    state = qft_circuit(3).to_unitary()[:, 0]
    assert np.allclose(np.abs(state) ** 2, np.full(8, 1 / 8))


def test_qft_matrix_is_unitary():
    m = qft_matrix(3)
    assert np.allclose(m @ m.conj().T, np.eye(8), atol=1e-12)


def test_qft_without_swaps_is_bit_reversed():
    n = 3
    no_swaps = qft_circuit(n, do_swaps=False).to_unitary()
    full = qft_matrix(n)
    # Re-ordering the output bits (bit reversal) should recover the full QFT.
    perm = [int(format(i, f"0{n}b")[::-1], 2) for i in range(2**n)]
    assert np.allclose(no_swaps[perm, :], full, atol=1e-10)


def test_gate_count_scales_quadratically():
    # n Hadamards + n(n-1)/2 controlled phases + floor(n/2) swaps.
    n = 4
    circ = qft_circuit(n)
    assert circ.num_gates == n + n * (n - 1) // 2 + n // 2
