"""Tests for Pauli-evolution (Trotter) circuit synthesis — the Fig. 7 construction."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.paulis.pauli import PauliString
from repro.paulis.pauli_sum import PauliSum
from repro.quantum.trotter import (
    exact_evolution_unitary,
    pauli_evolution_circuit,
    pauli_string_evolution_circuit,
    trotter_unitary_error,
)


@pytest.mark.parametrize("label", ["Z", "X", "Y", "ZZ", "XY", "YX", "XYZ", "IZI", "YIY"])
def test_single_string_evolution_is_exact(label):
    angle = 0.731
    circ = pauli_string_evolution_circuit(label, angle)
    expected = expm(1j * angle * PauliString(label).to_matrix())
    assert np.allclose(circ.to_unitary(), expected, atol=1e-10)


def test_identity_string_gives_global_phase():
    circ = pauli_string_evolution_circuit("II", 0.5)
    assert np.allclose(circ.to_unitary(), np.exp(0.5j) * np.eye(4), atol=1e-12)


def test_label_length_validation():
    with pytest.raises(ValueError):
        pauli_string_evolution_circuit("XZ", 0.1, num_qubits=3)


def test_commuting_terms_single_step_exact():
    hamiltonian = PauliSum({"ZI": 0.4, "IZ": -0.9, "ZZ": 0.2})
    circ = pauli_evolution_circuit(hamiltonian, trotter_steps=1)
    assert np.allclose(circ.to_unitary(), exact_evolution_unitary(hamiltonian), atol=1e-10)


def test_error_decreases_with_steps():
    hamiltonian = PauliSum({"XX": 0.7, "ZI": 0.5, "IY": -0.3})
    errors = [trotter_unitary_error(hamiltonian, trotter_steps=s) for s in (1, 2, 4, 8)]
    assert errors[0] > errors[-1]
    assert all(errors[i] >= errors[i + 1] - 1e-12 for i in range(len(errors) - 1))


def test_second_order_beats_first_order():
    hamiltonian = PauliSum({"XX": 0.7, "ZI": 0.5, "IY": -0.3})
    first = trotter_unitary_error(hamiltonian, trotter_steps=2, order=1)
    second = trotter_unitary_error(hamiltonian, trotter_steps=2, order=2)
    assert second < first


def test_time_parameter():
    hamiltonian = PauliSum({"Z": 1.3})
    circ = pauli_evolution_circuit(hamiltonian, time=0.5)
    assert np.allclose(circ.to_unitary(), expm(0.5j * 1.3 * PauliString("Z").to_matrix()), atol=1e-10)


def test_identity_term_preserved_as_phase():
    """The identity coefficient must appear as a global phase (it matters inside controlled-U)."""
    hamiltonian = PauliSum({"II": 1.1, "ZZ": 0.3})
    circ = pauli_evolution_circuit(hamiltonian, trotter_steps=1)
    assert np.allclose(circ.to_unitary(), exact_evolution_unitary(hamiltonian), atol=1e-10)


def test_non_hermitian_rejected():
    with pytest.raises(ValueError):
        pauli_evolution_circuit(PauliSum({"X": 1.0j}))


def test_invalid_parameters_rejected():
    hamiltonian = PauliSum({"X": 1.0})
    with pytest.raises(ValueError):
        pauli_evolution_circuit(hamiltonian, trotter_steps=0)
    with pytest.raises(ValueError):
        pauli_evolution_circuit(hamiltonian, order=3)


def test_empty_hamiltonian_gives_empty_circuit():
    circ = pauli_evolution_circuit(PauliSum.zero(2))
    assert circ.num_gates == 0
