"""Tests for the quantum-channel layer: Kraus factories, QuantumChannel, NoiseSpec."""

import numpy as np
import pytest

from repro.quantum.channels import (
    NOISE_CHANNELS,
    TWO_QUBIT_NOISE_CHANNELS,
    NoiseSpec,
    QuantumChannel,
    apply_readout_error,
    is_trace_preserving,
)
from repro.quantum.circuit import QuantumCircuit


# ---------------------------------------------------------------------------
# QuantumChannel
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", NOISE_CHANNELS + TWO_QUBIT_NOISE_CHANNELS)
@pytest.mark.parametrize("strength", [0.0, 0.01, 0.3, 1.0])
def test_every_builtin_channel_is_trace_preserving(name, strength):
    channel = QuantumChannel.from_name(name, strength)
    assert is_trace_preserving(channel.kraus_ops)
    dim = 2**channel.arity
    assert all(k.shape == (dim, dim) for k in channel.kraus_ops)


@pytest.mark.parametrize(
    "name,mixed_unitary",
    [
        ("depolarizing", True),
        ("bit-flip", True),
        ("phase-flip", True),
        ("two-qubit-depolarizing", True),
        ("correlated-zz", True),
        ("amplitude-damping", False),
    ],
)
def test_mixed_unitary_detection(name, mixed_unitary):
    channel = QuantumChannel.from_name(name, 0.2)
    assert channel.is_mixed_unitary is mixed_unitary
    if mixed_unitary:
        # The branch table is a categorical distribution over unitaries.
        assert channel.branch_probabilities.sum() == pytest.approx(1.0)
        assert channel.cumulative_probabilities[-1] == pytest.approx(1.0)
        dim = 2**channel.arity
        for u in channel.unitary_branches:
            assert np.allclose(u.conj().T @ u, np.eye(dim), atol=1e-12)
        # The √(1−p)·I branch divides out to the identity bit-exactly, and
        # the sampler's skip-list marks it.
        assert channel.identity_branches[0]
        assert not channel.identity_branches[1:].any()
    else:
        assert channel.branch_probabilities is None
        assert channel.unitary_branches is None
        assert channel.identity_branches is None


def test_from_name_rejects_unknown_channels():
    with pytest.raises(ValueError, match="available channels"):
        QuantumChannel.from_name("dephasing-42", 0.1)


def test_channel_rejects_non_trace_preserving_kraus():
    with pytest.raises(ValueError, match="completeness"):
        QuantumChannel(name="broken", kraus_ops=(np.eye(2) * 0.5,), arity=1)


# ---------------------------------------------------------------------------
# Readout error
# ---------------------------------------------------------------------------


def test_readout_error_zero_is_identity():
    dist = np.array([0.7, 0.1, 0.1, 0.1])
    assert np.array_equal(apply_readout_error(dist, 0.0), dist)


def test_readout_error_single_bit_confusion():
    dist = np.array([1.0, 0.0])
    np.testing.assert_allclose(apply_readout_error(dist, 0.1), [0.9, 0.1])


def test_readout_error_preserves_normalisation_and_mixes_towards_uniform():
    rng = np.random.default_rng(0)
    dist = rng.random(8)
    dist /= dist.sum()
    out = apply_readout_error(dist, 0.25)
    assert out.sum() == pytest.approx(1.0)
    # The confusion contraction is a doubly stochastic map: it contracts
    # towards the uniform distribution.
    uniform = np.full(8, 1 / 8)
    assert np.abs(out - uniform).sum() < np.abs(dist - uniform).sum()
    # p = 1/2 is complete scrambling.
    np.testing.assert_allclose(apply_readout_error(dist, 0.5), uniform)


def test_readout_error_validates_inputs():
    with pytest.raises(ValueError):
        apply_readout_error(np.array([1.0, 0.0]), 1.5)
    with pytest.raises(ValueError, match="power of two"):
        apply_readout_error(np.array([0.5, 0.3, 0.2]), 0.1)


# ---------------------------------------------------------------------------
# NoiseSpec
# ---------------------------------------------------------------------------


def test_noise_spec_round_trip():
    spec = NoiseSpec(
        channel="depolarizing",
        strength=0.01,
        gate_strengths={"CNOT": 0.05, "H": 0.0},
        two_qubit_channel="correlated-zz",
        two_qubit_strength=0.02,
        readout_error=0.03,
    )
    assert NoiseSpec.from_dict(spec.as_dict()) == spec


def test_noise_spec_accepts_tuple_of_pairs_gate_strengths():
    # The wire layer freezes mappings into sorted tuples of pairs.
    frozen = NoiseSpec(channel="bit-flip", strength=0.1, gate_strengths=(("CNOT", 0.2),))
    assert frozen.gate_strengths == {"CNOT": 0.2}
    assert frozen == NoiseSpec(
        channel="bit-flip", strength=0.1, gate_strengths={"CNOT": 0.2}
    )


def test_noise_spec_validation():
    with pytest.raises(ValueError, match="requires a channel"):
        NoiseSpec(strength=0.1)
    with pytest.raises(ValueError, match="requires a baseline channel"):
        NoiseSpec(gate_strengths={"CNOT": 0.1})
    with pytest.raises(ValueError, match="requires a two_qubit_channel"):
        NoiseSpec(two_qubit_strength=0.1)
    with pytest.raises(ValueError, match="channel must be one of"):
        NoiseSpec(channel="two-qubit-depolarizing", strength=0.1)  # wrong arity slot
    with pytest.raises(ValueError, match="two_qubit_channel must be one of"):
        NoiseSpec(two_qubit_channel="depolarizing", two_qubit_strength=0.1)
    with pytest.raises(ValueError):
        NoiseSpec(channel="depolarizing", strength=1.5)
    with pytest.raises(ValueError):
        NoiseSpec(readout_error=-0.1)


def test_noise_spec_classification():
    assert NoiseSpec().is_noiseless
    assert not NoiseSpec().has_gate_noise
    readout_only = NoiseSpec(readout_error=0.05)
    assert not readout_only.has_gate_noise
    assert not readout_only.is_noiseless
    assert NoiseSpec(channel="depolarizing", strength=0.1).has_gate_noise
    # A zero-strength baseline with a positive per-gate override still counts.
    override_only = NoiseSpec(channel="depolarizing", strength=0.0, gate_strengths={"CNOT": 0.1})
    assert override_only.has_gate_noise
    zeroed = NoiseSpec(channel="depolarizing", strength=0.0)
    assert not zeroed.has_gate_noise


def test_channels_for_gate_placement():
    spec = NoiseSpec(
        channel="depolarizing",
        strength=0.01,
        gate_strengths={"H": 0.04},
        two_qubit_channel="two-qubit-depolarizing",
        two_qubit_strength=0.02,
    )
    circuit = QuantumCircuit(2).h(0).cnot(0, 1)
    h_gate, cnot_gate = circuit.gates

    placed = spec.channels_for_gate(h_gate)
    assert len(placed) == 1  # single qubit touched, no 2q channel
    channel, qubits = placed[0]
    assert qubits == (0,)
    # Per-gate-class override wins over the baseline strength.
    assert channel == QuantumChannel.from_name("depolarizing", 0.04)

    placed = spec.channels_for_gate(cnot_gate)
    # One baseline channel per touched qubit, then the correlated channel.
    assert [qubits for _, qubits in placed] == [(0,), (1,), (0, 1)]
    assert placed[0][0] == QuantumChannel.from_name("depolarizing", 0.01)
    assert placed[2][0] == QuantumChannel.from_name("two-qubit-depolarizing", 0.02)


def test_channels_for_gate_zero_override_disables_the_class():
    spec = NoiseSpec(channel="depolarizing", strength=0.01, gate_strengths={"H": 0.0})
    circuit = QuantumCircuit(1).h(0)
    assert spec.channels_for_gate(circuit.gates[0]) == []


def test_from_legacy_matches_the_old_pair():
    assert NoiseSpec.from_legacy("bit-flip", 0.2) == NoiseSpec(channel="bit-flip", strength=0.2)
    assert NoiseSpec.from_legacy(None, 0.0).is_noiseless
