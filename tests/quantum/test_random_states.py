"""Tests for random quantum-object generators."""

import numpy as np
import pytest

from repro.quantum.random_states import (
    random_density_matrix,
    random_hermitian,
    random_statevector,
    random_unitary,
)


def test_random_statevector_normalised_and_reproducible():
    a = random_statevector(3, seed=1)
    b = random_statevector(3, seed=1)
    assert a.norm() == pytest.approx(1.0)
    assert np.allclose(a.amplitudes, b.amplitudes)


def test_random_unitary_is_unitary():
    u = random_unitary(2, seed=2)
    assert np.allclose(u @ u.conj().T, np.eye(4), atol=1e-10)


def test_random_hermitian_is_hermitian():
    h = random_hermitian(2, seed=3)
    assert np.allclose(h, h.conj().T)


def test_random_density_matrix_valid():
    rho = random_density_matrix(2, seed=4)
    assert np.trace(rho) == pytest.approx(1.0)
    assert np.all(np.linalg.eigvalsh(rho) > -1e-10)


def test_random_density_matrix_rank_control():
    rho = random_density_matrix(2, rank=1, seed=5)
    eigs = np.sort(np.linalg.eigvalsh(rho))[::-1]
    assert eigs[0] == pytest.approx(1.0)
    assert np.allclose(eigs[1:], 0.0, atol=1e-10)
    with pytest.raises(ValueError):
        random_density_matrix(2, rank=9)
