"""Self-tests for the ``xp`` array-module seam (DESIGN.md §11, §14).

The seam has three resolution layers — ``set_array_module`` override,
``REPRO_ARRAY_MODULE`` environment variable, autodetection — and a GPU path
that is exercised when CuPy is present and *visibly skipped* when it is not
(never silently absent), so the seam can't rot unnoticed on CPU-only CI.
"""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.engine import (
    EnsembleExecutor,
    array_module,
    set_array_module,
    to_host,
)
from repro.quantum.sharding import device_backend_available


@pytest.fixture(autouse=True)
def _clean_seam(monkeypatch):
    """Every test starts from env-driven resolution with no override pinned."""
    set_array_module(None)
    monkeypatch.delenv("REPRO_ARRAY_MODULE", raising=False)
    yield
    set_array_module(None)


def _demo_circuit():
    circuit = QuantumCircuit(3)
    circuit.h(0).cnot(0, 1).h(2).cnot(1, 2)
    return circuit


def _cupy_or_skip():
    available, reason = device_backend_available()
    if not available:
        pytest.skip(f"cupy path not exercisable here: {reason}")
    import cupy  # pragma: no cover - requires CUDA hardware

    return cupy  # pragma: no cover - requires CUDA hardware


# ---------------------------------------------------------------------------
# Environment-variable resolution
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("value", ["numpy", "np", " NumPy "])
def test_env_var_forces_numpy(monkeypatch, value):
    monkeypatch.setenv("REPRO_ARRAY_MODULE", value)
    assert array_module() is np


def test_env_var_rejects_unknown_module(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_MODULE", "torch")
    with pytest.raises(ValueError, match="REPRO_ARRAY_MODULE"):
        array_module()


def test_override_beats_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_MODULE", "torch")  # would raise if consulted

    class FakeModule:
        pass

    set_array_module(FakeModule)
    assert array_module() is FakeModule


def test_env_var_cupy_is_a_hard_requirement(monkeypatch):
    """``REPRO_ARRAY_MODULE=cupy`` must never silently fall back to numpy."""
    monkeypatch.setenv("REPRO_ARRAY_MODULE", "cupy")
    available, _ = device_backend_available()
    if available:  # pragma: no cover - requires CUDA hardware
        import cupy

        assert array_module() is cupy
    else:
        with pytest.raises(ImportError):
            array_module()


# ---------------------------------------------------------------------------
# The engine under an explicitly pinned module
# ---------------------------------------------------------------------------


def test_engine_under_explicit_numpy_matches_default(monkeypatch):
    circuit = _demo_circuit()
    basis = list(range(8))
    default = EnsembleExecutor(fuse=True).basis_ensemble_distribution(circuit, [0], basis)
    monkeypatch.setenv("REPRO_ARRAY_MODULE", "numpy")
    pinned_executor = EnsembleExecutor(fuse=True)
    assert pinned_executor.xp is np
    pinned = pinned_executor.basis_ensemble_distribution(circuit, [0], basis)
    assert np.array_equal(pinned, default)


def test_engine_run_under_explicit_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_ARRAY_MODULE", "numpy")
    circuit = _demo_circuit()
    states = np.eye(8, dtype=complex)[:, :4]
    out = EnsembleExecutor(fuse=False).run(circuit, states)
    assert isinstance(out, np.ndarray)
    np.testing.assert_allclose((np.abs(out) ** 2).sum(axis=0), 1.0, atol=1e-12)


# ---------------------------------------------------------------------------
# The cupy path: exercised when present, visibly skipped when not
# ---------------------------------------------------------------------------


def test_device_backend_available_gives_a_clear_reason():
    available, reason = device_backend_available()
    assert isinstance(available, bool)
    assert isinstance(reason, str) and reason  # never an empty excuse


def test_cupy_engine_matches_numpy_engine():
    cupy = _cupy_or_skip()
    circuit = _demo_circuit()  # pragma: no cover - requires CUDA hardware
    basis = list(range(8))
    via_numpy = EnsembleExecutor(fuse=True, xp=np).basis_ensemble_distribution(
        circuit, [0, 1], basis
    )
    via_cupy = EnsembleExecutor(fuse=True, xp=cupy).basis_ensemble_distribution(
        circuit, [0, 1], basis
    )
    np.testing.assert_allclose(to_host(via_cupy), via_numpy, atol=1e-10)


def test_cupy_to_host_round_trip():
    cupy = _cupy_or_skip()
    device_array = cupy.arange(6, dtype=float)  # pragma: no cover - requires CUDA hardware
    host = to_host(device_array)
    assert isinstance(host, np.ndarray)
    np.testing.assert_array_equal(host, np.arange(6, dtype=float))
