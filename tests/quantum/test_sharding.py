"""Tests for the sharded execution layer (DESIGN.md §14).

The load-bearing contract: a :class:`ShardedExecutor` is **bit-identical**
to the unsharded :class:`EnsembleExecutor` for the same inputs and seed, on
both the ensemble and the trajectory route, for every CPU shard backend and
any shard count.  Everything else — plan shapes, moment merging, pool
lifecycle, device gating — supports that contract.
"""

import numpy as np
import pytest

import repro.quantum.sharding as sharding
from repro.quantum.channels import NoiseSpec
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.engine import EnsembleExecutor
from repro.quantum.sharding import (
    SHARD_BACKENDS,
    ShardPlan,
    ShardedExecutor,
    device_backend_available,
    get_shard_pool,
    merge_moments,
    moments_from_rows,
    moments_mean_and_sem,
    shutdown_shard_pools,
)

CPU_BACKENDS = ("serial", "thread", "process")


def _random_unitary(rng, k):
    m = rng.standard_normal((2**k, 2**k)) + 1j * rng.standard_normal((2**k, 2**k))
    q, _ = np.linalg.qr(m)
    return q


def _random_circuit(rng, num_qubits, num_gates, max_gate_qubits=2):
    circ = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        k = int(rng.integers(1, max_gate_qubits + 1))
        qubits = list(rng.choice(num_qubits, size=k, replace=False))
        circ.unitary(_random_unitary(rng, k), qubits)
    return circ


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("total,shards", [(1, 1), (7, 3), (16, 4), (16, 5), (3, 8)])
def test_shard_plan_balanced_covers_everything_once(total, shards):
    plan = ShardPlan.balanced(total, shards)
    assert plan.total == total
    assert plan.num_shards == min(shards, total)  # clamped: no empty shard
    covered = [i for start, stop in plan.bounds for i in range(start, stop)]
    assert covered == list(range(total))  # contiguous, ordered, exactly once
    sizes = [stop - start for start, stop in plan.bounds]
    assert max(sizes) - min(sizes) <= 1  # near-equal
    assert all(size >= 1 for size in sizes)
    # slices() is the same partition in slice form.
    assert [list(range(total))[s] for s in plan.slices()] == [
        list(range(start, stop)) for start, stop in plan.bounds
    ]


def test_shard_plan_rejects_degenerate_inputs():
    with pytest.raises(ValueError):
        ShardPlan.balanced(0, 2)
    with pytest.raises(ValueError):
        ShardPlan.balanced(4, 0)


# ---------------------------------------------------------------------------
# Exact moment merging (Chan / Welford)
# ---------------------------------------------------------------------------


def test_merge_moments_matches_concatenated_rows():
    rng = np.random.default_rng(42)
    blocks = [rng.random((t, 8)) for t in (1, 3, 5, 2)]
    merged = (0, np.zeros(8), np.zeros(8))
    for block in blocks:
        merged = merge_moments(merged, moments_from_rows(block))
    count, mean, m2 = merged
    all_rows = np.vstack(blocks)
    ref_count, ref_mean, ref_m2 = moments_from_rows(all_rows)
    assert count == ref_count == all_rows.shape[0]
    np.testing.assert_allclose(mean, ref_mean, atol=1e-13)
    np.testing.assert_allclose(m2, ref_m2, atol=1e-13)
    # And the SEM reduction equals the ddof=1 formula over all rows.
    got_mean, got_sem = moments_mean_and_sem(merged)
    expected_sem = all_rows.std(axis=0, ddof=1) / np.sqrt(all_rows.shape[0])
    np.testing.assert_allclose(got_mean, ref_mean, atol=1e-13)
    np.testing.assert_allclose(got_sem, expected_sem, atol=1e-13)


def test_merge_moments_with_empty_partition_is_identity():
    rows = np.random.default_rng(0).random((4, 3))
    moments = moments_from_rows(rows)
    empty = (0, np.zeros(3), np.zeros(3))
    assert merge_moments(empty, moments) is moments
    assert merge_moments(moments, empty) is moments


def test_moments_mean_and_sem_single_row_has_zero_sem():
    mean, sem = moments_mean_and_sem(moments_from_rows(np.ones((1, 4))))
    np.testing.assert_array_equal(mean, np.ones(4))
    np.testing.assert_array_equal(sem, np.zeros(4))


# ---------------------------------------------------------------------------
# Bit-identity: ensemble route
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", CPU_BACKENDS)
@pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
def test_sharded_ensemble_distribution_is_bit_identical(backend, num_shards):
    # column_block=4 gives 4 evolution blocks over the 16 members, so every
    # shard count here actually distributes work (the default width of 16
    # would clamp them all to one shard at this batch size).
    rng = np.random.default_rng(2024)
    n = 4
    circuit = _random_circuit(rng, n, num_gates=10)
    basis = list(range(2**n))
    weights = rng.random(len(basis))
    reference = EnsembleExecutor(fuse=True, column_block=4).basis_ensemble_distribution(
        circuit, [0, 1], basis, weights=weights
    )
    sharded = ShardedExecutor(
        num_shards, backend=backend, column_block=4
    ).basis_ensemble_distribution(circuit, [0, 1], basis, weights=weights)
    assert np.array_equal(sharded, reference)  # bitwise, not approx


def test_sharded_ensemble_is_bit_identical_at_default_width():
    rng = np.random.default_rng(2025)
    n = 5
    circuit = _random_circuit(rng, n, num_gates=10)
    basis = list(range(2**n))  # 32 members = two default-width blocks
    reference = EnsembleExecutor(fuse=True).basis_ensemble_distribution(
        circuit, [0, 1], basis
    )
    sharded = ShardedExecutor(2, backend="serial").basis_ensemble_distribution(
        circuit, [0, 1], basis
    )
    assert np.array_equal(sharded, reference)


@pytest.mark.parametrize("backend", CPU_BACKENDS)
def test_sharded_member_marginals_match_unsharded(backend):
    rng = np.random.default_rng(99)
    n = 3
    circuit = _random_circuit(rng, n, num_gates=8)
    basis = list(range(2**n))
    reference = EnsembleExecutor(fuse=True, column_block=2).basis_ensemble_member_marginals(
        circuit, [0], basis
    )
    sharded = ShardedExecutor(3, backend=backend, column_block=2).basis_ensemble_member_marginals(
        circuit, [0], basis
    )
    assert np.array_equal(sharded, reference)


def test_sharded_ensemble_respects_memory_budget_sub_chunking():
    """A tight memory budget narrows the evolution block below column_block;
    the shard cut follows the narrowed width and the bytes still match."""
    rng = np.random.default_rng(5)
    n = 4
    circuit = _random_circuit(rng, n, num_gates=8)
    basis = list(range(2**n))
    budget = (2**n) * 16 * 3
    narrow = ShardedExecutor(2, backend="serial", memory_budget_bytes=budget)
    assert narrow._reference.evolution_block(n) == 3  # budget caps the pinned 16
    wide = EnsembleExecutor(fuse=True, memory_budget_bytes=budget)
    reference = wide.basis_ensemble_distribution(circuit, [0, 1], basis)
    assert np.array_equal(
        narrow.basis_ensemble_distribution(circuit, [0, 1], basis), reference
    )


# ---------------------------------------------------------------------------
# Bit-identity: trajectory route
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", CPU_BACKENDS)
@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_sharded_trajectory_distribution_is_bit_identical(backend, num_shards):
    rng_ref = np.random.default_rng(7)
    rng_shard = np.random.default_rng(7)
    n = 3
    circuit = _random_circuit(np.random.default_rng(1), n, num_gates=6)
    spec = NoiseSpec(channel="depolarizing", strength=0.02)
    basis = list(range(2**n))
    ref_mean, ref_sem = EnsembleExecutor(fuse=True).trajectory_basis_distribution(
        circuit, [0], basis, spec, rng_ref, n_trajectories=6
    )
    got_mean, got_sem = ShardedExecutor(
        num_shards, backend=backend
    ).trajectory_basis_distribution(circuit, [0], basis, spec, rng_shard, n_trajectories=6)
    assert np.array_equal(got_mean, ref_mean)
    assert np.array_equal(got_sem, ref_sem)


def test_sharded_trajectory_with_weights_is_bit_identical():
    """Raw weights are shipped and each worker re-runs the shared
    normalisation — pre-normalising in the coordinator would double-divide."""
    rng_ref = np.random.default_rng(21)
    rng_shard = np.random.default_rng(21)
    n = 3
    circuit = _random_circuit(np.random.default_rng(2), n, num_gates=6)
    spec = NoiseSpec(channel="bit-flip", strength=0.05)
    basis = list(range(2**n))
    weights = list(np.random.default_rng(3).random(len(basis)))
    ref = EnsembleExecutor(fuse=True).trajectory_basis_distribution(
        circuit, [0, 2], basis, spec, rng_ref, n_trajectories=5, weights=weights
    )
    got = ShardedExecutor(3, backend="serial").trajectory_basis_distribution(
        circuit, [0, 2], basis, spec, rng_shard, n_trajectories=5, weights=weights
    )
    assert np.array_equal(got[0], ref[0])
    assert np.array_equal(got[1], ref[1])


def test_trajectory_moments_reduction_matches_rows_reduction():
    rng_a = np.random.default_rng(33)
    rng_b = np.random.default_rng(33)
    n = 3
    circuit = _random_circuit(np.random.default_rng(4), n, num_gates=6)
    spec = NoiseSpec(channel="phase-flip", strength=0.03)
    basis = list(range(2**n))
    executor = ShardedExecutor(3, backend="serial")
    rows_mean, rows_sem = executor.trajectory_basis_distribution(
        circuit, [0], basis, spec, rng_a, n_trajectories=7, reduction="rows"
    )
    mom_mean, mom_sem = executor.trajectory_basis_distribution(
        circuit, [0], basis, spec, rng_b, n_trajectories=7, reduction="moments"
    )
    np.testing.assert_allclose(mom_mean, rows_mean, atol=1e-12)
    np.testing.assert_allclose(mom_sem, rows_sem, atol=1e-12)


def test_trajectory_rejects_unknown_reduction_and_bad_weights():
    circuit = QuantumCircuit(2).h(0)
    spec = NoiseSpec(channel="depolarizing", strength=0.01)
    executor = ShardedExecutor(2, backend="serial")
    with pytest.raises(ValueError, match="reduction"):
        executor.trajectory_basis_distribution(
            circuit, [0], [0, 1], spec, np.random.default_rng(0), reduction="median"
        )
    with pytest.raises(ValueError):
        executor.trajectory_basis_distribution(
            circuit, [0], [0, 1], spec, np.random.default_rng(0), weights=[1.0]
        )


# ---------------------------------------------------------------------------
# Construction, identity, device gating
# ---------------------------------------------------------------------------


def test_sharded_executor_validates_construction():
    with pytest.raises(ValueError):
        ShardedExecutor(0)
    with pytest.raises(ValueError):
        ShardedExecutor(2, backend="mpi")
    assert "device" in SHARD_BACKENDS


def test_cpu_executor_identity_and_close():
    executor = ShardedExecutor(2, backend="serial")
    assert executor.device_label == "cpu"
    assert executor.devices is None
    executor.close()  # documented no-op; must not raise


def test_device_backend_gates_on_availability():
    available, reason = device_backend_available()
    assert isinstance(reason, str) and reason
    if available:  # pragma: no cover - requires CUDA hardware
        executor = ShardedExecutor(2, backend="device", devices=(0,))
        assert executor.device_label == "cuda:0"
    else:
        with pytest.raises(RuntimeError, match="device shard backend unavailable"):
            ShardedExecutor(2, backend="device")


def test_gate_plan_is_computed_once_by_the_coordinator():
    rng = np.random.default_rng(8)
    circuit = _random_circuit(rng, 3, num_gates=12)
    executor = ShardedExecutor(2, backend="serial")
    plan = executor.gate_plan(circuit)
    assert len(plan) < circuit.num_gates  # fusion actually engaged
    # Passing the precomputed plan gives the same bytes as recomputing it.
    basis = list(range(8))
    assert np.array_equal(
        executor.basis_ensemble_distribution(circuit, [0], basis, plan=plan),
        executor.basis_ensemble_distribution(circuit, [0], basis),
    )


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------


def test_shard_pools_are_cached_and_shutdown_is_idempotent():
    pool_a = get_shard_pool("thread", 2)
    pool_b = get_shard_pool("thread", 2)
    assert pool_a is pool_b
    assert get_shard_pool("thread", 3) is not pool_a
    with pytest.raises(ValueError):
        get_shard_pool("serial", 2)
    shutdown_shard_pools()
    shutdown_shard_pools()  # idempotent
    # Pools recreate on demand after shutdown.
    fresh = get_shard_pool("thread", 2)
    assert fresh is not pool_a
    shutdown_shard_pools()


# ---------------------------------------------------------------------------
# Once-per-shard IR shipping (worker-side fingerprint cache)
# ---------------------------------------------------------------------------


def test_repeated_process_requests_ship_ir_once_and_stay_bit_identical():
    """After the first request the coordinator sends only the fingerprint;
    the resident worker cache must reproduce the exact same bytes."""
    rng = np.random.default_rng(31)
    n = 4
    circuit = _random_circuit(rng, n, num_gates=10)
    basis = list(range(2**n))
    reference = EnsembleExecutor(fuse=True, column_block=4).basis_ensemble_distribution(
        circuit, [0, 1], basis
    )
    executor = ShardedExecutor(2, backend="process", column_block=4)
    pool = get_shard_pool("process", 2)
    first = executor.basis_ensemble_distribution(circuit, [0, 1], basis)
    assert executor._ensemble_ir_key(circuit) in sharding._shipped_ir_keys(pool)
    second = executor.basis_ensemble_distribution(circuit, [0, 1], basis)  # key-only send
    assert np.array_equal(first, reference)
    assert np.array_equal(second, reference)
    shutdown_shard_pools()


def test_process_ensemble_recovers_from_worker_cache_miss():
    """Pretend the plan was already shipped (it was not): every worker
    answers with the miss sentinel and the coordinator resends with IR."""
    rng = np.random.default_rng(32)
    n = 4
    circuit = _random_circuit(rng, n, num_gates=10)
    basis = list(range(2**n))
    reference = EnsembleExecutor(fuse=True, column_block=4).basis_ensemble_distribution(
        circuit, [0, 1], basis
    )
    shutdown_shard_pools()  # fresh pool: worker caches are empty
    executor = ShardedExecutor(2, backend="process", column_block=4)
    pool = get_shard_pool("process", 2)
    sharding._shipped_ir_keys(pool).add(executor._ensemble_ir_key(circuit))
    result = executor.basis_ensemble_distribution(circuit, [0, 1], basis)
    assert np.array_equal(result, reference)
    shutdown_shard_pools()


def test_process_trajectory_recovers_from_worker_cache_miss():
    rng = np.random.default_rng(33)
    n = 3
    circuit = _random_circuit(rng, n, num_gates=6)
    basis = list(range(2**n))
    spec = NoiseSpec(channel="depolarizing", strength=0.02)
    reference = EnsembleExecutor(fuse=False).trajectory_basis_distribution(
        circuit, [0], basis, spec, np.random.default_rng(7), n_trajectories=4
    )
    shutdown_shard_pools()
    executor = ShardedExecutor(2, backend="process")
    pool = get_shard_pool("process", 2)
    sharding._shipped_ir_keys(pool).add(executor._trajectory_ir_key(circuit))
    mean, sem = executor.trajectory_basis_distribution(
        circuit, [0], basis, spec, np.random.default_rng(7), n_trajectories=4
    )
    assert np.array_equal(mean, reference[0])
    assert np.array_equal(sem, reference[1])
    shutdown_shard_pools()


def test_worker_ir_cache_is_bounded():
    sharding._WORKER_IR_CACHE.clear()
    for index in range(sharding._WORKER_IR_CAPACITY + 3):
        sharding._worker_ir_put(f"plan:{index}", object())
    assert len(sharding._WORKER_IR_CACHE) == sharding._WORKER_IR_CAPACITY
    # FIFO: the oldest keys were evicted, the newest survive.
    assert "plan:0" not in sharding._WORKER_IR_CACHE
    assert f"plan:{sharding._WORKER_IR_CAPACITY + 2}" in sharding._WORKER_IR_CACHE
    sharding._WORKER_IR_CACHE.clear()
