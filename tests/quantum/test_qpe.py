"""Tests for quantum phase estimation — circuit and analytical forms."""

import numpy as np
import pytest

from repro.quantum import gates as g
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.qpe import (
    PhaseEstimation,
    phase_estimation_circuit,
    qpe_outcome_distribution,
    qpe_probability_kernel,
)
from repro.quantum.statevector import StatevectorSimulator


def _qpe_readout(unitary, eigenstate, num_precision):
    """Exact readout distribution of the QPE circuit for a given eigenstate."""
    circ = phase_estimation_circuit(unitary, num_precision)
    # Precision register |0...0>, system register = eigenstate.
    precision_zero = np.eye(1, 2**num_precision, 0).ravel()
    full = np.kron(precision_zero, np.asarray(eigenstate, dtype=complex))
    return StatevectorSimulator().probabilities(circ, initial_state=full)


def test_exact_phase_is_read_exactly():
    # T gate has eigenvalues 1 and e^{iπ/4}; phase of |1> is 1/8.
    probs = _qpe_readout(g.T_GATE, np.array([0.0, 1.0]), 3)
    assert np.argmax(probs) == 1  # 001 -> θ = 1/8
    assert probs[1] == pytest.approx(1.0, abs=1e-9)


def test_phase_zero_eigenstate():
    probs = _qpe_readout(g.PAULI_Z, np.array([1.0, 0.0]), 3)
    assert probs[0] == pytest.approx(1.0, abs=1e-9)


def test_phase_half_eigenstate():
    probs = _qpe_readout(g.PAULI_Z, np.array([0.0, 1.0]), 2)
    assert np.argmax(probs) == 2  # 10 -> θ = 1/2
    assert probs[2] == pytest.approx(1.0, abs=1e-9)


def test_inexact_phase_spreads_but_peaks_at_nearest():
    theta = 0.3
    unitary = np.diag([1.0, np.exp(2j * np.pi * theta)])
    probs = _qpe_readout(unitary, np.array([0.0, 1.0]), 3)
    # Nearest 3-bit fraction to 0.3 is 2/8 = 0.25 -> outcome 2.
    assert np.argmax(probs) == 2
    assert probs[2] < 1.0


def test_circuit_form_matches_analytical_kernel():
    theta = 0.3
    unitary = np.diag([1.0, np.exp(2j * np.pi * theta)])
    circuit_probs = _qpe_readout(unitary, np.array([0.0, 1.0]), 3)
    kernel = qpe_probability_kernel(theta, 3)
    assert np.allclose(circuit_probs, kernel, atol=1e-9)


def test_kernel_normalisation_and_exact_case():
    kernel = qpe_probability_kernel(0.25, 4)
    assert kernel.sum() == pytest.approx(1.0)
    assert kernel[4] == pytest.approx(1.0)  # 0.25 * 16 = 4 exactly representable


def test_kernel_vectorised_shape():
    out = qpe_probability_kernel(np.array([0.1, 0.2, 0.9]), 3)
    assert out.shape == (3, 8)
    assert np.allclose(out.sum(axis=1), 1.0)


def test_outcome_distribution_uniform_weights():
    phases = [0.0, 0.5]
    dist = qpe_outcome_distribution(phases, 2)
    assert dist[0] == pytest.approx(0.5)
    assert dist[2] == pytest.approx(0.5)


def test_outcome_distribution_custom_weights():
    dist = qpe_outcome_distribution([0.0, 0.5], 2, weights=[0.75, 0.25])
    assert dist[0] == pytest.approx(0.75)


def test_outcome_distribution_validation():
    with pytest.raises(ValueError):
        qpe_outcome_distribution([], 2)
    with pytest.raises(ValueError):
        qpe_outcome_distribution([0.1], 2, weights=[0.5, 0.5])
    with pytest.raises(ValueError):
        qpe_outcome_distribution([0.1, 0.2], 2, weights=[-1.0, 2.0])


def test_phase_estimation_wrapper():
    pe = PhaseEstimation(g.S_GATE, num_precision=3)
    assert pe.num_system_qubits == 1
    phases = np.sort(pe.eigenphases())
    assert np.allclose(phases, [0.0, 0.25])
    dist = pe.outcome_distribution()
    assert dist[0] == pytest.approx(0.5)
    assert dist[2] == pytest.approx(0.5)  # 010 = 2 -> θ = 1/4
    assert pe.circuit().num_qubits == 4


def test_circuit_unitary_input_as_circuit():
    """Passing U as a circuit (gate-by-gate controlled) matches the dense route."""
    u_circ = QuantumCircuit(1).t(0)
    dense = phase_estimation_circuit(g.T_GATE, 2)
    gatewise = phase_estimation_circuit(u_circ, 2)
    init = np.zeros(8, dtype=complex)
    init[1] = 1.0  # |00>|1>
    sim = StatevectorSimulator()
    assert np.allclose(
        sim.probabilities(dense, initial_state=init),
        sim.probabilities(gatewise, initial_state=init),
        atol=1e-9,
    )


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        phase_estimation_circuit(np.eye(3), 2)
    with pytest.raises(ValueError):
        phase_estimation_circuit(g.PAULI_Z, 2, num_system=2)
