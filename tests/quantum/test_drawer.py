"""Tests for the ASCII circuit drawer."""

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.drawer import circuit_summary, draw_circuit


def test_draw_contains_all_wires_and_gates():
    circ = QuantumCircuit(3).h(0).cnot(0, 1).rz(0.5, 2).measure()
    text = draw_circuit(circ)
    lines = text.splitlines()
    assert len(lines) == 3
    assert "[H]" in text
    assert "●" in text and "⊕" in text
    assert "[M]" in text


def test_draw_wraps_long_circuits():
    circ = QuantumCircuit(2)
    for _ in range(60):
        circ.h(0).cnot(0, 1)
    text = draw_circuit(circ, max_width=80)
    assert all(len(line) <= 80 for line in text.splitlines())
    assert "…" in text


def test_barrier_rendered():
    circ = QuantumCircuit(2).h(0).barrier()
    assert "║" in draw_circuit(circ)


def test_summary_mentions_counts():
    circ = QuantumCircuit(2).h(0).cnot(0, 1)
    text = circuit_summary(circ)
    assert "2 qubits" in text
    assert "H×1" in text and "CNOT×1" in text


def test_empty_circuit():
    assert draw_circuit(QuantumCircuit(1)) == "q0: "
