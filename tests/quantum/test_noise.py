"""Tests for noise channels and the per-gate noise model."""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.noise import (
    NoiseModel,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    is_trace_preserving,
    phase_flip_kraus,
)


@pytest.mark.parametrize(
    "factory,param",
    [
        (bit_flip_kraus, 0.1),
        (phase_flip_kraus, 0.3),
        (depolarizing_kraus, 0.2),
        (amplitude_damping_kraus, 0.4),
    ],
)
def test_channels_are_trace_preserving(factory, param):
    assert is_trace_preserving(factory(param))


def test_probability_validation():
    with pytest.raises(ValueError):
        depolarizing_kraus(1.5)
    with pytest.raises(ValueError):
        bit_flip_kraus(-0.1)


def test_zero_strength_channels_are_identity():
    ops = depolarizing_kraus(0.0)
    assert len(ops) == 4
    assert np.allclose(ops[0], np.eye(2))
    assert all(np.allclose(k, 0) for k in ops[1:])


def test_full_depolarizing_gives_maximally_mixed():
    sim = DensityMatrixSimulator(noise_model=NoiseModel.depolarizing(1.0))
    rho = sim.run(QuantumCircuit(1).x(0))
    # p=1 depolarising twirl leaves (ρ + XρX + YρY + ZρZ)/3... not exactly I/2,
    # but for a basis state it is 2/3 mixed; just check purity dropped substantially.
    assert rho.purity() < 0.7


def test_amplitude_damping_decays_excited_state():
    sim = DensityMatrixSimulator(noise_model=NoiseModel.amplitude_damping(0.6))
    rho = sim.run(QuantumCircuit(1).x(0))
    assert rho.matrix[1, 1].real == pytest.approx(0.4, abs=1e-9)


def test_gate_filter():
    model = NoiseModel.depolarizing(0.5, gate_filter=["CNOT"])
    sim = DensityMatrixSimulator(noise_model=model)
    rho = sim.run(QuantumCircuit(1).x(0))  # X is not in the filter -> noiseless
    assert rho.purity() == pytest.approx(1.0)


def test_noise_model_validation():
    with pytest.raises(ValueError):
        NoiseModel([np.eye(2) * 0.5])  # not trace preserving
    with pytest.raises(ValueError):
        NoiseModel([np.eye(4)])  # wrong dimension


def test_describe():
    model = NoiseModel.bit_flip(0.1)
    info = model.describe()
    assert info["num_kraus"] == 2
    assert info["gate_filter"] == "all"
    # The named constructors record what the model *is*, not just its size.
    assert info["channel"] == "bit-flip"
    assert info["strength"] == 0.1
    assert info["spec"]["channel"] == "bit-flip"
    assert info["spec"]["is_noiseless"] is False


def test_describe_hand_built_kraus_has_no_channel_name():
    model = NoiseModel([np.sqrt(0.99) * np.eye(2), np.sqrt(0.01) * np.array([[0, 1], [1, 0]])])
    info = model.describe()
    assert info["channel"] is None
    assert "spec" not in info


def test_to_spec_round_trip_for_named_channels():
    model = NoiseModel.depolarizing(0.05)
    spec = model.to_spec()
    assert spec is not None and spec.channel == "depolarizing" and spec.strength == 0.05
    rebuilt = NoiseModel.from_spec(spec)
    assert rebuilt.to_spec() == spec
    # Gate-filtered models have no declarative form.
    assert NoiseModel.depolarizing(0.05, gate_filter=["CNOT"]).to_spec() is None


def test_noisy_bell_state_stays_valid_density_matrix():
    sim = DensityMatrixSimulator(noise_model=NoiseModel.depolarizing(0.05))
    rho = sim.run(QuantumCircuit(2).h(0).cnot(0, 1))
    assert rho.is_valid()
    assert rho.purity() < 1.0
