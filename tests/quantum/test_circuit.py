"""Tests for the QuantumCircuit builder."""

import numpy as np
import pytest

from repro.quantum import gates as g
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Barrier, Gate, Measurement


def test_builder_chaining_and_counts():
    circ = QuantumCircuit(2).h(0).cnot(0, 1).rz(0.3, 1)
    assert circ.num_gates == 3
    assert circ.count_ops() == {"H": 1, "CNOT": 1, "RZ": 1}


def test_qubit_range_validated():
    circ = QuantumCircuit(2)
    with pytest.raises(ValueError):
        circ.h(2)
    with pytest.raises(ValueError):
        circ.cnot(0, 5)


def test_depth_computation():
    circ = QuantumCircuit(3).h(0).h(1).h(2)
    assert circ.depth() == 1
    circ.cnot(0, 1)
    assert circ.depth() == 2
    circ.x(2)
    assert circ.depth() == 2


def test_unitary_gate_shape_validated():
    circ = QuantumCircuit(2)
    with pytest.raises(ValueError):
        circ.unitary(np.eye(4), [0], name="bad")


def test_duplicate_qubits_rejected():
    with pytest.raises(ValueError):
        Gate("bad", (0, 0), np.eye(4))


def test_to_unitary_bell_circuit():
    circ = QuantumCircuit(2).h(0).cnot(0, 1)
    u = circ.to_unitary()
    bell = u @ np.array([1, 0, 0, 0])
    assert np.allclose(bell, np.array([1, 0, 0, 1]) / np.sqrt(2))


def test_inverse_circuit_is_adjoint():
    circ = QuantumCircuit(2).h(0).cnot(0, 1).rz(0.7, 1).s(0)
    product = circ.inverse().to_unitary() @ circ.to_unitary()
    assert np.allclose(product, np.eye(4), atol=1e-10)


def test_compose_with_mapping():
    inner = QuantumCircuit(1).x(0)
    outer = QuantumCircuit(3)
    outer.compose(inner, qubits=[2])
    assert outer.gates[0].qubits == (2,)


def test_compose_size_validation():
    small = QuantumCircuit(1)
    big = QuantumCircuit(3).h(0)
    with pytest.raises(ValueError):
        small.compose(big)
    with pytest.raises(ValueError):
        QuantumCircuit(3).compose(QuantumCircuit(2).h(0), qubits=[0])


def test_measure_and_measured_qubits():
    circ = QuantumCircuit(3).h(0).measure([0, 2])
    assert circ.measured_qubits == (0, 2)
    assert any(isinstance(op, Measurement) for op in circ.instructions)


def test_barrier_does_not_affect_unitary():
    a = QuantumCircuit(1).h(0)
    b = QuantumCircuit(1).h(0).barrier()
    assert np.allclose(a.to_unitary(), b.to_unitary())
    assert any(isinstance(op, Barrier) for op in b.instructions)


def test_controlled_unitary_builder():
    circ = QuantumCircuit(2).controlled_unitary(g.PAULI_X, [0], [1])
    assert np.allclose(circ.to_unitary(), g.CNOT)


def test_global_phase_gate():
    circ = QuantumCircuit(1).global_phase(np.pi / 2)
    assert np.allclose(circ.to_unitary(), 1j * np.eye(2))


def test_copy_is_independent():
    original = QuantumCircuit(1).h(0)
    clone = original.copy()
    clone.x(0)
    assert original.num_gates == 1
    assert clone.num_gates == 2


def test_gate_dagger_and_remap():
    gate = Gate("RZ", (0,), g.rz(0.4), params=(0.4,))
    dag = gate.dagger()
    assert np.allclose(dag.matrix, g.rz(-0.4))
    remapped = gate.remapped([3])
    assert remapped.qubits == (3,)


def test_swap_and_ccx_builders():
    swap_u = QuantumCircuit(2).swap(0, 1).to_unitary()
    assert np.allclose(swap_u, g.SWAP)
    ccx_u = QuantumCircuit(3).ccx(0, 1, 2).to_unitary()
    assert np.allclose(ccx_u, g.TOFFOLI)
