"""Property tests for the batched execution engine and the fusion pass.

The contract under test (DESIGN.md §11): evolving an ensemble column by
column through the single-state :class:`StatevectorSimulator` and evolving
it as one ``(2^n, B)`` array through the :class:`EnsembleExecutor` are the
same computation — batched, fused, chunked or not.
"""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.engine import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    EnsembleExecutor,
    apply_gate_to_ensemble,
    array_module,
    set_array_module,
    to_host,
)
from repro.quantum.fusion import clear_fusion_cache, fuse_circuit, fusion_cache_info
from repro.quantum.gates import is_unitary, matrix_power_unitary
from repro.quantum.measurement import (
    born_probabilities,
    ensemble_marginal_probabilities,
    marginal_probabilities,
)
from repro.quantum.qpe import SpectralUnitary, phase_estimation_circuit
from repro.quantum.statevector import StatevectorSimulator


def _random_unitary(rng, k):
    m = rng.standard_normal((2**k, 2**k)) + 1j * rng.standard_normal((2**k, 2**k))
    q, _ = np.linalg.qr(m)
    return q


def _random_circuit(rng, num_qubits, num_gates, max_gate_qubits=2):
    circ = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        k = int(rng.integers(1, max_gate_qubits + 1))
        qubits = list(rng.choice(num_qubits, size=k, replace=False))
        circ.unitary(_random_unitary(rng, k), qubits)
    return circ


def _random_states(rng, num_qubits, batch):
    states = rng.standard_normal((2**num_qubits, batch)) + 1j * rng.standard_normal(
        (2**num_qubits, batch)
    )
    return states / np.linalg.norm(states, axis=0, keepdims=True)


# ---------------------------------------------------------------------------
# Batched kernel vs the per-state simulator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_batched_engine_matches_per_state_simulator(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 5))
    circuit = _random_circuit(rng, n, num_gates=10)
    states = _random_states(rng, n, batch=6)
    batched = EnsembleExecutor(fuse=False).run(circuit, states)
    sim = StatevectorSimulator()
    per_state = np.stack(
        [sim.run(circuit, initial_state=states[:, b]).amplitudes for b in range(6)],
        axis=1,
    )
    np.testing.assert_allclose(batched, per_state, atol=1e-12)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_fused_execution_matches_unfused(seed):
    rng = np.random.default_rng(100 + seed)
    n = int(rng.integers(2, 5))
    circuit = _random_circuit(rng, n, num_gates=14)
    states = _random_states(rng, n, batch=4)
    unfused = EnsembleExecutor(fuse=False).run(circuit, states)
    fused = EnsembleExecutor(fuse=True, max_fuse_qubits=3).run(circuit, states)
    np.testing.assert_allclose(fused, unfused, atol=1e-11)


def test_statevector_simulator_fuse_option():
    """The simulator's opt-in fusion matches its default unfused execution."""
    rng = np.random.default_rng(15)
    circuit = _random_circuit(rng, 4, num_gates=12)
    psi = _random_states(rng, 4, batch=1)[:, 0]
    plain = StatevectorSimulator().run(circuit, initial_state=psi).amplitudes
    fused = StatevectorSimulator(fuse=True, max_fuse_qubits=3).run(
        circuit, initial_state=psi
    ).amplitudes
    np.testing.assert_allclose(fused, plain, atol=1e-11)
    # Fusion actually engaged (same plan source as the executor).
    assert len(fuse_circuit(circuit, 3)) < circuit.num_gates


def test_batch_one_is_bit_identical_to_simulator():
    """The simulator *is* the batch-1 path — not approximately, bitwise."""
    rng = np.random.default_rng(7)
    circuit = _random_circuit(rng, 4, num_gates=12)
    psi = _random_states(rng, 4, batch=1)
    via_engine = EnsembleExecutor(fuse=False).run(circuit, psi)[:, 0]
    via_simulator = StatevectorSimulator().run(circuit, initial_state=psi[:, 0]).amplitudes
    assert np.array_equal(via_engine, via_simulator)


def test_apply_gate_to_ensemble_rejects_nothing_it_should_not():
    """The kernel handles non-adjacent, permuted target qubits."""
    rng = np.random.default_rng(11)
    gate = _random_unitary(rng, 2)
    states = _random_states(rng, 3, batch=2)
    out = apply_gate_to_ensemble(states, gate, [2, 0], 3)
    sim_gate = QuantumCircuit(3).unitary(gate, [2, 0])
    expected = np.stack(
        [StatevectorSimulator().run(sim_gate, initial_state=states[:, b]).amplitudes for b in range(2)],
        axis=1,
    )
    np.testing.assert_allclose(out, expected, atol=1e-12)


# ---------------------------------------------------------------------------
# Fusion pass
# ---------------------------------------------------------------------------


def test_fusion_collapses_repetition_chains():
    """A repeated fixed-support run (the QPE power-by-repetition shape)
    collapses to a single gate per support block."""
    rng = np.random.default_rng(3)
    circ = QuantumCircuit(3)
    u = _random_unitary(rng, 2)
    for _ in range(16):
        circ.unitary(u, [0, 1])
    fused = fuse_circuit(circ, max_fuse_qubits=2)
    assert len(fused) == 1
    np.testing.assert_allclose(fused[0].matrix, matrix_power_unitary(u, 16), atol=1e-10)


def test_fusion_respects_the_window_and_order():
    rng = np.random.default_rng(4)
    circ = _random_circuit(rng, 5, num_gates=20, max_gate_qubits=2)
    for window in (1, 2, 3):
        fused = fuse_circuit(circ, max_fuse_qubits=window)
        assert all(gate.num_qubits <= max(window, 2) for gate in fused)
        for gate in fused:
            assert is_unitary(gate.matrix, atol=1e-9)
        # Semantics preserved: same final state.
        states = _random_states(rng, 5, batch=2)
        reference = EnsembleExecutor(fuse=False).run(circ, states)
        via_window = EnsembleExecutor(fuse=True, max_fuse_qubits=window).run(circ, states)
        np.testing.assert_allclose(via_window, reference, atol=1e-11)


def test_wide_gates_pass_through_and_split_blocks():
    rng = np.random.default_rng(5)
    circ = QuantumCircuit(4)
    a, big, b = _random_unitary(rng, 1), _random_unitary(rng, 3), _random_unitary(rng, 1)
    circ.unitary(a, [0]).unitary(big, [0, 1, 2]).unitary(b, [0])
    fused = fuse_circuit(circ, max_fuse_qubits=2)
    # The 3-qubit gate is an order barrier: nothing may commute across it.
    assert len(fused) == 3
    assert fused[1].matrix is big or np.array_equal(fused[1].matrix, big)


def test_fusion_cache_is_keyed_by_circuit_fingerprint():
    clear_fusion_cache()
    rng = np.random.default_rng(6)
    circ = _random_circuit(rng, 3, num_gates=8)
    fuse_circuit(circ, max_fuse_qubits=2)
    info = fusion_cache_info()
    assert (info["hits"], info["misses"], info["entries"]) == (0, 1, 1)
    assert info["bytes"] > 0
    # A structurally identical copy hits the cache; a different window misses.
    fuse_circuit(circ.copy(), max_fuse_qubits=2)
    assert fusion_cache_info()["hits"] == 1
    fuse_circuit(circ, max_fuse_qubits=3)
    assert fusion_cache_info()["misses"] == 2
    clear_fusion_cache()
    assert fusion_cache_info() == {"hits": 0, "misses": 0, "entries": 0, "bytes": 0}


def test_fusion_cache_byte_budget_evicts_and_skips_oversize(monkeypatch):
    import repro.quantum.fusion as fusion

    clear_fusion_cache()
    rng = np.random.default_rng(14)
    circuits = [_random_circuit(np.random.default_rng(s), 3, num_gates=6) for s in range(3)]
    plan_sizes = [fusion._plan_bytes(fuse_circuit(c, 2)) for c in circuits]
    clear_fusion_cache()
    # Budget holds roughly one plan: inserting three must evict, never grow
    # past the budget, and an oversize plan must not be cached at all.
    monkeypatch.setattr(fusion, "FUSION_CACHE_MAX_BYTES", max(plan_sizes) + 1)
    for c in circuits:
        fuse_circuit(c, 2)
        assert fusion_cache_info()["bytes"] <= max(plan_sizes) + 1
    assert fusion_cache_info()["entries"] < 3
    monkeypatch.setattr(fusion, "FUSION_CACHE_MAX_BYTES", 1)
    clear_fusion_cache()
    plan = fuse_circuit(circuits[0], 2)
    assert len(plan) > 0  # caller still gets the plan
    assert fusion_cache_info()["entries"] == 0  # but nothing was pinned


def test_circuit_fingerprint_tracks_content_not_identity():
    rng = np.random.default_rng(8)
    u = _random_unitary(rng, 1)
    a = QuantumCircuit(2).unitary(u, [0]).unitary(u, [1])
    b = QuantumCircuit(2).unitary(u.copy(), [0]).unitary(u.copy(), [1])
    c = QuantumCircuit(2).unitary(u, [1]).unitary(u, [0])
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


# ---------------------------------------------------------------------------
# Ensemble readout
# ---------------------------------------------------------------------------


def test_ensemble_marginal_matches_per_member_average():
    rng = np.random.default_rng(9)
    n, batch = 4, 5
    states = _random_states(rng, n, batch)
    weights = rng.random(batch)
    weights = weights / weights.sum()
    for qubits in ([0, 1], [3, 1], [2]):
        batched = ensemble_marginal_probabilities(states, n, qubits, weights=weights)
        looped = sum(
            w * marginal_probabilities(born_probabilities(states[:, b]), n, qubits)
            for b, w in enumerate(weights)
        )
        np.testing.assert_allclose(batched, looped, atol=1e-12)


def test_basis_ensemble_distribution_is_chunking_invariant():
    rng = np.random.default_rng(10)
    n = 4
    circuit = _random_circuit(rng, n, num_gates=10)
    wide = EnsembleExecutor(fuse=True)
    assert wide.max_batch(n) >= 2**n  # the default budget holds the whole ensemble
    narrow = EnsembleExecutor(fuse=True, memory_budget_bytes=(2**n) * 16 * 3)
    assert narrow.max_batch(n) == 3  # forces ceil(16/3) = 6 chunks
    full = wide.basis_ensemble_distribution(circuit, [0, 1], range(2**n))
    chunked = narrow.basis_ensemble_distribution(circuit, [0, 1], range(2**n))
    np.testing.assert_allclose(chunked, full, atol=1e-13)
    assert full.shape == (4,)
    assert full.sum() == pytest.approx(1.0)


def test_basis_ensemble_distribution_validates_input():
    circuit = QuantumCircuit(2).h(0)
    executor = EnsembleExecutor()
    with pytest.raises(ValueError):
        executor.basis_ensemble_distribution(circuit, [0], [])
    with pytest.raises(ValueError):
        executor.basis_ensemble_distribution(circuit, [0], [4])
    with pytest.raises(ValueError):
        executor.basis_ensemble_distribution(circuit, [0], [0, 1], weights=[1.0])
    with pytest.raises(ValueError, match="positive sum"):
        executor.basis_ensemble_distribution(circuit, [0], [0, 1], weights=[0.0, 0.0])


# ---------------------------------------------------------------------------
# Array-module seam
# ---------------------------------------------------------------------------


def test_array_module_seam_defaults_and_overrides():
    xp = array_module()
    assert hasattr(xp, "tensordot")  # numpy here; cupy when a GPU is present

    class FakeModule:
        pass

    try:
        set_array_module(FakeModule)
        assert array_module() is FakeModule
    finally:
        set_array_module(None)
    assert array_module() is xp
    assert isinstance(to_host(np.arange(3)), np.ndarray)


# ---------------------------------------------------------------------------
# Spectral controlled powers (the one-eigendecomposition QPE satellite)
# ---------------------------------------------------------------------------


def test_spectral_unitary_powers_match_matrix_powers():
    rng = np.random.default_rng(12)
    h = rng.standard_normal((8, 8))
    h = (h + h.T) / 2.0
    from scipy.linalg import expm

    u = expm(1j * h)
    spectral_h = SpectralUnitary.from_hermitian(h)
    spectral_u = SpectralUnitary.from_unitary(u)
    for power in (1, 2, 4, 8):
        expected = matrix_power_unitary(u, power)
        np.testing.assert_allclose(spectral_h.power(power), expected, atol=1e-10)
        np.testing.assert_allclose(spectral_u.power(power), expected, atol=1e-10)


def test_phase_estimation_spectral_synthesis_matches_chain():
    rng = np.random.default_rng(13)
    u = _random_unitary(rng, 2)
    chain = phase_estimation_circuit(u, num_precision=3)
    spectral = phase_estimation_circuit(u, num_precision=3, power_synthesis="spectral")
    sim = StatevectorSimulator()
    init = np.zeros(2**5, dtype=complex)
    init[3] = 1.0
    p_chain = sim.probabilities(chain, initial_state=init, qubits=[0, 1, 2])
    p_spectral = sim.probabilities(spectral, initial_state=init, qubits=[0, 1, 2])
    np.testing.assert_allclose(p_spectral, p_chain, atol=1e-10)
    with pytest.raises(ValueError):
        phase_estimation_circuit(u, num_precision=3, power_synthesis="bogus")
