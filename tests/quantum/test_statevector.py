"""Tests for the statevector simulator."""

import numpy as np
import pytest

from repro.quantum import gates as g
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector, StatevectorSimulator, apply_gate_to_statevector


def test_zero_and_basis_states():
    assert np.allclose(Statevector.zero_state(2).amplitudes, [1, 0, 0, 0])
    assert np.allclose(Statevector.basis_state(2, 3).amplitudes, [0, 0, 0, 1])


def test_invalid_length_rejected():
    with pytest.raises(ValueError):
        Statevector(np.ones(3))


def test_x_on_most_significant_qubit():
    """Qubit 0 is the most significant bit of the basis label."""
    sim = StatevectorSimulator()
    state = sim.run(QuantumCircuit(2).x(0))
    assert np.allclose(state.amplitudes, [0, 0, 1, 0])  # |10>


def test_x_on_least_significant_qubit():
    sim = StatevectorSimulator()
    state = sim.run(QuantumCircuit(2).x(1))
    assert np.allclose(state.amplitudes, [0, 1, 0, 0])  # |01>


def test_bell_state_probabilities():
    sim = StatevectorSimulator()
    state = sim.run(QuantumCircuit(2).h(0).cnot(0, 1))
    assert np.allclose(state.probabilities(), [0.5, 0, 0, 0.5])


def test_ghz_state():
    circ = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2)
    probs = StatevectorSimulator().run(circ).probabilities()
    assert probs[0] == pytest.approx(0.5)
    assert probs[-1] == pytest.approx(0.5)


def test_norm_preserved_by_random_circuit(rng):
    circ = QuantumCircuit(3)
    for _ in range(10):
        q = int(rng.integers(0, 3))
        circ.rx(float(rng.normal()), q).rz(float(rng.normal()), q)
        a, b = rng.choice(3, size=2, replace=False)
        circ.cnot(int(a), int(b))
    state = StatevectorSimulator().run(circ)
    assert state.norm() == pytest.approx(1.0)


def test_initial_state_respected():
    sim = StatevectorSimulator()
    init = Statevector.basis_state(1, 1)
    state = sim.run(QuantumCircuit(1).x(0), initial_state=init)
    assert np.allclose(state.amplitudes, [1, 0])


def test_initial_state_dimension_checked():
    with pytest.raises(ValueError):
        StatevectorSimulator().run(QuantumCircuit(2).h(0), initial_state=np.ones(2))


def test_marginal_probabilities_order():
    # |10>: qubit0 = 1, qubit1 = 0.
    state = Statevector.basis_state(2, 2)
    assert np.allclose(state.marginal_probabilities([0]), [0, 1])
    assert np.allclose(state.marginal_probabilities([1]), [1, 0])
    assert np.allclose(state.marginal_probabilities([1, 0]), [0, 1, 0, 0])


def test_sampling_statistics():
    state = StatevectorSimulator().run(QuantumCircuit(1).h(0))
    counts = state.sample(10_000, seed=5)
    assert set(counts) <= {"0", "1"}
    assert abs(counts.get("0", 0) / 10_000 - 0.5) < 0.05


def test_sample_uses_measured_register():
    circ = QuantumCircuit(2).h(0).measure([1])
    counts = StatevectorSimulator().sample(circ, shots=100, seed=0)
    assert set(counts) == {"0"}


def test_expectation_and_fidelity():
    plus = StatevectorSimulator().run(QuantumCircuit(1).h(0))
    assert plus.expectation(g.PAULI_X) == pytest.approx(1.0)
    assert plus.fidelity(Statevector.zero_state(1)) == pytest.approx(0.5)


def test_apply_gate_to_statevector_matches_dense_kron():
    rng = np.random.default_rng(7)
    psi = rng.normal(size=8) + 1j * rng.normal(size=8)
    psi /= np.linalg.norm(psi)
    # Apply CNOT on qubits (2, 0): control qubit 2, target qubit 0.
    result = apply_gate_to_statevector(psi, g.CNOT, [2, 0], 3)
    # Build the equivalent dense operator via a circuit.
    dense = QuantumCircuit(3).cnot(2, 0).to_unitary()
    assert np.allclose(result, dense @ psi)


def test_validate_unitaries_flag():
    circ = QuantumCircuit(1)
    circ.unitary(np.array([[1.0, 1.0], [0.0, 1.0]]), [0], name="bad")
    StatevectorSimulator(validate_unitaries=False).run(circ)
    with pytest.raises(ValueError):
        StatevectorSimulator(validate_unitaries=True).run(circ)


def test_density_matrix_of_pure_state():
    state = Statevector.basis_state(1, 1)
    assert np.allclose(state.density_matrix(), [[0, 0], [0, 1]])
