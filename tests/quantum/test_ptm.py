"""Property tests for the Pauli-transfer-matrix layer (DESIGN.md §16).

Three algebraic laws pin the PTM construction itself:

* every CPTP channel's PTM is trace-preserving, i.e. its first row is
  ``e_0`` (the identity component never leaks);
* every unitary gate's PTM is real orthogonal;
* PTMs compose by matrix product — ``ptm(A ∘ B) = ptm(A) @ ptm(B)`` on
  random circuits.

The rest locks down the execution machinery: the wide-unitary conjugation
against a brute-force density-matrix reference (controlled fast path
included), program fusion against the density route's gate-then-Kraus walk,
per-channel PTM memoisation, the program cache, and chunking invariance of
the executor.
"""

import numpy as np
import pytest

from repro.quantum.channels import (
    NOISE_CHANNELS,
    TWO_QUBIT_NOISE_CHANNELS,
    NoiseSpec,
    QuantumChannel,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.fusion import (
    clear_ptm_cache,
    fuse_ptm_program,
    ptm_cache_info,
)
from repro.quantum.noise import NoiseModel
from repro.quantum.ptm import (
    PTMExecutor,
    apply_ptm_to_ensemble,
    apply_unitary_to_pauli_ensemble,
    channel_content_key,
    channel_ptm,
    clear_ptm_memo,
    controlled_block,
    gate_ptm,
    pauli_basis,
    pauli_vector_marginals,
    ptm_from_kraus,
    ptm_memo_info,
    qtda_initial_pauli_vector,
)


def _random_unitary(rng, k):
    m = rng.standard_normal((2**k, 2**k)) + 1j * rng.standard_normal((2**k, 2**k))
    q, _ = np.linalg.qr(m)
    return q


def _random_density(rng, n):
    a = rng.standard_normal((2**n, 2**n)) + 1j * rng.standard_normal((2**n, 2**n))
    rho = a @ a.conj().T
    return rho / np.trace(rho)


def _to_pauli_vector(rho, n):
    """``v_i = Tr[P~_i rho]`` — density matrix to normalized-Pauli components."""
    basis = pauli_basis(n)
    return np.einsum("iab,ba->i", basis, rho).real.reshape(-1, 1)


def _from_pauli_vector(vec, n):
    """``rho = sum_i v_i P~_i`` — inverse of :func:`_to_pauli_vector`."""
    basis = pauli_basis(n)
    return np.einsum("i,iab->ab", vec.ravel(), basis)


# ---------------------------------------------------------------------------
# Algebraic laws of the PTM construction
# ---------------------------------------------------------------------------


def test_pauli_basis_is_orthonormal():
    for n in (1, 2):
        basis = pauli_basis(n)
        grams = np.einsum("iab,jba->ij", basis, basis)
        assert np.allclose(grams, np.eye(4**n), atol=1e-12)
        assert not basis.flags.writeable


@pytest.mark.parametrize("name", NOISE_CHANNELS + TWO_QUBIT_NOISE_CHANNELS)
@pytest.mark.parametrize("strength", [0.0, 0.05, 0.7, 1.0])
def test_cptp_channel_ptm_is_trace_preserving(name, strength):
    """Trace preservation == the PTM's first row is exactly ``e_0``."""
    channel = QuantumChannel.from_name(name, strength)
    ptm = ptm_from_kraus(channel.kraus_ops)
    dim = 4**channel.arity
    assert ptm.shape == (dim, dim)
    assert np.isrealobj(ptm)
    expected_first_row = np.zeros(dim)
    expected_first_row[0] = 1.0
    assert np.allclose(ptm[0], expected_first_row, atol=1e-12)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("k", [1, 2])
def test_unitary_gate_ptm_is_orthogonal(seed, k):
    u = _random_unitary(np.random.default_rng(seed), k)
    ptm = gate_ptm(u)
    dim = 4**k
    assert np.allclose(ptm @ ptm.T, np.eye(dim), atol=1e-12)
    assert np.allclose(ptm.T @ ptm, np.eye(dim), atol=1e-12)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_ptm_composition_is_matrix_product(seed):
    """``ptm(A ∘ B) = ptm(A) @ ptm(B)`` on random same-support pairs."""
    rng = np.random.default_rng(seed)
    for k in (1, 2):
        a = _random_unitary(rng, k)
        b = _random_unitary(rng, k)
        assert np.allclose(gate_ptm(a @ b), gate_ptm(a) @ gate_ptm(b), atol=1e-12)
    # ...and with a channel in the middle: ptm(E_a ∘ N ∘ E_b).
    noise = QuantumChannel.from_name("amplitude-damping", 0.1)
    a, b = _random_unitary(rng, 1), _random_unitary(rng, 1)
    composed = [k @ b for k in noise.kraus_ops]
    composed = [a @ k for k in composed]
    assert np.allclose(
        ptm_from_kraus(composed),
        gate_ptm(a) @ ptm_from_kraus(noise.kraus_ops) @ gate_ptm(b),
        atol=1e-12,
    )


@pytest.mark.parametrize("seed", [0, 1])
def test_random_circuit_ptm_homomorphism(seed):
    """The product of embedded gate PTMs equals the PTM of the circuit
    unitary — composition survives embedding into a larger register."""
    rng = np.random.default_rng(seed)
    n = 3
    circ = QuantumCircuit(n)
    total = np.eye(2**n, dtype=complex)
    program_ptm = np.eye(4**n)
    for _ in range(4):
        k = int(rng.integers(1, 3))
        qubits = list(rng.choice(n, size=k, replace=False))
        u = _random_unitary(rng, k)
        circ.unitary(u, qubits)
        # Embed by applying the local PTM to the identity ensemble.
        embedded = apply_ptm_to_ensemble(np.eye(4**n), gate_ptm(u), qubits, n)
        program_ptm = embedded @ program_ptm
        full = np.eye(1, dtype=complex)
        mats = {q: np.eye(2, dtype=complex) for q in range(n)}
        if k == 1:
            mats[qubits[0]] = u
            for q in range(n):
                full = np.kron(full, mats[q])
        else:
            # Build the embedded two-qubit unitary by direct summation over
            # basis states (order-agnostic reference).
            full = np.zeros((2**n, 2**n), dtype=complex)
            for col in range(2**n):
                bits = [(col >> (n - 1 - q)) & 1 for q in range(n)]
                local_col = (bits[qubits[0]] << 1) | bits[qubits[1]]
                for local_row in range(4):
                    amp = u[local_row, local_col]
                    if amp == 0:
                        continue
                    new_bits = list(bits)
                    new_bits[qubits[0]] = (local_row >> 1) & 1
                    new_bits[qubits[1]] = local_row & 1
                    row = sum(b << (n - 1 - q) for q, b in enumerate(new_bits))
                    full[row, col] += amp
        total = full @ total
    assert np.allclose(program_ptm, gate_ptm(total), atol=1e-10)


# ---------------------------------------------------------------------------
# Wide-unitary conjugation and marginals
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1])
def test_wide_unitary_application_matches_density_conjugation(seed):
    rng = np.random.default_rng(seed)
    n = 3
    rho = _random_density(rng, n)
    u = _random_unitary(rng, n)
    vec = _to_pauli_vector(rho, n)
    out = apply_unitary_to_pauli_ensemble(vec, u, list(range(n)), n)
    expected = _to_pauli_vector(u @ rho @ u.conj().T, n)
    assert np.allclose(out, expected, atol=1e-12)


def test_controlled_fast_path_matches_generic_path():
    rng = np.random.default_rng(7)
    n = 3
    v = _random_unitary(rng, 2)
    u = np.eye(8, dtype=complex)
    u[4:, 4:] = v
    block = controlled_block(u)
    assert block is not None and np.array_equal(block, v)
    vec = _to_pauli_vector(_random_density(rng, n), n)
    generic = apply_unitary_to_pauli_ensemble(vec, u, [0, 1, 2], n)
    fast = apply_unitary_to_pauli_ensemble(vec, u, [0, 1, 2], n, block=block)
    assert np.array_equal(generic, fast) or np.allclose(generic, fast, atol=1e-14)
    # A generic unitary has no controlled block.
    assert controlled_block(_random_unitary(rng, 3)) is None


def test_pauli_vector_marginals_match_density_marginals():
    rng = np.random.default_rng(3)
    n = 3
    rho = _random_density(rng, n)
    from repro.quantum.density_matrix import DensityMatrix

    vec = _to_pauli_vector(rho, n)
    for qubits in ([0], [2], [0, 1], [1, 2], [0, 1, 2]):
        got = pauli_vector_marginals(vec, n, qubits)[:, 0]
        want = DensityMatrix(rho).marginal_probabilities(qubits)
        assert np.allclose(got, want, atol=1e-12), qubits


def test_qtda_initial_pauli_vector_is_the_mixed_input_state():
    t, q = 2, 1
    vec = qtda_initial_pauli_vector(t, q)
    rho = _from_pauli_vector(vec, t + q)
    zero = np.zeros((4, 4))
    zero[0, 0] = 1.0
    expected = np.kron(zero, np.eye(2) / 2.0)
    assert np.allclose(rho, expected, atol=1e-12)


# ---------------------------------------------------------------------------
# Channel-PTM memoisation (per content, not identity)
# ---------------------------------------------------------------------------


def test_channel_ptm_is_memoised_per_content():
    clear_ptm_memo()
    a = QuantumChannel.from_name("depolarizing", 0.1)
    b = QuantumChannel.from_name("depolarizing", 0.1)  # distinct object, same content
    c = QuantumChannel.from_name("depolarizing", 0.2)
    assert channel_content_key(a) == channel_content_key(b)
    assert channel_content_key(a) != channel_content_key(c)
    first = channel_ptm(a)
    second = channel_ptm(b)
    third = channel_ptm(c)
    assert first is second  # the memo returns the same array object
    assert not np.allclose(first, third)
    assert not first.flags.writeable
    info = ptm_memo_info()
    assert info["hits"] == 1
    assert info["misses"] == 2
    assert info["entries"] == 2


# ---------------------------------------------------------------------------
# Program fusion vs the density route's gate-then-Kraus walk
# ---------------------------------------------------------------------------


def _assert_program_matches_density(circ, spec, max_fuse_qubits=3):
    rng = np.random.default_rng(11)
    n = circ.num_qubits
    rho = _random_density(rng, n)
    program = fuse_ptm_program(circ, noise_spec=spec, max_fuse_qubits=max_fuse_qubits)
    executor = PTMExecutor(max_fuse_qubits=max_fuse_qubits)
    final = executor.run(program, _to_pauli_vector(rho, n))
    noise_model = None if spec is None else NoiseModel.from_spec(spec)
    reference = DensityMatrixSimulator(noise_model).run(circ, initial_state=rho)
    assert np.allclose(
        _from_pauli_vector(final, n), reference.matrix, atol=1e-10
    )
    return program


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fused_program_matches_density_walk_on_random_circuits(seed):
    rng = np.random.default_rng(seed)
    n = 4
    circ = QuantumCircuit(n)
    for _ in range(6):
        k = int(rng.integers(1, 3))
        qubits = list(rng.choice(n, size=k, replace=False))
        circ.unitary(_random_unitary(rng, k), qubits, name="U" if k == 1 else "CU")
    spec = NoiseSpec(
        channel="depolarizing",
        strength=0.02,
        gate_strengths={"CU": 0.05},
        two_qubit_channel="correlated-zz",
        two_qubit_strength=0.01,
    )
    clear_ptm_cache()
    program = _assert_program_matches_density(circ, spec)
    assert program.num_superops > 0
    # Fusion compresses: fewer superoperators than (gates + channels).
    assert program.num_superops < program.source_ops


def test_fused_program_handles_wide_gates_and_noise_free_circuits():
    rng = np.random.default_rng(5)
    n = 4
    circ = QuantumCircuit(n)
    circ.unitary(_random_unitary(rng, 1), [0])
    wide = np.eye(16, dtype=complex)
    wide[8:, 8:] = _random_unitary(rng, 3)
    circ.unitary(wide, [0, 1, 2, 3], name="c-U^1")
    circ.unitary(_random_unitary(rng, 2), [2, 3])
    spec = NoiseSpec(channel="amplitude-damping", strength=0.03)
    program = _assert_program_matches_density(circ, spec)
    assert program.num_wide == 1
    # Noise-free program works too (spec=None).
    _assert_program_matches_density(circ, None)


def test_ptm_program_cache_hits_on_same_circuit_and_spec():
    clear_ptm_cache()
    rng = np.random.default_rng(9)
    circ = QuantumCircuit(2)
    circ.unitary(_random_unitary(rng, 2), [0, 1])
    spec = NoiseSpec(channel="depolarizing", strength=0.01)
    first = fuse_ptm_program(circ, noise_spec=spec)
    second = fuse_ptm_program(circ, noise_spec=spec)
    assert first is second
    info = ptm_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # A different fusion window or spec is a different program.
    fuse_ptm_program(circ, noise_spec=spec, max_fuse_qubits=1)
    fuse_ptm_program(circ, noise_spec=NoiseSpec(channel="depolarizing", strength=0.02))
    assert ptm_cache_info()["misses"] == 3
    # Readout error does not enter the program key (applied post-readout).
    with_readout = fuse_ptm_program(
        circ, noise_spec=NoiseSpec(channel="depolarizing", strength=0.01, readout_error=0.1)
    )
    assert with_readout is first


def test_fuse_ptm_program_validates_window():
    circ = QuantumCircuit(1)
    with pytest.raises(ValueError, match="max_fuse_qubits"):
        fuse_ptm_program(circ, max_fuse_qubits=0)


# ---------------------------------------------------------------------------
# Executor chunking
# ---------------------------------------------------------------------------


def test_executor_batch_splits_at_block_boundaries_are_bit_identical():
    """The sharding contract: splitting the batch axis at pinned block
    boundaries and concatenating equals the unsharded run bit-for-bit
    (each pinned column block is evolved by the identical kernel calls)."""
    rng = np.random.default_rng(13)
    n = 3
    circ = QuantumCircuit(n)
    for _ in range(4):
        circ.unitary(_random_unitary(rng, 2), list(rng.choice(n, size=2, replace=False)))
    spec = NoiseSpec(channel="depolarizing", strength=0.05)
    program = fuse_ptm_program(circ, noise_spec=spec)
    batch = np.stack(
        [_to_pauli_vector(_random_density(rng, n), n)[:, 0] for _ in range(6)], axis=1
    )
    executor = PTMExecutor(column_block=2)
    whole = executor.run(program, batch)
    split = np.concatenate(
        [executor.run(program, batch[:, s : s + 2]) for s in range(0, 6, 2)], axis=1
    )
    assert np.array_equal(whole, split)
    # Different block widths change gemm shapes, so only numerical (not
    # bitwise) agreement is promised across widths.
    assert np.allclose(whole, PTMExecutor().run(program, batch), atol=1e-12)
