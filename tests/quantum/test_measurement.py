"""Tests for measurement utilities."""

import numpy as np
import pytest

from repro.quantum.measurement import (
    born_probabilities,
    counts_to_probabilities,
    marginal_probabilities,
    outcome_probability,
    sample_counts,
)


def test_born_probabilities_normalised():
    probs = born_probabilities(np.array([1.0, 1.0j]))
    assert np.allclose(probs, [0.5, 0.5])


def test_born_probabilities_zero_state_rejected():
    with pytest.raises(ValueError):
        born_probabilities(np.zeros(4))


def test_marginal_over_single_qubit():
    # State |10> on 2 qubits: full distribution [0, 0, 1, 0].
    full = np.array([0.0, 0.0, 1.0, 0.0])
    assert np.allclose(marginal_probabilities(full, 2, [0]), [0, 1])
    assert np.allclose(marginal_probabilities(full, 2, [1]), [1, 0])


def test_marginal_reorders_qubits():
    full = np.array([0.0, 1.0, 0.0, 0.0])  # |01>
    assert np.allclose(marginal_probabilities(full, 2, [1, 0]), [0, 0, 1, 0])


def test_marginal_validates_inputs():
    with pytest.raises(ValueError):
        marginal_probabilities(np.ones(4) / 4, 2, [0, 0])
    with pytest.raises(ValueError):
        marginal_probabilities(np.ones(4) / 4, 2, [3])


def test_sample_counts_total_and_keys():
    counts = sample_counts([0.25, 0.75], shots=1000, num_bits=1, seed=0)
    assert sum(counts.values()) == 1000
    assert set(counts) <= {"0", "1"}


def test_sample_counts_deterministic_distribution():
    counts = sample_counts([0.0, 1.0], shots=10, num_bits=1, seed=0)
    assert counts == {"1": 10}


def test_sample_counts_reproducible_with_seed():
    a = sample_counts([0.3, 0.7], 500, num_bits=1, seed=9)
    b = sample_counts([0.3, 0.7], 500, num_bits=1, seed=9)
    assert a == b


def test_sample_counts_validation():
    with pytest.raises(ValueError):
        sample_counts([-0.1, 1.1], 10)
    with pytest.raises(ValueError):
        sample_counts([0.0, 0.0], 10)
    with pytest.raises(ValueError):
        sample_counts([0.5, 0.5], 0)


def test_counts_to_probabilities_roundtrip():
    probs = counts_to_probabilities({"00": 25, "11": 75}, num_bits=2)
    assert np.allclose(probs, [0.25, 0, 0, 0.75])


def test_counts_to_probabilities_validation():
    with pytest.raises(ValueError):
        counts_to_probabilities({})
    with pytest.raises(ValueError):
        counts_to_probabilities({"0": 1, "11": 1}, num_bits=2)


def test_outcome_probability():
    assert outcome_probability({"00": 30, "01": 70}, "00") == pytest.approx(0.3)
    assert outcome_probability({"00": 30, "01": 70}, "11") == 0.0
