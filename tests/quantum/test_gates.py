"""Tests for the gate library."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.quantum import gates as g


@pytest.mark.parametrize(
    "matrix",
    [g.PAULI_X, g.PAULI_Y, g.PAULI_Z, g.HADAMARD, g.S_GATE, g.T_GATE, g.CNOT, g.CZ, g.SWAP, g.TOFFOLI],
)
def test_fixed_gates_are_unitary(matrix):
    assert g.is_unitary(matrix)


@pytest.mark.parametrize("theta", [-1.3, 0.0, 0.5, np.pi, 2.2])
def test_rotations_match_exponentials(theta):
    assert np.allclose(g.rx(theta), expm(-1j * theta * g.PAULI_X / 2))
    assert np.allclose(g.ry(theta), expm(-1j * theta * g.PAULI_Y / 2))
    assert np.allclose(g.rz(theta), expm(-1j * theta * g.PAULI_Z / 2))


def test_hadamard_squares_to_identity():
    assert np.allclose(g.HADAMARD @ g.HADAMARD, np.eye(2))


def test_s_is_sqrt_z_and_t_is_sqrt_s():
    assert np.allclose(g.S_GATE @ g.S_GATE, g.PAULI_Z)
    assert np.allclose(g.T_GATE @ g.T_GATE, g.S_GATE)


def test_phase_shift_vs_rz_global_phase():
    phi = 0.7
    # P(φ) = e^{iφ/2} RZ(φ)
    assert np.allclose(g.phase_shift(phi), np.exp(1j * phi / 2) * g.rz(phi))


def test_u3_special_cases():
    assert np.allclose(g.u3(np.pi / 2, 0.0, np.pi), g.HADAMARD)
    assert np.allclose(g.u3(0.0, 0.0, 0.0), np.eye(2))


def test_controlled_single_control():
    cx = g.controlled(g.PAULI_X)
    assert np.allclose(cx, g.CNOT)
    cz = g.controlled(g.PAULI_Z)
    assert np.allclose(cz, g.CZ)


def test_controlled_two_controls_is_toffoli():
    assert np.allclose(g.controlled(g.PAULI_X, num_controls=2), g.TOFFOLI)


def test_controlled_validation():
    with pytest.raises(ValueError):
        g.controlled(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        g.controlled(g.PAULI_X, num_controls=0)


def test_cphase_diagonal():
    assert np.allclose(g.cphase(np.pi), np.diag([1, 1, 1, -1]))


def test_matrix_power_unitary():
    u = g.rx(0.3)
    assert np.allclose(g.matrix_power_unitary(u, 5), np.linalg.matrix_power(u, 5))
    assert np.allclose(g.matrix_power_unitary(u, 0), np.eye(2))
    with pytest.raises(ValueError):
        g.matrix_power_unitary(u, -1)


def test_is_unitary_rejects_non_unitary():
    assert not g.is_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))
    assert not g.is_unitary(np.zeros((2, 3)))


def test_global_phase():
    assert np.allclose(g.global_phase(np.pi, 1), -np.eye(2))
