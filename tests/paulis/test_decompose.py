"""Tests for the Pauli decomposition (Eq. 19 machinery)."""

import numpy as np
import pytest

from repro.paulis.decompose import pauli_decompose, pauli_decompose_dense, pauli_reconstruct
from repro.quantum.random_states import random_hermitian


def test_single_qubit_known_decomposition():
    matrix = np.array([[1.0, 2.0], [2.0, -1.0]])
    s = pauli_decompose(matrix)
    assert s.coefficient("Z") == pytest.approx(1.0)
    assert s.coefficient("X") == pytest.approx(2.0)
    assert s.coefficient("I") == pytest.approx(0.0)


def test_roundtrip_two_qubits():
    matrix = random_hermitian(2, seed=0)
    assert np.allclose(pauli_reconstruct(pauli_decompose(matrix)), matrix)


def test_fast_matches_dense_reference():
    matrix = random_hermitian(3, seed=1)
    assert pauli_decompose(matrix) == pauli_decompose_dense(matrix)


def test_antisymmetric_y_handled():
    # A matrix whose only Pauli component is Y (sign-sensitive check).
    y = np.array([[0, -1j], [1j, 0]])
    s = pauli_decompose(0.7 * y)
    assert s.coefficient("Y") == pytest.approx(0.7)
    assert s.num_terms == 1


def test_non_power_of_two_rejected():
    with pytest.raises(ValueError):
        pauli_decompose(np.eye(3))


def test_non_square_rejected():
    with pytest.raises(ValueError):
        pauli_decompose(np.zeros((2, 4)))


def test_zero_matrix_gives_empty_sum_with_size():
    s = pauli_decompose(np.zeros((4, 4)))
    assert s.num_terms == 0
    assert s.num_qubits == 2


def test_identity_matrix():
    s = pauli_decompose(np.eye(8))
    assert s.num_terms == 1
    assert s.coefficient("III") == pytest.approx(1.0)


def test_complex_hermitian_roundtrip():
    matrix = random_hermitian(3, seed=5)
    assert np.allclose(pauli_decompose(matrix).to_matrix(), matrix, atol=1e-10)


def test_appendix_equation_19_coefficients():
    """The worked example's decomposition must match Eq. 19 term for term."""
    from repro.core.hamiltonian import build_hamiltonian
    from repro.experiments.worked_example import appendix_complex
    from repro.tda.laplacian import combinatorial_laplacian

    hamiltonian = build_hamiltonian(combinatorial_laplacian(appendix_complex(), 1), delta=6.0)
    coeffs = {t.label: t.coefficient.real for t in hamiltonian.pauli_decomposition()}
    expected = {
        "XXI": -0.5, "YYI": -0.5, "ZIX": -0.5, "IXI": -0.25, "XIX": -0.25,
        "XYY": -0.25, "XZX": -0.25, "YIY": -0.25, "YZY": -0.25, "ZXI": -0.25,
        "IZI": -0.125, "IZZ": -0.125, "ZZZ": -0.125, "IIZ": 0.125, "ZII": 0.125,
        "ZIZ": 0.125, "IXZ": 0.25, "XXX": 0.25, "YXY": 0.25, "YYX": 0.25,
        "ZXZ": 0.25, "ZZI": 0.375, "IZX": 0.5, "III": 2.625,
    }
    assert len(coeffs) == len(expected)
    for label, value in expected.items():
        assert coeffs[label] == pytest.approx(value), label
