"""Tests for PauliSum containers."""

import numpy as np
import pytest

from repro.paulis.pauli_sum import PauliSum, PauliTerm


def test_terms_merge_and_drop_small():
    s = PauliSum([("XX", 0.5), ("XX", 0.25), ("ZZ", 1e-15)])
    assert s.num_terms == 1
    assert s.coefficient("XX") == pytest.approx(0.75)
    assert s.coefficient("ZZ") == 0.0


def test_mixed_register_sizes_rejected():
    with pytest.raises(ValueError):
        PauliSum([("X", 1.0), ("XX", 1.0)])


def test_to_matrix_matches_manual_sum():
    s = PauliSum({"XI": 0.5, "IZ": -0.25})
    from repro.paulis.pauli import PauliString

    expected = 0.5 * PauliString("XI").to_matrix() - 0.25 * PauliString("IZ").to_matrix()
    assert np.allclose(s.to_matrix(), expected)


def test_addition_and_subtraction():
    a = PauliSum({"X": 1.0})
    b = PauliSum({"X": 0.5, "Z": 2.0})
    assert (a + b).coefficient("X") == pytest.approx(1.5)
    assert (a - b).coefficient("Z") == pytest.approx(-2.0)


def test_scalar_multiplication():
    s = 3.0 * PauliSum({"Y": 0.5})
    assert s.coefficient("Y") == pytest.approx(1.5)


def test_is_hermitian_detects_complex_coefficients():
    assert PauliSum({"XX": 1.0}).is_hermitian
    assert not PauliSum({"XX": 1.0j}).is_hermitian


def test_one_norm():
    assert PauliSum({"X": -2.0, "Z": 1.5}).one_norm() == pytest.approx(3.5)


def test_without_identity():
    s = PauliSum({"II": 2.0, "XZ": 1.0})
    trimmed = s.without_identity()
    assert trimmed.coefficient("II") == 0.0
    assert trimmed.coefficient("XZ") == 1.0
    assert s.identity_coefficient() == pytest.approx(2.0)


def test_terms_sorted_and_iterable():
    s = PauliSum({"ZZ": 1.0, "XX": 2.0})
    labels = [t.label for t in s]
    assert labels == sorted(labels)
    assert len(s) == 2


def test_zero_sum_remembers_size():
    z = PauliSum.zero(3)
    assert z.num_qubits == 3
    assert z.num_terms == 0


def test_pauli_term_matrix():
    term = PauliTerm("X", 2.0)
    assert np.allclose(term.to_matrix(), 2.0 * np.array([[0, 1], [1, 0]]))


def test_equality():
    assert PauliSum({"X": 1.0, "Z": 0.0}) == PauliSum({"X": 1.0})
    assert PauliSum({"X": 1.0}) != PauliSum({"X": 2.0})
