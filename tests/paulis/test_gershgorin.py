"""Tests for the Gershgorin circle bounds."""

import numpy as np
import pytest

from repro.paulis.gershgorin import gershgorin_bound, gershgorin_intervals, gershgorin_lower_bound


def test_bound_dominates_spectrum_of_symmetric_matrix():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(6, 6))
    sym = (a + a.T) / 2
    bound = gershgorin_bound(sym)
    assert bound >= np.max(np.linalg.eigvalsh(sym)) - 1e-12


def test_diagonal_matrix_bound_is_max_diagonal():
    assert gershgorin_bound(np.diag([1.0, 5.0, 3.0])) == pytest.approx(5.0)


def test_appendix_laplacian_bound_is_six():
    """Eq. 18: λ̃_max = 6 for the worked example's Δ_1."""
    from repro.experiments.worked_example import EXPECTED_LAPLACIAN

    assert gershgorin_bound(EXPECTED_LAPLACIAN) == pytest.approx(6.0)


def test_bound_clamped_at_zero():
    assert gershgorin_bound(np.array([[-5.0]])) == 0.0


def test_intervals_structure():
    intervals = gershgorin_intervals(np.array([[2.0, 1.0], [1.0, -1.0]]))
    assert intervals == [(1.0, 3.0), (-2.0, 0.0)]


def test_lower_bound_below_spectrum():
    rng = np.random.default_rng(3)
    a = rng.normal(size=(5, 5))
    sym = (a + a.T) / 2
    assert gershgorin_lower_bound(sym) <= np.min(np.linalg.eigvalsh(sym)) + 1e-12


def test_empty_matrix():
    assert gershgorin_bound(np.zeros((0, 0))) == 0.0


def test_non_square_rejected():
    with pytest.raises(ValueError):
        gershgorin_bound(np.zeros((2, 3)))
