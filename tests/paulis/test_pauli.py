"""Tests for Pauli strings."""

import numpy as np
import pytest

from repro.paulis.pauli import PAULI_MATRICES, PauliString


def test_label_roundtrip():
    assert PauliString("XYZ").label == "XYZ"
    assert PauliString("ixz").label == "IXZ"


def test_invalid_labels_rejected():
    with pytest.raises(ValueError):
        PauliString("AXB")
    with pytest.raises(ValueError):
        PauliString("")


def test_identity_constructor():
    ident = PauliString.identity(3)
    assert ident.label == "III"
    assert ident.is_identity


def test_single_constructor():
    assert PauliString.single(4, 2, "y").label == "IIYI"
    with pytest.raises(ValueError):
        PauliString.single(2, 5, "x")


def test_weight_and_support():
    p = PauliString("IXYI")
    assert p.weight == 2
    assert p.support() == (1, 2)


def test_matrix_matches_kron():
    p = PauliString("XZ")
    expected = np.kron(PAULI_MATRICES["X"], PAULI_MATRICES["Z"])
    assert np.allclose(p.to_matrix(), expected)


def test_single_qubit_products():
    x, y, z = PauliString("X"), PauliString("Y"), PauliString("Z")
    assert x * y == PauliString("Z", 1j)
    assert y * x == PauliString("Z", -1j)
    assert z * z == PauliString("I")
    assert (x * x).is_identity


def test_multi_qubit_product_matches_matrices():
    a = PauliString("XY")
    b = PauliString("ZZ")
    product = a * b
    assert np.allclose(product.to_matrix(), a.to_matrix() @ b.to_matrix())


def test_scalar_multiplication():
    p = 2.0 * PauliString("X")
    assert p.phase == 2.0
    assert np.allclose(p.to_matrix(), 2.0 * PAULI_MATRICES["X"])


def test_commutation_rules():
    assert PauliString("XX").commutes_with(PauliString("ZZ"))  # two anticommuting factors
    assert not PauliString("XI").commutes_with(PauliString("ZI"))
    assert PauliString("XI").commutes_with(PauliString("IZ"))


def test_mismatched_sizes_raise():
    with pytest.raises(ValueError):
        PauliString("XX") * PauliString("X")
    with pytest.raises(ValueError):
        PauliString("XX").commutes_with(PauliString("X"))


def test_expectation_on_basis_state():
    z = PauliString("Z")
    up = np.array([1.0, 0.0])
    down = np.array([0.0, 1.0])
    assert z.expectation(up) == pytest.approx(1.0)
    assert z.expectation(down) == pytest.approx(-1.0)


def test_from_xz_roundtrip():
    p = PauliString("XYZI")
    q = PauliString.from_xz(p.x, p.z)
    assert q.label == "XYZI"


def test_hash_and_equality():
    assert hash(PauliString("XZ")) == hash(PauliString("XZ"))
    assert PauliString("XZ") != PauliString("XZ", -1)


def test_neg_flips_phase():
    assert (-PauliString("Y")).phase == -1.0
