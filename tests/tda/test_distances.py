"""Tests for distance matrices and epsilon graphs."""

import numpy as np
import pytest

from repro.tda.distances import diameter_bounds, epsilon_edges, epsilon_graph, pairwise_distances


def test_pairwise_distances_euclidean():
    points = np.array([[0.0, 0.0], [3.0, 4.0]])
    dist = pairwise_distances(points)
    assert dist[0, 1] == pytest.approx(5.0)
    assert dist[1, 0] == pytest.approx(5.0)
    assert np.all(np.diag(dist) == 0)


def test_pairwise_distances_1d_input():
    dist = pairwise_distances(np.array([0.0, 2.0, 5.0]))
    assert dist.shape == (3, 3)
    assert dist[0, 2] == pytest.approx(5.0)


def test_pairwise_distances_other_metric():
    points = np.array([[0.0, 0.0], [1.0, 1.0]])
    assert pairwise_distances(points, metric="cityblock")[0, 1] == pytest.approx(2.0)


def test_pairwise_distances_empty_and_bad_input():
    assert pairwise_distances(np.zeros((0, 2))).shape == (0, 0)
    with pytest.raises(ValueError):
        pairwise_distances(np.zeros((2, 2, 2)))


def test_epsilon_edges_threshold_inclusive():
    dist = np.array([[0.0, 1.0, 3.0], [1.0, 0.0, 1.5], [3.0, 1.5, 0.0]])
    assert epsilon_edges(dist, 1.5) == [(0, 1), (1, 2)]
    assert epsilon_edges(dist, 0.5) == []
    with pytest.raises(ValueError):
        epsilon_edges(dist, -1.0)


def test_epsilon_graph_from_points():
    points = np.array([[0.0], [1.0], [10.0]])
    graph = epsilon_graph(points, 1.5)
    assert set(graph.nodes) == {0, 1, 2}
    assert set(graph.edges) == {(0, 1)}
    assert graph[0][1]["weight"] == pytest.approx(1.0)


def test_epsilon_graph_from_distance_matrix():
    dist = np.array([[0.0, 2.0], [2.0, 0.0]])
    graph = epsilon_graph(dist, 2.0, is_distance_matrix=True)
    assert graph.number_of_edges() == 1


def test_diameter_bounds_ignore_duplicate_points():
    """Regression: duplicates contribute zero distances, which are not
    'positive' — the lower bound must skip them."""
    points = np.array([[0.0, 0.0], [0.0, 0.0], [3.0, 0.0]])
    lo, hi = diameter_bounds(points)
    assert lo == pytest.approx(3.0)
    assert hi == pytest.approx(3.0)
    # All-duplicates cloud: no positive distance exists, both bounds are 0.
    assert diameter_bounds(np.zeros((4, 2))) == (0.0, 0.0)


def test_diameter_bounds():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [4.0, 0.0]])
    lo, hi = diameter_bounds(points)
    assert lo == pytest.approx(1.0)
    assert hi == pytest.approx(4.0)
    assert diameter_bounds(np.array([[1.0, 2.0]])) == (0.0, 0.0)
