"""Tests for the incremental sliding-window geometry (DESIGN.md §13)."""

import numpy as np
import pytest

from repro.tda.distances import pairwise_distances
from repro.tda.incremental import (
    FlagComplexDelta,
    IncrementalFlagComplex,
    SlidingDistanceMatrix,
)
from repro.tda.incremental import _merge_lex_sorted
from repro.tda.rips import flag_complex_arrays


def _cloud(rng, n, dim=3):
    return rng.standard_normal((n, dim))


# -- SlidingDistanceMatrix ------------------------------------------------------


def test_sliding_distances_bit_identical_to_from_scratch():
    rng = np.random.default_rng(0)
    points = _cloud(rng, 12)
    sdm = SlidingDistanceMatrix(points)
    assert np.array_equal(sdm.distances, pairwise_distances(points))
    current = points
    for leave, enter in [(3, 4), (0, 2), (5, 0), (1, 1)]:
        new = _cloud(rng, enter)
        dist = sdm.advance(leave, new)
        current = np.concatenate([current[leave:], new], axis=0)
        assert np.array_equal(dist, pairwise_distances(current))
        assert np.array_equal(sdm.points, current)
        assert sdm.num_points == len(current)


def test_sliding_distances_full_replacement():
    rng = np.random.default_rng(1)
    sdm = SlidingDistanceMatrix(_cloud(rng, 6))
    new = _cloud(rng, 8)
    dist = sdm.advance(6, new)
    assert np.array_equal(dist, pairwise_distances(new))


def test_sliding_distances_1d_points_promoted():
    sdm = SlidingDistanceMatrix(np.array([0.0, 1.0, 3.0]))
    dist = sdm.advance(1, np.array([6.0]))
    assert np.array_equal(dist, pairwise_distances(np.array([[1.0], [3.0], [6.0]])))


def test_sliding_distances_validation():
    rng = np.random.default_rng(2)
    sdm = SlidingDistanceMatrix(_cloud(rng, 4))
    with pytest.raises(ValueError):
        sdm.advance(5, np.zeros((0, 3)))
    with pytest.raises(ValueError):
        sdm.advance(1, np.zeros((2, 7)))  # wrong point dimension
    with pytest.raises(ValueError):
        SlidingDistanceMatrix(np.zeros((2, 2, 2)))


# -- merge helper ---------------------------------------------------------------


def test_merge_lex_sorted_splices_in_order():
    a = np.array([[0, 1], [0, 3], [2, 5]], dtype=np.int64)
    b = np.array([[0, 2], [1, 4], [3, 6]], dtype=np.int64)
    merged = _merge_lex_sorted(a, b, num_points=7)
    expected = np.array(sorted(map(tuple, np.vstack([a, b]))), dtype=np.int64)
    assert np.array_equal(merged, expected)
    assert _merge_lex_sorted(a, b[:0], 7) is a
    assert _merge_lex_sorted(a[:0], b, 7) is b


# -- IncrementalFlagComplex -----------------------------------------------------


def test_incremental_complex_matches_from_scratch():
    rng = np.random.default_rng(3)
    points = _cloud(rng, 14)
    sdm = SlidingDistanceMatrix(points)
    epsilon = 1.8
    inc = IncrementalFlagComplex(sdm.distances, epsilon, max_dimension=2)
    for leave, enter in [(4, 4), (2, 5), (0, 0), (6, 3)]:
        dist = sdm.advance(leave, _cloud(rng, enter))
        delta = inc.advance(leave, dist)
        expected = flag_complex_arrays(dist, epsilon, 2)
        got = inc.arrays
        assert got.num_points == expected.num_points
        assert np.array_equal(got.edges, expected.edges)
        assert np.array_equal(got.triangles, expected.triangles)
        assert got.edges.dtype == expected.edges.dtype
        assert isinstance(delta, FlagComplexDelta)


def test_full_replacement_degenerates_to_from_scratch():
    rng = np.random.default_rng(4)
    dist_a = pairwise_distances(_cloud(rng, 8))
    dist_b = pairwise_distances(_cloud(rng, 10))
    inc = IncrementalFlagComplex(dist_a, 1.5)
    delta = inc.advance(8, dist_b)  # leave == num_points: the fallback route
    expected = flag_complex_arrays(dist_b, 1.5, 2)
    assert np.array_equal(inc.arrays.edges, expected.edges)
    assert np.array_equal(inc.arrays.triangles, expected.triangles)
    assert delta.leave_count == 8 and delta.enter_count == 10


def test_delta_counts_and_unchanged_flag():
    # A bitwise-repeating window: the advance destroys and creates simplices
    # but lands on identical arrays -> unchanged is True while counts are not 0.
    points = np.array([[0.0], [1.0], [0.0], [1.0]])
    dist = pairwise_distances(points)
    inc = IncrementalFlagComplex(dist, 1.1)
    before = inc.arrays
    delta = inc.advance(2, dist)  # drop the first copy, append another
    assert delta.unchanged
    assert delta.num_destroyed > 0 and delta.num_created > 0
    assert np.array_equal(inc.arrays.edges, before.edges)


def test_adjacency_contract_violation_raises():
    rng = np.random.default_rng(5)
    dist = pairwise_distances(_cloud(rng, 6))
    inc = IncrementalFlagComplex(dist, float(np.median(dist)))
    # After advance(1, new) the retained block of `new` must induce the same
    # ε-graph as dist[1:, 1:]; passing `dist` itself misaligns it by one point.
    with pytest.raises(ValueError, match="retained points changed adjacency"):
        inc.advance(1, dist)


def test_advance_validation():
    rng = np.random.default_rng(6)
    dist = pairwise_distances(_cloud(rng, 5))
    inc = IncrementalFlagComplex(dist, 1.0)
    with pytest.raises(ValueError):
        inc.advance(6, dist)  # more than num_points
    with pytest.raises(ValueError):
        inc.advance(1, np.zeros((3, 4)))  # not square
    with pytest.raises(ValueError):
        inc.advance(2, np.zeros((2, 2)))  # fewer points than retained


def test_max_dimension_bounds_respected():
    rng = np.random.default_rng(7)
    points = _cloud(rng, 10)
    sdm = SlidingDistanceMatrix(points)
    for max_dim in (0, 1):
        sdm2 = SlidingDistanceMatrix(points)
        inc = IncrementalFlagComplex(sdm2.distances, 1.8, max_dimension=max_dim)
        dist = sdm2.advance(3, _cloud(rng, 3))
        inc.advance(3, dist)
        expected = flag_complex_arrays(dist, 1.8, max_dim)
        assert np.array_equal(inc.arrays.edges, expected.edges)
        assert np.array_equal(inc.arrays.triangles, expected.triangles)
