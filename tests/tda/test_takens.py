"""Tests for the Takens delay embedding."""

import numpy as np
import pytest

from repro.tda.takens import TakensEmbedding, optimal_delay_autocorrelation, takens_embedding


def test_basic_embedding_values():
    series = np.arange(10.0)
    cloud = takens_embedding(series, dimension=3, delay=2)
    assert cloud.shape == (6, 3)
    assert np.array_equal(cloud[0], [0.0, 2.0, 4.0])
    assert np.array_equal(cloud[-1], [5.0, 7.0, 9.0])


def test_stride_subsamples_points():
    series = np.arange(20.0)
    dense = takens_embedding(series, dimension=2, delay=1, stride=1)
    strided = takens_embedding(series, dimension=2, delay=1, stride=5)
    assert dense.shape[0] == 19
    assert strided.shape[0] == 4
    assert np.array_equal(strided[1], dense[5])


def test_too_short_series_rejected():
    with pytest.raises(ValueError):
        takens_embedding(np.arange(3.0), dimension=3, delay=2)


def test_parameter_validation():
    with pytest.raises(ValueError):
        takens_embedding(np.arange(10.0), dimension=0)
    with pytest.raises(ValueError):
        TakensEmbedding(dimension=2, delay=0)


def test_estimator_api():
    emb = TakensEmbedding(dimension=2, delay=3)
    assert emb.window_size == 4
    assert emb.transform(np.arange(10.0)).shape == (7, 2)


def test_transform_batch():
    emb = TakensEmbedding(dimension=2, delay=1)
    clouds = emb.transform_batch(np.arange(20.0).reshape(2, 10))
    assert len(clouds) == 2
    assert clouds[0].shape == (9, 2)
    with pytest.raises(ValueError):
        emb.transform_batch(np.arange(10.0))


def test_sine_embedding_traces_a_loop():
    """A delay-embedded sine wave lies on an ellipse: β_1 = 1 at a suitable scale."""
    from repro.tda.betti import betti_number
    from repro.tda.rips import rips_complex

    t = np.linspace(0, 6 * np.pi, 300, endpoint=False)
    cloud = takens_embedding(np.sin(t), dimension=2, delay=25, stride=7)
    complex_ = rips_complex(cloud, epsilon=0.45, max_dimension=2)
    assert betti_number(complex_, 0) == 1
    assert betti_number(complex_, 1) == 1


def test_optimal_delay_heuristic():
    t = np.linspace(0, 8 * np.pi, 400)
    delay = optimal_delay_autocorrelation(np.sin(t), max_delay=100)
    assert 1 <= delay <= 100
    # Constant series falls back to 1.
    assert optimal_delay_autocorrelation(np.ones(50)) == 1
