"""Tests for filtered complexes."""

import numpy as np
import pytest

from repro.tda.filtration import Filtration, filtration_from_distance_matrix, rips_filtration
from repro.tda.simplex import Simplex


def test_entries_sorted_by_value_then_dimension():
    filtration = Filtration(
        [(1.0, (0, 1)), (0.0, (0,)), (0.0, (1,)), (2.0, (1, 2)), (0.0, (2,))]
    )
    values = filtration.values()
    assert np.all(np.diff(values) >= 0)
    assert filtration.simplices()[0].dimension == 0


def test_missing_face_rejected():
    with pytest.raises(ValueError):
        Filtration([(0.0, (0,)), (1.0, (0, 1))])  # vertex 1 never appears


def test_non_monotone_rejected():
    with pytest.raises(ValueError):
        Filtration([(1.0, (0,)), (1.0, (1,)), (0.5, (0, 1))])


def test_rips_filtration_values_are_max_pairwise_distance():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
    filtration = rips_filtration(points, max_dimension=2)
    values = {tuple(s.vertices): v for v, s in filtration}
    assert values[(0, 1)] == pytest.approx(1.0)
    assert values[(0, 2)] == pytest.approx(2.0)
    assert values[(0, 1, 2)] == pytest.approx(np.sqrt(5.0))


def test_complex_at_scale_matches_rips_complex(circle_points):
    from repro.tda.rips import rips_complex

    filtration = rips_filtration(circle_points, max_dimension=2)
    assert filtration.complex_at(0.7) == rips_complex(circle_points, 0.7, max_dimension=2)


def test_complex_at_zero_has_only_vertices(circle_points):
    filtration = rips_filtration(circle_points, max_dimension=2)
    complex_ = filtration.complex_at(0.0)
    assert complex_.dimension == 0


def test_max_scale_truncates():
    points = np.array([[0.0], [1.0], [5.0]])
    filtration = rips_filtration(points, max_dimension=1, max_scale=2.0)
    assert all(v <= 2.0 for v in filtration.values())
    assert Simplex([0, 2]) not in filtration.simplices()


def test_critical_values_unique_sorted(circle_points):
    crit = rips_filtration(circle_points, max_dimension=1).critical_values()
    assert np.all(np.diff(crit) > 0)


def test_filtration_from_distance_matrix_matches_points():
    points = np.random.default_rng(0).random((5, 2))
    from repro.tda.distances import pairwise_distances

    a = rips_filtration(points, max_dimension=2)
    b = filtration_from_distance_matrix(pairwise_distances(points), max_dimension=2)
    assert len(a) == len(b)
    assert np.allclose(a.values(), b.values())


def test_len_and_max_dimension(circle_points):
    filtration = rips_filtration(circle_points, max_dimension=2)
    assert len(filtration) == len(filtration.simplices())
    assert filtration.max_dimension() == 2
