"""Tests for restricted boundary operators (Eqs. 1–2, 14–15)."""

import numpy as np
import pytest
from scipy import sparse

from repro.tda.boundary import boundary_composition_is_zero, boundary_matrix, boundary_operators
from repro.tda.complexes import SimplicialComplex


#: ∂_1 of the worked example; rows indexed by vertices 1..5, columns by edges
#: (1,2),(1,3),(2,3),(3,4),(3,5),(4,5) in canonical order.
#:
#: Note on signs: the paper's printed Eq. 14 is the *negative* of what its own
#: definition (Eq. 1) produces for edges — Eq. 1 gives ∂[v0, v1] = [v1] - [v0],
#: while the printed matrix encodes [v0] - [v1] (its Eq. 15 for ∂_2 does follow
#: Eq. 1).  We implement Eq. 1 consistently; the overall sign of ∂_1 has no
#: effect on the combinatorial Laplacian (Eq. 17 is reproduced exactly, see
#: test_laplacian.py), so the discrepancy is purely typographical.
EXPECTED_D1 = -np.array(
    [
        [1, 1, 0, 0, 0, 0],
        [-1, 0, 1, 0, 0, 0],
        [0, -1, -1, 1, 1, 0],
        [0, 0, 0, -1, 0, 1],
        [0, 0, 0, 0, -1, -1],
    ],
    dtype=float,
)

#: ∂_2 of the worked example (Eq. 15); the single triangle (1,2,3).
EXPECTED_D2 = np.array([[1], [-1], [1], [0], [0], [0]], dtype=float)


def test_appendix_boundary_1_matches_equation_14_up_to_sign(appendix_k):
    computed = boundary_matrix(appendix_k, 1)
    assert np.array_equal(computed, EXPECTED_D1)
    # The printed Eq. 14 differs only by a global sign, which leaves the
    # Laplacian (∂_1† ∂_1 term) unchanged.
    assert np.array_equal(computed.T @ computed, EXPECTED_D1.T @ EXPECTED_D1)


def test_appendix_boundary_2_matches_equation_15(appendix_k):
    assert np.array_equal(boundary_matrix(appendix_k, 2), EXPECTED_D2)


def test_boundary_0_is_zero_map(appendix_k):
    d0 = boundary_matrix(appendix_k, 0)
    assert d0.shape == (0, 5)


def test_boundary_of_missing_dimension_is_empty(hollow_triangle):
    d2 = boundary_matrix(hollow_triangle, 2)
    assert d2.shape == (3, 0)


def test_boundary_composition_is_zero(appendix_k):
    assert boundary_composition_is_zero(appendix_k, 1)
    d1 = boundary_matrix(appendix_k, 1)
    d2 = boundary_matrix(appendix_k, 2)
    assert np.allclose(d1 @ d2, 0.0)


def test_sparse_format_matches_dense(appendix_k):
    sparse_d1 = boundary_matrix(appendix_k, 1, sparse_format=True)
    assert sparse.issparse(sparse_d1)
    assert np.array_equal(sparse_d1.toarray(), EXPECTED_D1)


def test_boundary_operators_pair(appendix_k):
    d1, d2 = boundary_operators(appendix_k, 1)
    assert d1.shape == (5, 6)
    assert d2.shape == (6, 1)


def test_each_edge_column_has_one_plus_and_one_minus(appendix_k):
    d1 = boundary_matrix(appendix_k, 1)
    for col in d1.T:
        assert sorted(col[col != 0]) == [-1, 1]


def test_negative_dimension_rejected(appendix_k):
    with pytest.raises(ValueError):
        boundary_matrix(appendix_k, -1)


def test_tetrahedron_boundary_ranks():
    complex_ = SimplicialComplex.from_maximal_simplices([(0, 1, 2, 3)])
    d1 = boundary_matrix(complex_, 1)
    d2 = boundary_matrix(complex_, 2)
    d3 = boundary_matrix(complex_, 3)
    assert d1.shape == (4, 6)
    assert d2.shape == (6, 4)
    assert d3.shape == (4, 1)
    assert np.allclose(d1 @ d2, 0.0)
    assert np.allclose(d2 @ d3, 0.0)
