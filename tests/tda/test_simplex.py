"""Tests for the Simplex value object."""

import pytest

from repro.tda.simplex import Simplex


def test_vertices_sorted_ascending():
    assert Simplex([3, 1, 2]).vertices == (1, 2, 3)


def test_dimension():
    assert Simplex([0]).dimension == 0
    assert Simplex([0, 1]).dimension == 1
    assert Simplex([0, 1, 2, 3]).dimension == 3


def test_invalid_simplices_rejected():
    with pytest.raises(ValueError):
        Simplex([])
    with pytest.raises(ValueError):
        Simplex([1, 1])
    with pytest.raises(ValueError):
        Simplex([-1, 0])


def test_faces_drop_one_vertex_each():
    faces = Simplex([0, 1, 2]).faces()
    assert faces == [Simplex([1, 2]), Simplex([0, 2]), Simplex([0, 1])]


def test_vertex_has_no_faces():
    assert Simplex([4]).faces() == []


def test_boundary_signs_follow_equation_2():
    boundary = Simplex([0, 1, 2]).boundary()
    signs = [s for s, _ in boundary]
    assert signs == [1, -1, 1]


def test_all_subsimplices_count():
    # A 2-simplex has 2^3 - 1 = 7 non-empty subsets.
    assert len(Simplex([0, 1, 2]).all_subsimplices()) == 7


def test_is_face_of():
    assert Simplex([0, 2]).is_face_of(Simplex([0, 1, 2]))
    assert not Simplex([0, 3]).is_face_of(Simplex([0, 1, 2]))


def test_equality_with_tuples_and_hashing():
    assert Simplex([2, 0]) == (0, 2)
    assert Simplex([0, 2]) in {Simplex([0, 2])}


def test_ordering_dimension_then_lex():
    assert Simplex([5]) < Simplex([0, 1])
    assert Simplex([0, 1]) < Simplex([0, 2])


def test_contains_and_iter():
    s = Simplex([1, 3])
    assert 3 in s and 2 not in s
    assert list(s) == [1, 3]
    assert len(s) == 2
