"""Tests for the random simplicial-complex generators (Section 4 workloads)."""

import numpy as np

from repro.tda.complexes import SimplicialComplex
from repro.tda.random_complexes import random_point_cloud_complex, random_simplicial_complex


def test_reproducible_with_seed():
    a = random_simplicial_complex(8, seed=7)
    b = random_simplicial_complex(8, seed=7)
    assert a == b


def test_different_seeds_differ():
    a = random_simplicial_complex(10, seed=1)
    b = random_simplicial_complex(10, seed=2)
    assert a != b


def test_vertex_count_and_validity():
    complex_ = random_simplicial_complex(12, seed=3)
    assert isinstance(complex_, SimplicialComplex)
    assert complex_.num_simplices(0) == 12
    # Downward closure is guaranteed by construction (constructor validates).


def test_edge_probability_extremes():
    empty = random_simplicial_complex(6, edge_probability=0.0, seed=0, ensure_nontrivial=False)
    assert empty.num_simplices(1) == 0
    full = random_simplicial_complex(6, edge_probability=1.0, seed=0, max_dimension=2)
    assert full.num_simplices(1) == 15
    assert full.num_simplices(2) == 20


def test_ensure_nontrivial_gives_edges():
    for seed in range(5):
        complex_ = random_simplicial_complex(5, seed=seed)
        assert complex_.num_simplices(1) > 0


def test_max_dimension_respected():
    complex_ = random_simplicial_complex(10, edge_probability=0.9, max_dimension=1, seed=4)
    assert complex_.dimension <= 1


def test_random_point_cloud_complex():
    complex_, points, epsilon = random_point_cloud_complex(8, seed=11)
    assert points.shape == (8, 3)
    assert epsilon > 0
    assert complex_.num_simplices(0) == 8
    # Reproducibility.
    complex_b, points_b, eps_b = random_point_cloud_complex(8, seed=11)
    assert np.allclose(points, points_b)
    assert epsilon == eps_b
    assert complex_ == complex_b


def test_random_point_cloud_fixed_epsilon():
    complex_, _, epsilon = random_point_cloud_complex(5, epsilon=10.0, seed=2)
    assert epsilon == 10.0
    assert complex_.num_simplices(1) == 10  # complete graph at huge scale
