"""Tests for persistent homology (the future-work extension)."""

import numpy as np
import pytest

from repro.datasets.point_clouds import circle_cloud, clusters_cloud, figure_eight_cloud
from repro.tda.betti import betti_numbers
from repro.tda.filtration import rips_filtration
from repro.tda.persistence import (
    PersistencePair,
    persistence_diagrams,
    persistence_features,
    persistent_betti_number,
)


def test_circle_has_one_long_lived_loop():
    points = circle_cloud(16)
    diagrams = persistence_diagrams(rips_filtration(points, max_dimension=2), max_dimension=1)
    long_lived = [p for p in diagrams[1].pairs if p.persistence > 0.5]
    assert len(long_lived) == 1


def test_h0_has_single_essential_class():
    points = circle_cloud(10)
    diagrams = persistence_diagrams(rips_filtration(points, max_dimension=1), max_dimension=0)
    assert len(diagrams[0].essential_pairs()) == 1
    # Every point is born at scale 0.
    assert all(p.birth == 0.0 for p in diagrams[0].pairs)


def test_clusters_merge_at_separation_scale():
    points = clusters_cloud(num_clusters=3, points_per_cluster=5, separation=10.0, spread=0.1, seed=1)
    diagrams = persistence_diagrams(rips_filtration(points, max_dimension=1), max_dimension=0)
    # At a scale between the spread and the separation there are 3 components.
    assert diagrams[0].betti_at(2.0) == 3
    # At a huge scale everything is connected.
    assert diagrams[0].betti_at(100.0) == 1


def test_betti_at_matches_fixed_scale_computation(circle_points):
    filtration = rips_filtration(circle_points, max_dimension=2)
    diagrams = persistence_diagrams(filtration, max_dimension=1)
    for eps in (0.3, 0.7, 1.2):
        complex_ = filtration.complex_at(eps)
        expected = betti_numbers(complex_, 1)
        assert diagrams[0].betti_at(eps) == expected[0]
        assert diagrams[1].betti_at(eps) == expected[1]


def test_figure_eight_has_two_persistent_loops():
    points = figure_eight_cloud(32)
    diagrams = persistence_diagrams(rips_filtration(points, max_dimension=2), max_dimension=1)
    long_lived = [p for p in diagrams[1].pairs if p.persistence > 0.4]
    assert len(long_lived) == 2


def test_persistent_betti_number_function():
    points = circle_cloud(12)
    # The circle's loop is born around the neighbour spacing and dies around the diameter.
    assert persistent_betti_number(points, 1, birth_scale=0.8, death_scale=1.0) == 1
    assert persistent_betti_number(points, 1, birth_scale=0.1, death_scale=0.2) == 0
    with pytest.raises(ValueError):
        persistent_betti_number(points, 1, birth_scale=1.0, death_scale=0.5)


def test_persistence_pair_properties():
    pair = PersistencePair(dimension=1, birth=0.2, death=np.inf)
    assert pair.is_essential
    finite = PersistencePair(dimension=0, birth=0.0, death=0.5)
    assert finite.persistence == pytest.approx(0.5)


def test_diagram_array_and_total_persistence():
    points = circle_cloud(10)
    diagrams = persistence_diagrams(rips_filtration(points, max_dimension=1), max_dimension=0)
    arr = diagrams[0].as_array()
    assert arr.shape[1] == 2
    assert diagrams[0].total_persistence() >= 0.0


def test_persistence_features_vector_shape():
    features = persistence_features(circle_cloud(10), max_homology_dimension=1)
    # 4 summary stats + 3 scale-sampled Betti numbers per dimension, 2 dimensions.
    assert features.shape == (14,)
    assert np.all(np.isfinite(features))
