"""Tests for combinatorial Laplacians (Eq. 5, Eq. 17)."""

import numpy as np
import pytest
from scipy import sparse

from repro.experiments.worked_example import EXPECTED_LAPLACIAN
from repro.tda.complexes import SimplicialComplex
from repro.tda.laplacian import (
    combinatorial_laplacian,
    hodge_decomposition_ranks,
    laplacian_kernel_dimension,
    laplacian_spectrum,
)


def test_appendix_laplacian_matches_equation_17(appendix_k):
    assert np.array_equal(combinatorial_laplacian(appendix_k, 1), EXPECTED_LAPLACIAN)


def test_laplacian_is_symmetric_psd(appendix_k):
    lap = combinatorial_laplacian(appendix_k, 1)
    assert np.array_equal(lap, lap.T)
    assert np.min(np.linalg.eigvalsh(lap)) >= -1e-10


def test_laplacian_0_equals_graph_laplacian(appendix_k):
    """Δ_0 = ∂_1 ∂_1† is the ordinary graph Laplacian of the 1-skeleton."""
    import networkx as nx

    lap = combinatorial_laplacian(appendix_k, 0)
    graph = appendix_k.one_skeleton_graph()
    expected = nx.laplacian_matrix(graph, nodelist=sorted(graph.nodes)).toarray()
    assert np.array_equal(lap, expected)


def test_kernel_dimension_is_betti_number(appendix_k, hollow_triangle, filled_triangle):
    assert laplacian_kernel_dimension(appendix_k, 0) == 1
    assert laplacian_kernel_dimension(appendix_k, 1) == 1
    assert laplacian_kernel_dimension(hollow_triangle, 1) == 1
    assert laplacian_kernel_dimension(filled_triangle, 1) == 0


def test_empty_dimension_gives_empty_laplacian(hollow_triangle):
    lap = combinatorial_laplacian(hollow_triangle, 2)
    assert lap.shape == (0, 0)
    assert laplacian_spectrum(hollow_triangle, 2).size == 0


def test_sparse_format(appendix_k):
    lap = combinatorial_laplacian(appendix_k, 1, sparse_format=True)
    assert sparse.issparse(lap)
    assert np.array_equal(lap.toarray(), EXPECTED_LAPLACIAN)


def test_spectrum_sorted_and_matches_eigvalsh(appendix_k):
    spectrum = laplacian_spectrum(appendix_k, 1)
    assert np.all(np.diff(spectrum) >= -1e-12)
    assert np.allclose(spectrum, np.linalg.eigvalsh(EXPECTED_LAPLACIAN))


def test_hodge_decomposition_ranks_sum_to_dimension(appendix_k):
    ranks = hodge_decomposition_ranks(appendix_k, 1)
    assert ranks["gradient"] + ranks["curl"] + ranks["harmonic"] == appendix_k.num_simplices(1)
    assert ranks["harmonic"] == 1


def test_negative_dimension_rejected(appendix_k):
    with pytest.raises(ValueError):
        combinatorial_laplacian(appendix_k, -2)


def test_two_triangle_complex():
    complex_ = SimplicialComplex.from_maximal_simplices([(0, 1, 2), (2, 3, 4)])
    lap1 = combinatorial_laplacian(complex_, 1)
    assert lap1.shape == (6, 6)
    assert laplacian_kernel_dimension(complex_, 1) == 0
    assert laplacian_kernel_dimension(complex_, 0) == 1
