"""Tests for the Vietoris–Rips construction."""

import numpy as np
import pytest

from repro.tda.betti import betti_numbers
from repro.tda.rips import RipsComplex, rips_complex


def test_three_points_all_connected_forms_triangle():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.8]])
    complex_ = rips_complex(points, epsilon=1.5, max_dimension=2)
    assert complex_.f_vector() == (3, 3, 1)


def test_epsilon_zero_gives_isolated_vertices():
    points = np.random.default_rng(0).random((5, 2))
    complex_ = rips_complex(points, epsilon=0.0)
    assert complex_.f_vector() == (5,)


def test_large_epsilon_gives_complete_skeleton():
    points = np.random.default_rng(0).random((4, 2))
    complex_ = rips_complex(points, epsilon=10.0, max_dimension=2)
    assert complex_.num_simplices(1) == 6
    assert complex_.num_simplices(2) == 4


def test_max_dimension_respected():
    points = np.random.default_rng(1).random((5, 2))
    complex_ = rips_complex(points, epsilon=10.0, max_dimension=1)
    assert complex_.dimension == 1


def test_circle_has_single_loop(circle_points):
    complex_ = rips_complex(circle_points, epsilon=0.7, max_dimension=2)
    assert betti_numbers(complex_, 1) == [1, 1]


def test_clusters_have_three_components(three_clusters):
    complex_ = rips_complex(three_clusters, epsilon=1.5, max_dimension=2)
    assert betti_numbers(complex_, 0)[0] == 3


def test_from_distance_matrix_equivalent():
    points = np.random.default_rng(2).random((6, 3))
    from repro.tda.distances import pairwise_distances

    direct = RipsComplex.from_points(points, 0.8).complex()
    via_matrix = RipsComplex.from_distance_matrix(pairwise_distances(points), 0.8).complex()
    assert direct == via_matrix


def test_validation():
    with pytest.raises(ValueError):
        RipsComplex(np.zeros((2, 3)), 1.0)
    with pytest.raises(ValueError):
        RipsComplex(np.array([[0.0, 1.0], [2.0, 0.0]]), 1.0)  # asymmetric
    with pytest.raises(ValueError):
        RipsComplex(np.zeros((2, 2)), -1.0)


def test_complex_is_cached():
    rc = RipsComplex.from_points(np.random.default_rng(3).random((5, 2)), 0.5)
    assert rc.complex() is rc.complex()


def test_num_simplices_and_repr():
    rc = RipsComplex.from_points(np.array([[0.0], [0.5]]), 1.0)
    assert rc.num_points == 2
    assert rc.num_simplices(1) == 1
    assert "RipsComplex" in repr(rc)
