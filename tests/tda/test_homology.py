"""Tests for GF(2) homology (the exact-arithmetic cross-check)."""

import numpy as np

from repro.tda.betti import betti_numbers
from repro.tda.homology import betti_numbers_gf2, boundary_rank_gf2, rank_gf2
from repro.tda.random_complexes import random_simplicial_complex


def test_rank_gf2_simple_cases():
    assert rank_gf2(np.eye(3)) == 3
    assert rank_gf2(np.zeros((3, 3))) == 0
    assert rank_gf2(np.array([[1, 1], [1, 1]])) == 1
    assert rank_gf2(np.zeros((0, 0))) == 0


def test_rank_gf2_mod_two_semantics():
    # 2 ≡ 0 (mod 2): this matrix is zero over GF(2).
    assert rank_gf2(np.array([[2, 2], [4, 6]])) == 0
    # -1 ≡ 1 (mod 2).
    assert rank_gf2(np.array([[-1]])) == 1


def test_gf2_betti_matches_real_betti_on_fixtures(appendix_k, hollow_triangle, filled_triangle, two_components):
    for complex_ in (appendix_k, hollow_triangle, filled_triangle, two_components):
        assert betti_numbers_gf2(complex_) == betti_numbers(complex_)


def test_gf2_betti_matches_real_betti_on_random_complexes():
    for seed in range(5):
        complex_ = random_simplicial_complex(8, seed=seed)
        assert betti_numbers_gf2(complex_, 2) == betti_numbers(complex_, 2)


def test_boundary_rank_gf2(appendix_k):
    assert boundary_rank_gf2(appendix_k, 0) == 0
    assert boundary_rank_gf2(appendix_k, 1) == 4
    assert boundary_rank_gf2(appendix_k, 2) == 1
