"""Tests for classical Betti numbers."""

import pytest

from repro.tda.betti import betti_number, betti_numbers, betti_summary, euler_characteristic
from repro.tda.complexes import SimplicialComplex
from repro.tda.rips import rips_complex


def test_appendix_betti_numbers(appendix_k):
    """The worked example: one component, one loop (the hollow triangle 3-4-5)."""
    assert betti_numbers(appendix_k) == [1, 1, 0]


def test_rank_and_laplacian_methods_agree(appendix_k, hollow_triangle, filled_triangle, two_components):
    for complex_ in (appendix_k, hollow_triangle, filled_triangle, two_components):
        for k in range(complex_.dimension + 1):
            assert betti_number(complex_, k, method="rank") == betti_number(complex_, k, method="laplacian")


def test_unknown_method_rejected(appendix_k):
    with pytest.raises(ValueError):
        betti_number(appendix_k, 0, method="magic")


def test_hollow_vs_filled_triangle(hollow_triangle, filled_triangle):
    assert betti_numbers(hollow_triangle) == [1, 1]
    assert betti_numbers(filled_triangle) == [1, 0, 0]


def test_disconnected_components(two_components):
    assert betti_number(two_components, 0) == 2


def test_sphere_boundary_of_tetrahedron():
    """The boundary of a 3-simplex is a topological 2-sphere: β = (1, 0, 1)."""
    tetra = SimplicialComplex.from_maximal_simplices([(0, 1, 2, 3)])
    sphere = tetra.skeleton(2)
    assert betti_numbers(sphere) == [1, 0, 1]


def test_full_tetrahedron_is_contractible():
    tetra = SimplicialComplex.from_maximal_simplices([(0, 1, 2, 3)])
    assert betti_numbers(tetra) == [1, 0, 0, 0]


def test_empty_dimension_is_zero(hollow_triangle):
    assert betti_number(hollow_triangle, 5) == 0


def test_euler_characteristic_equals_alternating_betti_sum(appendix_k, hollow_triangle, two_components):
    for complex_ in (appendix_k, hollow_triangle, two_components):
        numbers = betti_numbers(complex_)
        assert euler_characteristic(complex_) == sum((-1) ** k * b for k, b in enumerate(numbers))


def test_circle_cloud_betti(circle_points):
    complex_ = rips_complex(circle_points, epsilon=0.7, max_dimension=2)
    assert betti_numbers(complex_, 1) == [1, 1]


def test_figure_eight_has_two_loops(figure_eight_points):
    complex_ = rips_complex(figure_eight_points, epsilon=0.6, max_dimension=2)
    assert betti_number(complex_, 1) == 2


def test_betti_summary(appendix_k):
    summary = betti_summary(appendix_k)
    assert summary["betti_numbers"] == [1, 1, 0]
    assert summary["euler_characteristic"] == 0
    assert summary["alternating_betti_sum"] == 0
