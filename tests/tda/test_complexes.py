"""Tests for SimplicialComplex."""

import networkx as nx
import pytest

from repro.tda.complexes import SimplicialComplex
from repro.tda.simplex import Simplex


def test_closure_validation():
    with pytest.raises(ValueError):
        SimplicialComplex([(0, 1)])  # missing vertices
    # With closure requested the faces are added.
    complex_ = SimplicialComplex([(0, 1)], close_downward=True)
    assert complex_.num_simplices(0) == 2
    assert complex_.num_simplices(1) == 1


def test_from_maximal_simplices():
    complex_ = SimplicialComplex.from_maximal_simplices([(0, 1, 2)])
    assert complex_.f_vector() == (3, 3, 1)


def test_appendix_complex_f_vector(appendix_k):
    """Eq. 13 lists 5 vertices, 6 edges and 1 triangle."""
    assert appendix_k.f_vector() == (5, 6, 1)
    assert appendix_k.dimension == 2
    assert len(appendix_k) == 12


def test_simplices_ordering_is_canonical(appendix_k):
    edges = appendix_k.simplices(1)
    assert [s.vertices for s in edges] == [(1, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 5)]


def test_simplex_index(appendix_k):
    index = appendix_k.simplex_index(1)
    assert index[Simplex([1, 2])] == 0
    assert index[Simplex([4, 5])] == 5


def test_contains(appendix_k):
    assert (1, 2, 3) in appendix_k
    assert (1, 4) not in appendix_k


def test_complete_complex_counts():
    complex_ = SimplicialComplex.complete_complex(4, 2)
    assert complex_.f_vector() == (4, 6, 4)


def test_from_graph_clique_complex():
    graph = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
    complex_ = SimplicialComplex.from_graph(graph, max_dimension=2)
    assert complex_.num_simplices(2) == 1  # the triangle {0,1,2}
    assert complex_.num_simplices(1) == 4


def test_from_graph_respects_max_dimension():
    graph = nx.complete_graph(4)
    complex_ = SimplicialComplex.from_graph(graph, max_dimension=1)
    assert complex_.dimension == 1


def test_skeleton(appendix_k):
    skeleton = appendix_k.skeleton(1)
    assert skeleton.dimension == 1
    assert skeleton.num_simplices(0) == 5


def test_one_skeleton_graph(appendix_k):
    graph = appendix_k.one_skeleton_graph()
    assert graph.number_of_nodes() == 5
    assert graph.number_of_edges() == 6


def test_star_and_link(appendix_k):
    star = appendix_k.star(3)
    assert Simplex([1, 2, 3]) in star
    link = appendix_k.link(3)
    assert Simplex([1, 2]) in link
    assert all(3 not in s for s in link)


def test_add_simplex(appendix_k):
    bigger = appendix_k.add_simplex((3, 4, 5))
    assert bigger.num_simplices(2) == 2
    # original is unchanged
    assert appendix_k.num_simplices(2) == 1


def test_is_connected(appendix_k, two_components):
    assert appendix_k.is_connected()
    assert not two_components.is_connected()


def test_equality(hollow_triangle):
    same = SimplicialComplex([(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)])
    assert hollow_triangle == same
