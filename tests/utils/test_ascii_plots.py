"""Tests for the ASCII plotting helpers used by experiment reports."""

import numpy as np
import pytest

from repro.utils.ascii_plots import (
    BoxplotSummary,
    render_boxplot_table,
    render_line_plot,
    render_table,
)


def test_boxplot_summary_five_numbers():
    summary = BoxplotSummary.from_samples("g", [1.0, 2.0, 3.0, 4.0, 5.0])
    assert summary.minimum == 1.0
    assert summary.median == 3.0
    assert summary.maximum == 5.0
    assert summary.count == 5
    assert "g" in summary.row()


def test_boxplot_summary_empty_rejected():
    with pytest.raises(ValueError):
        BoxplotSummary.from_samples("g", [])


def test_render_boxplot_table_contains_all_groups():
    text = render_boxplot_table({"a": [1, 2, 3], "b": [4, 5, 6]}, title="T")
    assert "T" in text
    assert "a" in text and "b" in text


def test_render_line_plot_dimensions():
    text = render_line_plot(np.linspace(0, 1, 10), np.linspace(0, 1, 10), width=30, height=8)
    lines = text.splitlines()
    # header + height rows
    assert len(lines) == 9
    assert all(len(line) <= 30 for line in lines[1:])
    assert "*" in text


def test_render_line_plot_validates_lengths():
    with pytest.raises(ValueError):
        render_line_plot([1, 2], [1], width=10, height=5)


def test_render_line_plot_single_point():
    assert "0.5" in render_line_plot([1.0], [0.5])


def test_render_table_alignment():
    text = render_table(["col", "value"], [["a", 1], ["bb", 22]], title="tab")
    lines = text.splitlines()
    assert lines[0] == "tab"
    assert "col" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
