"""Tests for seeded RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, derive_seed, spawn_rngs


def test_as_rng_from_int_is_reproducible():
    a = as_rng(42).random(5)
    b = as_rng(42).random(5)
    assert np.allclose(a, b)


def test_as_rng_passthrough_generator():
    gen = np.random.default_rng(0)
    assert as_rng(gen) is gen


def test_as_rng_none_gives_generator():
    assert isinstance(as_rng(None), np.random.Generator)


def test_as_rng_rejects_garbage():
    with pytest.raises(TypeError):
        as_rng("not a seed")


def test_spawn_rngs_are_independent_and_reproducible():
    first = [g.random(3) for g in spawn_rngs(7, 3)]
    second = [g.random(3) for g in spawn_rngs(7, 3)]
    for a, b in zip(first, second):
        assert np.allclose(a, b)
    # Different children produce different streams.
    assert not np.allclose(first[0], first[1])


def test_spawn_rngs_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(1, -1)


def test_spawn_from_generator():
    children = spawn_rngs(np.random.default_rng(5), 4)
    assert len(children) == 4
    assert all(isinstance(c, np.random.Generator) for c in children)


def test_derive_seed_none_stays_none():
    assert derive_seed(None, 1, 2) is None


def test_derive_seed_deterministic_and_salted():
    assert derive_seed(10, 3) == derive_seed(10, 3)
    assert derive_seed(10, 3) != derive_seed(10, 4)
