"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_integer,
    check_positive_integer,
    check_power_of_two,
    check_probability,
    check_square_matrix,
    check_symmetric,
)


def test_check_integer_accepts_numpy_ints():
    assert check_integer(np.int64(5), "x") == 5


def test_check_integer_rejects_bool_and_float():
    with pytest.raises(TypeError):
        check_integer(True, "x")
    with pytest.raises(TypeError):
        check_integer(2.5, "x")


def test_check_integer_bounds():
    assert check_integer(3, "x", minimum=1, maximum=5) == 3
    with pytest.raises(ValueError):
        check_integer(0, "x", minimum=1)
    with pytest.raises(ValueError):
        check_integer(9, "x", maximum=5)


def test_check_positive_integer():
    assert check_positive_integer(1, "x") == 1
    with pytest.raises(ValueError):
        check_positive_integer(0, "x")


def test_check_probability_range():
    assert check_probability(0.25, "p") == 0.25
    with pytest.raises(ValueError):
        check_probability(1.5, "p")
    with pytest.raises(ValueError):
        check_probability(float("nan"), "p")
    with pytest.raises(TypeError):
        check_probability(None, "p")


def test_check_square_matrix():
    mat = check_square_matrix([[1, 2], [3, 4]], "m")
    assert mat.shape == (2, 2)
    with pytest.raises(ValueError):
        check_square_matrix(np.zeros((2, 3)), "m")


def test_check_symmetric():
    check_symmetric(np.eye(3), "m")
    with pytest.raises(ValueError):
        check_symmetric(np.array([[0.0, 1.0], [0.0, 0.0]]), "m")


def test_check_power_of_two():
    assert check_power_of_two(8, "n") == 8
    with pytest.raises(ValueError):
        check_power_of_two(6, "n")
