"""Property-based tests (hypothesis) for the Pauli-algebra substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paulis.decompose import pauli_decompose
from repro.paulis.gershgorin import gershgorin_bound, gershgorin_lower_bound
from repro.paulis.pauli import PauliString
from repro.paulis.pauli_sum import PauliSum

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=4)
small_labels = st.text(alphabet="IXYZ", min_size=2, max_size=3)


@given(pauli_labels)
def test_pauli_square_is_identity_up_to_phase(label):
    product = PauliString(label) * PauliString(label)
    assert product.label == "I" * len(label)
    assert np.isclose(abs(product.phase), 1.0)


@given(small_labels, small_labels)
def test_product_matches_matrix_product(label_a, label_b):
    if len(label_a) != len(label_b):
        label_b = (label_b * len(label_a))[: len(label_a)]
    a, b = PauliString(label_a), PauliString(label_b)
    assert np.allclose((a * b).to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-12)


@given(small_labels, small_labels)
def test_commutation_check_matches_matrices(label_a, label_b):
    if len(label_a) != len(label_b):
        label_b = (label_b * len(label_a))[: len(label_a)]
    a, b = PauliString(label_a), PauliString(label_b)
    commutator = a.to_matrix() @ b.to_matrix() - b.to_matrix() @ a.to_matrix()
    assert a.commutes_with(b) == np.allclose(commutator, 0.0, atol=1e-12)


@given(pauli_labels)
def test_pauli_matrices_are_trace_orthogonal_to_identity(label):
    matrix = PauliString(label).to_matrix()
    trace = np.trace(matrix)
    if label.strip("I"):
        assert np.isclose(trace, 0.0)
    else:
        assert np.isclose(trace, 2 ** len(label))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2**31 - 1))
def test_decomposition_roundtrip_random_hermitian(num_qubits, seed):
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    a = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    hermitian = (a + a.conj().T) / 2
    decomposition = pauli_decompose(hermitian)
    assert np.allclose(decomposition.to_matrix(), hermitian, atol=1e-9)
    # Hermitian matrices have real Pauli coefficients.
    assert decomposition.is_hermitian


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=2**31 - 1))
def test_gershgorin_brackets_spectrum(dim, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(dim, dim))
    symmetric = (a + a.T) / 2
    eigenvalues = np.linalg.eigvalsh(symmetric)
    assert gershgorin_bound(symmetric) >= eigenvalues.max() - 1e-9
    assert gershgorin_lower_bound(symmetric) <= eigenvalues.min() + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.text(alphabet="IXYZ", min_size=2, max_size=2), st.floats(-3, 3, allow_nan=False)),
        min_size=1,
        max_size=6,
    )
)
def test_pauli_sum_matrix_linearity(terms):
    total = PauliSum(terms)
    manual = np.zeros((4, 4), dtype=complex)
    for label, coeff in terms:
        manual += coeff * PauliString(label).to_matrix()
    if total.num_terms == 0:
        assert np.allclose(manual, 0.0, atol=1e-9)
    else:
        assert np.allclose(total.to_matrix(), manual, atol=1e-9)
