"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import accuracy_score, mean_absolute_error
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import MinMaxScaler, StandardScaler

dataset = st.tuples(
    st.integers(min_value=6, max_value=60),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)


@settings(max_examples=30, deadline=None)
@given(dataset)
def test_standard_scaler_output_statistics(params):
    n, d, seed = params
    rng = np.random.default_rng(seed)
    data = rng.normal(loc=rng.uniform(-5, 5), scale=rng.uniform(0.5, 4), size=(n, d))
    scaled = StandardScaler().fit_transform(data)
    assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-8)
    stds = scaled.std(axis=0)
    assert np.all((np.isclose(stds, 1.0, atol=1e-8)) | (np.isclose(stds, 0.0, atol=1e-8)))


@settings(max_examples=30, deadline=None)
@given(dataset)
def test_minmax_scaler_bounds(params):
    n, d, seed = params
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d)) * 10
    scaled = MinMaxScaler().fit_transform(data)
    assert scaled.min() >= -1e-12
    assert scaled.max() <= 1 + 1e-12


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=10, max_value=80),
    st.floats(min_value=0.15, max_value=0.85),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_train_test_split_partitions_data(n, test_size, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = rng.integers(0, 2, size=n)
    if len(np.unique(y)) < 2:
        y[0] = 0
        y[1] = 1
    x_train, x_test, y_train, y_test = train_test_split(x, y, test_size=test_size, seed=seed)
    assert len(x_train) + len(x_test) == n
    assert len(y_train) == len(x_train)
    # Every original row appears exactly once across the two splits.
    combined = np.vstack([x_train, x_test])
    assert np.allclose(np.sort(combined, axis=0), np.sort(x, axis=0))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40))
def test_accuracy_bounds_and_identity(labels):
    arr = np.asarray(labels)
    assert accuracy_score(arr, arr) == 1.0
    flipped = 3 - arr
    assert 0.0 <= accuracy_score(arr, flipped) <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30))
def test_mae_is_translation_invariant(values):
    arr = np.asarray(values)
    assert mean_absolute_error(arr, arr) == 0.0
    assert np.isclose(mean_absolute_error(arr, arr + 1.5), 1.5)
