"""Property: incremental window advances are bit-identical to from-scratch.

The whole streaming stack rests on one invariant (DESIGN.md §13): after any
sequence of point enter/leave steps, :class:`SlidingDistanceMatrix` equals
:func:`pairwise_distances` of the current points and
:class:`IncrementalFlagComplex` equals :func:`flag_complex_arrays` of the
current distances — to the last bit, values and dtypes, at every homology
dimension the engine supports.  Hypothesis drives random clouds, grouping
scales and enter/leave schedules through both routes; degenerate geometry
(all-duplicate clouds, scales below every distance) is pinned explicitly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tda.distances import pairwise_distances
from repro.tda.incremental import IncrementalFlagComplex, SlidingDistanceMatrix
from repro.tda.rips import flag_complex_arrays


def _assert_arrays_equal(got, expected):
    assert got.num_points == expected.num_points
    assert got.max_dimension == expected.max_dimension
    assert got.edges.dtype == expected.edges.dtype
    assert got.triangles.dtype == expected.triangles.dtype
    assert np.array_equal(got.edges, expected.edges)
    assert np.array_equal(got.triangles, expected.triangles)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    max_dimension=st.integers(min_value=0, max_value=2),
    initial=st.integers(min_value=1, max_value=12),
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=12),  # requested leave count
            st.integers(min_value=0, max_value=6),  # enter count
        ),
        min_size=1,
        max_size=5,
    ),
    epsilon=st.floats(min_value=0.1, max_value=3.5),
)
def test_random_enter_leave_sequences_bit_identical(
    seed, max_dimension, initial, steps, epsilon
):
    rng = np.random.default_rng(seed)
    sdm = SlidingDistanceMatrix(rng.standard_normal((initial, 3)))
    inc = IncrementalFlagComplex(sdm.distances, epsilon, max_dimension)
    for requested_leave, enter in steps:
        leave = min(requested_leave, sdm.num_points)
        dist = sdm.advance(leave, rng.standard_normal((enter, 3)))
        delta = inc.advance(leave, dist)
        assert np.array_equal(dist, pairwise_distances(sdm.points))
        expected = flag_complex_arrays(dist, epsilon, max_dimension)
        _assert_arrays_equal(inc.arrays, expected)
        # Delta bookkeeping is consistent with the arrays it produced.
        assert delta.num_points_after == expected.num_points
        if delta.unchanged:
            assert len(inc.arrays.edges) == len(expected.edges)


@given(n=st.integers(min_value=1, max_value=8), leave=st.integers(min_value=0, max_value=8))
@settings(max_examples=25, deadline=None)
def test_all_duplicate_points_stay_bit_identical(n, leave):
    # Every pairwise distance is exactly 0.0: the complex is one giant clique
    # at any ε >= 0, and ties exercise the merge ordering hardest.
    points = np.ones((n, 3))
    sdm = SlidingDistanceMatrix(points)
    inc = IncrementalFlagComplex(sdm.distances, 0.5, 2)
    leave = min(leave, n)
    dist = sdm.advance(leave, np.ones((3, 3)))
    delta = inc.advance(leave, dist)
    expected = flag_complex_arrays(dist, 0.5, 2)
    _assert_arrays_equal(inc.arrays, expected)
    assert delta.num_points_after == n - leave + 3


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_empty_complex_at_tiny_epsilon(seed):
    # ε below every inter-point distance: no edges, no triangles, ever.
    rng = np.random.default_rng(seed)
    sdm = SlidingDistanceMatrix(rng.standard_normal((6, 3)) * 100.0)
    inc = IncrementalFlagComplex(sdm.distances, 1e-9, 2)
    dist = sdm.advance(2, rng.standard_normal((4, 3)) * 100.0)
    inc.advance(2, dist)
    expected = flag_complex_arrays(dist, 1e-9, 2)
    _assert_arrays_equal(inc.arrays, expected)
    assert len(inc.arrays.edges) == 0 and len(inc.arrays.triangles) == 0
