"""Property-based tests for the quantum simulators and QPE kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.qpe import qpe_probability_kernel
from repro.quantum.statevector import StatevectorSimulator
from repro.quantum.random_states import random_statevector


def _random_circuit(num_qubits, rng, depth=6):
    circ = QuantumCircuit(num_qubits)
    for _ in range(depth):
        q = int(rng.integers(0, num_qubits))
        choice = rng.integers(0, 4)
        if choice == 0:
            circ.h(q)
        elif choice == 1:
            circ.rz(float(rng.normal()), q)
        elif choice == 2:
            circ.rx(float(rng.normal()), q)
        elif num_qubits > 1:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.cnot(int(a), int(b))
    return circ


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2**31 - 1))
def test_statevector_norm_preserved(num_qubits, seed):
    rng = np.random.default_rng(seed)
    circ = _random_circuit(num_qubits, rng)
    initial = random_statevector(num_qubits, seed=rng)
    final = StatevectorSimulator().run(circ, initial_state=initial)
    assert np.isclose(final.norm(), 1.0, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=2), st.integers(min_value=0, max_value=2**31 - 1))
def test_density_matrix_agrees_with_statevector(num_qubits, seed):
    rng = np.random.default_rng(seed)
    circ = _random_circuit(num_qubits, rng)
    sv = StatevectorSimulator().run(circ)
    dm = DensityMatrixSimulator().run(circ)
    assert np.allclose(dm.matrix, sv.density_matrix(), atol=1e-9)
    assert dm.is_valid()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=2**31 - 1))
def test_circuit_composed_with_inverse_is_identity(num_qubits, seed):
    rng = np.random.default_rng(seed)
    circ = _random_circuit(num_qubits, rng)
    unitary = circ.to_unitary()
    inverse = circ.inverse().to_unitary()
    assert np.allclose(inverse @ unitary, np.eye(2**num_qubits), atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False), st.integers(min_value=1, max_value=6))
def test_qpe_kernel_is_a_distribution(theta, precision):
    kernel = qpe_probability_kernel(theta, precision)
    assert kernel.shape == (2**precision,)
    assert np.all(kernel >= -1e-12)
    assert np.isclose(kernel.sum(), 1.0)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False), st.integers(min_value=2, max_value=6))
def test_qpe_kernel_peaks_at_nearest_grid_point(theta, precision):
    kernel = qpe_probability_kernel(theta, precision)
    dim = 2**precision
    nearest = int(np.round(theta * dim)) % dim
    # The nearest grid point always carries the largest single probability.
    assert kernel[nearest] == np.max(kernel) or np.isclose(kernel[nearest], np.max(kernel), atol=1e-9)
