"""Property-based tests for the TDA substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hamiltonian import build_hamiltonian
from repro.core.padding import pad_laplacian
from repro.tda.betti import betti_numbers, euler_characteristic
from repro.tda.boundary import boundary_matrix
from repro.tda.homology import betti_numbers_gf2
from repro.tda.laplacian import combinatorial_laplacian
from repro.tda.random_complexes import random_simplicial_complex

complex_params = st.tuples(
    st.integers(min_value=3, max_value=9),      # number of vertices
    st.floats(min_value=0.1, max_value=0.9),    # edge probability
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


@settings(max_examples=30, deadline=None)
@given(complex_params)
def test_boundary_squared_is_zero(params):
    n, p, seed = params
    complex_ = random_simplicial_complex(n, edge_probability=p, seed=seed, ensure_nontrivial=False)
    for k in range(1, complex_.dimension + 1):
        d_k = boundary_matrix(complex_, k)
        d_k1 = boundary_matrix(complex_, k + 1)
        if d_k.size and d_k1.size:
            assert np.allclose(d_k @ d_k1, 0.0)


@settings(max_examples=30, deadline=None)
@given(complex_params)
def test_euler_poincare_identity(params):
    n, p, seed = params
    complex_ = random_simplicial_complex(n, edge_probability=p, seed=seed, ensure_nontrivial=False)
    numbers = betti_numbers(complex_)
    assert euler_characteristic(complex_) == sum((-1) ** k * b for k, b in enumerate(numbers))


@settings(max_examples=20, deadline=None)
@given(complex_params)
def test_betti_methods_agree(params):
    n, p, seed = params
    complex_ = random_simplicial_complex(n, edge_probability=p, seed=seed, ensure_nontrivial=False)
    rank_betti = betti_numbers(complex_, method="rank")
    laplacian_betti = betti_numbers(complex_, method="laplacian")
    gf2_betti = betti_numbers_gf2(complex_)
    assert rank_betti == laplacian_betti == gf2_betti


@settings(max_examples=20, deadline=None)
@given(complex_params)
def test_laplacian_is_psd_and_padding_preserves_kernel(params):
    n, p, seed = params
    complex_ = random_simplicial_complex(n, edge_probability=p, seed=seed)
    k = 1
    if complex_.num_simplices(k) == 0:
        return
    laplacian = combinatorial_laplacian(complex_, k)
    eigenvalues = np.linalg.eigvalsh(laplacian)
    assert eigenvalues.min() >= -1e-8
    padded = pad_laplacian(laplacian)
    padded_zeros = int(np.count_nonzero(np.abs(np.linalg.eigvalsh(padded.matrix)) < 1e-8))
    true_zeros = int(np.count_nonzero(np.abs(eigenvalues) < 1e-8))
    if padded.lambda_max > 0:
        assert padded_zeros == true_zeros


@settings(max_examples=15, deadline=None)
@given(complex_params)
def test_exact_infinite_precision_limit_recovers_betti(params):
    """With enough precision qubits the exact-backend estimate converges on β_k."""
    n, p, seed = params
    complex_ = random_simplicial_complex(n, edge_probability=p, seed=seed)
    k = 1
    if complex_.num_simplices(k) == 0:
        return
    laplacian = combinatorial_laplacian(complex_, k)
    hamiltonian = build_hamiltonian(laplacian)
    betti = betti_numbers(complex_)[k] if k < len(betti_numbers(complex_)) else 0
    assert hamiltonian.zero_eigenvalue_count() == betti
