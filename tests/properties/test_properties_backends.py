"""Property: all registered noiseless backends agree with classical homology.

For random small complexes (fixed seeds, so the suite is deterministic),
every noiseless registered backend's rounded estimate must equal the
classical ``betti_number`` — the registry guarantees interchangeable
*semantics*, not just a shared interface.  ``noisy-density`` is exercised
separately (its whole point is to deviate under noise); unknown third-party
backends registered at runtime are picked up automatically because the test
iterates ``available_backends()``.
"""

import pytest

from repro.core.backends import available_backends, get_backend
from repro.core.estimator import QTDABettiEstimator
from repro.tda.betti import betti_number
from repro.tda.random_complexes import random_simplicial_complex

#: Backends whose *purpose* is to deviate from the ideal algorithm.
_NOISY_BACKENDS = {"noisy-density"}

#: Fixed seeds keep the property deterministic while still sampling a range
#: of shapes (trees, loops, filled triangles — f-vectors from (5,3) to (5,6,2));
#: seeds 0–11 were all verified to pass, these four keep the suite snappy.
_SEEDS = (2, 5, 8, 11)


def _noiseless_backends():
    return [name for name in available_backends() if name not in _NOISY_BACKENDS]


#: Circuit backends are exercised on both the default batched route and the
#: legacy density-matrix route (DESIGN.md §11); spectral backends ignore the
#: knob, so they run once under "auto".
_CIRCUIT_BACKENDS = {"statevector", "trotter", "noisy-density"}


@pytest.mark.parametrize("seed", _SEEDS)
def test_noiseless_backends_round_to_classical_betti(seed):
    complex_ = random_simplicial_complex(5, max_dimension=2, seed=seed)
    for k in (0, 1):
        truth = betti_number(complex_, k)
        for name in _noiseless_backends():
            backend = get_backend(name)
            engines = ("auto", "density") if name in _CIRCUIT_BACKENDS else ("auto",)
            for engine in engines:
                # The estimator seed pins the *stochastic-trace* probes —
                # without it this property is flaky at the ~1% level (the
                # probe average can round wrong), despite the fixed complex
                # seeds.
                estimator = QTDABettiEstimator(
                    precision_qubits=4,
                    shots=None,
                    backend=name,
                    delta=6.0,
                    trotter_steps=6,
                    circuit_engine=engine,
                    seed=7,
                )
                estimate = estimator.estimate(complex_, k, compute_exact=False)
                assert estimate.betti_rounded == truth, (
                    f"backend {name!r} (circuit_engine={engine!r}, "
                    f"prefers_sparse={backend.prefers_sparse}) rounded to "
                    f"{estimate.betti_rounded}, classical beta_{k} = {truth} (seed {seed})"
                )


@pytest.mark.parametrize("seed", _SEEDS[:3])
def test_spectral_backends_agree_exactly_not_just_after_rounding(seed):
    """``sparse-exact`` delegates to the dense path at these sizes, so its
    raw estimates must be bit-identical to ``exact``, not merely round alike."""
    complex_ = random_simplicial_complex(5, max_dimension=2, seed=seed)
    for k in (0, 1):
        exact = QTDABettiEstimator(precision_qubits=4, shots=None, backend="exact", delta=6.0)
        sparse = QTDABettiEstimator(
            precision_qubits=4, shots=None, backend="sparse-exact", delta=6.0
        )
        a = exact.estimate(complex_, k, compute_exact=False)
        b = sparse.estimate(complex_, k, compute_exact=False)
        assert a.betti_estimate == b.betti_estimate
