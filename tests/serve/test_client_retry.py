"""Tests for the ServiceClient's opt-in 429/503 retry/backoff loop.

The delay policy and retry loop are pinned against a fake transport (no
sockets, no sleeping); recovery is then proven end-to-end against a real
quota-limited server, both for a single client and through
:func:`repro.serve.run_load`.
"""

import pytest

from repro.core.api import EstimationRequest
from repro.serve import QTDAServer, RequestClass, ServeConfig, ServiceClient, ServiceError, run_load

TRIANGLE = ((0,), (1,), (2,), (0, 1), (0, 2), (1, 2))


def _estimate_document(seed=7):
    return EstimationRequest(
        simplices=TRIANGLE, k=1, config={"precision_qubits": 3, "shots": 100, "seed": seed}
    ).as_dict()


def _client(**kwargs):
    kwargs.setdefault("sleep", lambda _s: None)
    return ServiceClient("localhost", 1, **kwargs)


# ---------------------------------------------------------------------------
# Delay policy
# ---------------------------------------------------------------------------


def test_retry_delay_is_capped_exponential():
    client = _client(backoff_base_s=0.1, backoff_cap_s=0.5, backoff_jitter=0.0)
    assert client.retry_delay(0, None) == pytest.approx(0.1)
    assert client.retry_delay(1, None) == pytest.approx(0.2)
    assert client.retry_delay(2, None) == pytest.approx(0.4)
    assert client.retry_delay(3, None) == pytest.approx(0.5)  # capped
    assert client.retry_delay(10, None) == pytest.approx(0.5)


def test_retry_delay_honours_retry_after_as_floor():
    client = _client(backoff_base_s=0.1, backoff_cap_s=0.5, backoff_jitter=0.0)
    # The hint wins when it exceeds the backoff — even past the cap: the
    # cap bounds *our* exponential, not the server's explicit request.
    assert client.retry_delay(0, 2.0) == pytest.approx(2.0)
    # ...but a stale tiny hint never shrinks the backoff.
    assert client.retry_delay(3, 0.01) == pytest.approx(0.5)


def test_retry_delay_jitter_is_bounded_and_seeded():
    a = _client(backoff_base_s=0.1, backoff_jitter=0.5, seed=42)
    b = _client(backoff_base_s=0.1, backoff_jitter=0.5, seed=42)
    delays_a = [a.retry_delay(0, None) for _ in range(8)]
    delays_b = [b.retry_delay(0, None) for _ in range(8)]
    assert delays_a == delays_b  # deterministic per seed
    assert all(0.1 <= d <= 0.1 * 1.5 for d in delays_a)
    assert len(set(delays_a)) > 1  # actually jittered


def test_client_validates_retry_parameters():
    with pytest.raises(ValueError, match="max_retries"):
        _client(max_retries=-1)
    with pytest.raises(ValueError, match="backoff_jitter"):
        _client(backoff_jitter=1.5)


# ---------------------------------------------------------------------------
# Retry loop against a fake transport
# ---------------------------------------------------------------------------


def _scripted_client(responses, **kwargs):
    """A client whose round trips replay ``responses`` and record sleeps."""
    slept = []
    kwargs["sleep"] = slept.append
    client = ServiceClient("localhost", 1, **kwargs)
    script = list(responses)
    sent = []

    def _fake_round_trip(method, path, body):
        sent.append((method, path))
        return script.pop(0)

    client._round_trip = _fake_round_trip
    return client, sent, slept


def _rejection(status, retry_after=0.05):
    return (
        status,
        {"error": {"reason": "quota", "message": "slow down", "retry_after_s": retry_after}},
    )


def test_retries_are_opt_in_default_raises_immediately():
    client, sent, slept = _scripted_client([_rejection(429)])
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/v1/estimate", {"x": 1})
    assert excinfo.value.status == 429
    assert len(sent) == 1 and slept == [] and client.retries_total == 0


def test_retry_loop_resends_429_until_success():
    client, sent, slept = _scripted_client(
        [_rejection(429, 0.2), _rejection(503, 0.3), (200, {"ok": True})],
        max_retries=3,
        backoff_base_s=0.01,
        backoff_jitter=0.0,
    )
    assert client.request("POST", "/v1/estimate", {"x": 1}) == {"ok": True}
    assert len(sent) == 3
    assert slept == [pytest.approx(0.2), pytest.approx(0.3)]  # Retry-After floors
    assert client.retries_total == 2


def test_retry_budget_exhaustion_raises_the_last_rejection():
    client, sent, slept = _scripted_client(
        [_rejection(429), _rejection(429), _rejection(429)],
        max_retries=2,
        backoff_jitter=0.0,
    )
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/v1/estimate", {"x": 1})
    assert excinfo.value.status == 429
    assert len(sent) == 3 and len(slept) == 2


def test_non_backpressure_errors_are_never_retried():
    client, sent, slept = _scripted_client(
        [(400, {"error": {"reason": "invalid", "message": "bad"}})], max_retries=5
    )
    with pytest.raises(ServiceError) as excinfo:
        client.request("POST", "/v1/estimate", {"x": 1})
    assert excinfo.value.status == 400
    assert len(sent) == 1 and slept == []


# ---------------------------------------------------------------------------
# End-to-end recovery against a real quota-limited server
# ---------------------------------------------------------------------------


def test_client_recovers_from_quota_rejections_over_http():
    server = QTDAServer(ServeConfig(port=0, quota_rate=25.0, quota_burst=1.0))
    with server:
        with ServiceClient(
            server.host, server.port, caller="retrying", max_retries=8, backoff_base_s=0.02
        ) as client:
            # Burst of 1: back-to-back requests overrun the bucket, and the
            # retry loop waits out the ~1/25 s refill instead of failing.
            for seed in (1, 2, 3):
                envelope = client.request(
                    "POST", "/v1/estimate", _estimate_document(seed=seed)
                )
                assert envelope["payload"]["betti_rounded"] == 1
            assert client.retries_total > 0


def test_run_load_exercises_quota_recovery():
    server = QTDAServer(ServeConfig(port=0, quota_rate=25.0, quota_burst=1.0))
    classes = [
        RequestClass(name="estimate", kind="estimate", documents=[_estimate_document()])
    ]
    with server:
        report = run_load(
            server.host,
            server.port,
            classes,
            total_requests=6,
            workers=2,
            seed=0,
            max_retries=10,
        )
    assert report.total_requests == 6
    assert report.errors == 0  # every rejection was waited out
    assert report.retries > 0
    assert set(report.status_counts) == {"200"}
    assert report.as_dict()["retries"] == report.retries


def test_run_load_without_retries_still_reports_rejections():
    server = QTDAServer(ServeConfig(port=0, quota_rate=0.001, quota_burst=2.0))
    classes = [
        RequestClass(name="estimate", kind="estimate", documents=[_estimate_document()])
    ]
    with server:
        report = run_load(
            server.host, server.port, classes, total_requests=5, workers=1, seed=0
        )
    assert report.retries == 0
    assert report.status_counts.get("429", 0) > 0
