"""Tests for the serving metrics primitives (repro.serve.metrics)."""

import threading

import numpy as np
import pytest

from repro.serve.metrics import BUCKET_BOUNDS, Counter, Gauge, LatencyHistogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestLatencyHistogram:
    def test_empty_percentiles_are_none(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(50.0) is None
        summary = histogram.as_dict()
        assert summary["count"] == 0
        assert summary["p99_ms"] is None

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="non-negative"):
            LatencyHistogram().record(-0.1)

    def test_rejects_out_of_range_percentile(self):
        with pytest.raises(ValueError, match="lie in"):
            LatencyHistogram().percentile(101.0)

    def test_percentiles_approximate_exact_values(self):
        """Interpolated bucket percentiles track exact ones within bucket width
        (10 buckets/decade => ~26% upper bound; observed much tighter)."""
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-4.0, sigma=1.0, size=5000)  # ~ms-scale latencies
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(float(value))
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            estimate = histogram.percentile(q)
            assert estimate == pytest.approx(exact, rel=0.30)

    def test_min_max_mean_are_exact(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.004, 0.010):
            histogram.record(value)
        summary = histogram.as_dict()
        assert summary["min_ms"] == pytest.approx(1.0)
        assert summary["max_ms"] == pytest.approx(10.0)
        assert summary["mean_ms"] == pytest.approx(5.0)
        assert summary["count"] == 3

    def test_overflow_bucket_reports_recorded_max(self):
        histogram = LatencyHistogram()
        histogram.record(10_000.0)  # beyond the last finite bound
        assert histogram.percentile(99.0) == 10_000.0

    def test_bounds_are_sorted_and_terminated(self):
        assert BUCKET_BOUNDS == sorted(BUCKET_BOUNDS)
        assert BUCKET_BOUNDS[-1] == float("inf")


class TestMetricsRegistry:
    def test_instruments_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_groups_by_type(self):
        registry = MetricsRegistry()
        registry.counter("requests.total").inc(3)
        registry.gauge("queue.depth").set(2)
        registry.histogram("lat").record(0.01)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"requests.total": 3}
        assert snapshot["gauges"] == {"queue.depth": 2}
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("lat").record(0.25)
        json.dumps(registry.as_dict())  # must not raise
