"""End-to-end tests for the HTTP/JSON adapter (repro.serve.server).

Everything here goes over a real socket on a loopback ephemeral port — the
same path production traffic takes — via the keep-alive
:class:`repro.serve.ServiceClient`.
"""

import contextlib
import json
import threading
import time

import numpy as np
import pytest

from repro.core.api import (
    SCHEMA_VERSION,
    EstimationRequest,
    EstimationResult,
    ObserveRequest,
    PipelineRequest,
    QTDAService,
    SweepRequest,
)
from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig
from repro.datasets import HighDimStreamConfig, generate_highdim_cloud_stream
from repro.datasets.point_clouds import circle_cloud
from repro.serve import (
    QTDAServer,
    ServeConfig,
    ServiceClient,
    ServiceError,
    validate_stats_dict,
)

TRIANGLE = ((0,), (1,), (2,), (0, 1), (0, 2), (1, 2))


def estimate_request(**config_overrides):
    config = {"precision_qubits": 3, "shots": 100, "seed": 7}
    config.update(config_overrides)
    return EstimationRequest(simplices=TRIANGLE, k=1, config=config)


@contextlib.contextmanager
def serve(**config_kwargs):
    """A live server on an ephemeral port plus a connected client."""
    server = QTDAServer(ServeConfig(port=0, **config_kwargs))
    with server:
        with ServiceClient(server.host, server.port, caller="test") as client:
            yield server, client


@pytest.fixture(scope="module")
def shared():
    """One server/client pair reused by the read-mostly tests (cheap setup)."""
    server = QTDAServer(ServeConfig(port=0))
    server.start()
    client = ServiceClient(server.host, server.port, caller="shared")
    yield server, client
    client.close()
    server.stop()


class TestRoutes:
    def test_health(self, shared):
        _server, client = shared
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema_version"] == SCHEMA_VERSION
        assert health["kinds"] == ["estimate", "pipeline", "sweep", "observe"]

    def test_estimate_round_trip(self, shared):
        _server, client = shared
        envelope = client.estimate(estimate_request())
        EstimationResult.validate_dict({k: v for k, v in envelope.items() if k != "coalesced"})
        assert envelope["payload"]["betti_rounded"] == 1
        assert envelope["coalesced"] is False

    def test_pipeline_round_trip(self, shared):
        _server, client = shared
        request = PipelineRequest(
            point_clouds=[circle_cloud(8, seed=0)],
            pipeline=PipelineConfig(epsilon=0.8, use_quantum=False),
        )
        envelope = client.pipeline(request)
        features = np.asarray(envelope["payload"]["features"])
        assert features.shape == (1, 2)

    def test_sweep_round_trip(self, shared):
        _server, client = shared
        request = SweepRequest(
            point_clouds=[circle_cloud(8, seed=0)],
            epsilons=(0.5, 0.9),
            pipeline=PipelineConfig(use_quantum=False),
        )
        envelope = client.sweep(request)
        assert np.asarray(envelope["payload"]["features"]).shape == (2, 1, 2)

    def test_observe_round_trip_is_stateful(self, shared):
        """The observe route reaches the streaming engine: windows complete
        as samples accumulate across requests to the same session."""
        _server, client = shared
        pipeline = PipelineConfig(use_quantum=False)
        signal = np.sin(np.linspace(0.0, 8.0 * np.pi, 64))

        def observe(samples):
            return client.observe(
                ObserveRequest(
                    samples=samples,
                    session="http-stream",
                    window_length=32,
                    stride=16,
                    epsilons=(0.5,),
                    pipeline=pipeline,
                )
            )

        first = observe(signal[:16])  # not enough for a window yet
        assert first["payload"]["windows"] == []
        second = observe(signal[16:48])
        assert len(second["payload"]["windows"]) >= 1
        assert second["coalesced"] is False  # observe never coalesces

    def test_stats_schema(self, shared):
        _server, client = shared
        client.estimate(estimate_request())
        stats = client.stats()
        validate_stats_dict(stats)  # the documented contract
        assert stats["requests"]["total"] >= 1
        assert "estimate" in stats["requests"]["by_route"]
        latency = stats["requests"]["by_route"]["estimate"]["latency_ms"]
        assert latency["count"] >= 1 and latency["p50_ms"] is not None

    def test_experiment_kind_not_served(self, shared):
        """Experiment requests are CLI-only; the route does not exist."""
        _server, client = shared
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/v1/experiment", {"schema_version": SCHEMA_VERSION})
        assert excinfo.value.status == 404


class TestErrorEnvelopes:
    def test_unknown_get_path(self, shared):
        _server, client = shared
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.envelope["error"]["reason"] == "not_found"
        assert excinfo.value.envelope["schema_version"] == SCHEMA_VERSION

    def test_invalid_json_body(self, shared):
        server, _client = shared
        status, document, _headers = server.handle_post("estimate", b"{not json", "t")
        assert status == 400
        assert document["error"]["reason"] == "invalid_json"

    def test_missing_schema_version(self, shared):
        _server, client = shared
        body = estimate_request().as_dict()
        del body["schema_version"]
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(body)
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "missing_schema_version"
        assert excinfo.value.envelope["error"]["supported_versions"] == [SCHEMA_VERSION]

    def test_unsupported_schema_version(self, shared):
        _server, client = shared
        body = estimate_request().as_dict()
        body["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(body)
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "unsupported_schema_version"
        assert excinfo.value.envelope["error"]["supported_versions"] == [SCHEMA_VERSION]

    def test_kind_route_mismatch(self, shared):
        _server, client = shared
        with pytest.raises(ServiceError) as excinfo:
            client.pipeline(estimate_request())  # estimate body on /v1/pipeline
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "kind_mismatch"

    def test_kind_defaults_to_route(self, shared):
        _server, client = shared
        body = estimate_request().as_dict()
        del body["kind"]  # the route is authoritative when the body omits it
        assert client.estimate(body)["payload"]["betti_rounded"] == 1

    def test_invalid_request_document(self, shared):
        _server, client = shared
        body = {"schema_version": SCHEMA_VERSION, "kind": "estimate", "k": 1}
        with pytest.raises(ServiceError) as excinfo:
            client.estimate(body)
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "invalid_request"
        assert "exactly one" in excinfo.value.envelope["error"]["message"]

    def test_execution_failure_is_500(self, shared):
        """A request that validates but fails during execution returns a
        structured 500 — the worker thread survives."""
        _server, client = shared
        pipeline = PipelineConfig(use_quantum=False)

        def observe_body(window_length):
            return ObserveRequest(
                session="mismatch-session",
                window_length=window_length,
                stride=16,
                epsilons=(0.5,),
                pipeline=pipeline,
            ).as_dict()

        client.observe(observe_body(32))  # creates the session
        with pytest.raises(ServiceError) as excinfo:
            client.observe(observe_body(64))  # config mismatch: _session_for raises
        assert excinfo.value.status == 500
        assert excinfo.value.reason == "internal_error"
        assert client.health()["status"] == "ok"  # server is still alive


class TestQuotasOverHTTP:
    def test_quota_exhaustion_returns_429_with_retry_after(self):
        with serve(quota_rate=0.001, quota_burst=2.0) as (_server, client):
            client.estimate(estimate_request())
            client.estimate(estimate_request(seed=8))
            with pytest.raises(ServiceError) as excinfo:
                client.estimate(estimate_request(seed=9))
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "quota"
            assert excinfo.value.retry_after_s > 0

    def test_callers_are_isolated(self):
        with serve(quota_rate=0.001, quota_burst=1.0) as (server, _client):
            with ServiceClient(server.host, server.port, caller="alice") as alice, \
                 ServiceClient(server.host, server.port, caller="bob") as bob:
                alice.estimate(estimate_request())
                bob.estimate(estimate_request())  # bob's own bucket
                with pytest.raises(ServiceError) as excinfo:
                    alice.estimate(estimate_request(seed=8))
                assert excinfo.value.status == 429

    def test_rejections_show_up_in_stats(self):
        with serve(quota_rate=0.001, quota_burst=1.0) as (_server, client):
            client.estimate(estimate_request())
            with pytest.raises(ServiceError):
                client.estimate(estimate_request(seed=8))
            stats = client.stats()
            validate_stats_dict(stats)
            assert stats["queue"]["rejected_quota"] == 1
            assert stats["requests"]["errors"] == 1


class TestCoalescingOverHTTP:
    def test_concurrent_duplicates_coalesce(self):
        """N identical requests in flight together: one computes, the rest are
        marked coalesced; all payloads identical.

        The injected service's run() is slowed so the leader is guaranteed to
        still be executing when the other callers arrive (no cache to hide
        behind: both caches are disabled, coalescing does all the work).
        """
        service = QTDAService(result_cache_size=0, spectrum_cache_size=0)
        original_run = service.run
        run_count = threading.Semaphore(0)

        def slow_run(request):
            run_count.release()
            time.sleep(0.5)
            return original_run(request)

        service.run = slow_run
        server = QTDAServer(ServeConfig(port=0), service=service)
        server.start()
        try:
            request = estimate_request()
            n = 6
            envelopes, errors = [None] * n, [None] * n
            barrier = threading.Barrier(n, timeout=30.0)

            def call(index):
                try:
                    with ServiceClient(server.host, server.port, caller=f"c{index}") as client:
                        barrier.wait()
                        envelopes[index] = client.estimate(request)
                except Exception as exc:  # noqa: BLE001
                    errors[index] = exc

            threads = [threading.Thread(target=call, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert errors == [None] * n
            flags = [e["coalesced"] for e in envelopes]
            assert flags.count(True) >= 1  # duplicates rode along
            payloads = [e["payload"] for e in envelopes]
            assert all(p == payloads[0] for p in payloads)
            stats = server.stats()
            assert stats["coalescer"]["hits"] == flags.count(True)
            assert stats["coalescer"]["leaders"] == flags.count(False)
        finally:
            server.stop()
            service.close()

    def test_coalescing_disabled_stats(self):
        with serve(coalesce=False) as (_server, client):
            client.estimate(estimate_request())
            stats = client.stats()
            validate_stats_dict(stats)
            assert stats["coalescer"] == {"enabled": False}


class TestShardedOverHTTP:
    def test_process_sharded_request_matches_in_process_run(self):
        """A shard_backend='process' request served over HTTP is byte-identical
        (through JSON) to the same request run in-process — the acceptance
        criterion that sharding and serving compose without changing numbers."""
        request = EstimationRequest(
            simplices=TRIANGLE,
            k=1,
            config=QTDAConfig(
                precision_qubits=4, shots=300, seed=11, shards=2, shard_backend="process"
            ),
        )
        with QTDAService() as service:
            expected = service.run(request)
        expected_payload = json.loads(json.dumps(expected.as_dict()))["payload"]
        with serve() as (_server, client):
            envelope = client.estimate(request)
        assert envelope["payload"] == expected_payload
        assert envelope["payload"]["counts"] == expected_payload["counts"]  # full distribution


class TestHighDimStreamOverHTTP:
    def test_highdim_frames_estimate_consistently(self):
        """Frames of the rotating high-dimensional stream all report the
        circle's Betti numbers through the service."""
        frames = generate_highdim_cloud_stream(
            3, HighDimStreamConfig(shape="circle", ambient_dim=6, num_points=14, noise_std=0.01),
            seed=5,
        )
        with serve() as (_server, client):
            for frame in frames:
                envelope = client.estimate(
                    EstimationRequest(
                        points=frame, epsilon=0.6, k=1, compute_exact=True,
                        config={"precision_qubits": 4, "shots": 500, "seed": 3},
                    )
                )
                assert envelope["payload"]["exact_betti"] == 1


class TestLifecycle:
    def test_draining_returns_503_and_health_reflects_it(self):
        server = QTDAServer(ServeConfig(port=0))
        server.start()
        try:
            with ServiceClient(server.host, server.port) as client:
                client.estimate(estimate_request())
                server.admission.begin_drain()
                assert client.health()["status"] == "draining"
                with pytest.raises(ServiceError) as excinfo:
                    client.estimate(estimate_request(seed=8))
                assert excinfo.value.status == 503
                assert excinfo.value.reason == "draining"
        finally:
            server.stop()

    def test_stop_is_idempotent_and_closes_owned_service(self):
        server = QTDAServer(ServeConfig(port=0))
        server.start()
        server.stop()
        server.stop()  # no-op
        with pytest.raises(RuntimeError, match="closed"):
            server.service.submit(estimate_request())

    def test_injected_service_is_not_closed(self):
        with QTDAService() as service:
            server = QTDAServer(ServeConfig(port=0), service=service)
            server.start()
            server.stop()
            # The injected service stays usable: the caller owns its lifecycle.
            result = service.run(estimate_request())
            assert result.payload["betti_rounded"] == 1

    def test_connection_reuse_across_requests(self):
        """The client keeps one TCP connection across sequential requests."""
        with serve() as (_server, client):
            client.health()
            connection = client._connection
            client.estimate(estimate_request())
            assert client._connection is connection
