"""Tests for in-flight request coalescing (repro.serve.coalescer).

Concurrency is driven with explicit events (a runner that blocks until the
test releases it) so leader/waiter interleavings are deterministic, not
timing-dependent.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.api import EstimationRequest, PipelineRequest, QTDAService
from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig
from repro.serve.coalescer import RequestCoalescer

TRIANGLE = ((0,), (1,), (2,), (0, 1), (0, 2), (1, 2))


def seeded_request(**overrides):
    config = {"precision_qubits": 3, "shots": 100, "seed": 7}
    config.update(overrides.pop("config", {}))
    return EstimationRequest(simplices=TRIANGLE, k=1, config=config, **overrides)


class BlockingRunner:
    """A runner that parks every call until the test releases it."""

    def __init__(self, service):
        self.service = service
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        self.entered.release()
        if not self.release.wait(10.0):  # pragma: no cover - deadlock guard
            raise TimeoutError("test never released the runner")
        return self.service.run(request)


def _wait_for(predicate, timeout=10.0):
    """Poll until ``predicate()`` holds (deterministic rendezvous for tests)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


def run_concurrently(n, fn):
    """Run ``fn(index)`` on n threads; returns (results, exceptions) by index."""
    results, exceptions = [None] * n, [None] * n

    def target(index):
        try:
            results[index] = fn(index)
        except BaseException as exc:  # noqa: BLE001 - tests inspect the exception
            exceptions[index] = exc

    threads = [threading.Thread(target=target, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "a coalesced caller hung"
    return results, exceptions


@pytest.fixture
def service():
    # No result cache: coalescing must stand on its own.
    with QTDAService(result_cache_size=0) as svc:
        yield svc


class TestCoalescing:
    def test_concurrent_duplicates_compute_once(self, service):
        coalescer = RequestCoalescer()
        runner = BlockingRunner(service)
        request = seeded_request()

        def call(_index):
            return coalescer.execute(request, runner)

        # Start the callers, wait until the leader is inside the runner,
        # then release it — every waiter must be merged behind that one call.
        holder = []
        threads_done = threading.Event()

        def drive():
            holder.append(run_concurrently(5, call))
            threads_done.set()

        driver = threading.Thread(target=drive)
        driver.start()
        assert runner.entered.acquire(timeout=10.0)  # the single leader arrived
        _wait_for(lambda: coalescer.stats()["hits"] == 4)  # all waiters merged
        runner.release.set()
        assert threads_done.wait(30.0)
        driver.join()

        results, exceptions = holder[0]
        assert exceptions == [None] * 5
        assert runner.calls == 1
        flags = [coalesced for _result, coalesced in results]
        assert flags.count(False) == 1 and flags.count(True) == 4
        payloads = [result.payload for result, _ in results]
        assert all(p == payloads[0] for p in payloads)
        stats = coalescer.stats()
        assert stats["leaders"] == 1 and stats["hits"] == 4
        assert stats["in_flight"] == 0

    def test_waiters_get_private_payload_copies(self, service):
        coalescer = RequestCoalescer()
        runner = BlockingRunner(service)
        request = seeded_request()

        def call(_index):
            return coalescer.execute(request, runner)

        # Park the leader until the second caller has joined as a waiter.
        holder = []
        done = threading.Event()

        def drive():
            holder.append(run_concurrently(2, call))
            done.set()

        driver = threading.Thread(target=drive)
        driver.start()
        assert runner.entered.acquire(timeout=10.0)
        # Hold the leader until the second caller has registered as a waiter,
        # so the merge is guaranteed rather than timing-dependent.
        _wait_for(lambda: coalescer.stats()["hits"] == 1)
        runner.release.set()
        assert done.wait(30.0)
        driver.join()

        results, exceptions = holder[0]
        assert exceptions == [None, None]
        assert sorted(coalesced for _r, coalesced in results) == [False, True]
        (first, _), (second, _) = results
        assert first.payload == second.payload
        assert first.payload is not second.payload
        counts_a = first.payload["counts"]
        counts_b = second.payload["counts"]
        assert counts_a is not counts_b  # mutating one must not touch the other

    def test_leader_failure_propagates_to_all_waiters(self, service):
        """A failed leader fails every waiter with the same error — no hangs."""
        coalescer = RequestCoalescer()
        request = seeded_request()
        boom = RuntimeError("backend exploded")
        entered = threading.Semaphore(0)
        release = threading.Event()

        def failing_runner(_request):
            entered.release()
            release.wait(10.0)
            raise boom

        holder = []
        done = threading.Event()

        def drive():
            holder.append(
                run_concurrently(4, lambda _i: coalescer.execute(request, failing_runner))
            )
            done.set()

        driver = threading.Thread(target=drive)
        driver.start()
        assert entered.acquire(timeout=10.0)
        _wait_for(lambda: coalescer.stats()["hits"] == 3)  # all waiters merged
        release.set()
        assert done.wait(30.0)
        driver.join()

        results, exceptions = holder[0]
        assert results == [None] * 4
        assert all(exc is boom for exc in exceptions)
        # The in-flight entry was evicted: the next request starts fresh.
        assert coalescer.stats()["in_flight"] == 0
        result, coalesced = coalescer.execute(request, lambda r: service.run(r))
        assert not coalesced
        assert result.payload["betti_rounded"] == 1

    def test_sequential_requests_do_not_coalesce(self, service):
        coalescer = RequestCoalescer()
        request = seeded_request()
        _, first = coalescer.execute(request, service.run)
        _, second = coalescer.execute(request, service.run)
        assert not first and not second
        assert coalescer.stats()["leaders"] == 2


class TestCoalescingEligibility:
    def test_unseeded_requests_never_coalesce(self, service):
        coalescer = RequestCoalescer()
        request = seeded_request(config={"seed": None})
        _, coalesced = coalescer.execute(request, service.run)
        assert not coalesced
        assert coalescer.stats()["uncoalescable"] == 1
        assert coalescer.stats()["leaders"] == 0

    def test_unserialisable_config_never_coalesces(self, service):
        from repro.quantum.noise import NoiseModel

        coalescer = RequestCoalescer()
        pipeline = PipelineConfig(
            epsilon=0.8,
            estimator=QTDAConfig(
                precision_qubits=2,
                shots=20,
                backend="noisy-density",
                noise_model=NoiseModel.from_channel("depolarizing", 0.01),
                seed=1,
            ),
        )
        request = PipelineRequest(
            point_clouds=[np.random.default_rng(0).normal(size=(6, 2))], pipeline=pipeline
        )
        _result, coalesced = coalescer.execute(request, service.run)
        assert not coalesced
        assert coalescer.stats()["uncoalescable"] == 1


class TestGeometryGrouping:
    def test_same_geometry_different_config_serialises(self):
        """Two concurrent leaders sharing geometry run one at a time, so the
        second hits the spectrum cache the first populated."""
        with QTDAService(result_cache_size=0) as service:
            coalescer = RequestCoalescer(group_geometry=True)
            requests = [
                seeded_request(config={"shots": 100, "seed": 1}),
                seeded_request(config={"shots": 200, "seed": 2}),
            ]
            assert requests[0].fingerprint() != requests[1].fingerprint()
            assert requests[0].geometry_fingerprint() == requests[1].geometry_fingerprint()

            started = threading.Barrier(2, timeout=10.0)

            def call(index):
                started.wait()  # both threads race into the coalescer together
                return coalescer.execute(requests[index], service.run)

            results, exceptions = run_concurrently(2, call)
            assert exceptions == [None, None]
            # Distinct fingerprints: nobody coalesced, both computed...
            assert [c for _r, c in results] == [False, False]
            # ...but the geometry gate made the Laplacian build happen once.
            stats = service.stats
            assert stats["spectrum_cache"]["hits"] >= 1

    def test_geometry_map_is_cleaned_up(self, service):
        coalescer = RequestCoalescer(group_geometry=True)
        coalescer.execute(seeded_request(), service.run)
        assert coalescer._geometry == {}

    def test_grouping_can_be_disabled(self, service):
        coalescer = RequestCoalescer(group_geometry=False)
        _, coalesced = coalescer.execute(seeded_request(), service.run)
        assert not coalesced
        assert coalescer.stats()["geometry_grouping"] is False

    def test_stats_shape(self, service):
        coalescer = RequestCoalescer()
        coalescer.execute(seeded_request(), service.run)
        stats = coalescer.stats()
        for key in ("enabled", "hits", "leaders", "uncoalescable", "in_flight",
                    "geometry_grouping", "geometry_serialised"):
            assert key in stats
        assert stats["enabled"] is True
