"""Tests for admission control (repro.serve.quotas).

The load-bearing guarantees: rejections are stateless (quota exhaustion
never consumes capacity), every admit/release pair balances, and drain
waits for exactly the in-flight requests.
"""

import threading

import pytest

from repro.serve.quotas import AdmissionController, AdmissionRejected, TokenBucket


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(1.0)

    def test_refusal_does_not_consume(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        before = bucket.tokens
        bucket.try_acquire()  # refused
        assert bucket.tokens == before

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(0.5)  # one token back at 2/s
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_admit_release_tracks_depth(self):
        controller = AdmissionController(max_pending=2)
        controller.admit("a")
        controller.admit("b")
        assert controller.depth == 2
        controller.release()
        assert controller.depth == 1

    def test_capacity_rejection(self):
        controller = AdmissionController(max_pending=1)
        controller.admit("a")
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit("b")
        assert excinfo.value.reason == "capacity"
        assert excinfo.value.retry_after_s > 0

    def test_quota_rejection_does_not_enqueue(self):
        """The satellite guarantee: a 429 must never consume capacity."""
        clock = FakeClock()
        controller = AdmissionController(max_pending=10, quota_rate=1.0, quota_burst=1.0, clock=clock)
        controller.admit("caller")
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit("caller")
        assert excinfo.value.reason == "quota"
        # Depth unchanged: the rejected request was never admitted, so no
        # release is owed and capacity is untouched.
        assert controller.depth == 1
        assert controller.stats()["rejected_quota"] == 1

    def test_quotas_are_per_caller(self):
        clock = FakeClock()
        controller = AdmissionController(quota_rate=1.0, quota_burst=1.0, clock=clock)
        controller.admit("alice")
        controller.admit("bob")  # bob has his own bucket
        with pytest.raises(AdmissionRejected):
            controller.admit("alice")

    def test_quota_recovers_with_time(self):
        clock = FakeClock()
        controller = AdmissionController(quota_rate=2.0, quota_burst=1.0, clock=clock)
        controller.admit("caller")
        with pytest.raises(AdmissionRejected):
            controller.admit("caller")
        clock.advance(0.5)
        controller.admit("caller")  # refilled

    def test_caller_map_is_bounded(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_pending=1000, quota_rate=100.0, max_callers=4, clock=clock
        )
        for index in range(10):
            controller.admit(f"caller-{index}")
        assert controller.stats()["tracked_callers"] == 4

    def test_release_without_admit_raises(self):
        with pytest.raises(RuntimeError, match="matching admit"):
            AdmissionController().release()

    def test_draining_rejects_new_requests(self):
        controller = AdmissionController()
        controller.admit("a")
        controller.begin_drain()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit("b")
        assert excinfo.value.reason == "draining"
        assert controller.depth == 1  # the in-flight request is unaffected

    def test_drain_waits_for_in_flight(self):
        controller = AdmissionController()
        controller.admit("a")
        done = threading.Event()

        def finish_later():
            done.wait(5.0)
            controller.release()

        worker = threading.Thread(target=finish_later)
        worker.start()
        assert not controller.drain(timeout=0.05)  # still in flight
        done.set()
        assert controller.drain(timeout=5.0)
        worker.join()

    def test_drain_empty_returns_immediately(self):
        assert AdmissionController().drain(timeout=0.0)

    def test_quota_burst_defaults_to_rate(self):
        controller = AdmissionController(quota_rate=5.0)
        assert controller.quota_burst == 5.0
        low = AdmissionController(quota_rate=0.25)
        assert low.quota_burst == 1.0  # at least one request is always possible

    def test_stats_shape(self):
        stats = AdmissionController(max_pending=3, quota_rate=2.0).stats()
        assert stats["max_pending"] == 3
        assert stats["quota_rate"] == 2.0
        for key in ("depth", "admitted", "rejected_quota", "rejected_capacity",
                    "rejected_draining", "tracked_callers", "draining"):
            assert key in stats
