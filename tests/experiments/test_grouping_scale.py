"""Integration tests for the Fig. 4 grouping-scale sweep."""

import numpy as np
import pytest

from repro.experiments.grouping_scale import (
    GroupingScaleConfig,
    render_grouping_scale_results,
    run_grouping_scale_experiment,
)


@pytest.fixture(scope="module")
def result():
    config = GroupingScaleConfig(
        num_rows=60,
        num_healthy=20,
        num_scales=7,
        repetitions=3,
        window_length=300,
        seed=13,
    )
    return run_grouping_scale_experiment(config)


def test_one_accuracy_per_scale(result):
    assert result.scales.shape == (7,)
    assert result.mean_training_accuracy.shape == (7,)
    assert result.std_training_accuracy.shape == (7,)


def test_scales_increasing_and_positive(result):
    assert np.all(np.diff(result.scales) > 0)
    assert np.all(result.scales > 0)


def test_accuracies_are_probabilities(result):
    assert np.all((result.mean_training_accuracy >= 0) & (result.mean_training_accuracy <= 1))
    assert np.all(result.std_training_accuracy >= 0)


def test_best_scale_is_on_grid(result):
    assert result.best_scale() in result.scales


def test_accuracy_depends_on_scale(result):
    """Fig. 4's point: the grouping scale matters (the curve is not flat)."""
    assert result.mean_training_accuracy.max() - result.mean_training_accuracy.min() > 0.01


def test_explicit_scale_range_respected():
    config = GroupingScaleConfig(
        num_rows=24, num_healthy=8, num_scales=3, repetitions=2, scale_range=(1.0, 2.0), window_length=300, seed=1
    )
    result = run_grouping_scale_experiment(config)
    assert result.scales[0] == pytest.approx(1.0)
    assert result.scales[-1] == pytest.approx(2.0)


def test_render(result):
    text = render_grouping_scale_results(result)
    assert "grouping scale" in text
    assert "best ε" in text


def test_paper_scale_config():
    cfg = GroupingScaleConfig.paper_scale()
    assert cfg.num_rows == 255
    assert cfg.repetitions == 50
