"""Integration tests for the Table 1 and Section 5 classification drivers."""

import numpy as np
import pytest

from repro.experiments.gearbox_table1 import (
    GearboxExperimentConfig,
    render_table1,
    run_gearbox_table1,
    run_timeseries_classification,
)


@pytest.fixture(scope="module")
def table1():
    config = GearboxExperimentConfig(
        num_rows=48,
        num_healthy=16,
        precision_grid=(1, 3, 5),
        shots=100,
        window_length=300,
        seed=21,
    )
    return run_gearbox_table1(config)


def test_one_row_per_precision_setting(table1):
    assert [row.precision_qubits for row in table1.rows] == [1, 3, 5]


def test_accuracies_are_probabilities(table1):
    for row in table1.rows:
        assert 0.0 <= row.training_accuracy <= 1.0
        assert 0.0 <= row.validation_accuracy <= 1.0
        assert row.mean_absolute_error >= 0.0
    assert 0.0 <= table1.reference_training_accuracy <= 1.0
    assert 0.0 <= table1.reference_validation_accuracy <= 1.0


def test_mae_decreases_with_precision(table1):
    """Table 1's monotone trend: more precision qubits → smaller Betti-number error."""
    maes = [row.mean_absolute_error for row in table1.rows]
    assert maes[-1] < maes[0]


def test_classifier_beats_chance(table1):
    """The Betti features carry class signal (paper: 'encouraging results')."""
    best = max(row.validation_accuracy for row in table1.rows)
    assert best > 0.6
    assert table1.reference_validation_accuracy > 0.6


def test_render_contains_all_rows(table1):
    text = render_table1(table1)
    assert "Precision qubits" in text
    assert text.count("\n") >= len(table1.rows) + 2
    assert "Reference" in text


def test_quick_config():
    cfg = GearboxExperimentConfig.quick()
    assert cfg.num_rows < 255


def test_timeseries_classification_runs_and_separates():
    result = run_timeseries_classification(
        num_samples_per_class=10,
        window_length=400,
        precision_qubits=4,
        takens_stride=20,
        seed=5,
    )
    assert result.num_windows == 20
    assert result.epsilon > 0
    assert result.training_accuracy >= 0.6
    assert result.feature_names == ("betti_0", "betti_1")


def test_timeseries_classification_classical_route():
    result = run_timeseries_classification(
        num_samples_per_class=8,
        window_length=400,
        takens_stride=20,
        use_quantum=False,
        seed=6,
    )
    assert 0.0 <= result.validation_accuracy <= 1.0
