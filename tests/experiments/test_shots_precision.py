"""Integration tests for the Fig. 3 experiment driver."""

import numpy as np
import pytest

from repro.experiments.shots_precision import (
    ShotsPrecisionConfig,
    error_trend_summary,
    render_shots_precision_results,
    run_shots_precision_experiment,
)


@pytest.fixture(scope="module")
def result():
    config = ShotsPrecisionConfig(
        complex_sizes=(5, 10),
        num_complexes=6,
        shots_grid=(100, 10_000),
        precision_grid=(1, 3, 6),
        seed=7,
    )
    return run_shots_precision_experiment(config)


def test_all_grid_cells_populated(result):
    cfg = result.config
    for n in cfg.complex_sizes:
        for shots in cfg.shots_grid:
            for precision in cfg.precision_grid:
                samples = result.group(n, shots, precision)
                assert len(samples) == cfg.num_complexes
                assert all(e >= 0 for e in samples)


def test_error_decreases_with_precision(result):
    """The headline qualitative claim of Fig. 3: more precision qubits → smaller error."""
    cfg = result.config
    for n in cfg.complex_sizes:
        coarse = result.mean_error(n, cfg.shots_grid[-1], cfg.precision_grid[0])
        fine = result.mean_error(n, cfg.shots_grid[-1], cfg.precision_grid[-1])
        assert fine <= coarse


def test_error_scale_grows_with_complex_size(result):
    cfg = result.config
    small = result.mean_error(5, cfg.shots_grid[0], cfg.precision_grid[0])
    large = result.mean_error(10, cfg.shots_grid[0], cfg.precision_grid[0])
    assert large >= small


def test_reproducible_with_seed():
    config = ShotsPrecisionConfig(
        complex_sizes=(5,), num_complexes=3, shots_grid=(100,), precision_grid=(2,), seed=11
    )
    a = run_shots_precision_experiment(config)
    b = run_shots_precision_experiment(config)
    assert a.errors == b.errors


def test_render_and_summary(result):
    text = render_shots_precision_results(result)
    assert "n = 5" in text and "n = 10" in text
    summary = error_trend_summary(result)
    assert "n=5" in summary and "n=10" in summary


def test_paper_scale_configuration_values():
    cfg = ShotsPrecisionConfig.paper_scale()
    assert cfg.complex_sizes == (5, 10, 15)
    assert cfg.num_complexes == 100
    assert cfg.shots_grid == (100, 1000, 10_000, 100_000, 1_000_000)
    assert cfg.precision_grid == tuple(range(1, 11))
