"""Integration test: the Appendix A walkthrough end to end."""

import numpy as np
import pytest

from repro.experiments.worked_example import (
    EXPECTED_LAPLACIAN,
    EXPECTED_PAULI_COEFFICIENTS,
    appendix_complex,
    render_worked_example,
    run_worked_example,
)


@pytest.fixture(scope="module")
def result():
    return run_worked_example(shots=1000, precision_qubits=3, backend="statevector", seed=1)


def test_complex_matches_equation_13(result):
    assert result.complex_.f_vector() == (5, 6, 1)
    assert result.complex_ == appendix_complex()


def test_laplacian_matches_equation_17(result):
    assert np.array_equal(result.laplacian, EXPECTED_LAPLACIAN)


def test_padding_matches_equation_18(result):
    assert result.padded.lambda_max == pytest.approx(6.0)
    assert result.padded.padded_dimension == 8
    assert result.padded.matrix[6, 6] == pytest.approx(3.0)


def test_pauli_coefficients_match_equation_19(result):
    assert len(result.pauli_coefficients) == 24
    for label, value in EXPECTED_PAULI_COEFFICIENTS.items():
        assert result.pauli_coefficients[label] == pytest.approx(value), label


def test_estimate_rounds_to_one_as_in_paper(result):
    """The appendix reports β̃_1 = 1.192 → 1 for 1000 shots and 3 precision qubits."""
    assert result.exact_betti == 1
    assert result.estimate.betti_rounded == 1
    assert 0.6 < result.estimate.betti_estimate < 1.8
    assert result.estimate.shots == 1000
    assert result.estimate.precision_qubits == 3


def test_circuit_resources(result):
    resources = result.circuit_resources
    assert resources["total_qubits"] == 9  # 3 precision + 3 system + 3 auxiliary (Fig. 6)
    assert resources["precision_qubits"] == 3
    assert resources["num_gates"] > 10


def test_exact_backend_agrees():
    exact = run_worked_example(shots=None, backend="exact")
    assert exact.estimate.betti_rounded == 1


def test_render_contains_key_numbers(result):
    text = render_worked_example(result)
    assert "λ̃_max" in text or "lambda" in text.lower()
    assert "β̃_1" in text or "betti" in text.lower()
    assert "2.625" in text or "2.6250" in text


def test_drawing_included_when_requested():
    small = run_worked_example(shots=None, backend="exact", include_drawing=True)
    assert small.circuit_drawing is not None
    assert "q0" in small.circuit_drawing
