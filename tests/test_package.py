"""Package-level smoke tests: imports, version, lazy exports."""

import pytest


def test_version_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_lazy_exports():
    import repro

    assert repro.QTDABettiEstimator is not None
    assert repro.RipsComplex is not None
    assert repro.QTDAPipeline is not None
    with pytest.raises(AttributeError):
        _ = repro.does_not_exist


def test_all_subpackages_importable():
    import importlib

    for name in (
        "repro.paulis",
        "repro.quantum",
        "repro.tda",
        "repro.core",
        "repro.ml",
        "repro.datasets",
        "repro.experiments",
        "repro.utils",
    ):
        module = importlib.import_module(name)
        assert module is not None


def test_public_api_docstrings():
    """Every public headline class/function carries a docstring."""
    from repro.core import QTDABettiEstimator, QTDAPipeline, build_hamiltonian, pad_laplacian
    from repro.quantum import QuantumCircuit, StatevectorSimulator
    from repro.tda import RipsComplex, SimplicialComplex, betti_number

    for obj in (
        QTDABettiEstimator,
        QTDAPipeline,
        build_hamiltonian,
        pad_laplacian,
        QuantumCircuit,
        StatevectorSimulator,
        RipsComplex,
        SimplicialComplex,
        betti_number,
    ):
        assert obj.__doc__ and obj.__doc__.strip()


def test_readme_quickstart_snippet_runs():
    """The snippet shown in the package docstring / README works as written."""
    import numpy as np

    from repro import QTDABettiEstimator
    from repro.tda import RipsComplex

    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [2.0, 1.0], [2.5, 0.2]])
    complex_ = RipsComplex.from_points(points, epsilon=1.5, max_dimension=2).complex()
    estimator = QTDABettiEstimator(precision_qubits=4, shots=1000, seed=7)
    result = estimator.estimate(complex_, k=1)
    assert result.betti_rounded >= 0
    assert 0.0 <= result.p_zero <= 1.0
