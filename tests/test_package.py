"""Package-level smoke tests: imports, version, lazy exports."""

import pytest


def test_version_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_lazy_exports():
    import repro

    assert repro.QTDABettiEstimator is not None
    assert repro.RipsComplex is not None
    assert repro.QTDAPipeline is not None
    assert repro.QTDAService is not None
    assert repro.EstimationRequest is not None
    with pytest.raises(AttributeError):
        _ = repro.does_not_exist


def test_all_round_trips_every_exported_symbol():
    """__all__, dir() and __getattr__ agree on the whole lazy surface.

    The historic bug: ``__all__`` listed only ``__version__`` while
    ``__getattr__`` served more names.  Every advertised name must resolve,
    appear in ``dir(repro)``, and the api front-door names must be included.
    """
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None, f"__all__ lists unresolvable name {name!r}"
    listed = set(dir(repro))
    missing = set(repro.__all__) - listed
    assert not missing, f"dir(repro) is missing exported names: {sorted(missing)}"
    for name in (
        "EstimationRequest",
        "PipelineRequest",
        "SweepRequest",
        "ExperimentRequest",
        "EstimationResult",
        "Provenance",
        "QTDAService",
        "request_from_dict",
    ):
        assert name in repro.__all__, f"repro.api name {name!r} not advertised in __all__"


def test_api_module_importable():
    """The repro.api alias module re-exports the core implementation."""
    import repro.api
    import repro.core.api

    assert repro.api.QTDAService is repro.core.api.QTDAService
    assert set(repro.api.__all__) == set(repro.core.api.__all__)


def test_all_subpackages_importable():
    import importlib

    for name in (
        "repro.paulis",
        "repro.quantum",
        "repro.tda",
        "repro.core",
        "repro.ml",
        "repro.datasets",
        "repro.experiments",
        "repro.utils",
    ):
        module = importlib.import_module(name)
        assert module is not None


def test_public_api_docstrings():
    """Every public headline class/function carries a docstring."""
    from repro.core import QTDABettiEstimator, QTDAPipeline, build_hamiltonian, pad_laplacian
    from repro.quantum import QuantumCircuit, StatevectorSimulator
    from repro.tda import RipsComplex, SimplicialComplex, betti_number

    for obj in (
        QTDABettiEstimator,
        QTDAPipeline,
        build_hamiltonian,
        pad_laplacian,
        QuantumCircuit,
        StatevectorSimulator,
        RipsComplex,
        SimplicialComplex,
        betti_number,
    ):
        assert obj.__doc__ and obj.__doc__.strip()


def test_readme_quickstart_snippet_runs():
    """The service quick-start shown in the package docstring works as written."""
    import numpy as np

    from repro import EstimationRequest, QTDAService

    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [2.0, 1.0], [2.5, 0.2]])
    request = EstimationRequest(
        points=points, epsilon=1.5, k=1,
        config={"precision_qubits": 4, "shots": 1000, "seed": 7},
    )
    with QTDAService() as service:
        result = service.run(request)
    assert result.payload["betti_rounded"] >= 0
    assert 0.0 <= result.payload["p_zero"] <= 1.0
    assert result.provenance.backend == "exact"


def test_legacy_quickstart_snippet_still_runs():
    """The pre-service snippet keeps working bit-identically (shim policy)."""
    import numpy as np

    from repro import EstimationRequest, QTDABettiEstimator, QTDAService
    from repro.tda import RipsComplex

    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0], [2.0, 1.0], [2.5, 0.2]])
    complex_ = RipsComplex.from_points(points, epsilon=1.5, max_dimension=2).complex()
    estimator = QTDABettiEstimator(precision_qubits=4, shots=1000, seed=7)
    result = estimator.estimate(complex_, k=1)
    assert result.betti_rounded >= 0
    assert 0.0 <= result.p_zero <= 1.0
    with QTDAService() as service:
        via_service = service.run(
            EstimationRequest(
                points=points, epsilon=1.5, k=1, max_dimension=2,
                config={"precision_qubits": 4, "shots": 1000, "seed": 7},
            )
        )
    assert via_service.payload == result.as_dict()
