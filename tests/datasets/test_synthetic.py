"""Tests for the synthetic drift/anomaly stream generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DriftStreamConfig,
    generate_drift_dataset,
    generate_drift_signal,
)


def test_signal_shape_and_determinism():
    a = generate_drift_signal(1000, anomalous=False, seed=5)
    b = generate_drift_signal(1000, anomalous=False, seed=5)
    c = generate_drift_signal(1000, anomalous=False, seed=6)
    assert a.shape == (1000,)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_regime_switch_changes_amplitude_and_frequency():
    cfg = DriftStreamConfig(noise_std=0.0, drift_depth=0.0)
    signal = generate_drift_signal(4000, anomalous=False, config=cfg, seed=1)
    switch = int(4000 * cfg.regime_switch_fraction)
    before, after = signal[:switch], signal[switch:]
    # Amplitude steps up by amplitude_step at the switch...
    assert np.abs(after).max() == pytest.approx(1.0 + cfg.amplitude_step, rel=0.05)
    assert np.abs(before).max() == pytest.approx(1.0, rel=0.05)
    # ...and the dominant frequency jumps from base to shifted.
    for segment, expected in ((before, cfg.base_frequency), (after, cfg.shifted_frequency)):
        spectrum = np.abs(np.fft.rfft(segment - segment.mean()))
        freqs = np.fft.rfftfreq(len(segment), d=1.0 / cfg.sampling_rate)
        assert freqs[spectrum.argmax()] == pytest.approx(expected, abs=2.0)


def test_anomalous_signals_carry_extra_transient_energy():
    cfg = DriftStreamConfig(noise_std=0.0)
    clean = generate_drift_signal(2000, anomalous=False, config=cfg, seed=2)
    dirty = generate_drift_signal(2000, anomalous=True, config=cfg, seed=2)
    assert np.abs(dirty).max() > np.abs(clean).max()
    assert (dirty**2).sum() > (clean**2).sum()


def test_dataset_is_balanced_shuffled_and_deterministic():
    windows, labels = generate_drift_dataset(num_samples_per_class=10, window_length=64, seed=3)
    windows_again, labels_again = generate_drift_dataset(
        num_samples_per_class=10, window_length=64, seed=3
    )
    assert windows.shape == (20, 64)
    assert sorted(np.bincount(labels)) == [10, 10]
    assert not np.array_equal(labels, np.sort(labels))  # actually shuffled
    np.testing.assert_array_equal(windows, windows_again)
    np.testing.assert_array_equal(labels, labels_again)


def test_config_validation():
    with pytest.raises(ValueError):
        DriftStreamConfig(sampling_rate=0.0)
    with pytest.raises(ValueError):
        DriftStreamConfig(regime_switch_fraction=1.5)
    with pytest.raises(ValueError):
        DriftStreamConfig(drift_depth=1.0)
    with pytest.raises(ValueError):
        DriftStreamConfig(transients_per_signal=-1)
    with pytest.raises(ValueError):
        generate_drift_signal(0, anomalous=False)
