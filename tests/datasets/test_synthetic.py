"""Tests for the synthetic drift/anomaly stream generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DriftStreamConfig,
    generate_drift_dataset,
    generate_drift_signal,
)


def test_signal_shape_and_determinism():
    a = generate_drift_signal(1000, anomalous=False, seed=5)
    b = generate_drift_signal(1000, anomalous=False, seed=5)
    c = generate_drift_signal(1000, anomalous=False, seed=6)
    assert a.shape == (1000,)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_regime_switch_changes_amplitude_and_frequency():
    cfg = DriftStreamConfig(noise_std=0.0, drift_depth=0.0)
    signal = generate_drift_signal(4000, anomalous=False, config=cfg, seed=1)
    switch = int(4000 * cfg.regime_switch_fraction)
    before, after = signal[:switch], signal[switch:]
    # Amplitude steps up by amplitude_step at the switch...
    assert np.abs(after).max() == pytest.approx(1.0 + cfg.amplitude_step, rel=0.05)
    assert np.abs(before).max() == pytest.approx(1.0, rel=0.05)
    # ...and the dominant frequency jumps from base to shifted.
    for segment, expected in ((before, cfg.base_frequency), (after, cfg.shifted_frequency)):
        spectrum = np.abs(np.fft.rfft(segment - segment.mean()))
        freqs = np.fft.rfftfreq(len(segment), d=1.0 / cfg.sampling_rate)
        assert freqs[spectrum.argmax()] == pytest.approx(expected, abs=2.0)


def test_anomalous_signals_carry_extra_transient_energy():
    cfg = DriftStreamConfig(noise_std=0.0)
    clean = generate_drift_signal(2000, anomalous=False, config=cfg, seed=2)
    dirty = generate_drift_signal(2000, anomalous=True, config=cfg, seed=2)
    assert np.abs(dirty).max() > np.abs(clean).max()
    assert (dirty**2).sum() > (clean**2).sum()


def test_dataset_is_balanced_shuffled_and_deterministic():
    windows, labels = generate_drift_dataset(num_samples_per_class=10, window_length=64, seed=3)
    windows_again, labels_again = generate_drift_dataset(
        num_samples_per_class=10, window_length=64, seed=3
    )
    assert windows.shape == (20, 64)
    assert sorted(np.bincount(labels)) == [10, 10]
    assert not np.array_equal(labels, np.sort(labels))  # actually shuffled
    np.testing.assert_array_equal(windows, windows_again)
    np.testing.assert_array_equal(labels, labels_again)


def test_config_validation():
    with pytest.raises(ValueError):
        DriftStreamConfig(sampling_rate=0.0)
    with pytest.raises(ValueError):
        DriftStreamConfig(regime_switch_fraction=1.5)
    with pytest.raises(ValueError):
        DriftStreamConfig(drift_depth=1.0)
    with pytest.raises(ValueError):
        DriftStreamConfig(transients_per_signal=-1)
    with pytest.raises(ValueError):
        generate_drift_signal(0, anomalous=False)


# ---------------------------------------------------------------------------
# Rotating high-dimensional point-cloud streams
# ---------------------------------------------------------------------------

from repro.datasets.synthetic import HighDimStreamConfig, generate_highdim_cloud_stream  # noqa: E402
from repro.tda.homology import betti_number_gf2  # noqa: E402
from repro.tda.rips import rips_complex  # noqa: E402


def test_highdim_stream_shape_and_determinism():
    cfg = HighDimStreamConfig(ambient_dim=7, num_points=12)
    a = generate_highdim_cloud_stream(4, cfg, seed=1)
    b = generate_highdim_cloud_stream(4, cfg, seed=1)
    c = generate_highdim_cloud_stream(4, cfg, seed=2)
    assert a.shape == (4, 12, 7)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_highdim_rotation_is_an_isometry():
    """Without noise, pairwise distances are identical across frames: the
    frames differ only by a rigid rotation of the ambient space."""
    cfg = HighDimStreamConfig(ambient_dim=9, num_points=16, noise_std=0.0)
    stream = generate_highdim_cloud_stream(3, cfg, seed=4)

    def pairwise(points):
        deltas = points[:, None, :] - points[None, :, :]
        return np.sqrt((deltas**2).sum(axis=-1))

    reference = pairwise(stream[0])
    for frame in stream[1:]:
        np.testing.assert_allclose(pairwise(frame), reference, atol=1e-10)
        assert not np.allclose(frame, stream[0])  # coordinates actually moved


def test_highdim_frames_are_genuinely_high_dimensional():
    """The embedded circle spans the ambient space's random 2-plane, not the
    first two coordinate axes."""
    cfg = HighDimStreamConfig(ambient_dim=8, num_points=20, shape="circle", noise_std=0.0)
    stream = generate_highdim_cloud_stream(1, cfg, seed=7)
    spread = stream[0].std(axis=0)
    assert (spread > 1e-3).sum() >= 3  # variance leaks into many coordinates


def test_highdim_circle_keeps_its_betti_numbers_across_frames():
    """Every frame of a rotating circle stream has β₀ = 1 and β₁ = 1."""
    cfg = HighDimStreamConfig(ambient_dim=6, num_points=14, shape="circle", noise_std=0.01)
    stream = generate_highdim_cloud_stream(3, cfg, seed=5)
    for frame in stream:
        complex_ = rips_complex(frame, epsilon=0.6, max_dimension=2)
        assert betti_number_gf2(complex_, 0) == 1
        assert betti_number_gf2(complex_, 1) == 1


@pytest.mark.parametrize("shape,intrinsic_dim", [("circle", 2), ("sphere", 3), ("torus", 3)])
def test_highdim_all_shapes_generate(shape, intrinsic_dim):
    cfg = HighDimStreamConfig(ambient_dim=max(4, intrinsic_dim + 1), num_points=18, shape=shape)
    stream = generate_highdim_cloud_stream(2, cfg, seed=0)
    assert stream.shape == (2, 18, cfg.ambient_dim)
    assert np.isfinite(stream).all()


def test_highdim_config_validation():
    with pytest.raises(ValueError, match="shape"):
        HighDimStreamConfig(shape="klein-bottle")
    with pytest.raises(ValueError, match="ambient_dim"):
        HighDimStreamConfig(shape="sphere", ambient_dim=2)  # below intrinsic dim
    with pytest.raises(ValueError, match="radius"):
        HighDimStreamConfig(radius=0.0)
    with pytest.raises(ValueError, match="tube_radius"):
        HighDimStreamConfig(shape="torus", tube_radius=2.0)
    with pytest.raises(ValueError, match="noise_std"):
        HighDimStreamConfig(noise_std=-0.1)
    with pytest.raises(ValueError):
        generate_highdim_cloud_stream(0)


# ---------------------------------------------------------------------------
# Adversarial corruption wrapper
# ---------------------------------------------------------------------------


def test_corrupt_signal_is_deterministic_and_leaves_input_unchanged():
    from repro.datasets.synthetic import AdversarialStreamConfig, corrupt_signal

    clean = generate_drift_signal(2000, anomalous=False, seed=3)
    before = clean.copy()
    a = corrupt_signal(clean, seed=11)
    b = corrupt_signal(clean, seed=11)
    c = corrupt_signal(clean, seed=12)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.array_equal(clean, before)  # input untouched
    assert a.shape == clean.shape
    # Corruption actually happened.
    assert not np.array_equal(a, clean)
    # No corruption configured == identity.
    identity = AdversarialStreamConfig(
        impulse_fraction=0.0, occlusions_per_signal=0
    )
    assert np.array_equal(corrupt_signal(clean, config=identity, seed=1), clean)


def test_heavy_tailed_impulses_exceed_gaussian_range():
    from repro.datasets.synthetic import AdversarialStreamConfig, corrupt_signal

    clean = generate_drift_signal(5000, anomalous=False, seed=3)
    cfg = AdversarialStreamConfig(
        impulse_fraction=0.05, impulse_df=1.2, impulse_scale=2.0, occlusions_per_signal=0
    )
    corrupted = corrupt_signal(clean, config=cfg, seed=4)
    residual = corrupted - clean
    hit = residual[residual != 0.0]
    assert hit.size == pytest.approx(0.05 * 5000, abs=2)
    # df=1.2 Student-t: the largest shocks dwarf the unit-scale carrier.
    assert np.abs(hit).max() > 5.0


def test_occlusion_modes_hold_and_zero():
    from repro.datasets.synthetic import AdversarialStreamConfig, corrupt_signal

    clean = generate_drift_signal(1000, anomalous=False, seed=3)
    hold = corrupt_signal(
        clean,
        config=AdversarialStreamConfig(
            impulse_fraction=0.0, occlusions_per_signal=1, occlusion_length=50,
            occlusion_mode="hold",
        ),
        seed=9,
    )
    zero = corrupt_signal(
        clean,
        config=AdversarialStreamConfig(
            impulse_fraction=0.0, occlusions_per_signal=1, occlusion_length=50,
            occlusion_mode="zero",
        ),
        seed=9,
    )
    # hold: a 50-sample constant run exists; zero: a 50-sample zero run.
    def longest_constant_run(x):
        runs, current = 1, 1
        for i in range(1, x.size):
            current = current + 1 if x[i] == x[i - 1] else 1
            runs = max(runs, current)
        return runs

    assert longest_constant_run(hold) >= 50
    assert int((zero == 0.0).sum()) >= 50


def test_adversarial_dataset_is_balanced_and_deterministic():
    from repro.datasets.synthetic import generate_adversarial_dataset

    windows_a, labels_a = generate_adversarial_dataset(
        num_samples_per_class=6, window_length=300, seed=2
    )
    windows_b, labels_b = generate_adversarial_dataset(
        num_samples_per_class=6, window_length=300, seed=2
    )
    assert windows_a.shape == (12, 300)
    assert np.array_equal(windows_a, windows_b)
    assert np.array_equal(labels_a, labels_b)
    assert int(labels_a.sum()) == 6


def test_adversarial_config_validation():
    from repro.datasets.synthetic import AdversarialStreamConfig

    with pytest.raises(ValueError, match="impulse_fraction"):
        AdversarialStreamConfig(impulse_fraction=1.5)
    with pytest.raises(ValueError, match="impulse_df"):
        AdversarialStreamConfig(impulse_df=0.0)
    with pytest.raises(ValueError, match="occlusion_mode"):
        AdversarialStreamConfig(occlusion_mode="blur")


def test_timeseries_experiment_accepts_adversarial_signal():
    from repro.experiments.gearbox_table1 import run_timeseries_classification

    result = run_timeseries_classification(
        num_samples_per_class=3,
        window_length=200,
        use_quantum=False,
        signal="adversarial",
        seed=7,
    )
    assert result.signal == "adversarial"
    assert result.num_windows == 6
    assert 0.0 <= result.validation_accuracy <= 1.0
