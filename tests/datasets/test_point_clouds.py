"""Tests for the reference point clouds (known-topology fixtures)."""

import numpy as np
import pytest

from repro.datasets.point_clouds import (
    annulus_cloud,
    circle_cloud,
    clusters_cloud,
    figure_eight_cloud,
    sphere_cloud,
    torus_cloud,
)
from repro.tda.betti import betti_number, betti_numbers
from repro.tda.rips import rips_complex


def test_circle_cloud_geometry():
    cloud = circle_cloud(16, radius=2.0)
    assert cloud.shape == (16, 2)
    assert np.allclose(np.linalg.norm(cloud, axis=1), 2.0)


def test_circle_betti_numbers():
    complex_ = rips_complex(circle_cloud(14), 0.7, max_dimension=2)
    assert betti_numbers(complex_, 1) == [1, 1]


def test_noisy_circle_reproducible():
    a = circle_cloud(10, noise=0.1, seed=3)
    b = circle_cloud(10, noise=0.1, seed=3)
    assert np.array_equal(a, b)


def test_clusters_cloud_components():
    cloud = clusters_cloud(num_clusters=4, points_per_cluster=5, seed=1)
    assert cloud.shape == (20, 2)
    complex_ = rips_complex(cloud, 1.5, max_dimension=1)
    assert betti_number(complex_, 0) == 4


def test_figure_eight_two_loops():
    complex_ = rips_complex(figure_eight_cloud(32), 0.55, max_dimension=2)
    assert betti_number(complex_, 1) == 2


def test_annulus_single_component():
    cloud = annulus_cloud(50, seed=2)
    radii = np.linalg.norm(cloud, axis=1)
    assert np.all((radii >= 0.7 - 1e-9) & (radii <= 1.3 + 1e-9))


def test_sphere_cloud_on_sphere():
    cloud = sphere_cloud(30, radius=1.5, seed=0)
    assert cloud.shape == (30, 3)
    assert np.allclose(np.linalg.norm(cloud, axis=1), 1.5)


def test_torus_cloud_radii():
    cloud = torus_cloud(40, major_radius=2.0, minor_radius=0.5, seed=1)
    assert cloud.shape == (40, 3)
    distance_from_axis = np.linalg.norm(cloud[:, :2], axis=1)
    assert np.all(distance_from_axis >= 1.5 - 1e-9)
    assert np.all(distance_from_axis <= 2.5 + 1e-9)


def test_parameter_validation():
    with pytest.raises(ValueError):
        circle_cloud(0)
    with pytest.raises(ValueError):
        clusters_cloud(num_clusters=0)
