"""Tests for time-series windowing."""

import numpy as np
import pytest

from repro.datasets.windows import sliding_windows, windowed_dataset


def test_non_overlapping_windows():
    windows = sliding_windows(np.arange(100.0), window_length=25)
    assert windows.shape == (4, 25)
    assert np.array_equal(windows[1], np.arange(25.0, 50.0))


def test_overlapping_windows_with_stride():
    windows = sliding_windows(np.arange(10.0), window_length=4, stride=2)
    assert windows.shape == (4, 4)
    assert np.array_equal(windows[-1], [6, 7, 8, 9])


def test_window_longer_than_series_rejected():
    with pytest.raises(ValueError):
        sliding_windows(np.arange(5.0), window_length=10)


def test_paper_window_length_500():
    windows = sliding_windows(np.zeros(2100), window_length=500)
    assert windows.shape == (4, 500)


def test_windowed_dataset_balanced():
    signals = {0: np.arange(1000.0), 1: np.arange(3000.0)}
    windows, labels = windowed_dataset(signals, window_length=100, seed=0)
    # Balanced at the smaller class's window count (10).
    assert windows.shape == (20, 100)
    assert np.sum(labels == 0) == np.sum(labels == 1) == 10


def test_windowed_dataset_samples_per_class_cap():
    signals = {0: np.arange(1000.0), 1: np.arange(1000.0)}
    windows, labels = windowed_dataset(signals, window_length=100, samples_per_class=3, seed=1)
    assert windows.shape == (6, 100)


def test_windowed_dataset_reproducible():
    signals = {0: np.sin(np.arange(500.0)), 1: np.cos(np.arange(500.0))}
    a = windowed_dataset(signals, window_length=50, seed=3)
    b = windowed_dataset(signals, window_length=50, seed=3)
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


def test_sliding_windows_copy_false_is_readonly_view():
    series = np.arange(20.0)
    view = sliding_windows(series, window_length=8, stride=4, copy=False)
    copied = sliding_windows(series, window_length=8, stride=4, copy=True)
    assert np.array_equal(view, copied)
    # The view shares the series' memory (O(1) no matter the overlap)...
    assert np.shares_memory(view, series)
    assert not np.shares_memory(copied, series)
    # ...and is read-only, so consumers cannot corrupt the source series.
    assert not view.flags.writeable
    with pytest.raises(ValueError):
        view[0, 0] = 99.0
    copied[0, 0] = 99.0  # the copy stays writable (historical behaviour)


def test_sliding_windows_copy_matches_legacy_stacking():
    series = np.sin(np.arange(60.0))
    got = sliding_windows(series, window_length=15, stride=5)
    legacy = np.stack([series[s : s + 15] for s in range(0, 60 - 15 + 1, 5)])
    assert np.array_equal(got, legacy)
    assert got.flags.c_contiguous and got.flags.writeable
