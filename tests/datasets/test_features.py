"""Tests for condition-monitoring features and the feature-to-cloud map."""

import numpy as np
import pytest

from repro.datasets.features import (
    FEATURE_NAMES,
    condition_features,
    feature_matrix,
    feature_row_to_point_cloud,
    feature_rows_to_point_clouds,
)


def test_feature_vector_length_and_names():
    features = condition_features(np.sin(np.linspace(0, 10, 500)))
    assert features.shape == (len(FEATURE_NAMES),) == (6,)
    assert np.all(np.isfinite(features))


def test_known_values_for_simple_signal():
    signal = np.array([1.0, -1.0, 1.0, -1.0, 1.0, -1.0])
    features = condition_features(signal)
    named = dict(zip(FEATURE_NAMES, features))
    assert named["rms"] == pytest.approx(1.0)
    assert named["variance"] == pytest.approx(1.0)
    assert named["crest_factor"] == pytest.approx(1.0)
    assert named["peak_to_peak"] == pytest.approx(2.0)


def test_impulsive_signal_has_higher_kurtosis_and_crest():
    smooth = np.sin(np.linspace(0, 20, 1000))
    impulsive = smooth.copy()
    impulsive[::100] += 5.0
    smooth_feats = dict(zip(FEATURE_NAMES, condition_features(smooth)))
    impulsive_feats = dict(zip(FEATURE_NAMES, condition_features(impulsive)))
    assert impulsive_feats["kurtosis"] > smooth_feats["kurtosis"]
    assert impulsive_feats["crest_factor"] > smooth_feats["crest_factor"]


def test_too_short_signal_rejected():
    with pytest.raises(ValueError):
        condition_features(np.array([1.0, 2.0]))


def test_feature_matrix_shape():
    windows = np.vstack([np.sin(np.linspace(0, 10, 200))] * 4)
    assert feature_matrix(windows).shape == (4, 6)
    with pytest.raises(ValueError):
        feature_matrix(windows[0])


def test_feature_row_to_point_cloud_shape_and_determinism():
    row = np.arange(6.0)
    cloud = feature_row_to_point_cloud(row)
    assert cloud.shape == (4, 3)
    assert np.array_equal(cloud, feature_row_to_point_cloud(row))
    # Each point's coordinates are a subset of the row values.
    for point in cloud:
        assert all(value in row for value in point)


def test_feature_row_to_point_cloud_validation():
    with pytest.raises(ValueError):
        feature_row_to_point_cloud(np.arange(5.0))
    with pytest.raises(ValueError):
        feature_row_to_point_cloud(np.arange(6.0), num_points=21)


def test_feature_rows_to_point_clouds():
    rows = np.arange(12.0).reshape(2, 6)
    clouds = feature_rows_to_point_clouds(rows)
    assert len(clouds) == 2
    assert clouds[0].shape == (4, 3)
    with pytest.raises(ValueError):
        feature_rows_to_point_clouds(np.arange(10.0).reshape(2, 5))
