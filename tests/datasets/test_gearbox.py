"""Tests for the synthetic gearbox vibration generator."""

import numpy as np
import pytest

from repro.datasets.gearbox import (
    GearboxDatasetConfig,
    class_summary,
    generate_gearbox_dataset,
    generate_gearbox_signal,
    generate_processed_gearbox_dataset,
)


def test_signal_length_and_reproducibility():
    a = generate_gearbox_signal(500, faulty=False, seed=1)
    b = generate_gearbox_signal(500, faulty=False, seed=1)
    assert a.shape == (500,)
    assert np.array_equal(a, b)


def test_faulty_and_healthy_signals_differ_statistically():
    healthy = [generate_gearbox_signal(2000, faulty=False, seed=s) for s in range(5)]
    faulty = [generate_gearbox_signal(2000, faulty=True, seed=s) for s in range(5)]
    # Impulsive faults raise kurtosis and peak amplitude.
    from scipy.stats import kurtosis

    healthy_kurtosis = np.mean([kurtosis(x) for x in healthy])
    faulty_kurtosis = np.mean([kurtosis(x) for x in faulty])
    assert faulty_kurtosis > healthy_kurtosis
    assert np.mean([np.max(np.abs(x)) for x in faulty]) > np.mean([np.max(np.abs(x)) for x in healthy])


def test_config_validation():
    with pytest.raises(ValueError):
        GearboxDatasetConfig(sampling_rate=0.0)
    with pytest.raises(ValueError):
        GearboxDatasetConfig(num_harmonics=0)
    with pytest.raises(ValueError):
        generate_gearbox_signal(0, faulty=False)


def test_windowed_dataset_shapes_and_balance():
    windows, labels = generate_gearbox_dataset(num_samples_per_class=7, window_length=300, seed=2)
    assert windows.shape == (14, 300)
    assert class_summary(labels) == {0: 7, 1: 7}


def test_windowed_dataset_reproducible():
    a = generate_gearbox_dataset(num_samples_per_class=3, window_length=200, seed=9)
    b = generate_gearbox_dataset(num_samples_per_class=3, window_length=200, seed=9)
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


def test_processed_dataset_matches_paper_dimensions():
    features, labels = generate_processed_gearbox_dataset(num_rows=40, num_healthy=10, window_length=300, seed=3)
    assert features.shape == (40, 6)
    assert class_summary(labels) == {0: 10, 1: 30}
    assert np.all(np.isfinite(features))


def test_processed_dataset_validation():
    with pytest.raises(ValueError):
        generate_processed_gearbox_dataset(num_rows=10, num_healthy=10)


def test_processed_dataset_default_matches_paper_row_counts():
    """The paper's processed dataset: 255 rows of which 51 healthy."""
    features, labels = generate_processed_gearbox_dataset(num_rows=51 + 20, num_healthy=51, window_length=200, seed=0)
    assert class_summary(labels)[0] == 51
