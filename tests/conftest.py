"""Shared pytest fixtures.

Fixtures deliberately cover the paper's own objects (the Appendix A complex)
plus a couple of reference point clouds with analytically known topology, so
individual test modules do not have to rebuild them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.point_clouds import circle_cloud, clusters_cloud, figure_eight_cloud
from repro.experiments.worked_example import appendix_complex
from repro.tda.complexes import SimplicialComplex


@pytest.fixture
def appendix_k() -> SimplicialComplex:
    """The worked-example complex of Eq. 13 (β_0 = 1, β_1 = 1)."""
    return appendix_complex()


@pytest.fixture
def hollow_triangle() -> SimplicialComplex:
    """Three vertices and three edges, no 2-simplex: β = (1, 1)."""
    return SimplicialComplex([(0,), (1,), (2,), (0, 1), (0, 2), (1, 2)])


@pytest.fixture
def filled_triangle() -> SimplicialComplex:
    """The full 2-simplex on three vertices: β = (1, 0, 0)."""
    return SimplicialComplex.from_maximal_simplices([(0, 1, 2)])


@pytest.fixture
def two_components() -> SimplicialComplex:
    """An edge plus an isolated vertex: β_0 = 2."""
    return SimplicialComplex([(0,), (1,), (2,), (0, 1)])


@pytest.fixture
def circle_points() -> np.ndarray:
    """Twelve points on the unit circle."""
    return circle_cloud(12)


@pytest.fixture
def figure_eight_points() -> np.ndarray:
    """Points on two tangent circles (β_1 = 2 at a suitable scale)."""
    return figure_eight_cloud(28)


@pytest.fixture
def three_clusters() -> np.ndarray:
    """Three well-separated blobs (β_0 = 3 at small scales)."""
    return clusters_cloud(num_clusters=3, points_per_cluster=6, seed=0)


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for tests that need controlled randomness."""
    return np.random.default_rng(12345)
