"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("list-backends", "fig3", "table1", "fig4", "appendix", "timeseries"):
        args = parser.parse_args([command])
        assert args.command == command


def test_appendix_command_prints_walkthrough(capsys):
    exit_code = main(["appendix", "--shots", "200", "--backend", "exact"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "Appendix A worked example" in captured
    assert "β̃_1" in captured or "betti" in captured.lower()


def test_fig3_command_reduced_grid(capsys):
    exit_code = main(
        ["fig3", "--complexes", "2", "--sizes", "5", "--shots", "100", "--precision", "1", "3"]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "n = 5" in captured
    assert "Trend summary" in captured


def test_table1_command_reduced(capsys):
    exit_code = main(["table1", "--rows", "24", "--healthy", "8", "--precision", "1", "3"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "Precision qubits" in captured
    assert "Reference" in captured


def test_fig4_command_reduced(capsys):
    exit_code = main(["fig4", "--rows", "24", "--healthy", "8", "--scales", "3", "--repetitions", "2"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "grouping scale" in captured


def test_timeseries_command_reduced(capsys):
    exit_code = main(["timeseries", "--windows", "4", "--window-length", "300", "--stride", "24", "--classical"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "validation accuracy" in captured


def test_list_backends_command(capsys):
    from repro.core.backends import available_backends

    exit_code = main(["list-backends"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    for name in available_backends():
        assert name in captured


def test_list_backends_table_shows_capabilities(capsys):
    """The listing is a table: formats and noise support per backend."""
    main(["list-backends"])
    out = capsys.readouterr().out
    lines = out.splitlines()
    header = lines[1]
    for column in ("name", "formats", "noise", "description"):
        assert column in header
    rows = {line.split()[0]: line for line in lines[2:] if line.strip()}
    assert "sparse,dense" in rows["sparse-exact"] and "  no " in rows["sparse-exact"]
    assert "matrix-free,sparse,dense" in rows["stochastic-trace"]
    assert "  yes " in rows["noisy-density"]
    assert "  yes " in rows["statevector"]
    # Column positions line up with the header (it really is a table).
    assert rows["exact"].index("dense") == header.index("formats")


def test_stochastic_trace_backend_reachable_from_cli(capsys):
    exit_code = main(["appendix", "--shots", "200", "--backend", "stochastic-trace"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "backend=stochastic-trace" in captured


def test_appendix_accepts_any_registered_backend(capsys):
    exit_code = main(["appendix", "--shots", "100", "--backend", "sparse-exact"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "backend=sparse-exact" in captured


def test_appendix_noisy_density_with_noise_flags(capsys):
    exit_code = main(
        [
            "appendix",
            "--shots", "100",
            "--backend", "noisy-density",
            "--noise-channel", "depolarizing",
            "--noise-strength", "0.02",
        ]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    assert "backend=noisy-density" in captured


def test_parsers_accept_backend_and_noise_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["table1", "--backend", "sparse-exact", "--noise-channel", "bit-flip", "--noise-strength", "0.1"]
    )
    assert args.backend == "sparse-exact"
    assert args.noise_channel == "bit-flip"
    assert args.noise_strength == 0.1
    args = parser.parse_args(["fig3", "--backend", "sparse-exact"])
    assert args.backend == "sparse-exact"
    args = parser.parse_args(["timeseries", "--backend", "noisy-density"])
    assert args.backend == "noisy-density"


def test_json_flag_present_on_experiment_commands():
    parser = build_parser()
    for command in ("fig3", "table1", "appendix", "timeseries"):
        args = parser.parse_args([command, "--json"])
        assert args.json is True
        args = parser.parse_args([command])
        assert args.json is False


def test_appendix_json_emits_valid_envelope(capsys):
    import json

    from repro.api import EstimationResult

    exit_code = main(["appendix", "--shots", "200", "--backend", "exact", "--json"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    data = json.loads(captured)
    EstimationResult.validate_dict(data)
    assert data["kind"] == "experiment"
    assert data["request"]["experiment"] == "appendix"
    assert data["payload"]["exact_betti"] == 1
    assert data["payload"]["estimate"]["backend"] == "exact"
    assert data["provenance"]["backend"] == "exact"


def test_timeseries_json_emits_valid_envelope(capsys):
    import json

    from repro.api import EstimationResult

    exit_code = main(
        ["timeseries", "--windows", "3", "--window-length", "200", "--stride", "24", "--classical", "--json"]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    data = json.loads(captured)
    EstimationResult.validate_dict(data)
    assert 0.0 <= data["payload"]["validation_accuracy"] <= 1.0


def test_fig3_json_emits_valid_envelope(capsys):
    import json

    from repro.api import EstimationResult

    exit_code = main(
        ["fig3", "--complexes", "2", "--sizes", "5", "--shots", "100", "--precision", "1", "--json"]
    )
    captured = capsys.readouterr().out
    assert exit_code == 0
    data = json.loads(captured)
    EstimationResult.validate_dict(data)
    assert "n=5,shots=100,t=1" in data["payload"]["errors"]


def test_table1_json_emits_valid_envelope(capsys):
    import json

    from repro.api import EstimationResult

    exit_code = main(["table1", "--rows", "16", "--healthy", "6", "--precision", "2", "--json"])
    captured = capsys.readouterr().out
    assert exit_code == 0
    data = json.loads(captured)
    EstimationResult.validate_dict(data)
    assert data["payload"]["rows"][0]["precision_qubits"] == 2


def test_json_and_text_reports_agree(capsys):
    """The text report is exactly the payload's 'report' field."""
    import json

    main(["appendix", "--shots", "150", "--backend", "exact"])
    text = capsys.readouterr().out
    main(["appendix", "--shots", "150", "--backend", "exact", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert data["payload"]["report"] + "\n" == text
