"""Tests for dataset splitting."""

import numpy as np
import pytest

from repro.ml.model_selection import KFold, cross_val_accuracy, train_test_split
from repro.ml.neighbors import KNeighborsClassifier


def _toy_data(n=40, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] > 0).astype(int)
    x[y == 1] += 3.0
    return x, y


def test_split_sizes_and_disjointness():
    x, y = _toy_data(50)
    x_train, x_test, y_train, y_test = train_test_split(x, y, test_size=0.2, seed=1)
    assert len(x_train) + len(x_test) == 50
    assert len(y_test) == len(x_test)
    assert abs(len(x_test) - 10) <= 2  # stratification may shift by a sample


def test_split_reproducible_with_seed():
    x, y = _toy_data()
    a = train_test_split(x, y, test_size=0.3, seed=7)
    b = train_test_split(x, y, test_size=0.3, seed=7)
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[3], b[3])


def test_stratified_split_preserves_class_balance():
    x = np.arange(100.0)[:, None]
    y = np.array([0] * 80 + [1] * 20)
    _, _, y_train, y_test = train_test_split(x, y, test_size=0.25, seed=0, stratify=True)
    assert np.isclose(np.mean(y_test), 0.2, atol=0.05)
    assert np.isclose(np.mean(y_train), 0.2, atol=0.05)


def test_unstratified_split():
    x, y = _toy_data(30)
    x_train, x_test, _, _ = train_test_split(x, y, test_size=0.5, seed=2, stratify=False)
    assert len(x_train) == 15 and len(x_test) == 15


def test_split_validation():
    x, y = _toy_data(10)
    with pytest.raises(ValueError):
        train_test_split(x, y, test_size=0.0)
    with pytest.raises(ValueError):
        train_test_split(x, y[:5], test_size=0.2)
    with pytest.raises(ValueError):
        train_test_split(x[:1], y[:1], test_size=0.5)


def test_paper_split_20_80():
    """The Table 1 protocol: 20 % training, 80 % validation."""
    x, y = _toy_data(255)
    x_train, x_val, _, _ = train_test_split(x, y, test_size=0.8, seed=3)
    assert abs(len(x_train) - 51) <= 2
    assert abs(len(x_val) - 204) <= 2


def test_kfold_covers_every_sample_once():
    x, _ = _toy_data(23)
    folds = list(KFold(n_splits=4, seed=0).split(x))
    assert len(folds) == 4
    all_test = np.concatenate([test for _, test in folds])
    assert sorted(all_test.tolist()) == list(range(23))
    for train, test in folds:
        assert set(train).isdisjoint(test)


def test_kfold_validation():
    with pytest.raises(ValueError):
        KFold(n_splits=1)
    with pytest.raises(ValueError):
        list(KFold(n_splits=10).split(np.zeros((5, 1))))


def test_cross_val_accuracy_on_separable_data():
    x, y = _toy_data(60)
    score = cross_val_accuracy(lambda: KNeighborsClassifier(3), x, y, n_splits=4, seed=1)
    assert score > 0.9
