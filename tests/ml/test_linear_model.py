"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.ml.linear_model import LogisticRegression, _sigmoid


def _separable(n=100, seed=0, gap=3.0):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=(n // 2, 2))
    x1 = rng.normal(size=(n // 2, 2)) + gap
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


def test_sigmoid_stability():
    assert _sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
    assert _sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
    assert _sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)


def test_fits_separable_data_perfectly():
    x, y = _separable(gap=6.0)
    model = LogisticRegression().fit(x, y)
    assert model.score(x, y) == 1.0


def test_predict_proba_rows_sum_to_one():
    x, y = _separable(60)
    probs = LogisticRegression().fit(x, y).predict_proba(x)
    assert probs.shape == (60, 2)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all((probs >= 0) & (probs <= 1))


def test_decision_boundary_orientation():
    x, y = _separable()
    model = LogisticRegression().fit(x, y)
    assert model.predict(np.array([[10.0, 10.0]]))[0] == 1
    assert model.predict(np.array([[-10.0, -10.0]]))[0] == 0


def test_string_labels_supported():
    x, y_num = _separable(40)
    y = np.where(y_num == 1, "faulty", "healthy")
    model = LogisticRegression().fit(x, y)
    prediction = model.predict(np.array([[5.0, 5.0]]))
    assert prediction[0] == "faulty"


def test_multiclass_one_vs_rest():
    rng = np.random.default_rng(1)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    x = np.vstack([rng.normal(size=(30, 2)) + c for c in centers])
    y = np.repeat([0, 1, 2], 30)
    model = LogisticRegression().fit(x, y)
    assert model.score(x, y) > 0.95
    assert model.predict_proba(x).shape == (90, 3)


def test_regularization_shrinks_coefficients():
    x, y = _separable(80, gap=6.0)
    weak = LogisticRegression(regularization=1e-6).fit(x, y)
    strong = LogisticRegression(regularization=10.0).fit(x, y)
    assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)


def test_coefficients_finite_on_perfectly_separable_data():
    x, y = _separable(50, gap=50.0)
    model = LogisticRegression().fit(x, y)
    assert np.all(np.isfinite(model.coef_))
    assert np.all(np.isfinite(model.intercept_))


def test_validation_errors():
    with pytest.raises(ValueError):
        LogisticRegression(regularization=-1.0)
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.ones((5, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.ones((5, 2)), np.zeros(5))  # single class
    with pytest.raises(RuntimeError):
        LogisticRegression().predict(np.ones((2, 2)))


def test_1d_features_accepted():
    x = np.array([0.0, 1.0, 2.0, 10.0, 11.0, 12.0])
    y = np.array([0, 0, 0, 1, 1, 1])
    model = LogisticRegression().fit(x, y)
    assert model.score(x, y) == 1.0


def test_no_intercept_option():
    # Classes symmetric about the origin so a through-the-origin boundary works.
    x, y = _separable(60, gap=6.0)
    x = x - 3.0
    model = LogisticRegression(fit_intercept=False).fit(x, y)
    assert np.allclose(model.intercept_, 0.0)
    assert model.score(x, y) > 0.9
