"""Tests for feature scalers."""

import numpy as np
import pytest

from repro.ml.preprocessing import MinMaxScaler, StandardScaler


def test_standard_scaler_zero_mean_unit_variance(rng):
    data = rng.normal(loc=5.0, scale=3.0, size=(200, 3))
    scaled = StandardScaler().fit_transform(data)
    assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
    assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-10)


def test_standard_scaler_constant_column_untouched():
    data = np.column_stack([np.ones(10), np.arange(10.0)])
    scaled = StandardScaler().fit_transform(data)
    assert np.allclose(scaled[:, 0], 0.0)
    assert np.isfinite(scaled).all()


def test_standard_scaler_inverse_roundtrip(rng):
    data = rng.normal(size=(50, 2))
    scaler = StandardScaler().fit(data)
    assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)


def test_standard_scaler_requires_fit():
    with pytest.raises(RuntimeError):
        StandardScaler().transform(np.ones((3, 2)))


def test_standard_scaler_feature_count_checked(rng):
    scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
    with pytest.raises(ValueError):
        scaler.transform(rng.normal(size=(10, 2)))


def test_standard_scaler_1d_input():
    scaled = StandardScaler().fit_transform(np.array([1.0, 2.0, 3.0]))
    assert scaled.shape == (3, 1)


def test_minmax_scaler_range(rng):
    data = rng.normal(size=(100, 2)) * 7 + 3
    scaled = MinMaxScaler().fit_transform(data)
    assert scaled.min() == pytest.approx(0.0)
    assert scaled.max() == pytest.approx(1.0)


def test_minmax_scaler_custom_range(rng):
    scaled = MinMaxScaler(feature_range=(-1, 1)).fit_transform(rng.normal(size=(50, 1)))
    assert scaled.min() == pytest.approx(-1.0)
    assert scaled.max() == pytest.approx(1.0)


def test_minmax_scaler_validation():
    with pytest.raises(ValueError):
        MinMaxScaler(feature_range=(1, 0))
    with pytest.raises(RuntimeError):
        MinMaxScaler().transform(np.ones((2, 2)))
