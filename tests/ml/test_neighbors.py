"""Tests for the k-NN classifier."""

import numpy as np
import pytest

from repro.ml.neighbors import KNeighborsClassifier


def _blobs(seed=0):
    rng = np.random.default_rng(seed)
    x = np.vstack([rng.normal(size=(25, 2)), rng.normal(size=(25, 2)) + 4.0])
    y = np.array([0] * 25 + [1] * 25)
    return x, y


def test_memorises_training_data_with_one_neighbor():
    x, y = _blobs()
    model = KNeighborsClassifier(n_neighbors=1).fit(x, y)
    assert model.score(x, y) == 1.0


def test_majority_vote():
    x = np.array([[0.0], [0.1], [0.2], [10.0]])
    y = np.array([0, 0, 0, 1])
    model = KNeighborsClassifier(n_neighbors=3).fit(x, y)
    assert model.predict(np.array([[0.05]]))[0] == 0


def test_predict_proba_frequencies():
    x = np.array([[0.0], [0.1], [5.0], [5.1]])
    y = np.array([0, 0, 1, 1])
    model = KNeighborsClassifier(n_neighbors=4).fit(x, y)
    probs = model.predict_proba(np.array([[2.5]]))
    assert np.allclose(probs, [[0.5, 0.5]])


def test_generalises_on_blobs():
    x, y = _blobs()
    holdout, holdout_y = _blobs(seed=5)
    model = KNeighborsClassifier(n_neighbors=5).fit(x, y)
    assert model.score(holdout, holdout_y) > 0.9


def test_validation():
    x, y = _blobs()
    with pytest.raises(ValueError):
        KNeighborsClassifier(n_neighbors=0)
    with pytest.raises(ValueError):
        KNeighborsClassifier(n_neighbors=100).fit(x, y)
    with pytest.raises(ValueError):
        KNeighborsClassifier().fit(x, y[:10])
    with pytest.raises(RuntimeError):
        KNeighborsClassifier().predict(x)


def test_string_labels():
    x = np.array([[0.0], [0.1], [5.0], [5.1]])
    y = np.array(["a", "a", "b", "b"])
    model = KNeighborsClassifier(n_neighbors=1).fit(x, y)
    assert model.predict(np.array([[4.9]]))[0] == "b"
