"""Tests for classification/regression metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    mean_absolute_error,
    mean_squared_error,
    precision_score,
    recall_score,
)


def test_accuracy():
    assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == pytest.approx(0.75)
    assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0


def test_mean_absolute_error():
    assert mean_absolute_error([1.0, 2.0, 3.0], [1.5, 2.0, 2.0]) == pytest.approx(0.5)


def test_mean_squared_error():
    assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)


def test_length_mismatch_and_empty_rejected():
    with pytest.raises(ValueError):
        accuracy_score([1, 2], [1])
    with pytest.raises(ValueError):
        accuracy_score([], [])


def test_confusion_matrix():
    matrix, classes = confusion_matrix([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
    assert list(classes) == [0, 1]
    assert matrix.tolist() == [[1, 1], [1, 2]]
    assert matrix.sum() == 5


def test_precision_recall_f1():
    y_true = [1, 1, 1, 0, 0, 0]
    y_pred = [1, 1, 0, 1, 0, 0]
    assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
    assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)


def test_degenerate_precision_recall():
    assert precision_score([0, 0], [0, 0]) == 0.0
    assert recall_score([0, 0], [1, 1]) == 0.0
    assert f1_score([0, 0], [0, 0]) == 0.0


def test_metrics_accept_numpy_arrays():
    assert accuracy_score(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0
