"""Service API tour: requests in, provenance-stamped result envelopes out.

Demonstrates the `repro.api` front door (DESIGN.md §10):

1. one `EstimationRequest` through `QTDAService.run` — sync path;
2. a batch of requests through `service.map` — fanned across the pool,
   identical requests served from the result cache;
3. an ε-sweep through `service.stream_sweep` — per-scale results arrive
   incrementally instead of materialising the whole tensor;
4. the versioned JSON wire format (`EstimationResult.to_json`), validated
   against the documented schema.

Run with:  python examples/service_api.py
"""

from __future__ import annotations

import json

import numpy as np

from repro.api import (
    EstimationRequest,
    EstimationResult,
    QTDAService,
    SweepRequest,
)
from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig
from repro.datasets.point_clouds import circle_cloud


def main() -> None:
    with QTDAService(max_workers=4) as service:
        # 1. One estimate: a noisy circle has one loop.
        request = EstimationRequest(
            points=circle_cloud(num_points=14, radius=1.0, noise=0.05, seed=3),
            epsilon=0.75,
            max_dimension=2,
            k=1,
            config={"precision_qubits": 5, "shots": 2000, "seed": 11},
        )
        result = service.run(request)
        print("-- run() --------------------------------------------------")
        print(
            f"beta~_1 = {result.payload['betti_estimate']:.3f} "
            f"(rounded {result.payload['betti_rounded']}, exact {result.payload['exact_betti']})"
        )
        p = result.provenance
        print(
            f"provenance: backend={p.backend} format={p.operator_format} seed={p.seed} "
            f"wall={p.wall_time_s * 1e3:.1f} ms cache={p.cache_hits}h/{p.cache_misses}m"
        )

        # 2. A batch: the same request twice plus a different k — the repeat
        #    is served from the result cache.
        batch = service.map([request, request.replace(k=0), request])
        print("\n-- map() --------------------------------------------------")
        for r in batch:
            print(
                f"k={r.request.k}: beta~ = {r.payload['betti_estimate']:.3f} "
                f"(result_cache_hit={r.provenance.result_cache_hit})"
            )

        # 3. Streaming sweep: features for every cloud arrive one ε at a time.
        clouds = [circle_cloud(10, seed=i) for i in range(4)]
        sweep = SweepRequest(
            point_clouds=clouds,
            epsilons=(0.4, 0.6, 0.8, 1.0),
            pipeline=PipelineConfig(
                estimator=QTDAConfig(precision_qubits=4, shots=500, seed=7)
            ),
        )
        print("\n-- stream_sweep() -----------------------------------------")
        for partial in service.stream_sweep(sweep):
            features = partial.payload["features"]
            print(
                f"eps = {partial.payload['epsilon']:.2f}: mean features "
                f"{np.round(features.mean(axis=0), 3)} ({partial.provenance.wall_time_s * 1e3:.1f} ms)"
            )

        # 4. The wire format: versioned JSON that validates against the schema.
        print("\n-- wire format --------------------------------------------")
        document = result.to_json(indent=2)
        EstimationResult.validate_dict(json.loads(document))
        print(f"envelope validates; {len(document)} bytes of schema v{result.schema_version} JSON")
        print(f"service stats: {service.stats}")


if __name__ == "__main__":
    main()
