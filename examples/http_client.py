"""HTTP client tour: the network-deployable QTDA service (DESIGN.md §15).

Spins up a `QTDAServer` on an ephemeral loopback port (exactly what
`python -m repro.cli serve` does behind a real port) and walks the wire
API with the stdlib-only `ServiceClient`:

1. `GET /v1/health` — liveness and schema-version negotiation;
2. `POST /v1/estimate` — one Betti-number estimate, the same versioned
   envelope `QTDAService.run` returns in-process, plus a `coalesced` flag;
3. concurrent duplicate requests — the in-flight coalescer folds them into
   one computation (watch the `coalesced` flags);
4. per-caller quotas — a too-chatty caller gets a structured 429 with
   `Retry-After`;
5. `GET /v1/stats` — counters, queue depth, coalescer hit rates and
   per-route latency histograms, schema-checked by `validate_stats_dict`.

Run with:  python examples/http_client.py
"""

from __future__ import annotations

import json
import threading

from repro.api import EstimationRequest
from repro.serve import (
    QTDAServer,
    ServeConfig,
    ServiceClient,
    ServiceError,
    validate_stats_dict,
)

TRIANGLE = ((0,), (1,), (2,), (0, 1), (0, 2), (1, 2))


def main() -> None:
    config = ServeConfig(
        port=0,              # ephemeral; read the bound port back from the server
        quota_rate=5.0,      # 5 requests/second per caller...
        quota_burst=5.0,     # ...with a burst of 5 — easy to trip for the demo
        max_pending=32,
        result_cache_size=0,  # demo only: let the coalescer (not the result
                              # cache) absorb the duplicate burst below
    )
    with QTDAServer(config) as server:
        print(f"QTDA service listening on {server.base_url}")

        with ServiceClient(server.host, server.port, caller="tour") as client:
            # 1. Health: the server names the wire schema version it speaks.
            health = client.health()
            print(f"health: {health['status']}, schema v{health['schema_version']}, "
                  f"routes {health['kinds']}")

            # 2. One estimate over the wire.  `ServiceClient` serialises any
            #    request object (or a plain dict in the wire format).
            request = EstimationRequest(
                simplices=TRIANGLE, k=1,
                config={"precision_qubits": 5, "shots": 2000, "seed": 7},
            )
            envelope = client.estimate(request)
            payload = envelope["payload"]
            print(f"\nestimate: beta~_1 = {payload['betti_estimate']:.3f} "
                  f"(rounded {payload['betti_rounded']}) "
                  f"[coalesced={envelope['coalesced']}]")

        # 3. Coalescing: several threads fire the *same* expensive request at
        #    once; one computes, the rest ride along (deterministic requests
        #    only — a seed makes the computation replayable, hence shareable).
        from repro.datasets.point_clouds import circle_cloud

        heavy = EstimationRequest(
            points=circle_cloud(32, seed=1), epsilon=0.9, k=1, max_dimension=2,
            config={"precision_qubits": 6, "shots": 4096, "seed": 7},
        )
        flags = []
        flags_lock = threading.Lock()

        def fire(index: int) -> None:
            with ServiceClient(server.host, server.port, caller=f"burst-{index}") as c:
                result = c.estimate(heavy)
                with flags_lock:
                    flags.append(result["coalesced"])

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print(f"\nburst of {len(flags)} identical requests -> "
              f"{sum(flags)} coalesced, {len(flags) - sum(flags)} computed")

        # 4. Quotas: the "tour" caller above has 5 tokens/burst — drain them
        #    and the next request bounces with 429 + Retry-After.
        with ServiceClient(server.host, server.port, caller="greedy") as client:
            rejected = None
            for attempt in range(10):
                try:
                    client.estimate(request)
                except ServiceError as exc:
                    rejected = exc
                    break
            if rejected is not None:
                print(f"\nquota tripped after {attempt} requests: HTTP {rejected.status} "
                      f"({rejected.reason}), retry after {rejected.retry_after_s:.2f}s")
                print("error envelope:", json.dumps(rejected.envelope, indent=2))

        # 5. Stats: the documented observability snapshot.
        with ServiceClient(server.host, server.port) as client:
            stats = client.stats()
        validate_stats_dict(stats)  # raises if the contract is broken
        requests = stats["requests"]
        coalescer = stats["coalescer"]
        estimate_latency = requests["by_route"]["estimate"]["latency_ms"]
        print(f"\nstats: {requests['total']} requests "
              f"({requests['errors']} errors), "
              f"coalescer hits {coalescer['hits']} / leaders {coalescer['leaders']}, "
              f"estimate p50 {estimate_latency['p50_ms']:.1f} ms "
              f"p99 {estimate_latency['p99_ms']:.1f} ms")

    print("\nserver drained and stopped.")


if __name__ == "__main__":
    main()
