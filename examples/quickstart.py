"""Quickstart: estimate Betti numbers of a point cloud with the QTDA algorithm.

Walks the whole pipeline on a small cloud shaped like a noisy circle:

1. build the Vietoris–Rips complex at a grouping scale ε;
2. form the combinatorial Laplacian and look at its exact kernel (the
   classical Betti number);
3. run the QPE-based estimator (exact backend, finite shots) and compare;
4. run the same estimate through the service front door (`repro.api`) and
   show the provenance that rides along;
5. re-run under depolarising + readout noise on the trajectory route and
   read off the per-trajectory error bar;
6. print the Fig. 6 circuit's resource counts and an ASCII drawing of the
   Fig. 2 mixed-state preparation.

See examples/service_api.py for the full service tour (futures, batched
`map`, streaming ε-sweeps, the JSON wire format) and
examples/circuit_engine.py for the circuit-execution routes
(`QTDAConfig.circuit_engine`: batched ensemble vs purified vs density).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import QTDABettiEstimator, build_hamiltonian, qtda_circuit
from repro.core.mixed_state import maximally_mixed_state_circuit
from repro.core.qtda_circuit import circuit_resource_summary
from repro.datasets.point_clouds import circle_cloud
from repro.quantum.drawer import draw_circuit
from repro.tda import RipsComplex, betti_numbers
from repro.tda.laplacian import combinatorial_laplacian


def main() -> None:
    # 1. A noisy circle: one connected component, one loop.
    points = circle_cloud(num_points=14, radius=1.0, noise=0.05, seed=3)
    epsilon = 0.75
    complex_ = RipsComplex.from_points(points, epsilon=epsilon, max_dimension=2).complex()
    print(f"Point cloud: {points.shape[0]} points, grouping scale eps = {epsilon}")
    print(f"Rips complex f-vector (vertices, edges, triangles): {complex_.f_vector()}")

    # 2. Classical ground truth.
    exact = betti_numbers(complex_, 1)
    print(f"Classical Betti numbers: beta_0 = {exact[0]}, beta_1 = {exact[1]}")

    # 3. Quantum estimate (QPE on the combinatorial Laplacian).
    #    The default `exact` backend evaluates the analytical QPE readout.
    #    The faithful circuit backends (backend="statevector"/"trotter")
    #    additionally take a `circuit_engine` knob: the default "auto" runs
    #    noise-free circuits on the batched ensemble statevector engine
    #    (DESIGN.md §11) — set "purified" or "density" to force the legacy
    #    Fig. 2 / density-matrix routes, e.g.
    #    QTDABettiEstimator(backend="statevector", circuit_engine="density").
    estimator = QTDABettiEstimator(precision_qubits=6, shots=4000, seed=11)
    for k in (0, 1):
        result = estimator.estimate(complex_, k)
        print(
            f"QTDA estimate for beta_{k}: p(0) = {result.p_zero:.4f} on {result.num_system_qubits} "
            f"system qubits -> beta~_{k} = {result.betti_estimate:.3f} (rounded {result.betti_rounded}, "
            f"exact {result.exact_betti})"
        )

    # 4. The same estimation through the service API: one request in, one
    #    provenance-stamped envelope out.  Each request runs a fresh seeded
    #    estimator, so its draw matches a fresh estimator's first estimate
    #    (step 3 reused one estimator across k=0 and k=1, advancing its RNG).
    from repro.api import EstimationRequest, QTDAService

    with QTDAService() as service:
        envelope = service.run(
            EstimationRequest(
                points=points,
                epsilon=epsilon,
                max_dimension=2,
                k=1,
                config={"precision_qubits": 6, "shots": 4000, "seed": 11},
            )
        )
    print(
        f"\nVia QTDAService: beta~_1 = {envelope.payload['betti_estimate']:.3f} "
        f"[backend={envelope.provenance.backend}, format={envelope.provenance.operator_format}, "
        f"wall={envelope.provenance.wall_time_s * 1e3:.1f} ms]"
    )

    # 5. A noisy run.  Declaring a channel on the config routes the circuit
    #    through the fused-PTM engine (DESIGN.md §16): every gate and its
    #    attached channel become one real Pauli-transfer matrix, adjacent
    #    PTMs fuse into single superoperators, and the answer is *exact* —
    #    it matches the density-matrix contraction to machine precision at
    #    gate-fusion speed, no sampling spread.  See
    #    examples/zne_extrapolation.py for recovering the noiseless answer
    #    from a strength sweep.
    noisy = QTDABettiEstimator(
        precision_qubits=6,
        shots=4000,
        backend="statevector",
        noise_channel="depolarizing",
        noise_strength=0.005,
        readout_error=0.01,
        seed=11,
    ).estimate(complex_, 1)
    print(
        f"\nNoisy estimate (depolarizing p=0.005, readout 1%): "
        f"beta~_1 = {noisy.betti_estimate:.3f} "
        f"[route={noisy.engine_route}, {noisy.fused_gates} fused superoperators]"
    )

    #    Prefer a Monte-Carlo error bar (or a register too wide for the
    #    4^n Pauli vector)?  `circuit_engine="trajectory"` runs stochastic
    #    Kraus unravelling over n_trajectories repetitions instead, whose
    #    spread becomes the ± bar; `auto` picks trajectory by itself above
    #    12 total qubits.  examples/circuit_engine.py compares the routes.
    sampled = QTDABettiEstimator(
        precision_qubits=6,
        shots=4000,
        backend="statevector",
        circuit_engine="trajectory",
        noise_channel="depolarizing",
        noise_strength=0.005,
        n_trajectories=8,
        readout_error=0.01,
        seed=11,
    ).estimate(complex_, 1)
    spread = f" ± {sampled.betti_std:.3f}" if sampled.betti_std is not None else ""
    print(
        f"Same channel, trajectory route: beta~_1 = {sampled.betti_estimate:.3f}{spread} "
        f"[route={sampled.engine_route}, {sampled.n_trajectories} trajectories]"
    )

    # 5½. Scaling out: `config={"shards": 4, "shard_backend": "process"}`
    #    splits the ensemble's batch axis (or the trajectory axis) across a
    #    spawn-context process pool — bit-identical to the unsharded run,
    #    with `shards`/`shard_backend`/device stamped into the provenance
    #    (DESIGN.md §14).  With CuPy installed, `REPRO_ARRAY_MODULE=cupy`
    #    or `shard_backend="device"` (`QTDAConfig.devices=(0, 1)` to pick
    #    GPUs) runs the same shards on device contexts instead.

    # 6. What the circuit looks like for beta_1.
    laplacian = combinatorial_laplacian(complex_, 1)
    hamiltonian = build_hamiltonian(laplacian)
    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=4, use_purification=True)
    print("\nFig. 6-style circuit resources:")
    for key, value in circuit_resource_summary(circuit, spec).items():
        if key != "gate_histogram":
            print(f"  {key}: {value}")

    print("\nFig. 2-style maximally mixed state preparation (3 system qubits):")
    print(draw_circuit(maximally_mixed_state_circuit(3)))

    # 7. Serve it.  The same request/envelope wire format deploys over HTTP
    #    (DESIGN.md §15) — `python -m repro.cli serve` from a shell, or
    #    in-process as below.  Identical concurrent requests coalesce into
    #    one computation and per-caller quotas shed overload with 429s; see
    #    examples/http_client.py for the full client tour.
    from repro.serve import QTDAServer, ServeConfig, ServiceClient

    with QTDAServer(ServeConfig(port=0)) as server:
        with ServiceClient(server.host, server.port) as client:
            served = client.estimate(
                EstimationRequest(
                    points=points,
                    epsilon=epsilon,
                    max_dimension=2,
                    k=1,
                    config={"precision_qubits": 6, "shots": 4000, "seed": 11},
                )
            )
    print(
        f"\nVia HTTP ({server.base_url}): beta~_1 = {served['payload']['betti_estimate']:.3f} "
        f"[schema v{served['schema_version']}, coalesced={served['coalesced']}]"
    )


if __name__ == "__main__":
    main()
