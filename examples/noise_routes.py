"""The three noisy routes compared: ptm vs density vs trajectory.

Declarative noise (``QTDAConfig.noise_channel`` & friends) can run three
ways (DESIGN.md §12, §16):

* ``ptm``        — fused Pauli-transfer matrices: every gate and its
  attached channel become one real ``4^n`` superoperator, adjacent PTMs
  fuse, and a single Pauli vector evolves.  *Exact* — same contraction as
  density in a different basis — and the ``auto`` default while
  ``t + q <= 12``;
* ``density``    — density-matrix evolution with Kraus operators applied
  gate by gate.  Exact too, but squares the state and cannot fuse across
  channels;
* ``trajectory`` — stochastic Kraus unravelling over ``n_trajectories``
  pure-state repetitions.  Unbiased with a ±spread error bar; the ``auto``
  choice above 12 total qubits, where the ``4^n`` Pauli vector no longer
  fits.

This script runs the same per-gate-class depolarising workload through all
three, printing wall times, the Betti estimates, and each route's maximum
readout-distribution deviation from the density reference: ptm lands at
machine precision (~1e-15) in a fraction of the time, trajectory carries a
statistical spread that shrinks as ``n_trajectories`` grows.

Run with:  python examples/noise_routes.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.backends import EstimationProblem
from repro.core.backends.statevector import circuit_backend_result
from repro.core.config import QTDAConfig
from repro.utils.rng import as_rng

PRECISION = 4
ROUTES = ("ptm", "density", "trajectory")
NOISE_STRENGTH = 0.002
GATE_STRENGTHS = {"c-U": 0.004, "H": 0.001}
N_TRAJECTORIES = 16


def synthetic_laplacian(dim: int, seed: int = 0) -> np.ndarray:
    """Symmetric PSD matrix of rank ``dim - 2`` (a 2-dimensional kernel)."""
    rng = np.random.default_rng(seed)
    basis = rng.standard_normal((dim, dim - 2))
    lap = basis @ basis.T
    return (lap + lap.T) / 2.0


def run_route(problem: EstimationProblem, route: str):
    config = QTDAConfig(
        precision_qubits=PRECISION,
        shots=None,
        backend="statevector",
        circuit_engine=route,
        noise_channel="depolarizing",
        noise_strength=NOISE_STRENGTH,
        noise_gate_strengths=GATE_STRENGTHS,
        n_trajectories=N_TRAJECTORIES,
        seed=11,
    )
    noise_model = config.resolved_noise_model()
    start = time.perf_counter()
    result = circuit_backend_result(
        problem, config, "exact", noise_model, rng=as_rng(config.seed)
    )
    return time.perf_counter() - start, result


def main() -> None:
    print(
        f"Fig. 6 circuit, t = {PRECISION} precision qubits, depolarizing "
        f"p={NOISE_STRENGTH} with per-gate-class strengths {GATE_STRENGTHS}"
    )
    print(
        f"{'q':>3} {'dim':>5} | "
        + " | ".join(f"{route:>11}" for route in ROUTES)
        + " | ptm |Δp|  | traj |Δp|"
    )
    print("-" * 78)
    for q in (3, 4, 5, 6):
        dim = 3 * 2 ** (q - 2)  # padded to 2^q without being a power of two
        problem = EstimationProblem(laplacian=synthetic_laplacian(dim, seed=q))
        seconds, results = {}, {}
        for route in ROUTES:
            seconds[route], results[route] = run_route(problem, route)
        reference = results["density"].distribution
        ptm_diff = float(np.max(np.abs(results["ptm"].distribution - reference)))
        traj_diff = float(
            np.max(np.abs(results["trajectory"].distribution - reference))
        )
        cells = " | ".join(f"{seconds[route]:>10.3f}s" for route in ROUTES)
        print(f"{q:>3} {dim:>5} | {cells} | {ptm_diff:>9.1e} | {traj_diff:>9.1e}")

    # Estimates from the largest run: the exact routes agree to machine
    # precision; the trajectory mean carries its repetition spread.
    dim = 2**6
    betti = {route: dim * float(results[route].distribution[0]) for route in ROUTES}
    std = results["trajectory"].p_zero_std
    spread = f" ± {dim * std:.3f}" if std is not None else ""
    print()
    print(f"q=6 Betti estimates (dim · p(0)):")
    print(f"  ptm        {betti['ptm']:.9f}  ({results['ptm'].fused_gates} fused superoperators)")
    print(f"  density    {betti['density']:.9f}")
    print(
        f"  trajectory {betti['trajectory']:.9f}{spread}  "
        f"({results['trajectory'].n_trajectories} trajectories)"
    )
    print()
    print("ptm is the same linear map as density in the Pauli basis — identical")
    print("answers at a fraction of the cost (benchmarks/test_bench_ptm.py gates")
    print(">= 5x at q=6, t=4).  trajectory trades exactness for an error bar and")
    print("a pure-state memory footprint; `auto` prefers ptm up to 12 total")
    print("qubits and trajectory beyond.")


if __name__ == "__main__":
    main()
