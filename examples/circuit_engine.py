"""Where each circuit-execution route wins: ensemble vs purified vs density.

The faithful Fig. 6 backends can simulate the maximally mixed input three
ways (``QTDAConfig.circuit_engine``, DESIGN.md §11):

* ``ensemble``  — batched statevector: the 2^q basis states evolve as one
  ``(2^(t+q), 2^q)`` array with fused gates;
* ``purified``  — Fig. 2 purification: one statevector on t + 2q qubits;
* ``density``   — density-matrix evolution of ``|0><0| ⊗ I/2^q`` on t + q
  qubits (the only route that can carry noise channels).

This script sweeps the system-register size q on synthetic Laplacians and
times all three, printing per-gate state sizes alongside the wall times so
the asymptotics are visible: the density route squares the state
(``4^(t+q)`` entries per gate, 2^t times more than the others), while the
ensemble route matches the purified route's raw count (``2^(t+q) · 2^q``)
but runs a fused, shorter circuit, needs no auxiliary register, and chunks
the batch to a memory budget instead of holding one monolithic
``2^(t+2q)``-amplitude vector.

Run with:  python examples/circuit_engine.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.backends import EstimationProblem
from repro.core.backends.statevector import circuit_backend_result
from repro.core.config import QTDAConfig

PRECISION = 4
ROUTES = ("ensemble", "purified", "density")


def synthetic_laplacian(dim: int, seed: int = 0) -> np.ndarray:
    """Symmetric PSD matrix of rank ``dim - 2`` (a 2-dimensional kernel).

    Twin of ``_workload_laplacian`` in benchmarks/test_bench_circuit_engine.py
    (which gates the speedup this example illustrates) — keep in sync.
    """
    rng = np.random.default_rng(seed)
    basis = rng.standard_normal((dim, dim - 2))
    lap = basis @ basis.T
    return (lap + lap.T) / 2.0


def time_route(problem: EstimationProblem, route: str) -> tuple[float, np.ndarray]:
    config = QTDAConfig(
        precision_qubits=PRECISION, shots=None, backend="statevector", circuit_engine=route
    )
    start = time.perf_counter()
    result = circuit_backend_result(problem, config, "exact", None)
    return time.perf_counter() - start, result.distribution


def main() -> None:
    print(f"Fig. 6 circuit, exact synthesis, t = {PRECISION} precision qubits")
    print(f"{'q':>3} {'dim':>5} | " + " | ".join(f"{route:>10}" for route in ROUTES) + " | max |Δp|")
    print("-" * 66)
    for q in (3, 4, 5, 6):
        dim = 3 * 2 ** (q - 2)  # padded to 2^q without being a power of two
        problem = EstimationProblem(laplacian=synthetic_laplacian(dim, seed=q))
        seconds = {}
        distributions = {}
        for route in ROUTES:
            seconds[route], distributions[route] = time_route(problem, route)
        spread = max(
            float(np.max(np.abs(distributions[a] - distributions["density"])))
            for a in ("ensemble", "purified")
        )
        cells = " | ".join(f"{seconds[route]:>9.3f}s" for route in ROUTES)
        print(f"{q:>3} {dim:>5} | {cells} | {spread:.1e}")
    print()
    print("State entries touched per gate (complex numbers):")
    print(f"{'q':>3} | {'ensemble/purified 2^(t+2q)':>27} | {'density 4^(t+q)':>16}")
    for q in (3, 4, 5, 6, 8, 10):
        t = PRECISION
        print(f"{q:>3} | {2**(t + 2 * q):>27,} | {4**(t+q):>16,}")
    print()
    print("The ensemble route touches 2^t times fewer entries than density.  Against")
    print("purified the raw per-gate count ties (2^(t+q)·2^q = 2^(t+2q)), but the")
    print("ensemble wins structurally: gate fusion shortens the circuit, there is no")
    print("2q-qubit monolithic vector (the batch chunks to a memory budget), no Bell-")
    print("pair preparation, and the batch axis feeds one GEMM instead of a longer")
    print("contraction.  Noise channels run on the ptm, trajectory, or density")
    print("routes instead (see examples/noise_routes.py) —")
    print("QTDAConfig(circuit_engine=...) picks the route.")


if __name__ == "__main__":
    main()
