"""Fig. 3 in miniature: estimation error vs shots and precision qubits.

Draws random simplicial complexes for n ∈ {5, 10}, estimates β̃_1 with the
QPE algorithm across a grid of shot counts and precision-qubit counts, and
prints text boxplot summaries of the absolute error (the paper's Fig. 3).
Increase ``num_complexes`` / the grids to approach the paper's full sweep.

Run with:  python examples/error_study.py
"""

from __future__ import annotations

from repro.experiments.shots_precision import (
    ShotsPrecisionConfig,
    error_trend_summary,
    render_shots_precision_results,
    run_shots_precision_experiment,
)


def main() -> None:
    config = ShotsPrecisionConfig(
        complex_sizes=(5, 10),
        num_complexes=12,
        shots_grid=(10**2, 10**3, 10**4),
        precision_grid=(1, 2, 3, 4, 5, 6),
        seed=42,
    )
    result = run_shots_precision_experiment(config)
    print(render_shots_precision_results(result))
    print("\nHeadline trend (mean absolute error):")
    for label, values in error_trend_summary(result).items():
        print(
            f"  {label}: {values['lowest_resources_mean_ae']:.3f} at the lowest resources -> "
            f"{values['highest_resources_mean_ae']:.3f} at the highest"
        )
    print(
        "\nAs in the paper's Fig. 3: the error shrinks as either shots or precision qubits grow,\n"
        "and the error scale is larger for larger complexes."
    )


if __name__ == "__main__":
    main()
