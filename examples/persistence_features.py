"""Future-work extension: persistent Betti numbers as scale-free features.

The paper's conclusion points to persistent Betti numbers — invariant to the
choice of a single grouping scale — as better features for noisy data.  This
example compares, on clouds with known topology (circle, figure-eight, three
clusters), the fixed-ε Betti numbers used in the paper with persistence
diagrams and the persistent-Betti features provided by ``repro.tda.persistence``.

Run with:  python examples/persistence_features.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets.point_clouds import circle_cloud, clusters_cloud, figure_eight_cloud
from repro.tda import betti_numbers, rips_complex
from repro.tda.filtration import rips_filtration
from repro.tda.persistence import persistence_diagrams, persistence_features


def describe(name: str, points: np.ndarray, epsilon: float) -> None:
    complex_ = rips_complex(points, epsilon, max_dimension=2)
    fixed = betti_numbers(complex_, 1)
    filtration = rips_filtration(points, max_dimension=2)
    diagrams = persistence_diagrams(filtration, max_dimension=1)
    loops = sorted((p for p in diagrams[1].pairs if p.persistence > 0), key=lambda p: -p.persistence)
    print(f"\n{name} ({points.shape[0]} points)")
    print(f"  fixed-scale Betti numbers at eps = {epsilon}: beta_0 = {fixed[0]}, beta_1 = {fixed[1]}")
    print(f"  H0: {len(diagrams[0].essential_pairs())} essential class(es), "
          f"{len(diagrams[0].finite_pairs())} merge events")
    if loops:
        top = ", ".join(f"[{p.birth:.2f}, {p.death:.2f})" for p in loops[:3])
        print(f"  H1 intervals (most persistent first): {top}")
    features = persistence_features(points, max_homology_dimension=1)
    print(f"  persistence feature vector ({features.size} values): {np.round(features, 2)}")


def main() -> None:
    print("Persistent homology features (the paper's announced future work)")
    describe("Circle", circle_cloud(18, seed=1), epsilon=0.6)
    describe("Figure eight", figure_eight_cloud(32, seed=2), epsilon=0.55)
    describe("Three clusters", clusters_cloud(3, 7, seed=3), epsilon=1.5)
    print(
        "\nUnlike the fixed-eps Betti numbers, the persistence intervals separate long-lived\n"
        "topological signal from short-lived noise without committing to one grouping scale."
    )


if __name__ == "__main__":
    main()
