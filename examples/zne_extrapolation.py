"""Zero-noise extrapolation on the fused-PTM route.

The fast noisy engines make a noise-strength *sweep* affordable — and a
sweep is exactly what zero-noise extrapolation needs: estimate β̃_k at
several multiples of the base noise strength, Richardson-fit p(0) against
strength, and read off the fit at strength zero.  Declarative noise
resolves to the exact fused-PTM route (DESIGN.md §16), so every fit point
is the true expectation of its noisy circuit — no Monte-Carlo scatter in
the fit (set ``circuit_engine="trajectory"`` to sweep with sampled points
and ± bars instead).  On the paper's appendix complex the extrapolated
Betti number recovers the noiseless answer from runs that are individually
biased by depolarising noise.

Run with:  python examples/zne_extrapolation.py
"""

from __future__ import annotations

import json

from repro.core import QTDABettiEstimator, QTDAConfig, zero_noise_extrapolation
from repro.experiments.worked_example import appendix_complex

complex_ = appendix_complex()

config = QTDAConfig(
    precision_qubits=3,
    shots=None,
    delta=6.0,
    backend="statevector",
    noise_channel="depolarizing",
    noise_strength=0.01,
    n_trajectories=32,
    seed=11,
)

print("== noiseless reference ==")
clean = QTDABettiEstimator(
    QTDAConfig(precision_qubits=3, shots=None, delta=6.0, backend="statevector")
).estimate(complex_, 1)
print(f"  beta_1 = {clean.betti_estimate:.6f}  (route: {clean.engine_route})")

print("\n== noisy sweep + Richardson extrapolation ==")
result = zero_noise_extrapolation(complex_, 1, config, scale_factors=(1.0, 2.0, 3.0))
for s, b, route in zip(
    result.strengths, result.betti_estimates, [e.engine_route for e in result.estimates]
):
    print(f"  strength {s:.3f}: beta_1 = {b:.6f}  (route: {route})")
print(f"  extrapolated to zero noise: beta_1 = {result.betti_extrapolated:.6f}")
print(f"  rounded: {result.betti_rounded}  (exact: {clean.exact_betti})")

print("\n== JSON summary ==")
print(json.dumps(result.as_dict(), indent=2))
