"""Appendix A of the paper, reproduced end to end.

Prints every intermediate object the appendix lists: the complex of Eq. 13,
the boundary operators (Eqs. 14–15), the combinatorial Laplacian (Eq. 17),
the padded Laplacian with λ̃_max = 6 (Eq. 18), the Pauli decomposition
(Eq. 19) and the final estimate β̃_1 ≈ 1.2 → 1 from 1000 shots of the Fig. 6
circuit with 3 precision qubits.

Run with:  python examples/worked_example.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.worked_example import render_worked_example, run_worked_example


def main() -> None:
    result = run_worked_example(shots=1000, precision_qubits=3, backend="statevector", seed=1)
    print(render_worked_example(result))

    print("\nBoundary operator ∂_1 (compare Eq. 14, up to the overall sign):")
    print(np.array2string(result.boundary_1.astype(int)))
    print("\nBoundary operator ∂_2 (Eq. 15):")
    print(np.array2string(result.boundary_2.astype(int)))
    print("\nPadded Laplacian (Eq. 18):")
    print(np.array2string(result.padded.matrix.astype(float), precision=1))

    print("\nPauli decomposition of H (Eq. 19):")
    for label in sorted(result.pauli_coefficients, key=lambda l: result.pauli_coefficients[l]):
        print(f"  {result.pauli_coefficients[label]:+.3f} * {label}")

    error = abs(result.estimate.betti_estimate - result.exact_betti)
    print(
        f"\nFinal answer: beta~_1 = {result.estimate.betti_estimate:.3f} "
        f"(paper: 1.192), rounded = {result.estimate.betti_rounded}, absolute error = {error:.3f}"
    )


if __name__ == "__main__":
    main()
