"""Section 5: machine-diagnostics classification from estimated Betti numbers.

Reproduces both Section 5 experiments on the synthetic gearbox substitute:

* the raw time-series route (500-sample windows → Takens embedding → Rips
  complex → {β̃_0, β̃_1} → logistic regression), and
* the Table 1 route (six condition-monitoring features per row → four-point
  3-D cloud → Betti features vs the number of precision qubits).

Run with:  python examples/gearbox_classification.py
The defaults are sized to finish in well under a minute; raise the row and
window counts to approach the paper's 255-row setting.
"""

from __future__ import annotations

from repro.experiments.gearbox_table1 import (
    GearboxExperimentConfig,
    render_table1,
    run_gearbox_table1,
    run_timeseries_classification,
)


def main() -> None:
    print("=== Section 5, route 1: raw vibration windows -> Takens -> Rips -> Betti features ===")
    timeseries = run_timeseries_classification(
        num_samples_per_class=15,
        window_length=500,
        precision_qubits=4,
        shots=100,
        takens_stride=16,
        seed=7,
    )
    print(
        f"{timeseries.num_windows} windows, grouping scale eps = {timeseries.epsilon:.3f}\n"
        f"training accuracy   = {timeseries.training_accuracy:.3f}\n"
        f"validation accuracy = {timeseries.validation_accuracy:.3f}\n"
        "(the paper reports 100% validation accuracy on the SEU dataset; the synthetic\n"
        " substitute is noisier but clearly separable)"
    )

    print("\n=== Section 5, route 2 (Table 1): six-feature rows -> 4-point clouds -> Betti features ===")
    config = GearboxExperimentConfig(
        num_rows=80,
        num_healthy=26,
        precision_grid=(1, 2, 3, 4, 5),
        shots=100,
        window_length=400,
        seed=2023,
    )
    table = run_gearbox_table1(config)
    print(render_table1(table))
    print(
        "\nExpected qualitative behaviour (matching Table 1): the mean absolute error of the\n"
        "Betti estimates falls as precision qubits increase, and the accuracy approaches the\n"
        "reference obtained with exact Betti numbers."
    )


if __name__ == "__main__":
    main()
