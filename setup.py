"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable wheels cannot be built; this ``setup.py`` lets
``pip install -e .`` fall back to the legacy develop-mode install.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
