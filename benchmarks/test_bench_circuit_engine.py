"""Benchmark — the batched (``ensemble``) circuit route vs the legacy routes.

The faithful Fig. 6 backends used to simulate the maximally mixed input
either by purification (statevector on ``t + 2q`` qubits) or by density-
matrix evolution (a ``2^(t+q) x 2^(t+q)`` matrix, squared cost per gate).
The execution engine (DESIGN.md §11) evolves the ``2^q`` system basis states
as one ``(2^(t+q), 2^q)`` batched array with fused gates instead.

The gate: at ``q = 6`` system qubits and ``t = 4`` precision qubits (a
48-dimensional Laplacian padded to 64), the ensemble route must beat the
density-matrix route by at least 5× while agreeing with it to 1e-10 on the
readout distribution.  The purified route is timed for the JSON artefact but
does not gate (it loses to both on memory long before it loses on time).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.backends import EstimationProblem
from repro.core.backends.statevector import circuit_backend_result
from repro.core.config import QTDAConfig

PRECISION = 4  # t
DIMENSION = 48  # |S_k|, padded to 2^6 -> q = 6
DELTA = 6.0
GATE = 5.0


def _workload_laplacian(dim: int = DIMENSION) -> np.ndarray:
    """A deterministic symmetric PSD matrix with a small kernel (rank dim-2).

    Twin of ``synthetic_laplacian`` in examples/circuit_engine.py (the
    example illustrates the routes this benchmark gates) — keep the
    construction in sync.
    """
    rng = np.random.default_rng(2023)
    basis = rng.standard_normal((dim, dim - 2))
    lap = basis @ basis.T
    return (lap + lap.T) / 2.0


def _route_seconds(problem: EstimationProblem, engine: str):
    config = QTDAConfig(
        precision_qubits=PRECISION,
        shots=None,
        delta=DELTA,
        backend="statevector",
        circuit_engine=engine,
    )
    start = time.perf_counter()
    result = circuit_backend_result(problem, config, "exact", None)
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="circuit-engine")
def test_bench_ensemble_route_speedup(benchmark, paper_scale, bench_json):
    laplacian = _workload_laplacian()
    problem = EstimationProblem(laplacian=laplacian)

    # A cold fusion cache is part of the route's real cost (same convention
    # as the cold spectrum caches of the other benchmarks), so the gated
    # number is the first run.  The pedantic rerun that feeds the
    # pytest-benchmark table hits the warm fusion cache; its timing is
    # recorded separately so the artefact shows both regimes.
    ensemble_seconds, ensemble = _route_seconds(problem, "ensemble")
    density_seconds, density = _route_seconds(problem, "density")
    purified_seconds, purified = _route_seconds(problem, "purified")

    warm = benchmark.pedantic(
        lambda: _route_seconds(problem, "ensemble")[0], rounds=1, iterations=1
    )
    ensemble_warm_seconds = float(warm)

    speedup = density_seconds / ensemble_seconds
    agreement = float(np.max(np.abs(ensemble.distribution - density.distribution)))
    print()
    print(
        f"q=6 t={PRECISION}: ensemble {ensemble_seconds:.3f}s (warm "
        f"{ensemble_warm_seconds:.3f}s) | density {density_seconds:.3f}s | "
        f"purified {purified_seconds:.3f}s | speedup vs density {speedup:.1f}x | "
        f"max |Δp| {agreement:.2e} | fused gates {ensemble.fused_gates}"
    )
    bench_json(
        "circuit_engine",
        {
            "system_qubits": 6,
            "precision_qubits": PRECISION,
            "laplacian_dimension": DIMENSION,
            "ensemble_seconds": ensemble_seconds,
            "ensemble_warm_fusion_cache_seconds": ensemble_warm_seconds,
            "density_seconds": density_seconds,
            "purified_seconds": purified_seconds,
            "speedup_vs_density": speedup,
            "max_distribution_delta": agreement,
            "fused_gates": ensemble.fused_gates,
            "gate": GATE,
        },
    )

    # Same science: all three routes prepare the same mixed-state readout.
    np.testing.assert_allclose(ensemble.distribution, density.distribution, atol=1e-10)
    np.testing.assert_allclose(purified.distribution, density.distribution, atol=1e-10)
    assert ensemble.engine_route == "ensemble"
    assert ensemble.fused_gates is not None
    # The acceptance criterion of the execution-engine PR.
    assert speedup >= GATE, (
        f"expected >= {GATE}x over the density-matrix route, measured {speedup:.1f}x"
    )
