"""Benchmark — the trajectory noise route vs the density-matrix route.

Noisy runs used to have exactly one faithful path: density-matrix evolution,
a ``2^(t+q) x 2^(t+q)`` matrix with every Kraus branch applied to it after
every gate.  The trajectory route (DESIGN.md §12) unravels the channel
stochastically instead: each of ``n_trajectories`` repetitions evolves the
``2^q`` ensemble members through the unfused circuit, sampling one Kraus
branch per member after each gate, and the repetitions' spread is the error
bar.

The gate: at ``q = 6`` system qubits and ``t = 4`` precision qubits (the
same 48-dimensional workload Laplacian as the circuit-engine benchmark)
under depolarising noise, the trajectory route must beat the noisy
density-matrix route by at least 5× while its mean Betti estimate agrees
with the density route's (exact) answer within three standard errors.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.backends import EstimationProblem
from repro.core.backends.statevector import circuit_backend_result
from repro.core.config import QTDAConfig
from repro.utils.rng import as_rng

PRECISION = 4  # t
DIMENSION = 48  # |S_k|, padded to 2^6 -> q = 6
DELTA = 6.0
NOISE_STRENGTH = 0.002
N_TRAJECTORIES = 8
GATE = 5.0
SEED = 2023


def _workload_laplacian(dim: int = DIMENSION) -> np.ndarray:
    """The same deterministic PSD workload as test_bench_circuit_engine.py."""
    rng = np.random.default_rng(2023)
    basis = rng.standard_normal((dim, dim - 2))
    lap = basis @ basis.T
    return (lap + lap.T) / 2.0


def _route_seconds(problem: EstimationProblem, engine: str):
    config = QTDAConfig(
        precision_qubits=PRECISION,
        shots=None,
        delta=DELTA,
        backend="statevector",
        circuit_engine=engine,
        noise_channel="depolarizing",
        noise_strength=NOISE_STRENGTH,
        n_trajectories=N_TRAJECTORIES,
        seed=SEED,
    )
    noise_model = config.resolved_noise_model()
    start = time.perf_counter()
    result = circuit_backend_result(
        problem, config, "exact", noise_model, rng=as_rng(config.seed)
    )
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="noise-trajectory")
def test_bench_trajectory_route_speedup(benchmark, paper_scale, bench_json):
    laplacian = _workload_laplacian()
    problem = EstimationProblem(laplacian=laplacian)

    trajectory_seconds, trajectory = _route_seconds(problem, "trajectory")
    density_seconds, density = _route_seconds(problem, "density")

    warm = benchmark.pedantic(
        lambda: _route_seconds(problem, "trajectory")[0], rounds=1, iterations=1
    )
    trajectory_warm_seconds = float(warm)

    dim = 2**6
    betti_trajectory = dim * float(trajectory.distribution[0])
    betti_density = dim * float(density.distribution[0])
    betti_sem = dim * float(trajectory.p_zero_std)
    deviation_sigma = abs(betti_trajectory - betti_density) / betti_sem
    speedup = density_seconds / trajectory_seconds
    print()
    print(
        f"q=6 t={PRECISION} depolarizing p={NOISE_STRENGTH}: trajectory "
        f"{trajectory_seconds:.3f}s (warm {trajectory_warm_seconds:.3f}s, "
        f"{N_TRAJECTORIES} trajectories) | density {density_seconds:.3f}s | "
        f"speedup {speedup:.1f}x | betti {betti_trajectory:.3f}±{betti_sem:.3f} "
        f"vs density {betti_density:.3f} ({deviation_sigma:.2f}σ)"
    )
    bench_json(
        "noise_trajectory",
        {
            "system_qubits": 6,
            "precision_qubits": PRECISION,
            "laplacian_dimension": DIMENSION,
            "noise_channel": "depolarizing",
            "noise_strength": NOISE_STRENGTH,
            "n_trajectories": N_TRAJECTORIES,
            "trajectory_seconds": trajectory_seconds,
            "trajectory_warm_seconds": trajectory_warm_seconds,
            "density_seconds": density_seconds,
            "speedup_vs_density": speedup,
            "betti_trajectory": betti_trajectory,
            "betti_trajectory_sem": betti_sem,
            "betti_density": betti_density,
            "deviation_sigma": deviation_sigma,
            "gate": GATE,
        },
    )

    assert trajectory.engine_route == "trajectory"
    assert trajectory.n_trajectories == N_TRAJECTORIES
    assert trajectory.noise_spec is not None
    assert density.engine_route == "density"
    # Same science within sampling error: the trajectory mean converges to
    # the density-matrix answer, and the recorded spread calibrates it.
    assert betti_sem > 0
    assert deviation_sigma <= 3.0, (
        f"trajectory mean {betti_trajectory:.4f} deviates {deviation_sigma:.2f}σ "
        f"from the density answer {betti_density:.4f}"
    )
    # The acceptance criterion of the trajectory-route PR.
    assert speedup >= GATE, (
        f"expected >= {GATE}x over the noisy density-matrix route, measured {speedup:.1f}x"
    )
