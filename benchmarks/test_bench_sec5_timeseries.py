"""Benchmark E4 — Section 5 (first experiment): raw time-series classification.

500-sample vibration windows → Takens embedding → Rips complex → estimated
Betti features {β̃_0, β̃_1} → logistic regression.  The paper reports 100 %
validation accuracy on the SEU data; on the synthetic substitute the target
is clear separation well above chance.
"""

from __future__ import annotations

import pytest

from repro.experiments.gearbox_table1 import run_timeseries_classification


@pytest.mark.benchmark(group="sec5-timeseries")
def test_bench_timeseries_classification(benchmark, paper_scale):
    kwargs = dict(
        num_samples_per_class=30 if paper_scale else 12,
        window_length=500,
        precision_qubits=4,
        shots=100,
        takens_stride=16,
        seed=7,
    )
    result = benchmark.pedantic(run_timeseries_classification, kwargs=kwargs, rounds=1, iterations=1)
    print(
        f"\nSection 5 time-series route: {result.num_windows} windows, eps = {result.epsilon:.3f}, "
        f"training accuracy = {result.training_accuracy:.3f}, validation accuracy = {result.validation_accuracy:.3f}"
    )
    assert result.training_accuracy > 0.6
    assert result.validation_accuracy >= 0.5
