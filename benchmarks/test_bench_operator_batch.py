"""Benchmark — the sparse end-to-end batch path vs the dense handoff.

PR 2 made ``sparse-exact`` fast on large Laplacians, but the batch engine
still *built* every Laplacian dense and handed it over, so sweeps never saw
the speedup: the backend's sparse fast path was unreachable end to end.  The
operator layer (DESIGN.md §9) closes that gap — the engine negotiates the
handoff format with the configured backend and builds flag-array Laplacians
directly as CSR matrices.

The gate: on a large-window sweep (annulus point clouds whose Δ_1 has
hundreds of 1-simplices) with ``backend="sparse-exact"``, the negotiated
sparse path must beat the forced dense-handoff path (the pre-operator
behaviour, reachable via ``BatchConfig(operator_format="dense")``) by at
least 2×, while producing the same science (same rounded Betti features,
estimates within the sparse surrogate's documented tolerance).

A second (non-gating) measurement times the ``stochastic-trace`` backend on
the same sweep, recording the matvec-only path's trajectory in the JSON
artefact.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batch import BatchConfig, BatchFeatureEngine
from repro.core.config import QTDAConfig
from repro.core.pipeline import PipelineConfig
from repro.datasets.point_clouds import circle_cloud

PRECISION = 5
DELTA = 6.0


def _annulus_workload(paper_scale: bool):
    """Clouds whose Rips Δ_1 is large (~1000–1800 edges) plus a 2-point ε grid."""
    points = 450 if paper_scale else 300
    rng = np.random.default_rng(42)
    clouds = []
    for jitter in (0.0, 0.004, 0.008):
        cloud = circle_cloud(points)
        clouds.append(cloud + rng.normal(scale=jitter or 1e-6, size=cloud.shape))
    # 4 and 6 neighbours per side: |S_1| ≈ 4·points and 6·points.
    epsilons = [
        2.0 * np.sin(4.0 * np.pi / points) + 1e-9,
        2.0 * np.sin(6.0 * np.pi / points) + 1e-9,
    ]
    return clouds, epsilons


def _engine(backend: str, operator_format=None) -> BatchFeatureEngine:
    return BatchFeatureEngine(
        PipelineConfig(
            use_quantum=True,
            estimator=QTDAConfig(
                precision_qubits=PRECISION, shots=None, delta=DELTA, backend=backend, seed=1
            ),
        ),
        batch=BatchConfig(operator_format=operator_format),
    )


@pytest.mark.benchmark(group="operator-batch")
def test_bench_sparse_end_to_end_batch_speedup(benchmark, paper_scale, bench_json):
    clouds, epsilons = _annulus_workload(paper_scale)

    dense_engine = _engine("sparse-exact", operator_format="dense")
    start = time.perf_counter()
    dense_features = dense_engine.sweep(clouds, epsilons)
    dense_seconds = time.perf_counter() - start

    # benchmark.pedantic feeds the pytest-benchmark table; the gate ratio is
    # timed on a fresh engine below so the first run's (empty) cache is part
    # of the measured cost — same convention as the batch-engine benchmark.
    benchmark.pedantic(
        _engine("sparse-exact").sweep, args=(clouds, epsilons), rounds=1, iterations=1
    )
    fresh = _engine("sparse-exact")
    start = time.perf_counter()
    sparse_features = fresh.sweep(clouds, epsilons)
    sparse_seconds = time.perf_counter() - start

    start = time.perf_counter()
    trace_features = _engine("stochastic-trace").sweep(clouds, epsilons)
    trace_seconds = time.perf_counter() - start

    speedup = dense_seconds / sparse_seconds
    print()
    print(
        f"dense handoff {dense_seconds:.3f}s | sparse end-to-end {sparse_seconds:.3f}s | "
        f"speedup {speedup:.1f}x | stochastic-trace {trace_seconds:.3f}s "
        f"on {len(clouds)} clouds x {len(epsilons)} scales ({len(clouds[0])} points each)"
    )
    bench_json(
        "operator_batch",
        {
            "num_clouds": len(clouds),
            "num_scales": len(epsilons),
            "points_per_cloud": int(len(clouds[0])),
            "precision_qubits": PRECISION,
            "dense_handoff_seconds": dense_seconds,
            "sparse_end_to_end_seconds": sparse_seconds,
            "stochastic_trace_seconds": trace_seconds,
            "speedup": speedup,
            "gate": 2.0,
        },
    )

    # Same science: estimates within the sparse surrogate's documented
    # tolerance (a few hundredths of p(0), i.e. < 0.25 on β̃) of the
    # dense-handoff values.  Exact rounded equality is *not* asserted here —
    # at this leakage-heavy scale estimates can straddle a .5 boundary — the
    # single-Laplacian sparse benchmark and the regression suite pin rounding
    # on clean complexes.  The stochastic path is sanity-checked loosely; its
    # "within reported error bars" contract is gated by
    # tests/core/test_stochastic_trace_backend.py.
    assert sparse_features.shape == dense_features.shape
    np.testing.assert_allclose(sparse_features, dense_features, atol=0.25)
    np.testing.assert_allclose(trace_features, dense_features, atol=3.0)
    # The acceptance criterion of the operator-layer refactor.
    assert speedup >= 2.0, f"expected >= 2x over the dense handoff, measured {speedup:.1f}x"
