"""Benchmark E6 — circuit constructions (Figs. 2, 6, 7): build + simulation cost.

Times the three circuit constructions the paper draws and prints their
resource counts (qubits, gates, depth), which is the information an
implementer needs when moving from the paper's figures to an SDK.
"""

from __future__ import annotations

import pytest

from repro.core.hamiltonian import build_hamiltonian
from repro.core.mixed_state import maximally_mixed_state_circuit
from repro.core.qtda_circuit import circuit_resource_summary, qtda_circuit
from repro.experiments.worked_example import appendix_complex
from repro.quantum.drawer import circuit_summary
from repro.quantum.statevector import StatevectorSimulator
from repro.quantum.trotter import pauli_evolution_circuit
from repro.tda.laplacian import combinatorial_laplacian


@pytest.fixture(scope="module")
def hamiltonian():
    return build_hamiltonian(combinatorial_laplacian(appendix_complex(), 1), delta=6.0)


@pytest.mark.benchmark(group="circuits")
def test_bench_fig2_mixed_state_circuit(benchmark):
    circuit = benchmark(lambda: maximally_mixed_state_circuit(3))
    print(f"\nFig. 2 analogue: {circuit_summary(circuit)}")
    assert circuit.count_ops() == {"H": 3, "CNOT": 3}


@pytest.mark.benchmark(group="circuits")
def test_bench_fig7_trotter_circuit(benchmark, hamiltonian):
    pauli_sum = hamiltonian.pauli_decomposition()
    circuit = benchmark(lambda: pauli_evolution_circuit(pauli_sum, trotter_steps=1))
    print(f"\nFig. 7 analogue: {circuit_summary(circuit)} ({pauli_sum.num_terms} Pauli terms)")
    assert circuit.num_gates > pauli_sum.num_terms  # several gates per term


@pytest.mark.benchmark(group="circuits")
def test_bench_fig6_full_qtda_circuit_simulation(benchmark, hamiltonian):
    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=3, use_purification=True)
    print(f"\nFig. 6 analogue: {circuit_resource_summary(circuit, spec)}")

    simulator = StatevectorSimulator()
    probs = benchmark(lambda: simulator.probabilities(circuit, qubits=list(spec.precision_register)))
    estimate = (2**spec.system_qubits) * float(probs[0])
    print(f"p(0) = {probs[0]:.4f} -> beta_1 estimate = {estimate:.3f}")
    assert round(estimate) == 1
