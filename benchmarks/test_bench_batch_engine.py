"""Benchmark — the batched, cached Betti-feature engine vs the seed path.

A Fig. 4-style workload (20 gearbox windows × 8 grouping scales, exact
backend, infinite shots) is run twice:

* *seed path* — the pre-engine algorithm: per (window, ε) the distance
  matrix, Rips complex and Laplacians are rebuilt from scratch and the
  padded ``2^q x 2^q`` Hamiltonian is densified and rediagonalised per
  estimate;
* *engine path* — :class:`repro.core.batch.BatchFeatureEngine`: distances
  once per window, vectorised flag complexes, small ``|S_k| x |S_k|``
  eigendecompositions with analytical padding, spectrum cache.

The acceptance bar: the engine is at least 5× faster and its per-sample
outputs match the seed path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batch import BatchConfig, BatchFeatureEngine
from repro.core.config import QTDAConfig
from repro.core.hamiltonian import build_hamiltonian
from repro.core.pipeline import PipelineConfig
from repro.datasets.gearbox import generate_gearbox_dataset
from repro.quantum.qpe import qpe_outcome_distribution
from repro.tda.distances import pairwise_distances
from repro.tda.laplacian import combinatorial_laplacian
from repro.tda.rips import RipsComplex
from repro.tda.takens import TakensEmbedding

DELTA = 6.0
PRECISION = 4
HOMOLOGY_DIMENSIONS = (0, 1)


def _workload(paper_scale: bool):
    """20 embedded windows (40 at paper scale) and an 8-point ε grid."""
    per_class = 20 if paper_scale else 10
    windows, _ = generate_gearbox_dataset(
        num_samples_per_class=per_class, window_length=500, seed=7
    )
    embedder = TakensEmbedding(dimension=3, delay=4, stride=16)
    clouds = [embedder.transform(window) for window in windows]
    pooled = np.concatenate(
        [pairwise_distances(c)[np.triu_indices(len(c), k=1)] for c in clouds]
    )
    epsilons = np.percentile(pooled, np.linspace(10, 60, 8))
    return clouds, epsilons


def _seed_path(clouds, epsilons) -> np.ndarray:
    """The serial per-(window, ε, k) algorithm as it stood at the seed commit."""
    out = np.empty((len(epsilons), len(clouds), len(HOMOLOGY_DIMENSIONS)))
    for e_idx, epsilon in enumerate(epsilons):
        for c_idx, cloud in enumerate(clouds):
            complex_ = RipsComplex.from_points(
                cloud, float(epsilon), max_dimension=max(HOMOLOGY_DIMENSIONS) + 1
            ).complex()
            for f_idx, k in enumerate(HOMOLOGY_DIMENSIONS):
                if complex_.num_simplices(k) == 0:
                    out[e_idx, c_idx, f_idx] = 0.0
                    continue
                laplacian = combinatorial_laplacian(complex_, k)
                hamiltonian = build_hamiltonian(laplacian, delta=DELTA)
                distribution = qpe_outcome_distribution(
                    hamiltonian.eigenphases(), PRECISION
                )
                out[e_idx, c_idx, f_idx] = 2**hamiltonian.num_qubits * distribution[0]
    return out


def _engine(backend: str = "serial") -> BatchFeatureEngine:
    return BatchFeatureEngine(
        PipelineConfig(
            homology_dimensions=HOMOLOGY_DIMENSIONS,
            use_quantum=True,
            estimator=QTDAConfig(precision_qubits=PRECISION, shots=None, delta=DELTA),
        ),
        batch=BatchConfig(backend=backend),
    )


@pytest.mark.benchmark(group="batch-engine")
def test_bench_batch_engine_speedup_vs_seed_path(benchmark, paper_scale, bench_json):
    clouds, epsilons = _workload(paper_scale)

    start = time.perf_counter()
    seed_features = _seed_path(clouds, epsilons)
    seed_seconds = time.perf_counter() - start

    engine = _engine()
    engine_features = benchmark.pedantic(
        engine.sweep, args=(clouds, epsilons), rounds=1, iterations=1
    )
    # benchmark.pedantic already ran it once; time a fresh engine for the
    # ratio so the first run's (empty) cache is part of the measured cost.
    fresh = _engine()
    start = time.perf_counter()
    fresh.sweep(clouds, epsilons)
    engine_seconds = time.perf_counter() - start

    speedup = seed_seconds / engine_seconds
    print()
    print(
        f"seed path {seed_seconds:.3f}s | engine {engine_seconds:.3f}s | "
        f"speedup {speedup:.1f}x on {len(clouds)} windows x {len(epsilons)} scales"
    )
    bench_json(
        "batch_engine",
        {
            "num_windows": len(clouds),
            "num_scales": len(epsilons),
            "seed_path_seconds": seed_seconds,
            "engine_seconds": engine_seconds,
            "speedup": speedup,
            "gate": 5.0,
        },
    )
    # Identical science: the engine's per-sample outputs match the seed path.
    assert engine_features.shape == seed_features.shape
    np.testing.assert_allclose(engine_features, seed_features, atol=1e-8)
    # The acceptance criterion of the batching/caching refactor.
    assert speedup >= 5.0, f"expected >= 5x over the seed path, measured {speedup:.1f}x"


@pytest.mark.benchmark(group="batch-engine")
def test_bench_batch_engine_parallel_backends_agree(benchmark, paper_scale):
    """Thread pool returns bit-identical features (seeded shots) and is timed."""
    clouds, epsilons = _workload(False)
    config = PipelineConfig(
        homology_dimensions=HOMOLOGY_DIMENSIONS,
        use_quantum=True,
        estimator=QTDAConfig(precision_qubits=PRECISION, shots=256, delta=DELTA, seed=99),
    )
    serial = BatchFeatureEngine(config).sweep(clouds, epsilons)
    threaded_engine = BatchFeatureEngine(config, batch=BatchConfig(backend="threads", max_workers=4))
    threaded = benchmark.pedantic(
        threaded_engine.sweep, args=(clouds, epsilons), rounds=1, iterations=1
    )
    assert np.array_equal(serial, threaded)
