"""Benchmark E5 — Appendix A: the worked example end to end.

Times the full pipeline of the appendix (complex → Laplacian → padding →
Pauli decomposition → Fig. 6 circuit → 1000 shots → β̃_1) and prints the
intermediate values the appendix lists (λ̃_max, the padded dimension, the
leading Pauli coefficients, p(0), the estimate).
"""

from __future__ import annotations

import pytest

from repro.experiments.worked_example import render_worked_example, run_worked_example


@pytest.mark.benchmark(group="appendix")
def test_bench_appendix_worked_example_statevector(benchmark):
    result = benchmark.pedantic(
        run_worked_example,
        kwargs=dict(shots=1000, precision_qubits=3, backend="statevector", seed=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_worked_example(result))
    assert result.padded.lambda_max == pytest.approx(6.0)
    assert result.estimate.betti_rounded == 1  # the appendix's final answer


@pytest.mark.benchmark(group="appendix")
def test_bench_appendix_worked_example_trotter(benchmark):
    """Same walkthrough with the Fig. 7 Trotterised synthesis of exp(iH)."""
    result = benchmark.pedantic(
        run_worked_example,
        kwargs=dict(shots=1000, precision_qubits=3, backend="trotter", seed=2),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nTrotter backend: p(0) = {result.estimate.p_zero:.4f}, "
        f"beta_estimate = {result.estimate.betti_estimate:.3f}"
    )
    assert result.estimate.betti_rounded == 1
