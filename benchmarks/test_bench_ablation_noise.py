"""Benchmark A3 — extension: depolarising noise vs estimation error.

The paper's conclusion asks how the algorithm behaves on noisy (NISQ)
devices.  This benchmark sweeps the per-gate depolarising probability on the
full QTDA circuit for the Appendix A complex and reports how p(0) and the
Betti estimate drift.  The expected shape: the estimate degrades smoothly
towards the fully-mixed value as noise grows.

The noisy rows run on the exact fused-PTM route (the ``auto`` resolution
for declarative noise since DESIGN.md §16) — the noise column is the true
expectation of the noisy circuit, no sampling spread — while the noiseless
row stays on the ``ensemble`` route.  The fused-superoperator count shows
gate-and-channel fusion at work on each noisy row.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import QTDABettiEstimator
from repro.experiments.worked_example import appendix_complex
from repro.quantum.noise import NoiseModel
from repro.utils.ascii_plots import render_table

SEED = 17


def _run_noise_sweep(strengths=(0.0, 0.002, 0.01, 0.05)):
    complex_ = appendix_complex()
    rows = []
    estimates = []
    routes = []
    for p in strengths:
        noise = None if p == 0.0 else NoiseModel.depolarizing(p)
        estimator = QTDABettiEstimator(
            precision_qubits=3,
            shots=None,
            backend="statevector",
            delta=6.0,
            use_purification=False,
            noise_model=noise,
            seed=SEED,
        )
        estimate = estimator.estimate(complex_, 1)
        rows.append(
            [
                p,
                f"{estimate.p_zero:.4f}",
                f"{estimate.betti_estimate:.3f}",
                estimate.fused_gates if estimate.fused_gates is not None else "—",
                estimate.betti_rounded,
                estimate.engine_route,
            ]
        )
        estimates.append(estimate.betti_estimate)
        routes.append(estimate.engine_route)
    return rows, estimates, routes


@pytest.mark.benchmark(group="ablation-noise")
def test_bench_ablation_depolarising_noise(benchmark):
    rows, estimates, routes = benchmark.pedantic(_run_noise_sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["depolarising p", "p(0)", "beta_1 estimate", "fused superops", "rounded", "route"],
            rows,
            title="Ablation A3 — per-gate depolarising noise on the QTDA circuit (Appendix A complex)",
        )
    )
    # Noiseless run recovers the Appendix A answer on the ensemble route.
    assert rows[0][-2] == 1
    assert routes[0] == "ensemble"
    # Every noisy row resolves to the exact fused-PTM route.
    assert all(route == "ptm" for route in routes[1:])
    # Noise changes the estimate but small noise keeps it near the true value.
    assert abs(estimates[1] - estimates[0]) < 0.5
