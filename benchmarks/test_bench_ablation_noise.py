"""Benchmark A3 — extension: depolarising noise vs estimation error.

The paper's conclusion asks how the algorithm behaves on noisy (NISQ)
devices.  This benchmark sweeps the per-gate depolarising probability on the
full QTDA circuit (density-matrix simulation) for the Appendix A complex and
reports how p(0) and the Betti estimate drift.  The expected shape: the
estimate degrades smoothly towards the fully-mixed value as noise grows.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import QTDABettiEstimator
from repro.experiments.worked_example import appendix_complex
from repro.quantum.noise import NoiseModel
from repro.utils.ascii_plots import render_table


def _run_noise_sweep(strengths=(0.0, 0.002, 0.01, 0.05)):
    complex_ = appendix_complex()
    rows = []
    estimates = []
    for p in strengths:
        noise = None if p == 0.0 else NoiseModel.depolarizing(p)
        estimator = QTDABettiEstimator(
            precision_qubits=3,
            shots=None,
            backend="statevector",
            delta=6.0,
            use_purification=False,
            noise_model=noise,
        )
        estimate = estimator.estimate(complex_, 1)
        rows.append([p, f"{estimate.p_zero:.4f}", f"{estimate.betti_estimate:.3f}", estimate.betti_rounded])
        estimates.append(estimate.betti_estimate)
    return rows, estimates


@pytest.mark.benchmark(group="ablation-noise")
def test_bench_ablation_depolarising_noise(benchmark):
    rows, estimates = benchmark.pedantic(_run_noise_sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["depolarising p", "p(0)", "beta_1 estimate", "rounded"],
            rows,
            title="Ablation A3 — per-gate depolarising noise on the QTDA circuit (Appendix A complex)",
        )
    )
    # Noiseless run recovers the Appendix A answer.
    assert rows[0][-1] == 1
    # Noise changes the estimate but small noise keeps it near the true value.
    assert abs(estimates[1] - estimates[0]) < 0.5
