"""Benchmark S1 — service load: the QTDA HTTP endpoint under mixed traffic.

Two phases, both over real loopback sockets (DESIGN.md §15):

1. **Mixed load** — ≥1,000 requests spanning every served route (duplicate-
   heavy estimates, rotating high-dimensional cloud estimates, classical
   pipeline/sweep batches, a streaming observe session) against a
   default-configured server.  Gate: **zero errors**; client-side
   p50/p95/p99 latencies, throughput, and per-class breakdowns are recorded,
   and the server's ``/v1/stats`` payload must satisfy
   :func:`repro.serve.validate_stats_dict`.
2. **Coalescing ablation** — the same duplicate-heavy estimate workload
   against two servers with *all caches disabled* (result + spectrum), one
   with request coalescing, one without, so coalescing is the only
   deduplication in play.  Gate: coalescing lifts throughput **≥2×** at full
   scale (must not regress below 1× at smoke scale).

Results land in ``BENCH_service_load.json``.  Scale knobs: the CI
``load-smoke`` job sets ``REPRO_LOAD_SMOKE=1`` for a reduced run;
``REPRO_PAPER_SCALE=1`` has no effect here (network load is not a paper
figure).
"""

from __future__ import annotations

import os

import pytest

from repro.core.api import (
    EstimationRequest,
    ObserveRequest,
    PipelineRequest,
    SweepRequest,
)
from repro.core.pipeline import PipelineConfig
from repro.datasets import HighDimStreamConfig, generate_highdim_cloud_stream
from repro.datasets.point_clouds import circle_cloud
from repro.serve import (
    QTDAServer,
    RequestClass,
    ServeConfig,
    run_load,
    validate_stats_dict,
)

SEED = 11


def smoke_scale_requested() -> bool:
    return os.environ.get("REPRO_LOAD_SMOKE", "0") not in ("", "0", "false", "False")


# -- workload construction ----------------------------------------------------


def _estimate_docs(num_docs: int, num_points: int, epsilon: float) -> list:
    """Seeded (so coalescable) estimate documents over distinct circle clouds."""
    return [
        EstimationRequest(
            points=circle_cloud(num_points, seed=seed),
            epsilon=epsilon,
            k=1,
            max_dimension=2,
            config={"precision_qubits": 6, "shots": 4096, "seed": SEED},
        ).as_dict()
        for seed in range(num_docs)
    ]


def _highdim_docs(num_docs: int) -> list:
    """One estimate document per frame of a rotating high-dimensional stream."""
    frames = generate_highdim_cloud_stream(
        num_docs,
        HighDimStreamConfig(shape="circle", ambient_dim=6, num_points=14, noise_std=0.01),
        seed=SEED,
    )
    return [
        EstimationRequest(
            points=frame,
            epsilon=0.6,
            k=1,
            config={"precision_qubits": 5, "shots": 2048, "seed": SEED},
        ).as_dict()
        for frame in frames
    ]


def _mixed_classes() -> list:
    classical = PipelineConfig(use_quantum=False)
    clouds = [circle_cloud(10, seed=s) for s in (0, 1, 2)]
    return [
        RequestClass(
            name="estimate-duplicates",
            kind="estimate",
            documents=_estimate_docs(4, num_points=12, epsilon=0.8),
            weight=4.0,
        ),
        RequestClass(
            name="estimate-highdim",
            kind="estimate",
            documents=_highdim_docs(6),
            weight=2.0,
        ),
        RequestClass(
            name="pipeline",
            kind="pipeline",
            documents=[
                PipelineRequest(point_clouds=clouds, epsilon=0.8, pipeline=classical).as_dict(),
                PipelineRequest(point_clouds=clouds[:1], epsilon=0.9, pipeline=classical).as_dict(),
            ],
            weight=2.0,
        ),
        RequestClass(
            name="sweep",
            kind="sweep",
            documents=[
                SweepRequest(
                    point_clouds=clouds[:2], epsilons=(0.5, 0.8), pipeline=classical
                ).as_dict()
            ],
            weight=1.0,
        ),
        RequestClass(
            name="observe",
            kind="observe",
            documents=[
                ObserveRequest(
                    samples=tuple(float(x) / 7.0 for x in range(16)),
                    session="bench-load",
                    window_length=64,
                    stride=32,
                    epsilons=(0.5,),
                    pipeline=classical,
                ).as_dict()
            ],
            weight=1.0,
        ),
    ]


def _duplicate_heavy_classes() -> list:
    """~4 distinct expensive estimates, cycled: the coalescer's best case."""
    return [
        RequestClass(
            name="dup-estimate",
            kind="estimate",
            documents=_estimate_docs(4, num_points=32, epsilon=0.9),
            weight=1.0,
        )
    ]


# -- the benchmark ------------------------------------------------------------


@pytest.mark.benchmark(group="service-load")
def test_service_under_mixed_load(bench_json):
    smoke = smoke_scale_requested()
    mixed_total = 150 if smoke else 1000
    ablation_total = 80 if smoke else 320
    workers = 8 if smoke else 16

    # Phase 1: mixed traffic against a default (caches + coalescing) server.
    with QTDAServer(ServeConfig(port=0, max_pending=256)) as server:
        mixed = run_load(
            server.host,
            server.port,
            _mixed_classes(),
            total_requests=mixed_total,
            workers=workers,
            seed=SEED,
        )
    assert mixed.total_requests == mixed_total
    assert mixed.errors == 0, f"mixed load saw errors: {mixed.status_counts}"
    assert mixed.server_stats is not None
    validate_stats_dict(mixed.server_stats)
    assert mixed.server_stats["requests"]["total"] >= mixed_total

    # Phase 2: coalescing on/off with every cache disabled, duplicate-heavy.
    ablation = {}
    for label, coalesce in (("coalesce_on", True), ("coalesce_off", False)):
        config = ServeConfig(
            port=0,
            coalesce=coalesce,
            result_cache_size=0,
            spectrum_cache_size=0,
            max_pending=256,
        )
        with QTDAServer(config) as server:
            ablation[label] = run_load(
                server.host,
                server.port,
                _duplicate_heavy_classes(),
                total_requests=ablation_total,
                workers=workers,
                seed=SEED,
            )
        assert ablation[label].errors == 0, f"{label}: {ablation[label].status_counts}"

    speedup = ablation["coalesce_on"].throughput_rps / ablation["coalesce_off"].throughput_rps
    assert ablation["coalesce_on"].coalesced > 0, "no request was ever coalesced"

    on_stats = ablation["coalesce_on"].server_stats
    coalescer = on_stats["coalescer"] if on_stats else {}
    hit_rate = (
        coalescer["hits"] / (coalescer["hits"] + coalescer["leaders"])
        if coalescer.get("hits") is not None and (coalescer["hits"] + coalescer["leaders"])
        else None
    )

    print("\nService load (S1):")
    print(
        f"  mixed     : {mixed.total_requests} requests, 0 errors, "
        f"{mixed.throughput_rps:.1f} req/s, p50={mixed.latency['p50_ms']:.1f}ms "
        f"p95={mixed.latency['p95_ms']:.1f}ms p99={mixed.latency['p99_ms']:.1f}ms"
    )
    print(
        f"  coalescing: {speedup:.2f}x throughput "
        f"({ablation['coalesce_on'].throughput_rps:.1f} vs "
        f"{ablation['coalesce_off'].throughput_rps:.1f} req/s), "
        f"hit rate {hit_rate:.2f}" if hit_rate is not None else "  coalescing: no stats"
    )

    bench_json(
        "service_load",
        {
            "smoke_scale": smoke,
            "workers": workers,
            "mixed": mixed.as_dict(),
            "coalescing_ablation": {
                "coalesce_on": ablation["coalesce_on"].as_dict(),
                "coalesce_off": ablation["coalesce_off"].as_dict(),
                "speedup": speedup,
                "coalesce_hit_rate": hit_rate,
            },
            "gates": {
                "mixed_error_free": mixed.errors == 0,
                "coalescing_speedup_minimum": 1.0 if smoke else 2.0,
                "coalescing_speedup": speedup,
            },
        },
    )

    # The tentpole perf gate: coalescing must at least double throughput on a
    # duplicate-heavy workload at full scale (and never make things slower).
    minimum = 1.0 if smoke else 2.0
    assert speedup >= minimum, (
        f"coalescing speedup {speedup:.2f}x below the {minimum:.1f}x gate"
    )
