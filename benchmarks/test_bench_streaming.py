"""Benchmark — the incremental sliding-window sweep vs from-scratch rebuilds.

Streaming QTDA used to re-run the whole pipeline for every window: re-embed,
re-compute the full distance matrix, rebuild every flag complex, rebuild and
re-hash every Laplacian.  With stride ≪ window almost all of that work is
shared between consecutive windows; the :class:`~repro.core.batch.
StreamingFeatureEngine` (DESIGN.md §13) carries it over — distance matrices
advance by a cross-distance block, flag complexes by simplex deltas, and
unchanged windows skip straight to the cached operators — while staying
bit-identical to the batch sweep.

The gate: on a steady-state stream (overlapping windows, stride = window/8,
both routes serving from one pre-warmed spectrum cache — the deployment
shape, where eigendecompositions are already amortised) the streaming engine
must beat the from-scratch sweep by at least 5× with bit-identical features.
An aperiodic stream is additionally pinned for bit-identity (its speedup is
reported but not gated: fresh geometry every window means fresh eigensolves
dominate both routes).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batch import BatchFeatureEngine, StreamingFeatureEngine
from repro.core.hamiltonian import SpectrumCache
from repro.core.pipeline import PipelineConfig
from repro.datasets.windows import sliding_windows

WINDOW = 256
STRIDE = 32  # = WINDOW / 8 — the densest overlap the acceptance gate names
NUM_WINDOWS = 48
EPSILONS = (0.6, 1.1, 1.7)
GATE = 5.0


def _pipeline() -> PipelineConfig:
    # Classical route: the gate measures the sweep machinery (distances,
    # complexes, operators, hashing), not estimator sampling noise.
    return PipelineConfig(
        epsilon=1.0,
        use_quantum=False,
        takens_dimension=3,
        takens_delay=2,
        takens_stride=4,
        homology_dimensions=(0, 1),
    )


def _series(num_windows: int = NUM_WINDOWS) -> tuple[np.ndarray, np.ndarray]:
    """(steady-state stream, aperiodic stream), both the same length.

    The steady-state stream tiles one stride-length block, so consecutive
    windows are *bitwise* equal — the serving regime where the signal's
    local geometry has stabilised.  (Exact trigonometric signals are only
    approximately periodic in floating point; tiling makes it exact.)
    """
    length = WINDOW + STRIDE * (num_windows - 1)
    rng = np.random.default_rng(2023)
    block = rng.standard_normal(STRIDE)
    steady = np.tile(block, length // STRIDE + 1)[:length]
    aperiodic = rng.standard_normal(length)
    return steady, aperiodic


def _batch_seconds(series: np.ndarray, cache: SpectrumCache) -> tuple[float, np.ndarray]:
    """From-scratch baseline: embed every window, full sweep over the grid."""
    engine = BatchFeatureEngine(_pipeline(), spectrum_cache=cache)
    start = time.perf_counter()
    windows = sliding_windows(series, WINDOW, STRIDE, copy=False)
    clouds = [engine._takens.transform(window) for window in windows]
    features = engine.sweep(clouds, EPSILONS)
    return time.perf_counter() - start, features


def _streaming_seconds(series: np.ndarray, cache: SpectrumCache) -> tuple[float, np.ndarray, dict]:
    engine = StreamingFeatureEngine(
        _pipeline(), window_length=WINDOW, stride=STRIDE, epsilons=EPSILONS, spectrum_cache=cache
    )
    start = time.perf_counter()
    features = engine.process(series)
    return time.perf_counter() - start, features, dict(engine.stats)


@pytest.mark.benchmark(group="streaming")
def test_bench_streaming_speedup(benchmark, paper_scale, bench_json):
    steady, aperiodic = _series()
    cache = SpectrumCache()

    # Warm the shared spectrum cache once (and sanity-check the stream shape)
    # so both timed routes measure steady-state serving, not first-window
    # eigendecompositions.
    _, warmup_features, _ = _streaming_seconds(steady, cache)
    assert warmup_features.shape == (len(EPSILONS), NUM_WINDOWS, 2)

    batch_seconds, batch_features = _batch_seconds(steady, cache)
    streaming_seconds, streaming_features, stats = _streaming_seconds(steady, cache)
    warm = benchmark.pedantic(
        lambda: _streaming_seconds(steady, cache)[0], rounds=1, iterations=1
    )
    streaming_warm_seconds = float(warm)

    aperiodic_batch_seconds, aperiodic_batch = _batch_seconds(aperiodic, SpectrumCache())
    aperiodic_streaming_seconds, aperiodic_streaming, aperiodic_stats = _streaming_seconds(
        aperiodic, SpectrumCache()
    )

    speedup = batch_seconds / streaming_seconds
    aperiodic_speedup = aperiodic_batch_seconds / aperiodic_streaming_seconds
    per_window_us = streaming_seconds / NUM_WINDOWS * 1e6
    print()
    print(
        f"{NUM_WINDOWS} windows of {WINDOW} @ stride {STRIDE}, {len(EPSILONS)} scales: "
        f"streaming {streaming_seconds:.3f}s (warm {streaming_warm_seconds:.3f}s, "
        f"{per_window_us:.0f}us/window) | batch {batch_seconds:.3f}s | "
        f"speedup {speedup:.1f}x | aperiodic {aperiodic_speedup:.1f}x "
        f"({aperiodic_stats['incremental_advances']} incremental advances)"
    )
    bench_json(
        "streaming",
        {
            "window_length": WINDOW,
            "stride": STRIDE,
            "num_windows": NUM_WINDOWS,
            "num_epsilons": len(EPSILONS),
            "takens": {"dimension": 3, "delay": 2, "stride": 4},
            "streaming_seconds": streaming_seconds,
            "streaming_warm_seconds": streaming_warm_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
            "per_window_microseconds": per_window_us,
            "aperiodic_streaming_seconds": aperiodic_streaming_seconds,
            "aperiodic_batch_seconds": aperiodic_batch_seconds,
            "aperiodic_speedup": aperiodic_speedup,
            "engine_stats": stats,
            "aperiodic_engine_stats": aperiodic_stats,
            "gate": GATE,
        },
    )

    # Bit-identity is the contract, not an approximation: both streams, the
    # whole (num_epsilons, num_windows, num_features) tensor.
    assert np.array_equal(streaming_features, batch_features)
    assert np.array_equal(aperiodic_streaming, aperiodic_batch)
    # The engine actually took the delta path (one full build, then advances).
    assert stats["full_builds"] == 1
    assert stats["incremental_advances"] == NUM_WINDOWS - 1
    assert aperiodic_stats["incremental_advances"] == NUM_WINDOWS - 1
    # The acceptance criterion of the incremental-sweep PR.
    assert speedup >= GATE, (
        f"expected >= {GATE}x over from-scratch rebuilds, measured {speedup:.1f}x"
    )
