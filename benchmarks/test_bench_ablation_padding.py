"""Benchmark A1 — ablation: identity padding (Eq. 7) vs naive zero padding.

The paper's main implementation observation is that zero-padding the
Laplacian inflates the zero-eigenvalue count and hence β̃_k.  This ablation
quantifies that bias on a batch of random complexes: with identity padding
the rounded estimate matches β_k; with zero padding it overshoots by the
number of padding rows unless corrected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import QTDABettiEstimator
from repro.tda.betti import betti_number
from repro.tda.random_complexes import random_simplicial_complex
from repro.utils.ascii_plots import render_table


def _run_padding_ablation(num_complexes: int = 8, num_vertices: int = 8, precision_qubits: int = 6):
    rows = []
    identity_errors = []
    zero_errors = []
    for seed in range(num_complexes):
        complex_ = random_simplicial_complex(num_vertices, seed=seed)
        exact = betti_number(complex_, 1)
        identity_est = QTDABettiEstimator(
            precision_qubits=precision_qubits, shots=None, padding="identity"
        ).estimate(complex_, 1)
        zero_est = QTDABettiEstimator(
            precision_qubits=precision_qubits, shots=None, padding="zero"
        ).estimate(complex_, 1)
        identity_errors.append(abs(identity_est.betti_estimate - exact))
        zero_errors.append(abs(zero_est.betti_estimate - exact))
        rows.append(
            [
                seed,
                exact,
                f"{identity_est.betti_estimate:.2f}",
                f"{zero_est.betti_estimate:.2f}",
                2**identity_est.num_system_qubits - complex_.num_simplices(1),
            ]
        )
    return rows, float(np.mean(identity_errors)), float(np.mean(zero_errors))


@pytest.mark.benchmark(group="ablation-padding")
def test_bench_ablation_identity_vs_zero_padding(benchmark):
    rows, identity_mae, zero_mae = benchmark.pedantic(_run_padding_ablation, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["seed", "beta_1", "identity padding", "zero padding", "padding rows"],
            rows,
            title="Ablation A1 — padding mode vs estimate (infinite shots, 6 precision qubits)",
        )
    )
    print(f"mean |error|: identity = {identity_mae:.3f}, zero = {zero_mae:.3f}")
    # The paper's point: zero padding systematically overestimates.
    assert zero_mae > identity_mae
