"""Benchmark — process/device-sharded ensemble execution vs single-process.

The ensemble route's batch axis is embarrassingly parallel, and the sharded
executor (DESIGN.md §14) splits it across spawn-context CPU processes or
CuPy device contexts while staying bit-identical to the unsharded engine.

The gate: at ``q = 6`` system qubits and ``t = 4`` precision qubits (the
same 48-dimensional workload the circuit-engine benchmark uses), the
process-sharded route must beat the single-process route by at least 2× on
a machine with ≥ 4 cores — with byte-for-byte identical readout.  Machines
with fewer cores still measure and record, but only the core-rich
configuration is gated (CI's bench-smoke job provides it).

Both sides are measured at *steady state* (best of several warm requests):
a service pays pool spawn-up, circuit fusion, and the once-per-shard IR
shipment exactly once across its lifetime, so per-request latency is the
honest comparison.  The IR cache is what makes the sharded side viable at
this scale — warm requests ship a fingerprint and an index range, not the
megabyte of fused gate matrices.

The GPU benchmark is opt-in by hardware: it runs when CuPy sees a CUDA
device and is *visibly skipped* (pytest ``-rs``) with the exact reason when
not, so the device path shows up in every benchmark report either way.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.backends import EstimationProblem
from repro.core.backends.statevector import circuit_backend_result
from repro.core.config import QTDAConfig
from repro.quantum.sharding import device_backend_available, shutdown_shard_pools

PRECISION = 4  # t
DIMENSION = 48  # |S_k|, padded to 2^6 -> q = 6
DELTA = 6.0
GATE = 2.0
GATE_MIN_CORES = 4
CORES = os.cpu_count() or 1
REPEATS = 5  # best-of-N warm requests per side (steady-state latency)


def _workload_laplacian(dim: int = DIMENSION) -> np.ndarray:
    """Same deterministic workload as benchmarks/test_bench_circuit_engine.py."""
    rng = np.random.default_rng(2023)
    basis = rng.standard_normal((dim, dim - 2))
    lap = basis @ basis.T
    return (lap + lap.T) / 2.0


def _route_seconds(problem: EstimationProblem, shards: int, shard_backend: str = "process"):
    config = QTDAConfig(
        precision_qubits=PRECISION,
        shots=None,
        delta=DELTA,
        backend="statevector",
        circuit_engine="ensemble",
        shards=shards,
        shard_backend=shard_backend,
    )
    start = time.perf_counter()
    result = circuit_backend_result(problem, config, "exact", None)
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="sharded")
def test_bench_process_sharded_speedup(benchmark, paper_scale, bench_json):
    laplacian = _workload_laplacian()
    problem = EstimationProblem(laplacian=laplacian)
    shards = min(GATE_MIN_CORES, max(2, CORES))

    # Warm every one-time *service* cost on both sides: the fusion cache
    # (shared convention with the circuit-engine benchmark's warm rerun),
    # the spawn-context worker pool, and the once-per-shard IR shipment into
    # the workers' fingerprint caches (see repro.quantum.sharding).  Two
    # sharded warm-ups so a worker that sat out the first round still gets
    # the plan before measurement starts.
    _route_seconds(problem, shards=1)
    _route_seconds(problem, shards=shards)
    _route_seconds(problem, shards=shards)

    single_seconds = min(_route_seconds(problem, shards=1)[0] for _ in range(REPEATS))
    sharded_seconds = min(_route_seconds(problem, shards=shards)[0] for _ in range(REPEATS))
    _, single = _route_seconds(problem, shards=1)
    _, sharded = _route_seconds(problem, shards=shards)
    warm = benchmark.pedantic(
        lambda: _route_seconds(problem, shards=shards)[0], rounds=1, iterations=1
    )

    speedup = single_seconds / sharded_seconds
    identical = bool(np.array_equal(sharded.distribution, single.distribution))
    gated = CORES >= GATE_MIN_CORES
    print()
    print(
        f"q=6 t={PRECISION} on {CORES} core(s): single {single_seconds:.3f}s | "
        f"{shards}-shard process {sharded_seconds:.3f}s (warm {float(warm):.3f}s) | "
        f"speedup {speedup:.2f}x | bit-identical {identical} | "
        f"gate {'armed' if gated else f'skipped (< {GATE_MIN_CORES} cores)'}"
    )
    bench_json(
        "sharded",
        {
            "system_qubits": 6,
            "precision_qubits": PRECISION,
            "laplacian_dimension": DIMENSION,
            "cores": CORES,
            "shards": shards,
            "shard_backend": "process",
            "repeats": REPEATS,
            "single_process_seconds": single_seconds,
            "sharded_seconds": sharded_seconds,
            "sharded_warm_seconds": float(warm),
            "speedup": speedup,
            "bit_identical": identical,
            "gate": GATE,
            "gate_min_cores": GATE_MIN_CORES,
            "gate_armed": gated,
        },
    )

    # Same science, stronger than the usual 1e-10: the sharded route replays
    # the unsharded reduction byte for byte.
    assert identical, "sharded distribution diverged from the single-process bytes"
    assert sharded.shards == shards
    assert sharded.shard_backend == "process"
    assert sharded.device == "cpu"
    assert (single.shards, single.shard_backend, single.device) == (None, None, None)
    if gated:
        # The acceptance criterion of the sharded-execution PR.
        assert speedup >= GATE, (
            f"expected >= {GATE}x over single-process on {CORES} cores, measured {speedup:.2f}x"
        )
    shutdown_shard_pools()


@pytest.mark.benchmark(group="sharded")
def test_bench_device_sharded_gpu(benchmark, paper_scale, bench_json):
    available, reason = device_backend_available()
    if not available:
        pytest.skip(f"GPU shard benchmark needs CuPy + CUDA: {reason}")

    laplacian = _workload_laplacian()  # pragma: no cover - requires CUDA hardware
    problem = EstimationProblem(laplacian=laplacian)
    _route_seconds(problem, shards=2, shard_backend="device")  # warm context + fusion
    single_seconds, single = _route_seconds(problem, shards=1)
    device_seconds, device = _route_seconds(problem, shards=2, shard_backend="device")
    warm = benchmark.pedantic(
        lambda: _route_seconds(problem, shards=2, shard_backend="device")[0],
        rounds=1,
        iterations=1,
    )
    speedup = single_seconds / device_seconds
    print()
    print(
        f"q=6 t={PRECISION}: single CPU {single_seconds:.3f}s | device-sharded "
        f"{device_seconds:.3f}s (warm {float(warm):.3f}s) | speedup {speedup:.2f}x"
    )
    bench_json(
        "sharded_gpu",
        {
            "system_qubits": 6,
            "precision_qubits": PRECISION,
            "laplacian_dimension": DIMENSION,
            "single_process_seconds": single_seconds,
            "device_sharded_seconds": device_seconds,
            "device_sharded_warm_seconds": float(warm),
            "speedup": speedup,
            "device": device.device,
        },
    )
    # The device route must agree with the CPU reduction; GEMM on the GPU is
    # not bit-identical to the host BLAS, so this is a numerical gate.
    np.testing.assert_allclose(device.distribution, single.distribution, atol=1e-10)
    assert device.shard_backend == "device"
    shutdown_shard_pools()
