"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures (or one of the
ablations listed in DESIGN.md) on a reduced grid, prints the corresponding
rows/series, and times the run with pytest-benchmark.  Set the environment
variable ``REPRO_PAPER_SCALE=1`` to run the paper-sized grids instead (much
slower; see EXPERIMENTS.md).

Speedup-gating benchmarks additionally persist their measurements as
machine-readable ``BENCH_<name>.json`` files at the repository root (via
:func:`write_bench_json`), so the performance trajectory is tracked across
PRs and CI can upload the artefacts.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import pytest

#: Repository root — BENCH_<name>.json files land here.
REPO_ROOT = Path(__file__).resolve().parent.parent


def _commit_sha() -> str:
    """HEAD commit (``-dirty`` when uncommitted changes exist), or ``"unknown"``.

    Stamped here by the harness (not by CI workflow scripts) so every
    BENCH_*.json carries its provenance no matter where it was produced —
    laptop, CI, or a paper-scale run.  The dirty marker matters: numbers
    produced by uncommitted code must not be attributed to the clean SHA.
    """
    def _git(*args: str) -> str:
        return subprocess.run(
            ["git", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()

    try:
        sha = _git("rev-parse", "HEAD")
        if not sha:
            return "unknown"
        # The BENCH_*.json artefacts are themselves tracked and rewritten by
        # every benchmark run; they must not count as dirtiness or a clean
        # checkout would stamp '-dirty' the moment its first benchmark ran.
        if _git("status", "--porcelain", "--", ":!BENCH_*.json"):
            sha += "-dirty"
        return sha
    except Exception:
        return "unknown"


def paper_scale_requested() -> bool:
    """Whether the user asked for the full paper-sized parameter grids."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return paper_scale_requested()


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's measurements as ``BENCH_<name>.json``.

    ``payload`` is benchmark-specific (timings in seconds, speedups, scenario
    sizes); a small provenance envelope (benchmark name, paper-scale flag,
    python version, commit SHA, ISO-8601 UTC timestamp) is added so the files
    are self-describing when collected as CI artefacts or diffed across PRs.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    document = {
        "benchmark": name,
        "paper_scale": paper_scale_requested(),
        "python": platform.python_version(),
        "commit": _commit_sha(),
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_json():
    """Session fixture handing benchmarks the :func:`write_bench_json` writer."""
    return write_bench_json
