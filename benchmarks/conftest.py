"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures (or one of the
ablations listed in DESIGN.md) on a reduced grid, prints the corresponding
rows/series, and times the run with pytest-benchmark.  Set the environment
variable ``REPRO_PAPER_SCALE=1`` to run the paper-sized grids instead (much
slower; see EXPERIMENTS.md).

Speedup-gating benchmarks additionally persist their measurements as
machine-readable ``BENCH_<name>.json`` files at the repository root (via
:func:`write_bench_json`), so the performance trajectory is tracked across
PRs and CI can upload the artefacts.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

#: Repository root — BENCH_<name>.json files land here.
REPO_ROOT = Path(__file__).resolve().parent.parent


def paper_scale_requested() -> bool:
    """Whether the user asked for the full paper-sized parameter grids."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return paper_scale_requested()


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's measurements as ``BENCH_<name>.json``.

    ``payload`` is benchmark-specific (timings in seconds, speedups, scenario
    sizes); a small provenance envelope (benchmark name, paper-scale flag,
    python version) is added so the files are self-describing when collected
    as CI artefacts or diffed across PRs.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    document = {
        "benchmark": name,
        "paper_scale": paper_scale_requested(),
        "python": platform.python_version(),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_json():
    """Session fixture handing benchmarks the :func:`write_bench_json` writer."""
    return write_bench_json
