"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures (or one of the
ablations listed in DESIGN.md) on a reduced grid, prints the corresponding
rows/series, and times the run with pytest-benchmark.  Set the environment
variable ``REPRO_PAPER_SCALE=1`` to run the paper-sized grids instead (much
slower; see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest


def paper_scale_requested() -> bool:
    """Whether the user asked for the full paper-sized parameter grids."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return paper_scale_requested()
