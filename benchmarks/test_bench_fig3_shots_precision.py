"""Benchmark E1 — Fig. 3: absolute error vs shots and precision qubits.

Regenerates the boxplot data of Fig. 3 (a)–(c): for random simplicial
complexes of n vertices, the absolute error |β̃_1 − β_1| of the QPE estimate
as a function of the number of shots and precision qubits.  The reduced grid
keeps the figure's qualitative shape: error decreases with both resources and
its scale grows with n.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.shots_precision import (
    ShotsPrecisionConfig,
    error_trend_summary,
    render_shots_precision_results,
    run_shots_precision_experiment,
)


def _config(paper_scale: bool) -> ShotsPrecisionConfig:
    if paper_scale:
        return ShotsPrecisionConfig.paper_scale()
    return ShotsPrecisionConfig(
        complex_sizes=(5, 10, 15),
        num_complexes=8,
        shots_grid=(10**2, 10**3, 10**4),
        precision_grid=(1, 2, 4, 6),
        seed=1234,
    )


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_error_vs_shots_and_precision(benchmark, paper_scale):
    config = _config(paper_scale)
    result = benchmark.pedantic(run_shots_precision_experiment, args=(config,), rounds=1, iterations=1)
    print()
    print(render_shots_precision_results(result))
    summary = error_trend_summary(result)
    print(f"Trend summary: {summary}")

    # Qualitative checks corresponding to the paper's observations.
    for n in config.complex_sizes:
        low = result.mean_error(n, config.shots_grid[0], config.precision_grid[0])
        high = result.mean_error(n, config.shots_grid[-1], config.precision_grid[-1])
        assert high <= low + 1e-9, f"error should not grow with resources (n={n})"
    smallest = result.mean_error(config.complex_sizes[0], config.shots_grid[0], config.precision_grid[0])
    largest = result.mean_error(config.complex_sizes[-1], config.shots_grid[0], config.precision_grid[0])
    assert largest >= smallest, "error scale should grow with the complex size"


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_single_complex_estimate_cost(benchmark):
    """Micro-benchmark of one exact-backend estimate on an n=10 random complex."""
    from repro.core.estimator import QTDABettiEstimator
    from repro.tda.random_complexes import random_simplicial_complex

    complex_ = random_simplicial_complex(10, seed=3)
    estimator = QTDABettiEstimator(precision_qubits=6, shots=10_000, seed=0)

    result = benchmark(lambda: estimator.estimate(complex_, 1))
    print(f"\nn=10 random complex: beta_1 = {result.exact_betti}, estimate = {result.betti_estimate:.3f}")
    assert result.absolute_error is not None
