"""Benchmark E3 — Fig. 4: training accuracy vs the grouping scale ε.

Regenerates the Fig. 4 curve (mean training accuracy over repeated resampled
fits, using exact Betti features, as a function of ε) on the synthetic
gearbox substitute.  The reproduction target is the shape: accuracy depends
on ε and peaks at an intermediate scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.grouping_scale import (
    GroupingScaleConfig,
    render_grouping_scale_results,
    run_grouping_scale_experiment,
)


def _config(paper_scale: bool) -> GroupingScaleConfig:
    if paper_scale:
        return GroupingScaleConfig.paper_scale()
    return GroupingScaleConfig(
        num_rows=60,
        num_healthy=20,
        num_scales=7,
        repetitions=5,
        window_length=300,
        seed=13,
    )


@pytest.mark.benchmark(group="fig4")
def test_bench_fig4_accuracy_vs_grouping_scale(benchmark, paper_scale):
    config = _config(paper_scale)
    result = benchmark.pedantic(run_grouping_scale_experiment, args=(config,), rounds=1, iterations=1)
    print()
    print(render_grouping_scale_results(result))

    accuracy = result.mean_training_accuracy
    assert np.all((accuracy >= 0) & (accuracy <= 1))
    # The curve is not flat: the choice of ε matters (the figure's message).
    assert accuracy.max() - accuracy.min() > 0.01
    # The best scale is an interior optimum or at least beats the smallest scale.
    assert accuracy.max() >= accuracy[0]
