"""Benchmark E2 — Table 1: gearbox classification accuracy vs precision qubits.

Regenerates the Table 1 rows (training accuracy, validation accuracy, mean
absolute Betti error per precision-qubit setting) on the synthetic gearbox
substitute, plus the reference row using exact Betti numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.gearbox_table1 import (
    GearboxExperimentConfig,
    render_table1,
    run_gearbox_table1,
)


def _config(paper_scale: bool) -> GearboxExperimentConfig:
    if paper_scale:
        return GearboxExperimentConfig()  # 255 rows, precision 1..5, shots 100
    return GearboxExperimentConfig(
        num_rows=80,
        num_healthy=26,
        precision_grid=(1, 2, 3, 4, 5),
        shots=100,
        window_length=400,
        seed=2023,
    )


@pytest.mark.benchmark(group="table1")
def test_bench_table1_accuracy_vs_precision(benchmark, paper_scale):
    config = _config(paper_scale)
    result = benchmark.pedantic(run_gearbox_table1, args=(config,), rounds=1, iterations=1)
    print()
    print(render_table1(result))

    maes = [row.mean_absolute_error for row in result.rows]
    accuracies = [row.validation_accuracy for row in result.rows]
    # Table 1's trend: the Betti-number error decreases with precision qubits...
    assert maes[-1] < maes[0]
    # ...and the classifier clearly beats chance on the Betti features.
    assert max(accuracies) > 0.6
    assert result.reference_validation_accuracy > 0.6
