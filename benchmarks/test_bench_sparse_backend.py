"""Benchmark — the ``sparse-exact`` backend vs the dense ``exact`` path.

Two gates guard the sparse spectral backend (see DESIGN.md §5):

* *exactness at paper scale* — on the worked example and Table 1-style
  four-point windows the Laplacians sit far below the dense-fallback
  threshold, so ``sparse-exact`` must reproduce the ``exact`` backend's
  estimates **bit-identically**;
* *speed at engineering scale* — on a ~1000-simplex Rips complex (annulus,
  ``|S_1| = 1000``) the shift-invert partial-spectrum path must beat the
  dense ``eigvalsh`` path by at least 3×, while still rounding to the same
  Betti estimate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.estimator import QTDABettiEstimator
from repro.datasets.features import feature_rows_to_point_clouds
from repro.datasets.gearbox import generate_processed_gearbox_dataset
from repro.datasets.point_clouds import circle_cloud
from repro.experiments.worked_example import appendix_complex
from repro.tda.laplacian import combinatorial_laplacian
from repro.tda.rips import RipsComplex, rips_complex

PRECISION = 5
DELTA = 6.0


def _estimator(backend: str) -> QTDABettiEstimator:
    # No spectrum cache: both paths must pay their full per-estimate cost.
    return QTDABettiEstimator(precision_qubits=PRECISION, shots=None, delta=DELTA, backend=backend)


def _large_sparse_laplacian(num_edges: int = 1000):
    """Δ_1 of an annulus Rips complex with ``num_edges`` 1-simplices."""
    points = num_edges // 4  # 4 neighbours per side -> |S_1| = 4 * points
    cloud = circle_cloud(points)
    epsilon = 2.0 * np.sin(4.0 * np.pi / points) + 1e-9
    complex_ = rips_complex(cloud, epsilon, max_dimension=2)
    laplacian = combinatorial_laplacian(complex_, 1, sparse_format=True)
    assert laplacian.shape[0] == num_edges
    return laplacian


def _best_of(callable_, repetitions: int = 3) -> tuple:
    best = np.inf
    value = None
    for _ in range(repetitions):
        start = time.perf_counter()
        value = callable_()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_bench_sparse_exact_matches_exact_on_paper_scale_complexes():
    """Bit-identical estimates on the worked example and Table 1 windows."""
    exact, sparse = _estimator("exact"), _estimator("sparse-exact")
    for k in (0, 1):
        a = exact.estimate(appendix_complex(), k)
        b = sparse.estimate(appendix_complex(), k)
        assert b.betti_estimate == a.betti_estimate, f"worked example k={k}"
        assert b.p_zero == a.p_zero

    features, _ = generate_processed_gearbox_dataset(num_rows=12, num_healthy=4, seed=3)
    clouds = feature_rows_to_point_clouds(features)
    for cloud in clouds[:6]:
        complex_ = RipsComplex.from_points(cloud, 1.0, max_dimension=2).complex()
        for k in (0, 1):
            if complex_.num_simplices(k) == 0:
                continue
            laplacian = combinatorial_laplacian(complex_, k, sparse_format=True)
            a = exact.estimate_from_laplacian(laplacian)
            b = sparse.estimate_from_laplacian(laplacian)
            assert b.betti_estimate == a.betti_estimate, f"table1 window k={k}"


@pytest.mark.benchmark(group="sparse-backend")
def test_bench_sparse_exact_speedup_on_large_complex(benchmark, paper_scale, bench_json):
    num_edges = 2000 if paper_scale else 1000
    laplacian = _large_sparse_laplacian(num_edges)
    exact, sparse = _estimator("exact"), _estimator("sparse-exact")

    dense_seconds, dense_estimate = _best_of(lambda: exact.estimate_from_laplacian(laplacian))
    sparse_estimate = benchmark.pedantic(
        sparse.estimate_from_laplacian, args=(laplacian,), rounds=1, iterations=1
    )
    sparse_seconds, sparse_estimate = _best_of(lambda: sparse.estimate_from_laplacian(laplacian))

    speedup = dense_seconds / sparse_seconds
    print()
    print(
        f"dense {dense_seconds * 1000:.1f} ms | sparse {sparse_seconds * 1000:.1f} ms | "
        f"speedup {speedup:.1f}x on a {num_edges}-simplex Laplacian"
    )
    bench_json(
        "sparse_backend",
        {
            "num_edges": num_edges,
            "precision_qubits": PRECISION,
            "dense_seconds": dense_seconds,
            "sparse_seconds": sparse_seconds,
            "speedup": speedup,
            "gate": 3.0,
        },
    )
    # Same science: the surrogate spectrum rounds to the same estimate and
    # stays within a few hundredths of the full-spectrum value.
    assert sparse_estimate.betti_rounded == dense_estimate.betti_rounded
    assert sparse_estimate.betti_estimate == pytest.approx(
        dense_estimate.betti_estimate, abs=0.25
    )
    # The acceptance criterion of the sparse spectral backend.
    assert speedup >= 3.0, f"expected >= 3x over the dense path, measured {speedup:.1f}x"
