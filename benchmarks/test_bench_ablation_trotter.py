"""Benchmark A2 — ablation: Trotter steps vs synthesis error and estimate quality.

Fig. 7 compiles ``U = exp(iH)`` from the Pauli decomposition; the product
formula introduces synthesis error that decreases with the number of Trotter
steps.  This ablation reports both the unitary synthesis error and the effect
on the Betti estimate for the Appendix A Hamiltonian.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import QTDABettiEstimator
from repro.core.hamiltonian import build_hamiltonian
from repro.experiments.worked_example import appendix_complex
from repro.quantum.trotter import trotter_unitary_error
from repro.tda.laplacian import combinatorial_laplacian
from repro.utils.ascii_plots import render_table


def _run_trotter_ablation(steps_grid=(1, 2, 4, 8)):
    complex_ = appendix_complex()
    laplacian = combinatorial_laplacian(complex_, 1)
    hamiltonian = build_hamiltonian(laplacian, delta=6.0)
    pauli_sum = hamiltonian.pauli_decomposition()
    rows = []
    errors = []
    estimates = []
    for steps in steps_grid:
        synthesis_error = trotter_unitary_error(pauli_sum, trotter_steps=steps, order=1)
        estimator = QTDABettiEstimator(
            precision_qubits=3,
            shots=None,
            backend="trotter",
            delta=6.0,
            trotter_steps=steps,
            use_purification=False,
        )
        estimate = estimator.estimate(complex_, 1)
        rows.append([steps, f"{synthesis_error:.4f}", f"{estimate.betti_estimate:.3f}", estimate.betti_rounded])
        errors.append(synthesis_error)
        estimates.append(estimate.betti_estimate)
    return rows, errors, estimates


@pytest.mark.benchmark(group="ablation-trotter")
def test_bench_ablation_trotter_steps(benchmark):
    rows, errors, estimates = benchmark.pedantic(_run_trotter_ablation, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["trotter steps", "||U_trotter - exp(iH)||", "beta_1 estimate", "rounded"],
            rows,
            title="Ablation A2 — Trotter synthesis of exp(iH) (Appendix A Hamiltonian)",
        )
    )
    # Synthesis error decreases monotonically with the number of steps.
    assert all(errors[i] >= errors[i + 1] - 1e-9 for i in range(len(errors) - 1))
    # Even the coarsest synthesis rounds to the correct Betti number here.
    assert all(row[-1] == 1 for row in rows)
