"""Benchmark — the fused-PTM noise route vs the noisy density-matrix route.

The PTM route (DESIGN.md §16) is the *exact* fast path for declarative
noise: every gate and attached channel becomes a real Pauli-transfer
matrix, adjacent PTMs fuse greedily into single superoperators, and one
``4^n`` Pauli vector is evolved instead of a ``2^n x 2^n`` density matrix.
No trajectories, no sampling spread — the answer must match the density
contraction to machine precision, at gate-fusion speed.

The gate: at ``q = 6`` system qubits and ``t = 4`` precision qubits (the
same 48-dimensional workload Laplacian as the other circuit-engine
benchmarks) under per-gate-class depolarising noise, the warm PTM route
must beat the noisy density-matrix route by at least 5× while agreeing
with it to 1e-8 (absolute, per readout probability — an exactness pin,
not a statistical tolerance).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.backends import EstimationProblem
from repro.core.backends.statevector import circuit_backend_result
from repro.core.config import QTDAConfig
from repro.utils.rng import as_rng

PRECISION = 4  # t
DIMENSION = 48  # |S_k|, padded to 2^6 -> q = 6
DELTA = 6.0
NOISE_STRENGTH = 0.002
GATE_STRENGTHS = {"c-U": 0.004, "H": 0.001}
GATE = 5.0
SEED = 2023


def _workload_laplacian(dim: int = DIMENSION) -> np.ndarray:
    """The same deterministic PSD workload as test_bench_circuit_engine.py."""
    rng = np.random.default_rng(2023)
    basis = rng.standard_normal((dim, dim - 2))
    lap = basis @ basis.T
    return (lap + lap.T) / 2.0


def _route_seconds(problem: EstimationProblem, engine: str):
    config = QTDAConfig(
        precision_qubits=PRECISION,
        shots=None,
        delta=DELTA,
        backend="statevector",
        circuit_engine=engine,
        noise_channel="depolarizing",
        noise_strength=NOISE_STRENGTH,
        noise_gate_strengths=GATE_STRENGTHS,
        seed=SEED,
    )
    noise_model = config.resolved_noise_model()
    start = time.perf_counter()
    result = circuit_backend_result(
        problem, config, "exact", noise_model, rng=as_rng(config.seed)
    )
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="ptm")
def test_bench_ptm_route_speedup(benchmark, paper_scale, bench_json):
    laplacian = _workload_laplacian()
    problem = EstimationProblem(laplacian=laplacian)

    # Cold pass populates the program cache; the gate is measured warm
    # (cached fused program, steady-state allocator) because that is how
    # every run after the first executes in practice.
    cold_seconds, ptm = _route_seconds(problem, "ptm")
    density_seconds, density = _route_seconds(problem, "density")

    warm = benchmark.pedantic(
        lambda: _route_seconds(problem, "ptm")[0], rounds=1, iterations=1
    )
    ptm_warm_seconds = float(warm)

    dim = 2**6
    betti_ptm = dim * float(ptm.distribution[0])
    betti_density = dim * float(density.distribution[0])
    max_abs_diff = float(np.max(np.abs(ptm.distribution - density.distribution)))
    speedup = density_seconds / ptm_warm_seconds
    print()
    print(
        f"q=6 t={PRECISION} depolarizing p={NOISE_STRENGTH} "
        f"gate_strengths={GATE_STRENGTHS}: ptm {cold_seconds:.3f}s cold / "
        f"{ptm_warm_seconds:.3f}s warm ({ptm.fused_gates} fused superops) | "
        f"density {density_seconds:.3f}s | speedup {speedup:.1f}x | "
        f"betti {betti_ptm:.6f} vs density {betti_density:.6f} "
        f"(max |Δp| = {max_abs_diff:.2e})"
    )
    bench_json(
        "ptm",
        {
            "system_qubits": 6,
            "precision_qubits": PRECISION,
            "laplacian_dimension": DIMENSION,
            "noise_channel": "depolarizing",
            "noise_strength": NOISE_STRENGTH,
            "noise_gate_strengths": dict(GATE_STRENGTHS),
            "ptm_cold_seconds": cold_seconds,
            "ptm_warm_seconds": ptm_warm_seconds,
            "density_seconds": density_seconds,
            "speedup_vs_density": speedup,
            "fused_superoperators": ptm.fused_gates,
            "betti_ptm": betti_ptm,
            "betti_density": betti_density,
            "max_abs_distribution_diff": max_abs_diff,
            "gate": GATE,
        },
    )

    assert ptm.engine_route == "ptm"
    assert ptm.fused_gates is not None and ptm.fused_gates > 0
    assert ptm.noise_spec is not None
    assert density.engine_route == "density"
    # Exactness pin: the PTM route is the same contraction in a different
    # basis — machine-precision agreement, no statistical tolerance.
    assert max_abs_diff <= 1e-8, (
        f"ptm and density distributions diverge by {max_abs_diff:.2e} (> 1e-8)"
    )
    # The acceptance criterion of the fused-PTM-route PR.
    assert speedup >= GATE, (
        f"expected >= {GATE}x over the noisy density-matrix route, measured {speedup:.1f}x"
    )
