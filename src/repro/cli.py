"""Command-line interface for the experiment drivers.

Installs as the ``repro-experiments`` console script and lets each of the
paper's experiments be regenerated without writing any Python:

.. code-block:: bash

    repro-experiments list-backends               # registered estimator backends
    repro-experiments appendix                    # Appendix A walkthrough
    repro-experiments fig3 --complexes 10         # error vs shots / precision
    repro-experiments table1 --rows 80            # gearbox Table 1 analogue
    repro-experiments fig4 --scales 7             # accuracy vs grouping scale
    repro-experiments timeseries --windows 12     # Section 5 time-series route
    repro-experiments timeseries --window-stride 64 --stream   # incremental streaming sweep
    repro-experiments serve --port 8080           # HTTP/JSON QTDA service (Ctrl-C drains)

Every subcommand prints the same report the corresponding benchmark prints;
``--paper-scale`` switches to the full grids described in EXPERIMENTS.md.
The estimation subcommands accept ``--backend`` (any name from the
:mod:`repro.core.backends` registry) and, for the noisy workload,
``--noise-channel`` / ``--noise-strength`` plus the trajectory-route knobs
``--circuit-engine`` / ``--n-trajectories`` / ``--readout-error``.

The experiment subcommands are executed through the service API
(:mod:`repro.core.api`): each run is an :class:`~repro.core.api.
ExperimentRequest` handed to a :class:`~repro.core.api.QTDAService`, and
``--json`` (on ``fig3``/``table1``/``appendix``/``timeseries``) switches the
output from the human-readable report to the versioned
:class:`~repro.core.api.EstimationResult` envelope — machine-readable JSON
with the experiment payload plus provenance, in the style of the
``BENCH_*.json`` artefacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _add_backend_option(parser, default: str = "exact") -> None:
    # Deliberately not `choices=`: resolving the registry here would import
    # the heavy backend modules on every `--help`, and would reject backends
    # registered after the parser was built.  QTDAConfig validates the name
    # against the live registry and its error lists the available backends.
    parser.add_argument(
        "--backend",
        default=default,
        help="estimator backend name (see 'list-backends' for the registry)",
    )


def _add_noise_options(parser) -> None:
    parser.add_argument(
        "--noise-channel",
        default=None,
        help=(
            "per-gate noise channel for the noisy-density backend "
            "(depolarizing, bit-flip, phase-flip or amplitude-damping)"
        ),
    )
    parser.add_argument(
        "--noise-strength",
        type=float,
        default=0.0,
        help="per-gate error probability of the noise channel",
    )
    parser.add_argument(
        "--circuit-engine",
        choices=("auto", "ensemble", "ptm", "trajectory", "purified", "density"),
        default="auto",
        help=(
            "circuit execution route for the statevector/noisy backends "
            "('auto' picks ensemble when noise-free, the exact ptm route for "
            "declarative noise on small registers, trajectory above)"
        ),
    )
    parser.add_argument(
        "--n-trajectories",
        type=int,
        default=8,
        help="stochastic Kraus-unravelling repetitions on the trajectory route",
    )
    parser.add_argument(
        "--readout-error",
        type=float,
        default=0.0,
        help="per-bit readout flip probability applied to measured marginals",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "split the circuit engine's batch axis across this many shards "
            "(bit-identical to unsharded; throughput only)"
        ),
    )
    parser.add_argument(
        "--shard-backend",
        choices=("serial", "thread", "process", "device"),
        default="process",
        help="where shards run ('device' needs cupy and a visible GPU)",
    )


def _add_batch_options(parser) -> None:
    """Batch-engine knobs shared by the feature-extraction subcommands."""
    parser.add_argument(
        "--batch-backend",
        choices=("serial", "threads", "processes"),
        default="serial",
        help="execution backend of the batched feature engine",
    )
    parser.add_argument("--workers", type=int, default=None, help="worker-pool size for parallel backends")
    parser.add_argument("--chunk-size", type=int, default=None, help="samples per submitted worker task")


def _add_json_option(parser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the versioned EstimationResult envelope as JSON instead of the text report",
    )


def _batch_config(args):
    from repro.core.batch import BatchConfig

    return BatchConfig(
        backend=args.batch_backend,
        max_workers=args.workers,
        chunk_size=args.chunk_size,
    )


def _run_experiment(name: str, params: dict, as_json: bool) -> str:
    """Execute one experiment through the service API.

    Returns the rendered text report (identical to the pre-service output)
    or, with ``as_json``, the full result envelope as indented JSON — plus a
    ``service_cache_stats`` block with the service's cumulative cache
    counters (result-cache and spectrum-cache totals, spectrum hit rate).
    """
    import json

    from repro.core.api import ExperimentRequest, QTDAService

    with QTDAService() as service:
        result = service.run(ExperimentRequest(experiment=name, params=params))
        if as_json:
            document = result.as_dict()
            document["service_cache_stats"] = service.cache_stats()
            return json.dumps(document, indent=2)
    return result.payload["report"]


def _add_fig3(subparsers) -> None:
    parser = subparsers.add_parser("fig3", help="Fig. 3: error vs shots and precision qubits")
    parser.add_argument("--complexes", type=int, default=10, help="random complexes per size")
    parser.add_argument("--sizes", type=int, nargs="+", default=[5, 10], help="complex sizes n")
    parser.add_argument("--shots", type=int, nargs="+", default=[100, 1000, 10000], help="shot grid")
    parser.add_argument("--precision", type=int, nargs="+", default=[1, 2, 3, 4, 5, 6], help="precision-qubit grid")
    parser.add_argument("--seed", type=int, default=1234)
    _add_backend_option(parser)
    _add_json_option(parser)


def _add_table1(subparsers) -> None:
    parser = subparsers.add_parser("table1", help="Table 1: gearbox accuracy vs precision qubits")
    parser.add_argument("--rows", type=int, default=80, help="number of feature rows")
    parser.add_argument("--healthy", type=int, default=26, help="number of healthy rows")
    parser.add_argument("--shots", type=int, default=100)
    parser.add_argument("--precision", type=int, nargs="+", default=[1, 2, 3, 4, 5])
    parser.add_argument("--seed", type=int, default=2023)
    _add_backend_option(parser)
    _add_noise_options(parser)
    _add_batch_options(parser)
    _add_json_option(parser)


def _add_fig4(subparsers) -> None:
    parser = subparsers.add_parser("fig4", help="Fig. 4: training accuracy vs grouping scale")
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--healthy", type=int, default=20)
    parser.add_argument("--scales", type=int, default=7)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--seed", type=int, default=13)
    _add_batch_options(parser)


def _add_appendix(subparsers) -> None:
    parser = subparsers.add_parser("appendix", help="Appendix A worked example")
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--precision", type=int, default=3)
    _add_backend_option(parser, default="statevector")
    _add_noise_options(parser)
    parser.add_argument("--draw", action="store_true", help="include an ASCII drawing of the Fig. 6 circuit")
    parser.add_argument("--seed", type=int, default=1)
    _add_json_option(parser)


def _add_timeseries(subparsers) -> None:
    parser = subparsers.add_parser("timeseries", help="Section 5 raw time-series classification")
    parser.add_argument("--windows", type=int, default=12, help="windows per class")
    parser.add_argument("--window-length", type=int, default=500)
    parser.add_argument("--precision", type=int, default=4)
    parser.add_argument("--shots", type=int, default=100)
    parser.add_argument("--stride", type=int, default=16, help="Takens embedding stride")
    parser.add_argument(
        "--window-stride",
        type=int,
        default=None,
        help=(
            "cut overlapping windows (this many samples between window starts) from one "
            "continuous signal per class instead of the paper's independent windows"
        ),
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "route the overlapping windows through the incremental streaming engine "
            "(delta updates between consecutive windows; requires --window-stride)"
        ),
    )
    parser.add_argument("--classical", action="store_true", help="use exact Betti numbers instead of QPE estimates")
    parser.add_argument(
        "--signal",
        choices=("gearbox", "drift", "adversarial"),
        default="gearbox",
        help=(
            "signal generator: the gearbox rig, the synthetic drift/anomaly "
            "stream, or the drift stream under adversarial corruption "
            "(heavy-tailed impulses + sensor occlusion)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    _add_backend_option(parser)
    _add_noise_options(parser)
    _add_batch_options(parser)
    _add_json_option(parser)


def _add_list_backends(subparsers) -> None:
    subparsers.add_parser(
        "list-backends", help="list the registered estimator backends and their descriptions"
    )


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="run the network QTDA service over HTTP/JSON (DESIGN.md §15)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    parser.add_argument("--port", type=int, default=8080, help="TCP port (0 picks a free port)")
    parser.add_argument(
        "--max-pending", type=int, default=64, help="bound on concurrently admitted requests"
    )
    parser.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        help="per-caller request quota in requests/second (default: no quotas)",
    )
    parser.add_argument(
        "--quota-burst",
        type=float,
        default=None,
        help="per-caller burst capacity (default: max(1, quota rate))",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable in-flight coalescing of identical deterministic requests",
    )
    parser.add_argument("--workers", type=int, default=None, help="service worker-pool size")
    parser.add_argument(
        "--result-cache-size", type=int, default=256, help="service result-cache entries (0 disables)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then drain (default: until Ctrl-C)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the experiments of 'Quantum-Enhanced Topological Data Analysis' (arXiv:2302.09553).",
    )
    parser.add_argument("--paper-scale", action="store_true", help="use the full paper-sized parameter grids (slow)")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_list_backends(subparsers)
    _add_fig3(subparsers)
    _add_table1(subparsers)
    _add_fig4(subparsers)
    _add_appendix(subparsers)
    _add_timeseries(subparsers)
    _add_serve(subparsers)
    return parser


def _run_list_backends(args) -> str:
    from repro.core.backends import available_backends, backend_capabilities, get_backend

    rows = [("name", "formats", "noise", "description")]
    for name in available_backends():
        caps = backend_capabilities(get_backend(name))
        rows.append(
            (
                str(caps["name"]),
                ",".join(caps["formats"]),
                "yes" if caps["supports_noise"] else "no",
                str(caps["description"]),
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(3)]
    lines = ["Registered estimator backends:"]
    for name, formats, noise, description in rows:
        lines.append(
            f"  {name:<{widths[0]}}  {formats:<{widths[1]}}  {noise:<{widths[2]}}  {description}"
        )
    return "\n".join(lines)


def _run_fig3(args) -> str:
    if args.paper_scale:
        params = {"paper_scale": True, "backend": args.backend}
    else:
        params = {
            "complex_sizes": tuple(args.sizes),
            "num_complexes": args.complexes,
            "shots_grid": tuple(args.shots),
            "precision_grid": tuple(args.precision),
            "seed": args.seed,
            "backend": args.backend,
        }
    return _run_experiment("fig3", params, args.json)


def _run_table1(args) -> str:
    params = {
        "batch": _batch_config(args).as_dict(),
        "backend": args.backend,
        "noise_channel": args.noise_channel,
        "noise_strength": args.noise_strength,
        "circuit_engine": args.circuit_engine,
        "n_trajectories": args.n_trajectories,
        "readout_error": args.readout_error,
        "shards": args.shards,
        "shard_backend": args.shard_backend,
    }
    if args.paper_scale:
        params["paper_scale"] = True
    else:
        params.update(
            num_rows=args.rows,
            num_healthy=args.healthy,
            precision_grid=tuple(args.precision),
            shots=args.shots,
            seed=args.seed,
        )
    return _run_experiment("table1", params, args.json)


def _run_fig4(args) -> str:
    params = {"batch": _batch_config(args).as_dict()}
    if args.paper_scale:
        params["paper_scale"] = True
    else:
        params.update(
            num_rows=args.rows,
            num_healthy=args.healthy,
            num_scales=args.scales,
            repetitions=args.repetitions,
            seed=args.seed,
        )
    return _run_experiment("fig4", params, as_json=False)


def _run_appendix(args) -> str:
    params = {
        "shots": args.shots,
        "precision_qubits": args.precision,
        "backend": args.backend,
        "seed": args.seed,
        "include_drawing": args.draw,
        "noise_channel": args.noise_channel,
        "noise_strength": args.noise_strength,
        "circuit_engine": args.circuit_engine,
        "n_trajectories": args.n_trajectories,
        "readout_error": args.readout_error,
        "shards": args.shards,
        "shard_backend": args.shard_backend,
    }
    return _run_experiment("appendix", params, args.json)


def _run_timeseries(args) -> str:
    params = {
        "num_samples_per_class": args.windows,
        "window_length": args.window_length,
        "precision_qubits": args.precision,
        "shots": args.shots,
        "takens_stride": args.stride,
        "window_stride": args.window_stride,
        "streaming": args.stream,
        "seed": args.seed,
        "use_quantum": not args.classical,
        "batch": _batch_config(args).as_dict(),
        "backend": args.backend,
        "noise_channel": args.noise_channel,
        "noise_strength": args.noise_strength,
        "circuit_engine": args.circuit_engine,
        "n_trajectories": args.n_trajectories,
        "readout_error": args.readout_error,
        "shards": args.shards,
        "shard_backend": args.shard_backend,
        "signal": args.signal,
    }
    return _run_experiment("timeseries", params, args.json)


def _run_serve(args) -> str:
    """Serve until Ctrl-C (or ``--duration``), then drain and report stats.

    The final ``/v1/stats`` snapshot is returned as the report, so a serve
    run always ends with the same machine-readable summary the live
    endpoint exposes.
    """
    import json
    import time

    from repro.serve import QTDAServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        coalesce=not args.no_coalesce,
        max_workers=args.workers,
        result_cache_size=args.result_cache_size,
    )
    server = QTDAServer(config)
    server.start()
    print(
        f"serving QTDA at {server.base_url} "
        "(POST /v1/{estimate,pipeline,sweep,observe}; GET /v1/health, /v1/stats) "
        "— Ctrl-C drains and exits",
        flush=True,
    )
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:  # pragma: no cover - interactive loop
                time.sleep(3600)
    except KeyboardInterrupt:
        print("interrupt received — draining in-flight requests", flush=True)
    finally:
        stats = server.stats()
        server.stop()
    return json.dumps(stats, indent=2)


_COMMANDS = {
    "list-backends": _run_list_backends,
    "fig3": _run_fig3,
    "table1": _run_table1,
    "fig4": _run_fig4,
    "appendix": _run_appendix,
    "timeseries": _run_timeseries,
    "serve": _run_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    report = _COMMANDS[args.command](args)
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
