"""Classification and regression metrics used in the Section 5 experiments."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _validate_pair(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    true = np.asarray(y_true).reshape(-1)
    pred = np.asarray(y_pred).reshape(-1)
    if true.shape != pred.shape:
        raise ValueError(f"y_true and y_pred have different lengths: {true.shape} vs {pred.shape}")
    if true.size == 0:
        raise ValueError("metrics are undefined for empty inputs")
    return true, pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    true, pred = _validate_pair(y_true, y_pred)
    return float(np.mean(true == pred))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error (Table 1 reports this between β̃ and β)."""
    true, pred = _validate_pair(y_true, y_pred)
    return float(np.mean(np.abs(true.astype(float) - pred.astype(float))))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error."""
    true, pred = _validate_pair(y_true, y_pred)
    return float(np.mean((true.astype(float) - pred.astype(float)) ** 2))


def confusion_matrix(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    """Confusion matrix and the class labels indexing its rows/columns.

    Rows are true classes, columns predicted classes.
    """
    true, pred = _validate_pair(y_true, y_pred)
    classes = np.unique(np.concatenate([true, pred]))
    index = {c: i for i, c in enumerate(classes)}
    matrix = np.zeros((classes.size, classes.size), dtype=int)
    for t, p in zip(true, pred):
        matrix[index[t], index[p]] += 1
    return matrix, classes


def _binary_counts(y_true, y_pred, positive_label) -> Dict[str, int]:
    true, pred = _validate_pair(y_true, y_pred)
    tp = int(np.sum((true == positive_label) & (pred == positive_label)))
    fp = int(np.sum((true != positive_label) & (pred == positive_label)))
    fn = int(np.sum((true == positive_label) & (pred != positive_label)))
    tn = int(np.sum((true != positive_label) & (pred != positive_label)))
    return {"tp": tp, "fp": fp, "fn": fn, "tn": tn}


def precision_score(y_true, y_pred, positive_label=1) -> float:
    """``tp / (tp + fp)``; 0 when nothing was predicted positive."""
    c = _binary_counts(y_true, y_pred, positive_label)
    denom = c["tp"] + c["fp"]
    return float(c["tp"] / denom) if denom else 0.0


def recall_score(y_true, y_pred, positive_label=1) -> float:
    """``tp / (tp + fn)``; 0 when there are no positives."""
    c = _binary_counts(y_true, y_pred, positive_label)
    denom = c["tp"] + c["fn"]
    return float(c["tp"] / denom) if denom else 0.0


def f1_score(y_true, y_pred, positive_label=1) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, positive_label)
    recall = recall_score(y_true, y_pred, positive_label)
    if precision + recall == 0:
        return 0.0
    return float(2 * precision * recall / (precision + recall))
