"""k-nearest-neighbour classification.

A second, assumption-free classifier used by the examples to sanity-check the
logistic-regression results on the Betti-number features.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial.distance import cdist

from repro.utils.validation import check_positive_integer


class KNeighborsClassifier:
    """Majority-vote k-NN classifier with Euclidean distances."""

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = check_positive_integer(n_neighbors, "n_neighbors")
        self._train_x: Optional[np.ndarray] = None
        self._train_y: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNeighborsClassifier":
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        y = np.asarray(labels).reshape(-1)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        if x.shape[0] < self.n_neighbors:
            raise ValueError("n_neighbors cannot exceed the number of training samples")
        self._train_x = x
        self._train_y = y
        self.classes_ = np.unique(y)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Neighbourhood class frequencies, one column per class."""
        if self._train_x is None:
            raise RuntimeError("KNeighborsClassifier must be fitted before inference")
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x[:, None]
        distances = cdist(x, self._train_x)
        neighbor_idx = np.argpartition(distances, self.n_neighbors - 1, axis=1)[:, : self.n_neighbors]
        neighbor_labels = self._train_y[neighbor_idx]
        probs = np.zeros((x.shape[0], self.classes_.size))
        for col, cls in enumerate(self.classes_):
            probs[:, col] = (neighbor_labels == cls).mean(axis=1)
        return probs

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Majority class among the ``n_neighbors`` nearest training points."""
        probs = self.predict_proba(features)
        return self.classes_[np.argmax(probs, axis=1)]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on ``(features, labels)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(labels).reshape(-1), self.predict(features))
