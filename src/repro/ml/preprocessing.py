"""Feature scaling."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Standardise features to zero mean and unit variance (column-wise).

    Constant columns are left unscaled (divided by 1) to avoid division by
    zero — relevant for Betti-number features, where ``β̃_0`` can be constant
    across a small dataset.
    """

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        arr = self._as_2d(features)
        self.mean_ = arr.mean(axis=0)
        std = arr.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        arr = self._as_2d(features)
        if arr.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"Expected {self.mean_.shape[0]} features, got {arr.shape[1]}"
            )
        return (arr - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        return self._as_2d(features) * self.scale_ + self.mean_

    @staticmethod
    def _as_2d(features: np.ndarray) -> np.ndarray:
        arr = np.asarray(features, dtype=float)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise ValueError("features must be a 1-D or 2-D array")
        return arr


class MinMaxScaler:
    """Scale each feature into ``[feature_min, feature_max]`` (default [0, 1])."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = float(feature_range[0]), float(feature_range[1])
        if hi <= lo:
            raise ValueError("feature_range must be increasing")
        self.feature_range = (lo, hi)
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        arr = StandardScaler._as_2d(features)
        self.data_min_ = arr.min(axis=0)
        self.data_max_ = arr.max(axis=0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.data_min_ is None or self.data_max_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        arr = StandardScaler._as_2d(features)
        span = self.data_max_ - self.data_min_
        span = np.where(span > 0, span, 1.0)
        lo, hi = self.feature_range
        return (arr - self.data_min_) / span * (hi - lo) + lo

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
