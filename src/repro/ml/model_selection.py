"""Dataset splitting utilities."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_integer


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_size: float = 0.2,
    seed: SeedLike = None,
    stratify: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(features, labels)`` into train and test sets.

    Parameters
    ----------
    features, labels:
        Arrays with matching first dimension.
    test_size:
        Fraction of samples assigned to the test set (0 < test_size < 1).
        The paper's Table 1 uses a 20 %/80 % *train/validation* split, i.e.
        ``test_size=0.8``.
    seed:
        RNG seed for the shuffle.
    stratify:
        Preserve the class proportions of ``labels`` in both splits (each
        class is shuffled and split separately).

    Returns
    -------
    (train_features, test_features, train_labels, test_labels)
    """
    x = np.asarray(features)
    y = np.asarray(labels)
    if x.shape[0] != y.shape[0]:
        raise ValueError("features and labels must have the same number of rows")
    if not 0.0 < float(test_size) < 1.0:
        raise ValueError("test_size must lie strictly between 0 and 1")
    rng = as_rng(seed)
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to split")

    if stratify:
        test_idx: list[int] = []
        train_idx: list[int] = []
        for cls in np.unique(y):
            cls_idx = np.flatnonzero(y == cls)
            rng.shuffle(cls_idx)
            n_test = int(round(len(cls_idx) * test_size))
            n_test = min(max(n_test, 1 if len(cls_idx) > 1 else 0), len(cls_idx) - 1) if len(cls_idx) > 1 else 0
            test_idx.extend(cls_idx[:n_test].tolist())
            train_idx.extend(cls_idx[n_test:].tolist())
        train_idx = np.array(sorted(train_idx))
        test_idx = np.array(sorted(test_idx))
    else:
        perm = rng.permutation(n)
        n_test = int(round(n * test_size))
        n_test = min(max(n_test, 1), n - 1)
        test_idx = np.sort(perm[:n_test])
        train_idx = np.sort(perm[n_test:])
    return x[train_idx], x[test_idx], y[train_idx], y[test_idx]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: SeedLike = None):
        self.n_splits = check_positive_integer(n_splits, "n_splits")
        if self.n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.shuffle = bool(shuffle)
        self.seed = seed

    def split(self, features: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        n = np.asarray(features).shape[0]
        if n < self.n_splits:
            raise ValueError("Cannot have more folds than samples")
        indices = np.arange(n)
        if self.shuffle:
            as_rng(self.seed).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(test)
            start += size


def cross_val_accuracy(model_factory, features: np.ndarray, labels: np.ndarray, n_splits: int = 5, seed: SeedLike = None) -> float:
    """Mean K-fold accuracy of a classifier built by ``model_factory()``."""
    from repro.ml.metrics import accuracy_score

    x = np.asarray(features, dtype=float)
    y = np.asarray(labels)
    scores = []
    for train_idx, test_idx in KFold(n_splits=n_splits, seed=seed).split(x):
        model = model_factory()
        model.fit(x[train_idx], y[train_idx])
        scores.append(accuracy_score(y[test_idx], model.predict(x[test_idx])))
    return float(np.mean(scores))
