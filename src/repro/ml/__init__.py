"""Minimal classical-ML substrate (the scikit-learn substitute).

Section 5 of the paper feeds the estimated Betti numbers into scikit-learn
classifiers.  This subpackage provides the pieces that pipeline needs —
nothing more:

* :class:`~repro.ml.preprocessing.StandardScaler` /
  :class:`~repro.ml.preprocessing.MinMaxScaler`;
* :func:`~repro.ml.model_selection.train_test_split` and
  :class:`~repro.ml.model_selection.KFold`;
* :class:`~repro.ml.linear_model.LogisticRegression` (Newton/IRLS with L2
  regularisation), the classifier used for Table 1;
* :class:`~repro.ml.neighbors.KNeighborsClassifier` as a second, assumption
  free baseline;
* metrics: accuracy, mean absolute error, confusion matrix,
  precision/recall/F1.
"""

from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.model_selection import KFold, train_test_split
from repro.ml.linear_model import LogisticRegression
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    mean_absolute_error,
    mean_squared_error,
    precision_score,
    recall_score,
)

__all__ = [
    "MinMaxScaler",
    "StandardScaler",
    "KFold",
    "train_test_split",
    "LogisticRegression",
    "KNeighborsClassifier",
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "mean_absolute_error",
    "mean_squared_error",
    "precision_score",
    "recall_score",
]
