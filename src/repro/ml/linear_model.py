"""Logistic regression (the classifier of the paper's Table 1).

Binary logistic regression with L2 regularisation, fitted by damped Newton
iterations (iteratively reweighted least squares).  On the tiny,
two-dimensional Betti-feature datasets of Section 5 this converges in a
handful of iterations to the same decision boundary scikit-learn's solvers
find.  Multi-class problems are handled one-vs-rest.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_positive_integer


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticRegression:
    """L2-regularised logistic regression trained with damped Newton steps.

    Parameters
    ----------
    regularization:
        Inverse-variance style penalty strength ``λ`` added to the Hessian
        diagonal (the intercept is not penalised).  ``λ = 1/C`` in
        scikit-learn's parametrisation.
    max_iter:
        Maximum Newton iterations per binary problem.
    tol:
        Convergence threshold on the max absolute coefficient update.
    fit_intercept:
        Whether to learn a bias term.
    """

    def __init__(
        self,
        regularization: float = 1e-4,
        max_iter: int = 100,
        tol: float = 1e-8,
        fit_intercept: bool = True,
    ):
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.regularization = float(regularization)
        self.max_iter = check_positive_integer(max_iter, "max_iter")
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self.n_iter_: int = 0

    # -- fitting -----------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit the model; labels may be any hashable values (two or more classes)."""
        x = self._as_2d(features)
        y = np.asarray(labels).reshape(-1)
        if x.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("Need at least two classes to fit a classifier")
        n_features = x.shape[1]
        if self.classes_.size == 2:
            weights = self._fit_binary(x, (y == self.classes_[1]).astype(float))
            self.coef_ = weights[None, : n_features]
            self.intercept_ = np.array([weights[n_features]]) if self.fit_intercept else np.zeros(1)
        else:
            coefs = []
            intercepts = []
            for cls in self.classes_:
                weights = self._fit_binary(x, (y == cls).astype(float))
                coefs.append(weights[:n_features])
                intercepts.append(weights[n_features] if self.fit_intercept else 0.0)
            self.coef_ = np.vstack(coefs)
            self.intercept_ = np.asarray(intercepts)
        return self

    def _fit_binary(self, x: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Newton/IRLS for a single binary problem; returns [coef..., intercept]."""
        design = np.hstack([x, np.ones((x.shape[0], 1))]) if self.fit_intercept else x
        n_params = design.shape[1]
        weights = np.zeros(n_params)
        penalty = np.full(n_params, self.regularization)
        if self.fit_intercept:
            penalty[-1] = 0.0
        self.n_iter_ = 0
        for iteration in range(self.max_iter):
            self.n_iter_ = iteration + 1
            logits = design @ weights
            probs = _sigmoid(logits)
            gradient = design.T @ (probs - target) + penalty * weights
            curvature = probs * (1.0 - probs)
            hessian = (design * curvature[:, None]).T @ design + np.diag(penalty + 1e-12)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            # Damp overly aggressive steps (perfectly separable data pushes
            # coefficients towards infinity; the cap keeps them finite).
            step_norm = float(np.max(np.abs(step)))
            if step_norm > 10.0:
                step *= 10.0 / step_norm
            weights = weights - step
            if step_norm < self.tol:
                break
        return weights

    # -- inference ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Linear scores before the sigmoid; shape (n,) binary, (n, n_classes) otherwise."""
        self._check_fitted()
        x = self._as_2d(features)
        scores = x @ self.coef_.T + self.intercept_
        return scores[:, 0] if self.classes_.size == 2 else scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-membership probabilities, one column per class."""
        self._check_fitted()
        scores = self.decision_function(features)
        if self.classes_.size == 2:
            p1 = _sigmoid(np.asarray(scores))
            return np.column_stack([1.0 - p1, p1])
        raw = _sigmoid(scores)
        return raw / raw.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        probs = self.predict_proba(features)
        return self.classes_[np.argmax(probs, axis=1)]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on ``(features, labels)``."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(np.asarray(labels).reshape(-1), self.predict(features))

    # -- helpers -------------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.coef_ is None or self.classes_ is None:
            raise RuntimeError("LogisticRegression must be fitted before inference")

    @staticmethod
    def _as_2d(features: np.ndarray) -> np.ndarray:
        arr = np.asarray(features, dtype=float)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise ValueError("features must be 1-D or 2-D")
        return arr
