"""Random-number-generator helpers.

All stochastic components of the library (shot sampling, random simplicial
complexes, synthetic datasets, noise channels) accept a ``seed`` argument that
may be ``None``, an integer, or an already constructed
:class:`numpy.random.Generator`.  Funnelling everything through :func:`as_rng`
keeps experiments reproducible and avoids the global NumPy random state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"Cannot interpret {seed!r} as a random seed")


def spawn_rngs(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Useful when an experiment fans out over many independent trials (e.g. the
    100 random simplicial complexes of Fig. 3) and each trial must be
    reproducible in isolation.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: SeedLike, *salt: int) -> Optional[int]:
    """Derive a deterministic integer sub-seed from ``seed`` and ``salt``.

    Returns ``None`` when ``seed`` is ``None`` so that "unseeded" stays
    unseeded throughout a pipeline.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**31 - 1))
    base = int(seed) if not isinstance(seed, np.random.SeedSequence) else int(seed.entropy or 0)
    mixed = np.random.SeedSequence([base, *salt]).generate_state(1)[0]
    return int(mixed)
