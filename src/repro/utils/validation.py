"""Light-weight argument validation helpers.

They raise early, with messages that name the offending argument, so that
errors surface at the public API boundary instead of deep inside a simulator
loop.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def check_integer(value: Any, name: str, minimum: int | None = None, maximum: int | None = None) -> int:
    """Validate that ``value`` is an integer within ``[minimum, maximum]``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return value


def check_positive_integer(value: Any, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    return check_integer(value, name, minimum=1)


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a float in ``[0, 1]``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if not (0.0 <= value <= 1.0) or not np.isfinite(value):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_square_matrix(matrix: Any, name: str) -> np.ndarray:
    """Validate that ``matrix`` is a 2-D square array and return it as ndarray."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {arr.shape}")
    return arr


def check_symmetric(matrix: Any, name: str, atol: float = 1e-10) -> np.ndarray:
    """Validate that ``matrix`` is (numerically) symmetric/Hermitian."""
    arr = check_square_matrix(matrix, name)
    if not np.allclose(arr, arr.conj().T, atol=atol):
        raise ValueError(f"{name} must be symmetric/Hermitian to tolerance {atol}")
    return arr


def check_power_of_two(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer power of two."""
    value = check_positive_integer(value, name)
    if value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value
