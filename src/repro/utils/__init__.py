"""Shared utilities: RNG handling, validation helpers and ASCII plotting.

These helpers are intentionally tiny and dependency-free so they can be used
from every layer of the package (substrates, core algorithm, experiments)
without introducing import cycles.
"""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_integer,
    check_positive_integer,
    check_probability,
    check_square_matrix,
    check_symmetric,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_integer",
    "check_positive_integer",
    "check_probability",
    "check_square_matrix",
    "check_symmetric",
]
