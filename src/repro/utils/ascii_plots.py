"""Minimal ASCII plotting used by the experiment drivers and benchmarks.

The paper reports its evaluation as boxplot figures (Fig. 3), a line plot
(Fig. 4) and a table (Table 1).  Matplotlib is not available in this offline
environment, so the experiment drivers render text approximations: a five
number summary per boxplot group and a character-cell line plot.  These are
deliberately simple — they exist so the benchmark output can be inspected by
eye and diffed across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary of a sample, mirroring one box in Fig. 3."""

    label: str
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, label: str, samples: Sequence[float]) -> "BoxplotSummary":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot summarise an empty sample")
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        return cls(
            label=label,
            minimum=float(arr.min()),
            q1=float(q1),
            median=float(med),
            q3=float(q3),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            count=int(arr.size),
        )

    def row(self) -> str:
        return (
            f"{self.label:>24s}  min={self.minimum:8.3f}  q1={self.q1:8.3f}  "
            f"med={self.median:8.3f}  q3={self.q3:8.3f}  max={self.maximum:8.3f}  "
            f"mean={self.mean:8.3f}  n={self.count}"
        )


def render_boxplot_table(groups: Mapping[str, Sequence[float]], title: str = "") -> str:
    """Render a mapping of group label -> samples as a text boxplot table."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, samples in groups.items():
        lines.append(BoxplotSummary.from_samples(str(label), samples).row())
    return "\n".join(lines)


def render_line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a crude character-cell line plot (used for the Fig. 4 analogue)."""
    xs = np.asarray(list(xs), dtype=float)
    ys = np.asarray(list(ys), dtype=float)
    if xs.size != ys.size or xs.size == 0:
        raise ValueError("xs and ys must be non-empty and of equal length")
    if xs.size == 1:
        return f"{y_label}={ys[0]:.4f} at {x_label}={xs[0]:.4f}"
    grid = [[" "] * width for _ in range(height)]
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(ys.min()), float(ys.max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    for x, y in zip(xs, ys):
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = ["".join(row) for row in grid]
    header = f"{y_label}: [{y_min:.4f}, {y_max:.4f}]   {x_label}: [{x_min:.4f}, {x_max:.4f}]"
    return "\n".join([header] + lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` as a fixed-width text table (used for Table 1)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = []
    if title:
        lines.append(title)
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep.join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
