"""repro.serve — network-deployable QTDA service (DESIGN.md §15).

Layers, outermost first:

* :mod:`repro.serve.server` — stdlib HTTP/JSON adapter
  (:class:`QTDAServer`, :class:`ServeConfig`) exposing
  ``POST /v1/{estimate,pipeline,sweep,observe}`` plus ``GET /v1/health``
  and ``GET /v1/stats`` over the wire schema of :mod:`repro.core.api`.
* :mod:`repro.serve.quotas` — admission control
  (:class:`AdmissionController`, per-caller :class:`TokenBucket` quotas,
  429/503 backpressure, graceful drain).
* :mod:`repro.serve.coalescer` — in-flight deduplication of identical
  deterministic requests plus geometry-fingerprint grouping
  (:class:`RequestCoalescer`).
* :mod:`repro.serve.metrics` — counters/gauges/latency histograms
  (:class:`MetricsRegistry`) surfaced on ``/v1/stats``.
* :mod:`repro.serve.loadgen` — keep-alive :class:`ServiceClient` and the
  :func:`run_load` mixed-workload harness behind
  ``benchmarks/test_bench_service_load.py``.
"""

from repro.serve.coalescer import RequestCoalescer
from repro.serve.loadgen import (
    LoadReport,
    RequestClass,
    ServiceClient,
    ServiceError,
    run_load,
)
from repro.serve.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from repro.serve.quotas import AdmissionController, AdmissionRejected, TokenBucket
from repro.serve.server import (
    SERVED_KINDS,
    QTDAServer,
    ServeConfig,
    error_envelope,
    validate_stats_dict,
)

__all__ = [
    "SERVED_KINDS",
    "AdmissionController",
    "AdmissionRejected",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "LoadReport",
    "MetricsRegistry",
    "QTDAServer",
    "RequestClass",
    "RequestCoalescer",
    "ServeConfig",
    "ServiceClient",
    "ServiceError",
    "TokenBucket",
    "error_envelope",
    "run_load",
    "validate_stats_dict",
]
