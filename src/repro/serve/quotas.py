"""Admission control — bounded concurrency and per-caller token buckets.

The serving layer admits a request only when (a) the caller's token bucket
has a token and (b) the server-wide in-flight count is below ``max_pending``.
Both checks happen *before* any work is queued, so a rejected request costs
one dict lookup — quota exhaustion must never enqueue (tested in
``tests/serve/test_quotas.py``).  Rejections carry a ``retry_after_s`` hint
that the HTTP adapter surfaces as a ``Retry-After`` header with status 429.

Shutdown is graceful: :meth:`AdmissionController.begin_drain` flips the
controller into a draining state (new requests are rejected with
``reason="draining"``) and :meth:`AdmissionController.drain` waits for the
in-flight count to reach zero, so the server stops accepting before the
service tears down its caches and shard pools.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

__all__ = ["AdmissionRejected", "AdmissionController", "TokenBucket"]


class AdmissionRejected(Exception):
    """Raised when a request is refused admission.

    ``reason`` is one of ``"quota"`` (the caller's token bucket is empty),
    ``"capacity"`` (the server-wide in-flight bound is reached) or
    ``"draining"`` (shutdown in progress); ``retry_after_s`` is the hint the
    HTTP layer forwards as ``Retry-After``.
    """

    def __init__(self, reason: str, retry_after_s: float, message: str):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = float(retry_after_s)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, burst capacity ``burst``.

    ``try_acquire`` either takes a token and returns ``0.0`` or leaves state
    untouched and returns the seconds until one will be available.  The clock
    is injectable so tests control time exactly.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock", "_lock")

    def __init__(self, rate: float, burst: float, clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self) -> float:
        """Take one token (returns 0.0) or return seconds until available."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionController:
    """Bounded in-flight admission with per-caller token-bucket quotas.

    Parameters
    ----------
    max_pending:
        Server-wide bound on concurrently admitted (in-flight) requests.
    quota_rate, quota_burst:
        Per-caller token-bucket parameters; ``quota_rate=None`` disables
        quotas entirely (capacity and drain checks still apply).
    max_callers:
        Bound on the caller→bucket map; the least-recently-seen caller is
        evicted first (an evicted caller simply starts a fresh, full bucket).
    """

    def __init__(
        self,
        max_pending: int = 64,
        quota_rate: Optional[float] = None,
        quota_burst: Optional[float] = None,
        max_callers: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be at least 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self.quota_rate = None if quota_rate is None else float(quota_rate)
        self.quota_burst = float(quota_burst) if quota_burst is not None else (
            None if self.quota_rate is None else max(1.0, self.quota_rate)
        )
        self.max_callers = int(max_callers)
        self._clock = clock
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_flight = 0
        self._draining = False
        self._admitted = 0
        self._rejected: Dict[str, int] = {"quota": 0, "capacity": 0, "draining": 0}

    # -- admission -------------------------------------------------------------
    def _bucket_for(self, caller: str) -> Optional[TokenBucket]:
        if self.quota_rate is None:
            return None
        bucket = self._buckets.pop(caller, None)
        if bucket is None:
            bucket = TokenBucket(self.quota_rate, self.quota_burst, clock=self._clock)
        # Re-insert at the end: plain dicts preserve insertion order, so the
        # first key is always the least recently *seen* caller.
        self._buckets[caller] = bucket
        while len(self._buckets) > self.max_callers:
            self._buckets.pop(next(iter(self._buckets)))
        return bucket

    def admit(self, caller: str) -> None:
        """Admit one request for ``caller`` or raise :class:`AdmissionRejected`.

        On success the in-flight count is incremented; the caller **must**
        pair every successful ``admit`` with exactly one :meth:`release`
        (use ``try/finally``).
        """
        with self._lock:
            if self._draining:
                self._rejected["draining"] += 1
                raise AdmissionRejected(
                    "draining", 1.0, "server is draining; retry against another replica"
                )
            bucket = self._bucket_for(caller)
            if bucket is not None:
                retry_after = bucket.try_acquire()
                if retry_after > 0.0:
                    self._rejected["quota"] += 1
                    raise AdmissionRejected(
                        "quota",
                        retry_after,
                        f"caller {caller!r} exceeded its request quota "
                        f"({self.quota_rate:g}/s, burst {self.quota_burst:g})",
                    )
            if self._in_flight >= self.max_pending:
                self._rejected["capacity"] += 1
                raise AdmissionRejected(
                    "capacity",
                    0.1,
                    f"server is at max_pending={self.max_pending} in-flight requests",
                )
            self._in_flight += 1
            self._admitted += 1

    def release(self) -> None:
        """Mark one admitted request as finished."""
        with self._lock:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching admit()")
            self._in_flight -= 1
            if self._in_flight == 0:
                self._drained.notify_all()

    # -- lifecycle -------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting new requests (idempotent)."""
        with self._lock:
            self._draining = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Begin draining and wait for in-flight work to finish.

        Returns ``True`` when the controller emptied within ``timeout``
        (``None`` waits forever).
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            self._draining = True
            while self._in_flight > 0:
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True

    @property
    def depth(self) -> int:
        """Currently admitted (in-flight) requests."""
        with self._lock:
            return self._in_flight

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- observability ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "depth": self._in_flight,
                "max_pending": self.max_pending,
                "admitted": self._admitted,
                "rejected_quota": self._rejected["quota"],
                "rejected_capacity": self._rejected["capacity"],
                "rejected_draining": self._rejected["draining"],
                "quota_rate": self.quota_rate,
                "quota_burst": self.quota_burst,
                "tracked_callers": len(self._buckets),
                "draining": self._draining,
            }
