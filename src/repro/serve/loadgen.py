"""Load-generation client for the QTDA HTTP service.

Two layers:

* :class:`ServiceClient` — a thin, dependency-free HTTP/JSON client over
  ``http.client.HTTPConnection`` with keep-alive (one persistent connection
  per client; **not** thread-safe — give each worker thread its own).
  Accepts typed requests (anything with ``as_dict``) or plain wire dicts,
  returns the decoded result envelope, and raises :class:`ServiceError`
  carrying the structured error envelope on non-200 responses.  Opt-in
  retries (``max_retries > 0``) re-send requests rejected with 429/503
  backpressure, honouring the server's ``Retry-After`` hint under a capped,
  jittered exponential backoff — the polite-client loop the admission
  controller's hints are designed for.
* :func:`run_load` — the reusable load harness behind
  ``benchmarks/test_bench_service_load.py``: a seeded, weighted mix of
  request classes is scheduled up front (deterministic per seed), fanned
  across worker threads over real sockets, and summarised as a
  :class:`LoadReport` with exact client-side latency percentiles, throughput
  and per-class/status breakdowns.

Duplicate-heavy workloads are expressed naturally: a request class holds a
*pool* of documents and the scheduler cycles through the pool, so a class
with 4 documents and 200 scheduled requests sends each document ~50 times —
exactly the traffic shape request coalescing (DESIGN.md §15) deduplicates.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ServiceError",
    "ServiceClient",
    "RequestClass",
    "LoadReport",
    "run_load",
]

#: Anything the client can serialise into a request document.
Document = Union[Mapping[str, Any], Any]


class ServiceError(RuntimeError):
    """A non-200 response; carries the server's structured error envelope."""

    def __init__(self, status: int, envelope: Mapping[str, Any]):
        error = envelope.get("error", {}) if isinstance(envelope, Mapping) else {}
        super().__init__(
            f"HTTP {status}: {error.get('reason', 'error')}: {error.get('message', envelope)}"
        )
        self.status = int(status)
        self.envelope = dict(envelope) if isinstance(envelope, Mapping) else {"raw": envelope}
        self.reason = error.get("reason")
        self.retry_after_s = error.get("retry_after_s")


def _as_document(request: Document) -> Dict[str, Any]:
    if isinstance(request, Mapping):
        return dict(request)
    as_dict = getattr(request, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    raise TypeError(f"cannot serialise {type(request).__name__} into a request document")


#: Backpressure statuses the retry loop may re-send (quota / capacity /
#: draining rejections are transient by construction; everything else —
#: validation errors, execution failures — is not).
RETRYABLE_STATUSES = (429, 503)


class ServiceClient:
    """Keep-alive HTTP/JSON client for one server; one instance per thread.

    Retries are strictly opt-in: with the default ``max_retries=0`` every
    non-200 raises immediately, exactly as before.  With ``max_retries=N``
    a 429/503 response is retried up to ``N`` times; each wait is the larger
    of the server's ``retry_after_s`` hint and the capped exponential
    backoff ``backoff_base_s * 2^attempt``, stretched by up to
    ``backoff_jitter`` of itself (seeded — deterministic under test).
    ``sleep`` is injectable so tests never wall-clock wait.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        caller: Optional[str] = None,
        max_retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 5.0,
        backoff_jitter: float = 0.1,
        seed: Optional[int] = None,
        sleep=time.sleep,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff_base_s and backoff_cap_s must be >= 0")
        if not 0.0 <= backoff_jitter <= 1.0:
            raise ValueError(f"backoff_jitter must lie in [0, 1], got {backoff_jitter}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.caller = caller
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_jitter = float(backoff_jitter)
        self._sleep = sleep
        self._jitter_rng = np.random.default_rng(seed)
        #: Running count of backpressure retries this client has performed.
        self.retries_total = 0
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- transport -------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _round_trip(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, Any]]:
        headers = {"Content-Type": "application/json"}
        if self.caller is not None:
            headers["X-Caller"] = self.caller
        # One retry on a stale keep-alive socket: the server may close an
        # idle persistent connection between requests, which surfaces as
        # RemoteDisconnected/BrokenPipe on the *next* use — reconnect once.
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            document = {"raw": raw.decode("utf-8", "replace")}
        return response.status, document

    def retry_delay(self, attempt: int, retry_after_s: Optional[float]) -> float:
        """The wait before retry ``attempt`` (0-based).

        The server's ``Retry-After`` hint is a *floor* — backing off less
        than it would just earn another rejection; the capped exponential
        keeps repeated hints from synchronising clients, and the jitter
        spreads herds that started together.
        """
        delay = min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))
        if retry_after_s is not None:
            delay = max(delay, float(retry_after_s))
        if self.backoff_jitter > 0.0:
            delay *= 1.0 + self.backoff_jitter * float(self._jitter_rng.random())
        return delay

    def request(self, method: str, path: str, document: Optional[Document] = None) -> Dict[str, Any]:
        """One HTTP round trip; raises :class:`ServiceError` on non-200.

        With ``max_retries > 0``, 429/503 rejections are re-sent after
        :meth:`retry_delay`; the last rejection is raised once the budget is
        spent.
        """
        body = None
        if document is not None:
            body = json.dumps(_as_document(document)).encode("utf-8")
        attempt = 0
        while True:
            status, payload = self._round_trip(method, path, body)
            if status == 200:
                return payload
            error = ServiceError(status, payload)
            if status not in RETRYABLE_STATUSES or attempt >= self.max_retries:
                raise error
            self._sleep(self.retry_delay(attempt, error.retry_after_s))
            self.retries_total += 1
            attempt += 1

    # -- the service API -------------------------------------------------------
    def estimate(self, request: Document) -> Dict[str, Any]:
        return self.request("POST", "/v1/estimate", request)

    def pipeline(self, request: Document) -> Dict[str, Any]:
        return self.request("POST", "/v1/pipeline", request)

    def sweep(self, request: Document) -> Dict[str, Any]:
        return self.request("POST", "/v1/sweep", request)

    def observe(self, request: Document) -> Dict[str, Any]:
        return self.request("POST", "/v1/observe", request)

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/stats")


# ---------------------------------------------------------------------------
# The load harness
# ---------------------------------------------------------------------------


@dataclass
class RequestClass:
    """One traffic class of the mixed workload.

    ``documents`` is the pool of wire documents this class draws from; the
    scheduler cycles through it, so ``len(documents)`` controls how
    duplicate-heavy the class is.  ``kind`` must be a served route
    (``estimate``/``pipeline``/``sweep``/``observe``).
    """

    name: str
    kind: str
    documents: Sequence[Dict[str, Any]]
    weight: float = 1.0

    def __post_init__(self):
        if not self.documents:
            raise ValueError(f"request class {self.name!r} has an empty document pool")
        if self.weight <= 0:
            raise ValueError(f"request class {self.name!r} must have positive weight")


@dataclass
class _Observation:
    class_name: str
    status: int
    latency_s: float
    coalesced: bool


def _percentiles(latencies: Sequence[float]) -> Dict[str, Optional[float]]:
    """Exact client-side percentiles (milliseconds), ``None`` when empty."""
    if not latencies:
        return {"p50_ms": None, "p95_ms": None, "p99_ms": None, "mean_ms": None, "max_ms": None}
    values = np.sort(np.asarray(latencies, dtype=float)) * 1000.0
    def _q(q: float) -> float:
        return float(np.percentile(values, q))

    return {
        "p50_ms": _q(50.0),
        "p95_ms": _q(95.0),
        "p99_ms": _q(99.0),
        "mean_ms": float(values.mean()),
        "max_ms": float(values[-1]),
    }


@dataclass
class LoadReport:
    """Aggregated outcome of one :func:`run_load` run (JSON-safe via ``as_dict``)."""

    total_requests: int
    errors: int
    duration_s: float
    throughput_rps: float
    latency: Dict[str, Optional[float]]
    by_class: Dict[str, Dict[str, Any]]
    status_counts: Dict[str, int]
    coalesced: int
    workers: int
    retries: int = 0
    server_stats: Optional[Dict[str, Any]] = field(default=None)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_requests": self.total_requests,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency": dict(self.latency),
            "by_class": {name: dict(record) for name, record in self.by_class.items()},
            "status_counts": dict(self.status_counts),
            "coalesced": self.coalesced,
            "workers": self.workers,
            "retries": self.retries,
            "server_stats": self.server_stats,
        }


def run_load(
    host: str,
    port: int,
    classes: Sequence[RequestClass],
    total_requests: int,
    workers: int = 8,
    seed: int = 0,
    timeout: float = 60.0,
    collect_server_stats: bool = True,
    max_retries: int = 0,
) -> LoadReport:
    """Drive a seeded mixed workload over real sockets; return the report.

    The schedule — which class and which pool document each of the
    ``total_requests`` slots uses — is drawn up front from a seeded RNG
    (weighted by class, round-robin within a class's pool) and then consumed
    from a shared cursor by ``workers`` threads, each with its own keep-alive
    :class:`ServiceClient`.  Every response is timed individually; errors are
    recorded (status code or ``0`` for transport failures), never raised, so
    a load run always yields a complete report.

    ``max_retries`` turns on the clients' 429/503 backoff loop, so a
    quota-limited run exercises rejection *recovery*: requests that would
    have been terminal errors wait out the server's ``Retry-After`` hint and
    land, and the report's ``retries`` counts the waits that happened.
    """
    if total_requests < 1:
        raise ValueError(f"total_requests must be positive, got {total_requests}")
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    for request_class in classes:
        if request_class.kind not in ("estimate", "pipeline", "sweep", "observe"):
            raise ValueError(f"request class {request_class.name!r} has unserved kind {request_class.kind!r}")

    rng = np.random.default_rng(seed)
    weights = np.asarray([c.weight for c in classes], dtype=float)
    weights /= weights.sum()
    class_choices = rng.choice(len(classes), size=total_requests, p=weights)
    pool_cursors = [0] * len(classes)
    schedule: List[Tuple[RequestClass, Dict[str, Any]]] = []
    for class_index in class_choices:
        request_class = classes[class_index]
        document = request_class.documents[pool_cursors[class_index] % len(request_class.documents)]
        pool_cursors[class_index] += 1
        schedule.append((request_class, document))

    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    observations: List[List[_Observation]] = [[] for _ in range(workers)]
    retry_counts = [0] * workers

    def _worker(worker_index: int) -> None:
        client = ServiceClient(
            host,
            port,
            timeout=timeout,
            caller=f"loadgen-{worker_index}",
            max_retries=max_retries,
            seed=seed + worker_index,
        )
        records = observations[worker_index]
        try:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(schedule):
                        return
                    cursor["next"] = index + 1
                request_class, document = schedule[index]
                start = time.perf_counter()
                try:
                    envelope = client.request("POST", f"/v1/{request_class.kind}", document)
                    status, coalesced = 200, bool(envelope.get("coalesced"))
                except ServiceError as exc:
                    status, coalesced = exc.status, False
                except (OSError, http.client.HTTPException):
                    status, coalesced = 0, False
                records.append(
                    _Observation(
                        request_class.name, status, time.perf_counter() - start, coalesced
                    )
                )
        finally:
            retry_counts[worker_index] = client.retries_total
            client.close()

    threads = [
        threading.Thread(target=_worker, args=(index,), name=f"loadgen-{index}", daemon=True)
        for index in range(workers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - start

    flat = [record for worker_records in observations for record in worker_records]
    ok = [r for r in flat if r.status == 200]
    status_counts: Dict[str, int] = {}
    for record in flat:
        key = str(record.status)
        status_counts[key] = status_counts.get(key, 0) + 1
    by_class: Dict[str, Dict[str, Any]] = {}
    for request_class in classes:
        class_records = [r for r in flat if r.class_name == request_class.name]
        class_ok = [r.latency_s for r in class_records if r.status == 200]
        by_class[request_class.name] = {
            "kind": request_class.kind,
            "count": len(class_records),
            "errors": len(class_records) - len(class_ok),
            "coalesced": sum(r.coalesced for r in class_records),
            **_percentiles(class_ok),
        }

    server_stats = None
    if collect_server_stats:
        try:
            with ServiceClient(host, port, timeout=timeout) as client:
                server_stats = client.stats()
        except (ServiceError, OSError, http.client.HTTPException):
            server_stats = None

    return LoadReport(
        total_requests=len(flat),
        errors=len(flat) - len(ok),
        duration_s=duration,
        throughput_rps=len(flat) / duration if duration > 0 else float("inf"),
        latency=_percentiles([r.latency_s for r in ok]),
        by_class=by_class,
        status_counts=status_counts,
        coalesced=sum(r.coalesced for r in flat),
        workers=workers,
        retries=sum(retry_counts),
        server_stats=server_stats,
    )
