"""HTTP/JSON adapter over :class:`~repro.core.api.QTDAService` (DESIGN.md §15).

Turns the in-process service into a network-deployable endpoint using only
the standard library (``http.server.ThreadingHTTPServer`` — one handler
thread per connection, no new dependencies):

* ``POST /v1/estimate`` | ``/v1/pipeline`` | ``/v1/sweep`` | ``/v1/observe``
  accept a request document in the versioned wire format
  (:func:`repro.core.api.request_from_dict`) and return the corresponding
  :meth:`~repro.core.api.EstimationResult.as_dict` envelope — the same JSON
  ``validate_dict`` accepts, plus a ``coalesced`` marker.  ``experiment``
  requests are deliberately *not* exposed: they are unbounded batch jobs,
  which belong to the CLI, not an online endpoint.
* ``GET /v1/health`` is the liveness probe; ``GET /v1/stats`` returns the
  documented observability snapshot (:func:`validate_stats_dict`).

The request path composes the serving primitives in a fixed order —
**adapter → admission control → coalescer → service** — so every rejection
is cheap and every executed request is metered:

1. parse + schema-version negotiation (the body must speak
   :data:`~repro.core.api.SCHEMA_VERSION`; mismatches get a structured 400
   naming the supported versions);
2. admission (:mod:`repro.serve.quotas`): per-caller token buckets and the
   server-wide in-flight bound — rejections return 429 (quota/capacity) or
   503 (draining) with ``Retry-After``;
3. coalescing (:mod:`repro.serve.coalescer`): identical concurrent
   deterministic requests execute once; estimation leaders sharing geometry
   serialise so each Laplacian is built into the shared spectrum cache once;
4. execution on the shared :class:`~repro.core.api.QTDAService` — including
   process-sharded configs (``config={"shards": ..., "shard_backend":
   "process"}``), which are bit-identical to in-process runs.

Errors always arrive as a structured envelope::

    {"schema_version": 4, "error": {"code": 429, "reason": "quota",
     "message": "...", "retry_after_s": 0.7}}

Caller identity for quotas is the ``X-Caller`` header when present, else the
peer address — good enough for LAN deployments; put a real authenticating
proxy in front for anything else.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.api import (
    SCHEMA_VERSION,
    ObserveRequest,
    QTDAService,
    request_from_dict,
)
from repro.serve.coalescer import RequestCoalescer
from repro.serve.metrics import MetricsRegistry
from repro.serve.quotas import AdmissionController, AdmissionRejected

__all__ = [
    "SERVED_KINDS",
    "ServeConfig",
    "QTDAServer",
    "error_envelope",
    "validate_stats_dict",
]

logger = logging.getLogger("repro.serve")

#: Request kinds the HTTP adapter exposes (``experiment`` is CLI-only).
SERVED_KINDS = ("estimate", "pipeline", "sweep", "observe")


@dataclass
class ServeConfig:
    """Deployment knobs of one :class:`QTDAServer`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`QTDAServer.port` — the test/benchmark harnesses rely on this).
    ``quota_rate=None`` disables per-caller quotas; ``coalesce=False``
    disables request coalescing (the load benchmark's control arm).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 64
    quota_rate: Optional[float] = None
    quota_burst: Optional[float] = None
    coalesce: bool = True
    group_geometry: bool = True
    max_workers: Optional[int] = None
    result_cache_size: int = 256
    spectrum_cache_size: int = 1024
    drain_timeout: float = 10.0

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be at least 1, got {self.max_pending}")
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be non-negative, got {self.drain_timeout}")


def error_envelope(
    code: int, reason: str, message: str, retry_after_s: Optional[float] = None, **extra: Any
) -> Dict[str, Any]:
    """The structured error document every non-200 response carries."""
    body: Dict[str, Any] = {"code": int(code), "reason": reason, "message": message}
    if retry_after_s is not None:
        body["retry_after_s"] = float(retry_after_s)
    body.update(extra)
    return {"schema_version": SCHEMA_VERSION, "error": body}


class _RequestHandler(BaseHTTPRequestHandler):
    """Per-connection handler; the owning :class:`QTDAServer` is ``self.app``."""

    app: "QTDAServer"  # bound by QTDAServer via a subclass attribute
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs every request line to stderr by default;
    # route it through the package logger at debug instead.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def _caller(self) -> str:
        return self.headers.get("X-Caller") or self.client_address[0]

    def _send_json(
        self, status: int, document: Mapping[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        payload = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("X-QTDA-Schema-Version", str(SCHEMA_VERSION))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/v1/health":
            self._send_json(200, self.app.health())
        elif self.path == "/v1/stats":
            self._send_json(200, self.app.stats())
        else:
            self._send_json(
                404, error_envelope(404, "not_found", f"unknown path {self.path!r}")
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Drain the body before routing: on a keep-alive connection an
        # unread body would be parsed as the next request line.
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        kind = None
        if self.path.startswith("/v1/"):
            candidate = self.path[len("/v1/"):]
            if candidate in SERVED_KINDS:
                kind = candidate
        if kind is None:
            self._send_json(
                404,
                error_envelope(
                    404,
                    "not_found",
                    f"unknown path {self.path!r}; POST routes: "
                    + ", ".join(f"/v1/{k}" for k in SERVED_KINDS),
                ),
            )
            return
        status, document, headers = self.app.handle_post(kind, raw, self._caller())
        self._send_json(status, document, headers)


class QTDAServer:
    """The deployable QTDA service: HTTP adapter + coalescer + quotas + metrics.

    Owns a :class:`~repro.core.api.QTDAService` (or wraps one you pass in —
    then you keep responsibility for closing it) and serves it over a
    threading HTTP server.  Use as a context manager::

        with QTDAServer(ServeConfig(port=0)) as server:
            print("listening on", server.base_url)
            ...

    ``stop()`` drains gracefully: admission flips to rejecting, in-flight
    requests finish (bounded by ``drain_timeout``), then the listener and the
    service (with its shard pools) shut down.
    """

    def __init__(self, config: Optional[ServeConfig] = None, service: Optional[QTDAService] = None):
        self.config = config if config is not None else ServeConfig()
        self._owns_service = service is None
        self.service = (
            service
            if service is not None
            else QTDAService(
                max_workers=self.config.max_workers,
                spectrum_cache_size=self.config.spectrum_cache_size,
                result_cache_size=self.config.result_cache_size,
            )
        )
        self.metrics = MetricsRegistry()
        self.coalescer: Optional[RequestCoalescer] = (
            RequestCoalescer(group_geometry=self.config.group_geometry)
            if self.config.coalesce
            else None
        )
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            quota_rate=self.config.quota_rate,
            quota_burst=self.config.quota_burst,
        )
        handler = type("_BoundRequestHandler", (_RequestHandler,), {"app": self})
        httpd = ThreadingHTTPServer((self.config.host, self.config.port), handler)
        httpd.daemon_threads = True
        self._httpd = httpd
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._stopped = False

    # -- lifecycle -------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "QTDAServer":
        if self._thread is not None:
            raise RuntimeError("server is already started")
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="qtda-serve",
            daemon=True,
        )
        self._thread.start()
        logger.info("QTDA service listening on %s", self.base_url)
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown (idempotent): drain, stop listening, close the service."""
        if self._stopped:
            return
        self._stopped = True
        self.admission.begin_drain()
        if drain:
            if not self.admission.drain(timeout=self.config.drain_timeout):
                logger.warning(
                    "drain timed out after %.1fs with %d requests in flight",
                    self.config.drain_timeout,
                    self.admission.depth,
                )
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "QTDAServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request processing ----------------------------------------------------
    def handle_post(
        self, route: str, raw: bytes, caller: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Process one POST body; returns ``(status, document, extra_headers)``.

        Factored out of the socket handler so tests can drive the full
        pipeline (parsing, negotiation, admission, coalescing, execution,
        metering) without a network round trip when they want to.
        """
        self.metrics.counter("requests.total").inc()
        self.metrics.counter(f"requests.{route}.count").inc()

        def _reject(status: int, document: Dict[str, Any], headers: Optional[Dict[str, str]] = None):
            self.metrics.counter("requests.errors").inc()
            self.metrics.counter(f"requests.{route}.errors").inc()
            return status, document, headers or {}

        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _reject(400, error_envelope(400, "invalid_json", f"request body is not JSON: {exc}"))
        if not isinstance(body, dict):
            return _reject(
                400, error_envelope(400, "invalid_request", "request body must be a JSON object")
            )

        # Schema-version negotiation: the wire format is versioned and this
        # build speaks exactly one version; the error names it so clients can
        # adapt instead of guessing.
        version = body.get("schema_version")
        if version != SCHEMA_VERSION:
            reason = "missing_schema_version" if version is None else "unsupported_schema_version"
            return _reject(
                400,
                error_envelope(
                    400,
                    reason,
                    f"request schema_version {version!r} is not supported",
                    supported_versions=[SCHEMA_VERSION],
                ),
            )
        kind = body.setdefault("kind", route)
        if kind != route:
            return _reject(
                400,
                error_envelope(
                    400, "kind_mismatch", f"request kind {kind!r} does not match route /v1/{route}"
                ),
            )

        try:
            request = request_from_dict(body)
        except (TypeError, ValueError) as exc:
            return _reject(400, error_envelope(400, "invalid_request", str(exc)))

        try:
            self.admission.admit(caller)
        except AdmissionRejected as exc:
            status = 503 if exc.reason == "draining" else 429
            headers = {"Retry-After": f"{max(exc.retry_after_s, 0.0):.3f}"}
            return _reject(
                status,
                error_envelope(status, exc.reason, str(exc), retry_after_s=exc.retry_after_s),
                headers,
            )

        self.metrics.gauge("queue.depth").set(self.admission.depth)
        start = time.perf_counter()
        try:
            # Observe requests are stateful (never coalescable); everything
            # else goes through the coalescer when one is configured.
            if self.coalescer is not None and not isinstance(request, ObserveRequest):
                result, coalesced = self.coalescer.execute(request, self.service.run)
            else:
                result, coalesced = self.service.run(request), False
        except Exception as exc:  # noqa: BLE001 - the adapter must not crash the worker
            logger.exception("request execution failed")
            return _reject(500, error_envelope(500, "internal_error", f"{type(exc).__name__}: {exc}"))
        finally:
            self.admission.release()
            self.metrics.gauge("queue.depth").set(self.admission.depth)

        elapsed = time.perf_counter() - start
        self.metrics.histogram(f"requests.{route}.latency").record(elapsed)
        if coalesced:
            self.metrics.counter(f"requests.{route}.coalesced").inc()
        document = result.as_dict()
        document["coalesced"] = coalesced
        return 200, document, {}

    # -- observability ---------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.admission.draining else "ok",
            "schema_version": SCHEMA_VERSION,
            "kinds": list(SERVED_KINDS),
        }

    def stats(self) -> Dict[str, Any]:
        """The documented ``/v1/stats`` snapshot (see :func:`validate_stats_dict`)."""
        snapshot = self.metrics.as_dict()
        counters = snapshot["counters"]
        histograms = snapshot["histograms"]
        by_route: Dict[str, Any] = {}
        for kind in SERVED_KINDS:
            count = counters.get(f"requests.{kind}.count", 0)
            if not count:
                continue
            by_route[kind] = {
                "count": count,
                "errors": counters.get(f"requests.{kind}.errors", 0),
                "coalesced": counters.get(f"requests.{kind}.coalesced", 0),
                "latency_ms": histograms.get(
                    f"requests.{kind}.latency",
                    {
                        "count": 0,
                        "mean_ms": None,
                        "p50_ms": None,
                        "p95_ms": None,
                        "p99_ms": None,
                        "min_ms": None,
                        "max_ms": None,
                    },
                ),
            }
        uptime = 0.0 if self._started_at is None else time.monotonic() - self._started_at
        return {
            "schema_version": SCHEMA_VERSION,
            "server": {
                "host": self.host,
                "port": self.port,
                "uptime_s": uptime,
                "draining": self.admission.draining,
                "served_kinds": list(SERVED_KINDS),
            },
            "requests": {
                "total": counters.get("requests.total", 0),
                "errors": counters.get("requests.errors", 0),
                "by_route": by_route,
            },
            "queue": self.admission.stats(),
            "coalescer": (
                self.coalescer.stats() if self.coalescer is not None else {"enabled": False}
            ),
            "service": self.service.cache_stats(),
        }


#: The documented shape of the ``/v1/stats`` payload: required keys and the
#: type (or tuple of types) their values must have.  ``None``-able numeric
#: fields use ``(int, float, type(None))``.  This is the contract the CI
#: ``load-smoke`` job asserts.
_NUMBER = (int, float)
_OPT_NUMBER = (int, float, type(None))
_STATS_SCHEMA: Dict[str, Dict[str, Any]] = {
    "server": {
        "host": str,
        "port": int,
        "uptime_s": _NUMBER,
        "draining": bool,
        "served_kinds": list,
    },
    "requests": {"total": int, "errors": int, "by_route": dict},
    "queue": {
        "depth": int,
        "max_pending": int,
        "admitted": int,
        "rejected_quota": int,
        "rejected_capacity": int,
        "rejected_draining": int,
        "quota_rate": _OPT_NUMBER,
        "quota_burst": _OPT_NUMBER,
        "tracked_callers": int,
        "draining": bool,
    },
    "coalescer": {"enabled": bool},
    "service": {
        "result_cache_entries": int,
        "result_cache_hits": int,
        "spectrum_hits": int,
        "spectrum_misses": int,
        "spectrum_entries": int,
        "spectrum_hit_rate": _OPT_NUMBER,
    },
}

_ROUTE_SCHEMA: Dict[str, Any] = {"count": int, "errors": int, "coalesced": int, "latency_ms": dict}
_LATENCY_SCHEMA: Dict[str, Any] = {
    "count": int,
    "mean_ms": _OPT_NUMBER,
    "p50_ms": _OPT_NUMBER,
    "p95_ms": _OPT_NUMBER,
    "p99_ms": _OPT_NUMBER,
    "min_ms": _OPT_NUMBER,
    "max_ms": _OPT_NUMBER,
}


def _check_block(data: Mapping[str, Any], schema: Mapping[str, Any], context: str) -> None:
    for key, expected in schema.items():
        if key not in data:
            raise ValueError(f"stats payload is missing {context}.{key}")
        value = data[key]
        if isinstance(expected, Mapping):
            if not isinstance(value, Mapping):
                raise ValueError(f"{context}.{key} must be a mapping, got {type(value).__name__}")
            _check_block(value, expected, f"{context}.{key}")
        elif expected is bool:
            # bool is a subclass of int; check it exactly so numeric fields
            # and flags cannot swap silently.
            if not isinstance(value, bool):
                raise ValueError(f"{context}.{key} must be a bool, got {type(value).__name__}")
        elif not isinstance(value, expected):
            raise ValueError(
                f"{context}.{key} has type {type(value).__name__}, expected {expected}"
            )


def validate_stats_dict(data: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``data`` matches the documented `/v1/stats` schema.

    Checked: top-level ``schema_version`` plus the ``server``/``requests``/
    ``queue``/``coalescer``/``service`` blocks, and — for every route present
    in ``requests.by_route`` — the per-route counters and latency summary.
    Used by the serve tests and the CI ``load-smoke`` job.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"stats payload must be a mapping, got {type(data).__name__}")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"stats schema_version must be {SCHEMA_VERSION}, got {data.get('schema_version')!r}"
        )
    for block, schema in _STATS_SCHEMA.items():
        if not isinstance(data.get(block), Mapping):
            raise ValueError(f"stats payload is missing the {block!r} block")
        _check_block(data[block], schema, block)
    for route, record in data["requests"]["by_route"].items():
        if route not in SERVED_KINDS:
            raise ValueError(f"unknown route {route!r} in requests.by_route")
        _check_block(record, _ROUTE_SCHEMA, f"requests.by_route.{route}")
        _check_block(record["latency_ms"], _LATENCY_SCHEMA, f"requests.by_route.{route}.latency_ms")
