"""Thread-safe serving metrics — counters, gauges, latency histograms.

The serving layer (DESIGN.md §15) needs cheap, lock-light observability:
how deep is the admission queue, how often does the coalescer deduplicate,
what do per-route latencies look like at the tail.  This module provides the
three primitive instruments plus a :class:`MetricsRegistry` that owns them by
name and renders one JSON-safe snapshot for ``GET /v1/stats`` and the CLI
``serve`` logs.

Design notes
------------
* Every instrument is thread-safe; recording is a couple of integer adds
  under a per-instrument lock (no allocation on the hot path).
* :class:`LatencyHistogram` uses fixed log-spaced buckets (100 µs … ~2 min)
  rather than reservoir sampling: percentile estimates are computed from
  cumulative bucket counts with linear interpolation inside the bucket, so
  memory stays O(1) per route no matter how many requests are recorded.
  Client-side harnesses that want *exact* percentiles (the load generator)
  keep their own raw samples instead.
* ``as_dict()`` snapshots are self-consistent per instrument but not across
  instruments (no global lock) — fine for monitoring, documented here so
  nobody builds an invariant on cross-counter exactness.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
]


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for +/- values")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, in-flight requests)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int) -> None:
        with self._lock:
            self._value = int(value)

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


def _default_bounds() -> List[float]:
    """Log-spaced latency bucket upper bounds in seconds: 100 µs … ~2 min.

    Ten buckets per decade keeps interpolated percentiles within a few per
    cent of exact over the whole range a local QTDA service can plausibly
    produce; the final +inf bucket catches pathological stalls.
    """
    bounds = [10 ** (exponent / 10.0) for exponent in range(-40, 22)]  # 1e-4 .. ~125 s
    bounds.append(math.inf)
    return bounds


#: Shared bucket bounds — identical for every histogram so snapshots are
#: comparable across routes and across runs.
BUCKET_BOUNDS = _default_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated percentiles.

    ``record(seconds)`` is O(log buckets) (bisect); ``percentile(q)`` walks
    the cumulative counts and interpolates linearly inside the landing
    bucket, using the bucket's lower/upper bound as the value range.  The
    first bucket interpolates from 0.
    """

    __slots__ = ("_lock", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * len(BUCKET_BOUNDS)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def record(self, seconds: float) -> None:
        value = float(seconds)
        if value < 0:
            raise ValueError(f"latency must be non-negative, got {value}")
        import bisect

        index = bisect.bisect_left(BUCKET_BOUNDS, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-th percentile in seconds (``None`` when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return None
            target = q / 100.0 * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= target:
                    lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                    upper = BUCKET_BOUNDS[index]
                    if math.isinf(upper):
                        # The overflow bucket has no upper edge; the recorded
                        # maximum is the honest estimate.
                        return self._max
                    fraction = (target - previous) / bucket_count
                    fraction = min(max(fraction, 0.0), 1.0)
                    return lower + fraction * (upper - lower)
            return self._max  # pragma: no cover - cumulative >= target always hits

    def as_dict(self) -> Dict[str, Optional[float]]:
        """JSON-safe summary in milliseconds (the unit `/v1/stats` documents)."""
        with self._lock:
            count = self._count
            total = self._sum
            minimum = self._min
            maximum = self._max
        def _ms(seconds: Optional[float]) -> Optional[float]:
            return None if seconds is None else seconds * 1000.0

        return {
            "count": count,
            "mean_ms": _ms(total / count) if count else None,
            "p50_ms": _ms(self.percentile(50.0)),
            "p95_ms": _ms(self.percentile(95.0)),
            "p99_ms": _ms(self.percentile(99.0)),
            "min_ms": _ms(minimum),
            "max_ms": _ms(maximum),
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict.

    One registry per server.  Names are free-form dotted strings
    (``requests.estimate.latency``); the snapshot groups instruments by type
    so the `/v1/stats` schema stays stable as routes come and go.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = LatencyHistogram()
            return instrument

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.as_dict() for name, h in sorted(histograms.items())},
        }
