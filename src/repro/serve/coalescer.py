"""In-flight request coalescing keyed by request fingerprint.

The service result cache (DESIGN.md §10) only helps *after* a request
completes; under concurrent traffic, N identical requests arriving together
would each compute.  :class:`RequestCoalescer` closes that gap in front of a
:class:`~repro.core.api.QTDAService`: the first caller for a fingerprint
becomes the **leader** and runs the request, every concurrent duplicate
becomes a **waiter** and receives the leader's result (or the leader's
exception — a failed leader never strands its waiters).

Two safety rules bound what may coalesce:

* Only *deterministic* requests (seeded, or classical-only — the same
  predicate the result cache uses, :func:`repro.core.api.
  deterministic_request`) are merged.  Unseeded quantum requests
  legitimately return different samples per call, and ``observe`` requests
  are stateful, so both always execute individually.
* Waiters receive a **private deep copy** of the leader's payload, matching
  the result-cache aliasing contract: callers may mutate returned feature
  arrays without corrupting what other waiters saw.

Independently of fingerprint-level merging, *geometry grouping* serialises
leaders that share an :meth:`~repro.core.api.EstimationRequest.
geometry_fingerprint` (same complex/point cloud, different estimator
config): the first leader builds the Laplacian and populates the shared
:class:`~repro.core.hamiltonian.SpectrumCache`; the ones waiting on the
geometry lock then hit that cache instead of racing to rebuild the same
operator.  Each point cloud's Laplacian is built once per burst, not once
per config variant.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.api import (
    EstimationRequest,
    EstimationResult,
    Request,
    deterministic_request,
)

__all__ = ["RequestCoalescer"]


class _InFlight:
    """State shared between one leader and its waiters."""

    __slots__ = ("done", "result", "exception", "waiters")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[EstimationResult] = None
        self.exception: Optional[BaseException] = None
        self.waiters = 0


class _GeometryGate:
    """Reference-counted lock for one geometry fingerprint."""

    __slots__ = ("lock", "refs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.refs = 0


class RequestCoalescer:
    """Deduplicate identical concurrent requests in front of a runner.

    ``execute(request, runner)`` returns ``(result, coalesced)`` where
    ``coalesced`` is ``True`` when this call was served from another
    in-flight execution.  The runner is any ``request -> EstimationResult``
    callable — typically ``QTDAService.run``.

    Thread-safe; one instance per server.  ``stats()`` is JSON-safe and
    feeds the ``coalescer`` block of ``/v1/stats``.
    """

    def __init__(self, group_geometry: bool = True):
        self.group_geometry = bool(group_geometry)
        self._lock = threading.Lock()
        self._in_flight: Dict[str, _InFlight] = {}
        self._geometry: Dict[str, _GeometryGate] = {}
        self._hits = 0
        self._leaders = 0
        self._uncoalescable = 0
        self._geometry_serialised = 0

    # -- key computation -------------------------------------------------------
    @staticmethod
    def _coalesce_key(request: Request) -> Optional[str]:
        """The in-flight map key, or ``None`` when the request must not merge."""
        if not deterministic_request(request):
            return None
        try:
            return request.fingerprint()
        except (TypeError, ValueError):
            # Unserialisable config (explicit noise_model object): runs fine,
            # just never coalesces.
            return None

    # -- geometry grouping -----------------------------------------------------
    def _geometry_key(self, request: Request) -> Optional[str]:
        if not self.group_geometry or not isinstance(request, EstimationRequest):
            return None
        try:
            return request.geometry_fingerprint()
        except (TypeError, ValueError):  # pragma: no cover - geometry is plain data
            return None

    def _acquire_geometry(self, key: str) -> _GeometryGate:
        with self._lock:
            gate = self._geometry.get(key)
            if gate is None:
                gate = self._geometry[key] = _GeometryGate()
            gate.refs += 1
        if not gate.lock.acquire(blocking=False):
            # Another leader is building this geometry right now: wait for
            # it (and count the serialisation — the spectrum cache will be
            # warm when we get the lock).
            with self._lock:
                self._geometry_serialised += 1
            gate.lock.acquire()
        return gate

    def _release_geometry(self, key: str, gate: _GeometryGate) -> None:
        gate.lock.release()
        with self._lock:
            gate.refs -= 1
            if gate.refs <= 0:
                # Last user evicts the gate so the map stays bounded by the
                # number of *concurrently* in-flight geometries.
                self._geometry.pop(key, None)

    # -- execution -------------------------------------------------------------
    def execute(
        self, request: Request, runner: Callable[[Request], EstimationResult]
    ) -> Tuple[EstimationResult, bool]:
        """Run ``request`` through ``runner``, merging concurrent duplicates."""
        key = self._coalesce_key(request)
        if key is None:
            with self._lock:
                self._uncoalescable += 1
            return self._run_leader(request, runner), False

        with self._lock:
            entry = self._in_flight.get(key)
            if entry is not None:
                entry.waiters += 1
                self._hits += 1
                is_leader = False
            else:
                entry = self._in_flight[key] = _InFlight()
                self._leaders += 1
                is_leader = True

        if not is_leader:
            entry.done.wait()
            if entry.exception is not None:
                # Same exception object for every waiter — the leader's
                # failure is the request's failure, not a coalescer artefact.
                raise entry.exception
            result = entry.result
            assert result is not None
            return replace(result, payload=copy.deepcopy(result.payload)), True

        try:
            entry.result = self._run_leader(request, runner)
        except BaseException as exc:
            entry.exception = exc
            raise
        finally:
            # Evict *before* waking waiters: a request arriving after
            # completion starts a fresh leader (and is usually served by the
            # service result cache anyway) instead of reading stale state.
            with self._lock:
                self._in_flight.pop(key, None)
            entry.done.set()
        return entry.result, False

    def _run_leader(
        self, request: Request, runner: Callable[[Request], EstimationResult]
    ) -> EstimationResult:
        geometry_key = self._geometry_key(request)
        if geometry_key is None:
            return runner(request)
        gate = self._acquire_geometry(geometry_key)
        try:
            return runner(request)
        finally:
            self._release_geometry(geometry_key, gate)

    # -- observability ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": True,
                "hits": self._hits,
                "leaders": self._leaders,
                "uncoalescable": self._uncoalescable,
                "in_flight": len(self._in_flight),
                "geometry_grouping": self.group_geometry,
                "geometry_serialised": self._geometry_serialised,
            }
