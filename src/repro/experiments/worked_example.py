"""Appendix A — the worked example, reproduced end to end.

The appendix walks through the full QTDA pipeline on a five-point cloud whose
complex (Eq. 13) contains a filled triangle {1,2,3} and a hollow triangle
{3,4,5}:

* boundary operators ∂_1 and ∂_2 (Eqs. 14–15),
* the combinatorial Laplacian Δ_1 (Eq. 17),
* the padded Laplacian Δ̃_1 with λ̃_max = 6 (Eq. 18),
* its Pauli decomposition (Eq. 19),
* the 3-precision-qubit QTDA circuit (Fig. 6) run for 1000 shots,
* the resulting estimate β̃_1 ≈ 1.19 → 1.

:func:`run_worked_example` executes those steps with this library and returns
every intermediate object so the tests can compare them against the numbers
printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import QTDAConfig
from repro.core.estimator import BettiEstimate, QTDABettiEstimator
from repro.core.hamiltonian import RescaledHamiltonian, build_hamiltonian
from repro.core.padding import PaddedLaplacian, pad_laplacian
from repro.core.qtda_circuit import circuit_resource_summary, qtda_circuit
from repro.quantum.drawer import circuit_summary, draw_circuit
from repro.tda.betti import betti_number
from repro.tda.boundary import boundary_matrix
from repro.tda.complexes import SimplicialComplex
from repro.tda.laplacian import combinatorial_laplacian

#: The simplicial complex of Eq. 13 (vertex labels as printed in the paper).
APPENDIX_SIMPLICES = (
    (1,), (2,), (3,), (4,), (5,),
    (1, 2), (1, 3), (2, 3), (1, 2, 3),
    (3, 4), (3, 5), (4, 5),
)

#: The combinatorial Laplacian Δ_1 printed as Eq. 17.
EXPECTED_LAPLACIAN = np.array(
    [
        [3, 0, 0, 0, 0, 0],
        [0, 3, 0, -1, -1, 0],
        [0, 0, 3, -1, -1, 0],
        [0, -1, -1, 2, 1, -1],
        [0, -1, -1, 1, 2, 1],
        [0, 0, 0, -1, 1, 2],
    ],
    dtype=float,
)

#: A selection of the Pauli coefficients listed in Eq. 19.
EXPECTED_PAULI_COEFFICIENTS: Dict[str, float] = {
    "III": 2.625,
    "XXI": -0.5,
    "YYI": -0.5,
    "ZIX": -0.5,
    "IXI": -0.25,
    "ZZI": 0.375,
    "IZX": 0.5,
    "IIZ": 0.125,
    "ZII": 0.125,
    "IZI": -0.125,
}


@dataclass
class WorkedExampleResult:
    """Every intermediate artefact of the Appendix A walkthrough."""

    complex_: SimplicialComplex
    boundary_1: np.ndarray
    boundary_2: np.ndarray
    laplacian: np.ndarray
    padded: PaddedLaplacian
    hamiltonian: RescaledHamiltonian
    pauli_coefficients: Dict[str, float]
    exact_betti: int
    estimate: BettiEstimate
    circuit_resources: Dict[str, object]
    circuit_drawing: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable view (the service API's experiment payload).

        Carries the appendix's headline numerics (Laplacian, λ̃_max, Pauli
        coefficients, the estimate) rather than every intermediate object —
        the boundary matrices are summarised by their shapes.
        """
        return {
            "f_vector": list(self.complex_.f_vector()),
            "boundary_1_shape": list(self.boundary_1.shape),
            "boundary_2_shape": list(self.boundary_2.shape),
            "laplacian": np.asarray(self.laplacian, dtype=float).tolist(),
            "lambda_max": float(self.padded.lambda_max),
            "padded_dimension": int(self.padded.padded_dimension),
            "num_qubits": int(self.padded.num_qubits),
            "pauli_coefficients": dict(self.pauli_coefficients),
            "exact_betti": int(self.exact_betti),
            "estimate": self.estimate.as_dict(),
            "circuit_resources": dict(self.circuit_resources),
            "circuit_drawing": self.circuit_drawing,
        }


def appendix_complex() -> SimplicialComplex:
    """The complex K_ε of Eq. 13."""
    return SimplicialComplex(APPENDIX_SIMPLICES)


def run_worked_example(
    shots: Optional[int] = 1000,
    precision_qubits: int = 3,
    backend: str = "statevector",
    seed: Optional[int] = 1,
    include_drawing: bool = False,
    noise_channel: Optional[str] = None,
    noise_strength: float = 0.0,
    circuit_engine: str = "auto",
    n_trajectories: int = 8,
    readout_error: float = 0.0,
    shards: int = 1,
    shard_backend: str = "process",
) -> WorkedExampleResult:
    """Execute the Appendix A pipeline and return all intermediates.

    The defaults mirror the appendix exactly: δ = 6 (so H = Δ̃_1), three
    precision qubits, 1000 shots, the explicit Fig. 6 circuit.  ``backend``
    may be any registered estimator backend; ``noise_channel`` /
    ``noise_strength`` parametrise the noisy workloads, with
    ``circuit_engine`` / ``n_trajectories`` / ``readout_error`` selecting and
    tuning the execution route (noisy runs resolve to the trajectory route
    under ``"auto"``); ``shards``/``shard_backend`` shard the engine's batch
    axis (:mod:`repro.quantum.sharding`; bit-identical, throughput only).
    """
    complex_ = appendix_complex()
    d1 = boundary_matrix(complex_, 1)
    d2 = boundary_matrix(complex_, 2)
    laplacian = combinatorial_laplacian(complex_, 1)
    padded = pad_laplacian(laplacian)
    hamiltonian = build_hamiltonian(laplacian, delta=6.0)
    pauli = {term.label: float(term.coefficient.real) for term in hamiltonian.pauli_decomposition()}
    exact = betti_number(complex_, 1)

    estimator = QTDABettiEstimator(
        QTDAConfig(
            precision_qubits=precision_qubits,
            shots=shots,
            backend=backend,
            delta=6.0,
            seed=seed,
            noise_channel=noise_channel,
            noise_strength=noise_strength,
            circuit_engine=circuit_engine,
            n_trajectories=n_trajectories,
            readout_error=readout_error,
            shards=shards,
            shard_backend=shard_backend,
        )
    )
    estimate = estimator.estimate(complex_, 1)

    circuit, spec = qtda_circuit(hamiltonian, precision_qubits=precision_qubits, use_purification=True)
    resources = circuit_resource_summary(circuit, spec)
    drawing = draw_circuit(circuit) if include_drawing else None
    return WorkedExampleResult(
        complex_=complex_,
        boundary_1=d1,
        boundary_2=d2,
        laplacian=laplacian,
        padded=padded,
        hamiltonian=hamiltonian,
        pauli_coefficients=pauli,
        exact_betti=exact,
        estimate=estimate,
        circuit_resources=resources,
        circuit_drawing=drawing,
    )


def render_worked_example(result: WorkedExampleResult) -> str:
    """Human-readable walkthrough, mirroring the structure of Appendix A."""
    lines = [
        "Appendix A worked example",
        "=========================",
        f"Complex K_eps: f-vector = {result.complex_.f_vector()}",
        f"∂_1 shape {result.boundary_1.shape}, ∂_2 shape {result.boundary_2.shape}",
        "Δ_1 =",
        np.array2string(result.laplacian, precision=0),
        f"λ̃_max (Gershgorin) = {result.padded.lambda_max:.1f}; padded to {result.padded.padded_dimension}x{result.padded.padded_dimension} (q = {result.padded.num_qubits})",
        f"Pauli decomposition: {len(result.pauli_coefficients)} terms, c_III = {result.pauli_coefficients.get('III', 0.0):+.4f}",
        f"Classical β_1 = {result.exact_betti}",
        (
            f"QTDA estimate: p(0) = {result.estimate.p_zero:.4f} → β̃_1 = {result.estimate.betti_estimate:.3f} "
            f"→ rounded {result.estimate.betti_rounded} "
            f"({result.estimate.shots} shots, {result.estimate.precision_qubits} precision qubits, backend={result.estimate.backend})"
        ),
        f"Circuit resources: {result.circuit_resources}",
    ]
    if result.circuit_drawing:
        lines.extend(["", "Circuit (Fig. 6 analogue):", result.circuit_drawing])
    return "\n".join(lines)
