"""Fig. 3 — absolute estimation error vs shots and precision qubits.

The paper draws 100 random simplicial complexes for each ``n ∈ {5, 10, 15}``,
estimates Betti numbers with the QPE algorithm for shots ``10^2 … 10^6`` and
1–10 precision qubits, and reports boxplots of the absolute error
``AE = |β̃_k - β_k|`` (Eq. 12).

The driver below reproduces that sweep.  The hot path is organised so the
expensive pieces are computed exactly once per complex:

1. Laplacian and the eigen-decomposition of the small ``|S_k| x |S_k|`` matrix
   (per complex, cached); padding and rescaling are applied analytically to
   the spectrum instead of rediagonalising the padded ``2^q x 2^q`` matrix;
2. the analytical QPE outcome distribution (per complex × precision setting);
3. multinomial shot sampling of that distribution (per complex × precision ×
   shots setting) — cheap even for 10^6 shots because only the total count of
   the all-zero outcome matters (a single binomial draw).

This matches the ``exact`` estimator backend; agreement of that backend with
the explicit circuit backends is established separately by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.hamiltonian import SpectrumCache, padded_spectrum
from repro.quantum.qpe import qpe_outcome_distribution
from repro.tda.betti import betti_number
from repro.tda.laplacian import combinatorial_laplacian
from repro.tda.random_complexes import random_simplicial_complex
from repro.utils.ascii_plots import render_boxplot_table
from repro.utils.rng import SeedLike, as_rng, spawn_rngs


@dataclass
class ShotsPrecisionConfig:
    """Parameter grid of the Fig. 3 sweep.

    The defaults are a reduced grid that finishes in seconds while preserving
    the figure's qualitative shape; the paper's full grid is
    ``complex_sizes=(5, 10, 15)``, ``num_complexes=100``,
    ``shots_grid=(10**2, ..., 10**6)``, ``precision_grid=(1, ..., 10)``.
    """

    complex_sizes: Tuple[int, ...] = (5, 10, 15)
    num_complexes: int = 10
    shots_grid: Tuple[int, ...] = (10**2, 10**3, 10**4)
    precision_grid: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)
    homology_dimension: int = 1
    delta: float = 2.0 * np.pi * 0.9
    max_complex_dimension: int = 2
    seed: SeedLike = 1234
    #: Any registered estimator backend (repro.core.backends).  The default
    #: ``"exact"`` keeps the inline spectral fast path below; other names are
    #: resolved through the registry per (complex, precision) cell.
    backend: str = "exact"

    @classmethod
    def paper_scale(cls) -> "ShotsPrecisionConfig":
        """The exact grid reported in the paper (long-running)."""
        return cls(
            complex_sizes=(5, 10, 15),
            num_complexes=100,
            shots_grid=tuple(10**e for e in range(2, 7)),
            precision_grid=tuple(range(1, 11)),
        )


@dataclass
class ShotsPrecisionResult:
    """Absolute errors grouped by (n, shots, precision)."""

    config: ShotsPrecisionConfig
    #: errors[(n, shots, precision)] -> list of absolute errors (one per complex)
    errors: Dict[Tuple[int, int, int], List[float]] = field(default_factory=dict)

    def group(self, n: int, shots: int, precision: int) -> List[float]:
        return self.errors[(n, shots, precision)]

    def median_error(self, n: int, shots: int, precision: int) -> float:
        return float(np.median(self.errors[(n, shots, precision)]))

    def mean_error(self, n: int, shots: int, precision: int) -> float:
        return float(np.mean(self.errors[(n, shots, precision)]))

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable view (the service API's experiment payload).

        The tuple-keyed error groups are flattened to ``"n=..,shots=..,t=.."``
        string keys so the payload is JSON-serialisable as-is.
        """
        cfg = self.config
        return {
            "config": {
                "complex_sizes": list(cfg.complex_sizes),
                "num_complexes": cfg.num_complexes,
                "shots_grid": list(cfg.shots_grid),
                "precision_grid": list(cfg.precision_grid),
                "homology_dimension": cfg.homology_dimension,
                "delta": cfg.delta,
                "max_complex_dimension": cfg.max_complex_dimension,
                "seed": cfg.seed,
                "backend": cfg.backend,
            },
            "errors": {
                f"n={n},shots={shots},t={precision}": [float(e) for e in values]
                for (n, shots, precision), values in self.errors.items()
            },
            "trend_summary": error_trend_summary(self),
        }


def _sample_zero_probability(distribution: np.ndarray, shots: int, rng: np.random.Generator) -> float:
    """Empirical probability of the all-zero readout from ``shots`` samples.

    Only the count of outcome 0 matters, so a single binomial draw with
    ``p = distribution[0]`` is statistically identical to sampling the full
    multinomial and reading one cell — and stays O(1) even for 10^6 shots.
    """
    return float(rng.binomial(shots, float(distribution[0]))) / shots


def run_shots_precision_experiment(config: ShotsPrecisionConfig | None = None) -> ShotsPrecisionResult:
    """Run the Fig. 3 sweep and return the per-group absolute errors."""
    cfg = config if config is not None else ShotsPrecisionConfig()
    result = ShotsPrecisionResult(config=cfg)
    for key_n in cfg.complex_sizes:
        for key_shots in cfg.shots_grid:
            for key_precision in cfg.precision_grid:
                result.errors[(key_n, key_shots, key_precision)] = []

    rngs = spawn_rngs(cfg.seed, len(cfg.complex_sizes))
    cache = SpectrumCache()
    for n, rng in zip(cfg.complex_sizes, rngs):
        for _ in range(cfg.num_complexes):
            complex_ = random_simplicial_complex(
                n, max_dimension=cfg.max_complex_dimension, seed=rng
            )
            k = cfg.homology_dimension
            exact = betti_number(complex_, k)
            num_k = complex_.num_simplices(k)
            if num_k == 0:
                # β_k = 0 and the estimate is identically 0: error 0 everywhere.
                for shots in cfg.shots_grid:
                    for precision in cfg.precision_grid:
                        result.errors[(n, shots, precision)].append(float(exact))
                continue
            laplacian = combinatorial_laplacian(complex_, k, sparse_format=True)
            if cfg.backend == "exact":
                # Analytical padded spectrum: only the small |S_k| x |S_k|
                # matrix is diagonalised (cached across repeated Laplacians),
                # and its eigenphases are shared across the precision grid.
                spectrum = padded_spectrum(laplacian, delta=cfg.delta, cache=cache)
                phases = spectrum.eigenphases()
                dim = 2**spectrum.num_qubits
                distributions = [
                    (qpe_outcome_distribution(phases, precision), dim)
                    for precision in cfg.precision_grid
                ]
            else:
                # Any other registered backend: one registry call per
                # precision setting yields the readout distribution.
                from repro.core.backends import EstimationProblem, get_backend
                from repro.core.config import QTDAConfig

                backend = get_backend(cfg.backend)
                problem = EstimationProblem(laplacian=laplacian, spectrum_cache=cache)
                distributions = []
                for precision in cfg.precision_grid:
                    config = QTDAConfig(
                        precision_qubits=precision, shots=None, delta=cfg.delta, backend=cfg.backend
                    )
                    outcome = backend.run(problem, config, rng)
                    distributions.append((outcome.distribution, 2**outcome.num_system_qubits))
            for precision, (distribution, dim) in zip(cfg.precision_grid, distributions):
                for shots in cfg.shots_grid:
                    p_zero = _sample_zero_probability(distribution, shots, rng)
                    estimate = dim * p_zero
                    result.errors[(n, shots, precision)].append(abs(estimate - exact))
    return result


def render_shots_precision_results(result: ShotsPrecisionResult) -> str:
    """Text boxplot tables, one block per complex size (mirroring Fig. 3a–c)."""
    blocks = []
    cfg = result.config
    for n in cfg.complex_sizes:
        groups = {}
        for shots in cfg.shots_grid:
            for precision in cfg.precision_grid:
                label = f"shots=1e{int(np.log10(shots))} t={precision}"
                groups[label] = result.errors[(n, shots, precision)]
        blocks.append(render_boxplot_table(groups, title=f"Fig. 3 analogue — n = {n} (absolute error |β̃ - β|)"))
    return "\n\n".join(blocks)


def error_trend_summary(result: ShotsPrecisionResult) -> Dict[str, object]:
    """Headline checks of the figure's qualitative claims.

    Returns a dictionary with, per complex size, the mean error at the
    smallest and largest resource settings — the paper's claims are that the
    error decreases when either shots or precision qubits increase, and that
    the error scale grows with ``n``.
    """
    cfg = result.config
    summary: Dict[str, object] = {}
    for n in cfg.complex_sizes:
        low = result.mean_error(n, cfg.shots_grid[0], cfg.precision_grid[0])
        high = result.mean_error(n, cfg.shots_grid[-1], cfg.precision_grid[-1])
        summary[f"n={n}"] = {"lowest_resources_mean_ae": low, "highest_resources_mean_ae": high}
    return summary
