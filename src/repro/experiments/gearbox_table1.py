"""Table 1 and the Section 5 time-series experiment — gearbox classification.

Two experiments share this module:

* :func:`run_timeseries_classification` — the first Section 5 experiment:
  500-sample windows of raw (synthetic) vibration signals are delay-embedded,
  Rips complexes are built and ``{β̃_0, β̃_1}`` features feed a classifier.
  The paper reports 100 % validation accuracy for this route.
* :func:`run_gearbox_table1` — the Table 1 experiment: 255 six-feature rows
  (51 healthy) are each turned into a four-point 3-D cloud, Betti features
  are estimated for 1–5 precision qubits at 100 shots, and logistic
  regression is trained on a 20 %/80 % train/validation split.  The table
  reports training accuracy, validation accuracy and the mean absolute error
  between estimated and exact Betti numbers per precision setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import BatchConfig, BatchFeatureEngine
from repro.core.config import QTDAConfig
from repro.core.hamiltonian import SpectrumCache
from repro.core.pipeline import PipelineConfig
from repro.datasets.features import feature_rows_to_point_clouds
from repro.datasets.gearbox import (
    GearboxDatasetConfig,
    generate_gearbox_dataset,
    generate_processed_gearbox_dataset,
)
from repro.ml.linear_model import LogisticRegression
from repro.ml.metrics import accuracy_score, mean_absolute_error
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import StandardScaler
from repro.tda.takens import TakensEmbedding
from repro.utils.ascii_plots import render_table
from repro.utils.rng import SeedLike, derive_seed


@dataclass
class GearboxExperimentConfig:
    """Parameters of the Table 1 reproduction.

    The defaults use the paper's numbers where the paper states them
    (255 rows, 51 healthy, 100 shots, precision 1–5, 20 %/80 % train/val
    split) and a reduced row count can be requested for quick benchmark runs
    via ``num_rows`` / ``num_healthy``.
    """

    num_rows: int = 255
    num_healthy: int = 51
    precision_grid: Tuple[int, ...] = (1, 2, 3, 4, 5)
    shots: int = 100
    train_fraction: float = 0.2
    epsilon: Optional[float] = None
    homology_dimensions: Tuple[int, ...] = (0, 1)
    window_length: int = 500
    seed: SeedLike = 2023
    #: Any registered estimator backend (repro.core.backends); the paper's
    #: sweep uses the analytical ``exact`` path.
    backend: str = "exact"
    #: Noise parametrisation forwarded to QTDAConfig (used by noisy-density
    #: and the trajectory route of the statevector backend).
    noise_channel: Optional[str] = None
    noise_strength: float = 0.0
    #: Circuit-execution route and trajectory-route knobs (QTDAConfig fields).
    circuit_engine: str = "auto"
    n_trajectories: int = 8
    readout_error: float = 0.0
    #: Circuit-engine sharding (QTDAConfig fields; bit-identical, throughput only).
    shards: int = 1
    shard_backend: str = "process"
    gearbox: GearboxDatasetConfig = field(default_factory=GearboxDatasetConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)

    @classmethod
    def quick(cls) -> "GearboxExperimentConfig":
        """A reduced configuration for fast benchmark runs."""
        return cls(num_rows=60, num_healthy=20, window_length=400)


@dataclass
class Table1Row:
    """One row of Table 1."""

    precision_qubits: int
    training_accuracy: float
    validation_accuracy: float
    mean_absolute_error: float


@dataclass
class Table1Result:
    """All rows plus the classical-feature reference accuracies."""

    rows: List[Table1Row]
    reference_training_accuracy: float
    reference_validation_accuracy: float
    epsilon: float
    config: GearboxExperimentConfig

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable view (the service API's experiment payload)."""
        cfg = self.config
        return {
            "rows": [
                {
                    "precision_qubits": row.precision_qubits,
                    "training_accuracy": row.training_accuracy,
                    "validation_accuracy": row.validation_accuracy,
                    "mean_absolute_error": row.mean_absolute_error,
                }
                for row in self.rows
            ],
            "reference_training_accuracy": self.reference_training_accuracy,
            "reference_validation_accuracy": self.reference_validation_accuracy,
            "epsilon": self.epsilon,
            "config": {
                "num_rows": cfg.num_rows,
                "num_healthy": cfg.num_healthy,
                "precision_grid": list(cfg.precision_grid),
                "shots": cfg.shots,
                "train_fraction": cfg.train_fraction,
                "seed": cfg.seed,
                "backend": cfg.backend,
                "noise_channel": cfg.noise_channel,
                "noise_strength": cfg.noise_strength,
                "circuit_engine": cfg.circuit_engine,
                "n_trajectories": cfg.n_trajectories,
                "readout_error": cfg.readout_error,
            },
        }


def _default_epsilon(clouds: Sequence[np.ndarray], percentile: float = 50.0) -> float:
    """Pick a grouping scale from the data: a percentile of pairwise distances.

    The paper fixes ε "using trial and error"; a percentile of the pooled
    inter-point distances is a robust, deterministic stand-in that keeps the
    complexes away from the empty/complete extremes.  The tabular (Table 1)
    route uses the median; the time-series route uses a lower percentile so
    the healthy attractor stays connected while the impulsive faulty clouds
    fragment — that contrast is what the Betti features pick up.
    """
    from repro.tda.distances import pairwise_distances

    samples = []
    for cloud in clouds:
        dist = pairwise_distances(cloud)
        n = dist.shape[0]
        if n > 1:
            iu, ju = np.triu_indices(n, k=1)
            samples.append(dist[iu, ju])
    pooled = np.concatenate(samples) if samples else np.array([1.0])
    return float(np.percentile(pooled, percentile))


def _betti_features(
    clouds: Sequence[np.ndarray],
    epsilon: float,
    homology_dimensions: Sequence[int],
    estimator_config: Optional[QTDAConfig],
    batch: Optional[BatchConfig] = None,
    spectrum_cache: Optional[SpectrumCache] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(estimated features, exact features) for each cloud, via the batch engine.

    When ``estimator_config`` is ``None`` only exact (classical) features are
    produced and both returned matrices are equal.  Passing the same
    ``spectrum_cache`` across calls lets a precision sweep over identical
    complexes reuse every Laplacian eigendecomposition.
    """
    engine = BatchFeatureEngine(
        PipelineConfig(
            epsilon=float(epsilon),
            homology_dimensions=tuple(homology_dimensions),
            use_quantum=estimator_config is not None,
            estimator=estimator_config if estimator_config is not None else QTDAConfig(),
        ),
        batch=batch,
        spectrum_cache=spectrum_cache,
    )
    return engine.features_and_exact(clouds, epsilon=float(epsilon))


def _fit_and_score(
    features: np.ndarray, labels: np.ndarray, train_fraction: float, seed
) -> Tuple[float, float]:
    """Train/validation accuracy of logistic regression on the given features."""
    x_train, x_val, y_train, y_val = train_test_split(
        features, labels, test_size=1.0 - train_fraction, seed=seed, stratify=True
    )
    scaler = StandardScaler()
    x_train_s = scaler.fit_transform(x_train)
    x_val_s = scaler.transform(x_val)
    model = LogisticRegression()
    model.fit(x_train_s, y_train)
    return (
        accuracy_score(y_train, model.predict(x_train_s)),
        accuracy_score(y_val, model.predict(x_val_s)),
    )


def run_gearbox_table1(config: GearboxExperimentConfig | None = None) -> Table1Result:
    """Reproduce Table 1 on the synthetic gearbox feature dataset."""
    cfg = config if config is not None else GearboxExperimentConfig()
    features, labels = generate_processed_gearbox_dataset(
        num_rows=cfg.num_rows,
        num_healthy=cfg.num_healthy,
        config=cfg.gearbox,
        window_length=cfg.window_length,
        seed=cfg.seed,
    )
    clouds = feature_rows_to_point_clouds(features)
    epsilon = cfg.epsilon if cfg.epsilon is not None else _default_epsilon(clouds)
    split_seed = derive_seed(cfg.seed, 77)
    # One spectrum cache for the whole sweep: the complexes are identical
    # across the reference pass and every precision setting, so with the
    # serial/threads backends each Laplacian is diagonalised exactly once.
    # (The processes backend cannot share it — workers keep per-process
    # caches whose lifetime is one _betti_features call; see DESIGN.md §7.)
    cache = SpectrumCache()

    # Reference: actual (classical) Betti numbers as features.
    exact_features, _ = _betti_features(
        clouds, epsilon, cfg.homology_dimensions, None, batch=cfg.batch, spectrum_cache=cache
    )
    ref_train, ref_val = _fit_and_score(exact_features, labels, cfg.train_fraction, split_seed)

    rows: List[Table1Row] = []
    for precision in cfg.precision_grid:
        estimator_config = QTDAConfig(
            precision_qubits=precision,
            shots=cfg.shots,
            backend=cfg.backend,
            noise_channel=cfg.noise_channel,
            noise_strength=cfg.noise_strength,
            circuit_engine=cfg.circuit_engine,
            n_trajectories=cfg.n_trajectories,
            readout_error=cfg.readout_error,
            shards=cfg.shards,
            shard_backend=cfg.shard_backend,
            seed=derive_seed(cfg.seed, precision),
        )
        estimated, exact = _betti_features(
            clouds,
            epsilon,
            cfg.homology_dimensions,
            estimator_config,
            batch=cfg.batch,
            spectrum_cache=cache,
        )
        train_acc, val_acc = _fit_and_score(estimated, labels, cfg.train_fraction, split_seed)
        mae = mean_absolute_error(exact.reshape(-1), estimated.reshape(-1))
        rows.append(
            Table1Row(
                precision_qubits=precision,
                training_accuracy=train_acc,
                validation_accuracy=val_acc,
                mean_absolute_error=mae,
            )
        )
    return Table1Result(
        rows=rows,
        reference_training_accuracy=ref_train,
        reference_validation_accuracy=ref_val,
        epsilon=epsilon,
        config=cfg,
    )


def render_table1(result: Table1Result) -> str:
    """Format the result the way Table 1 is printed in the paper."""
    rows = [
        [row.precision_qubits, f"{row.training_accuracy:.3f}", f"{row.validation_accuracy:.3f}", f"{row.mean_absolute_error:.3f}"]
        for row in result.rows
    ]
    table = render_table(
        ["Precision qubits", "Training accuracy", "Validation accuracy", "Mean absolute error"],
        rows,
        title="Table 1 analogue — gearbox features dataset (synthetic substitute)",
    )
    reference = (
        f"Reference (actual Betti numbers): training {result.reference_training_accuracy:.3f}, "
        f"validation {result.reference_validation_accuracy:.3f}  [epsilon = {result.epsilon:.3f}]"
    )
    return table + "\n" + reference


@dataclass
class TimeseriesClassificationResult:
    """Result of the raw time-series classification experiment (Sec. 5, ¶1)."""

    training_accuracy: float
    validation_accuracy: float
    num_windows: int
    epsilon: float
    feature_names: Tuple[str, ...]
    #: Step between window starts when windows overlap (``None`` reproduces
    #: the paper's independent windows).
    window_stride: Optional[int] = None
    #: Whether features came through the incremental streaming engine.
    streaming: bool = False
    #: Engine delta counters per class label when ``streaming`` (else empty).
    streaming_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Which synthetic workload produced the windows (``"gearbox"``/``"drift"``).
    signal: str = "gearbox"

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable view (the service API's experiment payload)."""
        return {
            "training_accuracy": self.training_accuracy,
            "validation_accuracy": self.validation_accuracy,
            "num_windows": self.num_windows,
            "epsilon": self.epsilon,
            "feature_names": list(self.feature_names),
            "window_stride": self.window_stride,
            "streaming": self.streaming,
            "streaming_stats": {k: dict(v) for k, v in self.streaming_stats.items()},
            "signal": self.signal,
        }


def run_timeseries_classification(
    num_samples_per_class: int = 30,
    window_length: int = 500,
    precision_qubits: int = 4,
    shots: int = 100,
    takens_dimension: int = 3,
    takens_delay: int = 4,
    takens_stride: int = 16,
    epsilon: Optional[float] = None,
    epsilon_percentile: float = 15.0,
    train_fraction: float = 0.5,
    seed: SeedLike = 7,
    use_quantum: bool = True,
    batch: Optional[BatchConfig] = None,
    backend: str = "exact",
    noise_channel: Optional[str] = None,
    noise_strength: float = 0.0,
    circuit_engine: str = "auto",
    n_trajectories: int = 8,
    readout_error: float = 0.0,
    shards: int = 1,
    shard_backend: str = "process",
    window_stride: Optional[int] = None,
    streaming: bool = False,
    signal: str = "gearbox",
) -> TimeseriesClassificationResult:
    """Classify healthy vs faulty gearbox windows from Betti-number features.

    Mirrors the first Section 5 experiment: Takens embedding of each window,
    Rips complex, ``{β̃_0, β̃_1}`` features, then a logistic-regression
    classifier.  The stride of the Takens embedding subsamples the embedded
    cloud so the Rips complexes stay small enough for the simulator.

    ``window_stride`` switches from the paper's independent windows to
    *overlapping* windows cut from one continuous vibration signal per class
    (step ``window_stride`` between window starts) — the condition-monitoring
    shape where consecutive windows share most of their samples.
    ``streaming`` additionally routes each class's signal through the
    incremental :class:`~repro.core.batch.StreamingFeatureEngine`
    (DESIGN.md §13) instead of rebuilding every window from scratch; it
    requires ``window_stride``.

    ``signal`` selects the workload: ``"gearbox"`` (the paper's healthy vs
    surface-fault vibration), ``"drift"`` (the
    :mod:`repro.datasets.synthetic` drift/anomaly stream — regime switch in
    both classes, injected transients in class 1) or ``"adversarial"`` (the
    drift stream pushed through the heavy-tailed-impulse + sensor-occlusion
    corruption wrapper — the robustness stress test).  ``shards``/
    ``shard_backend`` shard the circuit engine's batch axis per estimate
    (:mod:`repro.quantum.sharding`; bit-identical, throughput only).
    """
    if streaming and window_stride is None:
        raise ValueError("streaming=True requires window_stride (overlapping windows)")
    if signal not in ("gearbox", "drift", "adversarial"):
        raise ValueError(
            f"signal must be 'gearbox', 'drift' or 'adversarial', got {signal!r}"
        )
    signals: Optional[Dict[int, np.ndarray]] = None
    if window_stride is None:
        if signal == "drift":
            from repro.datasets.synthetic import generate_drift_dataset

            windows, labels = generate_drift_dataset(
                num_samples_per_class=num_samples_per_class,
                window_length=window_length,
                seed=seed,
            )
        elif signal == "adversarial":
            from repro.datasets.synthetic import generate_adversarial_dataset

            windows, labels = generate_adversarial_dataset(
                num_samples_per_class=num_samples_per_class,
                window_length=window_length,
                seed=seed,
            )
        else:
            windows, labels = generate_gearbox_dataset(
                num_samples_per_class=num_samples_per_class,
                window_length=window_length,
                seed=seed,
            )
    else:
        from repro.datasets.gearbox import generate_gearbox_signal
        from repro.datasets.synthetic import generate_adversarial_signal, generate_drift_signal
        from repro.datasets.windows import sliding_windows

        generate_signal = {
            "gearbox": generate_gearbox_signal,
            "drift": generate_drift_signal,
            "adversarial": generate_adversarial_signal,
        }[signal]
        # One continuous signal per class, long enough for exactly
        # num_samples_per_class overlapping windows at the requested stride.
        series_length = window_length + int(window_stride) * (num_samples_per_class - 1)
        signals = {
            label: generate_signal(
                series_length, bool(label), seed=derive_seed(seed, label + 1)
            )
            for label in (0, 1)
        }
        windows = np.vstack(
            [sliding_windows(signals[label], window_length, window_stride) for label in (0, 1)]
        )
        labels = np.repeat([0, 1], num_samples_per_class)
    embedder = TakensEmbedding(dimension=takens_dimension, delay=takens_delay, stride=takens_stride)
    clouds = [embedder.transform(window) for window in windows]
    eps = epsilon if epsilon is not None else _default_epsilon(clouds, percentile=epsilon_percentile)
    estimator_config = (
        QTDAConfig(
            precision_qubits=precision_qubits,
            shots=shots,
            backend=backend,
            noise_channel=noise_channel,
            noise_strength=noise_strength,
            circuit_engine=circuit_engine,
            n_trajectories=n_trajectories,
            readout_error=readout_error,
            shards=shards,
            shard_backend=shard_backend,
            seed=derive_seed(seed, 3),
        )
        if use_quantum
        else None
    )
    streaming_stats: Dict[str, Dict[str, int]] = {}
    if streaming:
        assert signals is not None
        from repro.core.batch import StreamingFeatureEngine

        pipeline = PipelineConfig(
            epsilon=float(eps),
            homology_dimensions=(0, 1),
            use_quantum=estimator_config is not None,
            estimator=estimator_config if estimator_config is not None else QTDAConfig(),
            takens_dimension=takens_dimension,
            takens_delay=takens_delay,
            takens_stride=takens_stride,
        )
        per_class = []
        for label in (0, 1):
            engine = StreamingFeatureEngine(
                pipeline, window_length=window_length, stride=int(window_stride), epsilons=(eps,)
            )
            per_class.append(engine.process(signals[label])[0])  # (W, F) at the single ε
            streaming_stats[str(label)] = {k: int(v) for k, v in engine.stats.items()}
        features = np.vstack(per_class)
    else:
        features, _ = _betti_features(clouds, eps, (0, 1), estimator_config, batch=batch)
    train_acc, val_acc = _fit_and_score(features, labels, train_fraction, derive_seed(seed, 99))
    return TimeseriesClassificationResult(
        training_accuracy=train_acc,
        validation_accuracy=val_acc,
        num_windows=len(clouds),
        epsilon=eps,
        feature_names=("betti_0", "betti_1"),
        window_stride=None if window_stride is None else int(window_stride),
        streaming=bool(streaming),
        streaming_stats=streaming_stats,
        signal=signal,
    )
