"""Fig. 4 — training accuracy vs the grouping scale ε.

The paper sweeps ε over linearly spaced values (in [3, 5] for its feature
scale), recomputes the *actual* Betti-number features of the training data at
each ε, refits the classifier 50 times on resampled training sets and plots
the mean training accuracy against ε.  The curve identifies the grouping
scale at which the topology of the two classes separates best.

Our synthetic gearbox features live on a different numeric scale than the SEU
features, so the sweep range defaults to quantiles of the observed pairwise
distances rather than the literal [3, 5]; the shape of the curve (a broad
maximum at intermediate ε, degradation at the extremes where the complex is
either disconnected dust or a complete simplex) is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import BatchConfig, BatchFeatureEngine
from repro.core.pipeline import PipelineConfig
from repro.datasets.features import feature_rows_to_point_clouds
from repro.datasets.gearbox import GearboxDatasetConfig, generate_processed_gearbox_dataset
from repro.experiments.gearbox_table1 import _fit_and_score
from repro.tda.distances import pairwise_distances
from repro.utils.ascii_plots import render_line_plot
from repro.utils.rng import SeedLike, derive_seed


@dataclass
class GroupingScaleConfig:
    """Parameters of the Fig. 4 sweep."""

    num_rows: int = 120
    num_healthy: int = 40
    num_scales: int = 9
    scale_range: Optional[Tuple[float, float]] = None
    repetitions: int = 10
    train_fraction: float = 0.2
    homology_dimensions: Tuple[int, ...] = (0, 1)
    window_length: int = 400
    seed: SeedLike = 31
    gearbox: GearboxDatasetConfig = field(default_factory=GearboxDatasetConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)

    @classmethod
    def paper_scale(cls) -> "GroupingScaleConfig":
        """Paper-sized sweep: 255 rows, 50 repetitions."""
        return cls(num_rows=255, num_healthy=51, repetitions=50, num_scales=11, window_length=500)


@dataclass
class GroupingScaleResult:
    """Mean training accuracy per grouping scale."""

    scales: np.ndarray
    mean_training_accuracy: np.ndarray
    std_training_accuracy: np.ndarray
    config: GroupingScaleConfig

    def best_scale(self) -> float:
        """The ε with the highest mean training accuracy."""
        return float(self.scales[int(np.argmax(self.mean_training_accuracy))])

    def as_dict(self) -> dict:
        """Machine-readable view (the service API's experiment payload)."""
        cfg = self.config
        return {
            "scales": [float(s) for s in self.scales],
            "mean_training_accuracy": [float(a) for a in self.mean_training_accuracy],
            "std_training_accuracy": [float(s) for s in self.std_training_accuracy],
            "best_scale": self.best_scale(),
            "config": {
                "num_rows": cfg.num_rows,
                "num_healthy": cfg.num_healthy,
                "num_scales": cfg.num_scales,
                "repetitions": cfg.repetitions,
                "train_fraction": cfg.train_fraction,
                "seed": cfg.seed,
            },
        }


def _scale_grid(clouds: Sequence[np.ndarray], cfg: GroupingScaleConfig) -> np.ndarray:
    if cfg.scale_range is not None:
        lo, hi = cfg.scale_range
    else:
        samples = []
        for cloud in clouds:
            dist = pairwise_distances(cloud)
            n = dist.shape[0]
            if n > 1:
                iu, ju = np.triu_indices(n, k=1)
                samples.append(dist[iu, ju])
        pooled = np.concatenate(samples)
        lo, hi = np.percentile(pooled, [10, 90])
    return np.linspace(float(lo), float(hi), cfg.num_scales)


def run_grouping_scale_experiment(config: GroupingScaleConfig | None = None) -> GroupingScaleResult:
    """Run the ε sweep with exact (classical) Betti features, as in Fig. 4."""
    cfg = config if config is not None else GroupingScaleConfig()
    features, labels = generate_processed_gearbox_dataset(
        num_rows=cfg.num_rows,
        num_healthy=cfg.num_healthy,
        config=cfg.gearbox,
        window_length=cfg.window_length,
        seed=cfg.seed,
    )
    clouds = feature_rows_to_point_clouds(features)
    scales = _scale_grid(clouds, cfg)
    # ε-sweep fast path: every cloud's distance matrix is computed once and
    # only the neighbourhood graph/complex is rebuilt per grouping scale.
    engine = BatchFeatureEngine(
        PipelineConfig(homology_dimensions=cfg.homology_dimensions, use_quantum=False),
        batch=cfg.batch,
    )
    sweep_features = engine.sweep(clouds, scales)
    means: List[float] = []
    stds: List[float] = []
    for scale_index, epsilon in enumerate(scales):
        betti_features = sweep_features[scale_index]
        accuracies = []
        for rep in range(cfg.repetitions):
            train_acc, _ = _fit_and_score(
                betti_features,
                labels,
                cfg.train_fraction,
                derive_seed(cfg.seed, scale_index, rep),
            )
            accuracies.append(train_acc)
        means.append(float(np.mean(accuracies)))
        stds.append(float(np.std(accuracies)))
    return GroupingScaleResult(
        scales=scales,
        mean_training_accuracy=np.asarray(means),
        std_training_accuracy=np.asarray(stds),
        config=cfg,
    )


def render_grouping_scale_results(result: GroupingScaleResult) -> str:
    """ASCII line plot plus the per-ε table (Fig. 4 analogue)."""
    plot = render_line_plot(
        result.scales,
        result.mean_training_accuracy,
        x_label="grouping scale ε",
        y_label="training accuracy",
    )
    rows = "\n".join(
        f"  ε = {eps:7.3f}   accuracy = {acc:.3f} ± {std:.3f}"
        for eps, acc, std in zip(result.scales, result.mean_training_accuracy, result.std_training_accuracy)
    )
    return f"Fig. 4 analogue — training accuracy vs grouping scale\n{plot}\n{rows}\nbest ε = {result.best_scale():.3f}"
