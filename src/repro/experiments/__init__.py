"""Experiment drivers — one per table/figure of the paper.

Each driver exposes a ``run_*`` function returning plain data structures plus
a ``render_*`` helper that formats them the way the paper presents them
(boxplot summaries for Fig. 3, an accuracy table for Table 1, an
accuracy-vs-ε curve for Fig. 4, and the step-by-step worked example of
Appendix A).  The benchmark harness in ``benchmarks/`` calls these drivers
with reduced default grids; the full paper-scale grids are reachable through
the same functions' parameters.
"""

from repro.experiments.shots_precision import (
    ShotsPrecisionConfig,
    run_shots_precision_experiment,
    render_shots_precision_results,
)
from repro.experiments.gearbox_table1 import (
    GearboxExperimentConfig,
    run_gearbox_table1,
    render_table1,
    run_timeseries_classification,
)
from repro.experiments.grouping_scale import (
    GroupingScaleConfig,
    run_grouping_scale_experiment,
    render_grouping_scale_results,
)
from repro.experiments.worked_example import run_worked_example, render_worked_example

__all__ = [
    "ShotsPrecisionConfig",
    "run_shots_precision_experiment",
    "render_shots_precision_results",
    "GearboxExperimentConfig",
    "run_gearbox_table1",
    "render_table1",
    "run_timeseries_classification",
    "GroupingScaleConfig",
    "run_grouping_scale_experiment",
    "render_grouping_scale_results",
    "run_worked_example",
    "render_worked_example",
]
