"""Simplices.

A ``k``-simplex is a set of ``k + 1`` vertices; following the paper the
vertices are stored in ascending order ``[j_0, j_1, ..., j_k]`` and that order
is kept everywhere (it fixes the signs of the boundary operator, Eqs. 1–2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple


class Simplex:
    """An ordered simplex ``[v_0 < v_1 < ... < v_k]``.

    Immutable and hashable so it can be used as a dictionary key when indexing
    boundary-matrix columns.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Iterable[int]):
        verts = tuple(sorted(int(v) for v in vertices))
        if len(verts) == 0:
            raise ValueError("A simplex needs at least one vertex")
        if len(set(verts)) != len(verts):
            raise ValueError(f"Simplex vertices must be distinct, got {verts}")
        if any(v < 0 for v in verts):
            raise ValueError("Simplex vertices must be non-negative integers")
        self._vertices = verts

    # -- basic properties ---------------------------------------------------
    @property
    def vertices(self) -> Tuple[int, ...]:
        """The vertices in ascending order."""
        return self._vertices

    @property
    def dimension(self) -> int:
        """``k`` for a ``k``-simplex (|vertices| - 1)."""
        return len(self._vertices) - 1

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[int]:
        return iter(self._vertices)

    def __contains__(self, vertex: int) -> bool:
        return int(vertex) in self._vertices

    # -- combinatorics ------------------------------------------------------
    def faces(self) -> List["Simplex"]:
        """The ``k + 1`` codimension-1 faces (each omits one vertex).

        Ordered so that ``faces()[t]`` omits vertex ``v_t``, matching the
        ``s_{k-1}(t)`` notation of Eq. (2); the boundary operator attaches the
        sign ``(-1)^t`` to the ``t``-th entry.
        """
        if self.dimension == 0:
            return []
        return [
            Simplex(self._vertices[:t] + self._vertices[t + 1 :])
            for t in range(len(self._vertices))
        ]

    def boundary(self) -> List[Tuple[int, "Simplex"]]:
        """Signed boundary ``∂s = Σ_t (-1)^t s(t)`` as (sign, face) pairs."""
        return [((-1) ** t, face) for t, face in enumerate(self.faces())]

    def all_subsimplices(self) -> List["Simplex"]:
        """Every non-empty subset of the vertices as a simplex (includes self)."""
        from itertools import combinations

        out: List[Simplex] = []
        for size in range(1, len(self._vertices) + 1):
            out.extend(Simplex(c) for c in combinations(self._vertices, size))
        return out

    def is_face_of(self, other: "Simplex") -> bool:
        """Whether this simplex's vertex set is contained in ``other``'s."""
        return set(self._vertices).issubset(other._vertices)

    # -- dunder plumbing ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Simplex):
            return self._vertices == other._vertices
        if isinstance(other, (tuple, list, frozenset, set)):
            return self._vertices == tuple(sorted(int(v) for v in other))
        return NotImplemented

    def __lt__(self, other: "Simplex") -> bool:
        if not isinstance(other, Simplex):
            return NotImplemented
        # Order by dimension first, then lexicographically — the ordering used
        # for boundary-matrix columns throughout the package.
        return (self.dimension, self._vertices) < (other.dimension, other._vertices)

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"Simplex{list(self._vertices)}"
