"""Vietoris–Rips complex construction (the GUDHI ``RipsComplex`` substitute).

Given a point cloud (or a precomputed distance matrix) and a grouping scale
``ε``, the Vietoris–Rips complex contains a ``k``-simplex for every set of
``k + 1`` points that are *pairwise* within ``ε``.  Equivalently, it is the
clique (flag) complex of the ε-neighbourhood graph — which is how it is built
here, reusing :func:`repro.tda.distances.epsilon_graph` and clique
enumeration on the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.tda.complexes import SimplicialComplex
from repro.tda.distances import MetricLike, epsilon_graph, pairwise_distances
from repro.utils.validation import check_integer


@dataclass
class RipsComplex:
    """Vietoris–Rips complex of a point cloud at a fixed grouping scale.

    Attributes
    ----------
    distance_matrix:
        Symmetric ``(n, n)`` matrix of pairwise distances.
    epsilon:
        Grouping scale ``ε``; pairs at distance <= ``ε`` are connected.
    max_dimension:
        Largest simplex dimension to enumerate (2 is enough for ``β_0`` and
        ``β_1``, the features used throughout the paper).
    """

    distance_matrix: np.ndarray
    epsilon: float
    max_dimension: int = 2
    _complex: Optional[SimplicialComplex] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        dist = np.asarray(self.distance_matrix, dtype=float)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("distance_matrix must be a square matrix")
        if not np.allclose(dist, dist.T, atol=1e-9):
            raise ValueError("distance_matrix must be symmetric")
        if float(self.epsilon) < 0:
            raise ValueError("epsilon must be non-negative")
        self.distance_matrix = dist
        self.epsilon = float(self.epsilon)
        self.max_dimension = check_integer(self.max_dimension, "max_dimension", minimum=0)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        epsilon: float,
        max_dimension: int = 2,
        metric: MetricLike = "euclidean",
    ) -> "RipsComplex":
        """Build from an ``(n, m)`` point cloud using ``metric`` distances."""
        return cls(pairwise_distances(points, metric=metric), epsilon, max_dimension)

    @classmethod
    def from_distance_matrix(
        cls, distance_matrix: np.ndarray, epsilon: float, max_dimension: int = 2
    ) -> "RipsComplex":
        """Build from a precomputed distance matrix."""
        return cls(np.asarray(distance_matrix, dtype=float), epsilon, max_dimension)

    # -- API --------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return int(self.distance_matrix.shape[0])

    def graph(self):
        """The ε-neighbourhood graph ``G_ε`` underlying the complex."""
        return epsilon_graph(self.distance_matrix, self.epsilon, is_distance_matrix=True)

    def complex(self) -> SimplicialComplex:
        """The simplicial complex ``K_ε`` (cached after the first call)."""
        if self._complex is None:
            self._complex = SimplicialComplex.from_graph(self.graph(), max_dimension=self.max_dimension)
        return self._complex

    def num_simplices(self, dimension: Optional[int] = None) -> int:
        """Simplex count of ``K_ε`` (all dimensions or a single one)."""
        return self.complex().num_simplices(dimension)

    def with_epsilon(self, epsilon: float) -> "RipsComplex":
        """A new :class:`RipsComplex` at a different ε sharing this distance matrix.

        The ε-sweep fast path: the expensive ``cdist`` call happens once and
        only the neighbourhood graph / complex is rebuilt per scale.
        """
        return replace(self, epsilon=float(epsilon), _complex=None)

    def flag_arrays(self) -> "FlagComplexArrays":
        """Vectorised array view of the complex (see :class:`FlagComplexArrays`)."""
        return flag_complex_arrays(self.distance_matrix, self.epsilon, self.max_dimension)

    def __repr__(self) -> str:
        return (
            f"RipsComplex(num_points={self.num_points}, epsilon={self.epsilon:.4g}, "
            f"max_dimension={self.max_dimension})"
        )


@dataclass(frozen=True)
class FlagComplexArrays:
    """A Vietoris–Rips (flag) complex as plain integer arrays, up to dimension 2.

    The batched feature engine avoids per-simplex Python objects on its hot
    path: vertices are implicitly ``0..num_points-1`` and edges/triangles are
    integer arrays listed in the *same lexicographic order* that
    :class:`repro.tda.complexes.SimplicialComplex` uses, so boundary matrices
    and Laplacians built from either representation are identical entry for
    entry (the equivalence the test suite pins down).
    """

    num_points: int
    edges: np.ndarray      # (|S_1|, 2) int64, rows lexicographically sorted
    triangles: np.ndarray  # (|S_2|, 3) int64, rows lexicographically sorted
    max_dimension: int

    def num_simplices(self, dimension: Optional[int] = None) -> int:
        counts = {0: self.num_points, 1: len(self.edges), 2: len(self.triangles)}
        if dimension is not None:
            return counts.get(int(dimension), 0)
        return sum(counts.values())

    def f_vector(self) -> Tuple[int, ...]:
        counts = [self.num_points, len(self.edges), len(self.triangles)]
        while len(counts) > 1 and counts[-1] == 0:
            counts.pop()
        return tuple(counts) if self.num_points else ()

    def to_complex(self) -> SimplicialComplex:
        """Materialise the equivalent :class:`SimplicialComplex` (slow path)."""
        simplices: List[Tuple[int, ...]] = [(v,) for v in range(self.num_points)]
        simplices.extend(tuple(int(v) for v in row) for row in self.edges)
        simplices.extend(tuple(int(v) for v in row) for row in self.triangles)
        return SimplicialComplex(simplices)


def flag_complex_arrays(
    distance_matrix: np.ndarray, epsilon: float, max_dimension: int = 2
) -> FlagComplexArrays:
    """Vectorised flag-complex enumeration from a precomputed distance matrix.

    Fast counterpart of ``SimplicialComplex.from_graph(epsilon_graph(...))``
    for the dimensions the paper uses (``max_dimension <= 2``); higher
    dimensions must go through the generic clique-enumeration route.
    """
    dist = np.asarray(distance_matrix, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("distance_matrix must be a square matrix")
    if float(epsilon) < 0:
        raise ValueError("epsilon must be non-negative")
    max_dimension = check_integer(max_dimension, "max_dimension", minimum=0)
    if max_dimension > 2:
        raise ValueError(
            "flag_complex_arrays supports max_dimension <= 2; "
            "use RipsComplex.complex() for higher-dimensional skeletons"
        )
    n = dist.shape[0]
    adjacency = dist <= float(epsilon)
    np.fill_diagonal(adjacency, False)
    if max_dimension >= 1 and n > 1:
        iu, ju = np.triu_indices(n, k=1)
        mask = adjacency[iu, ju]
        edges = np.stack([iu[mask], ju[mask]], axis=1).astype(np.int64)
    else:
        edges = np.zeros((0, 2), dtype=np.int64)
    triangles: np.ndarray
    if max_dimension >= 2 and len(edges):
        # Common neighbours v > j of every edge (i, j) at once: row e of
        # ``candidates`` flags the vertices closing a triangle over edge e.
        # np.nonzero walks rows (edges, already lexicographic) then columns
        # (v ascending), so the triangles (i, j, v) come out in exactly the
        # sorted order SimplicialComplex uses for 2-simplices.
        candidates = adjacency[edges[:, 0]] & adjacency[edges[:, 1]]
        candidates &= np.arange(n)[None, :] > edges[:, 1][:, None]
        edge_rows, third = np.nonzero(candidates)
        triangles = np.empty((len(edge_rows), 3), dtype=np.int64)
        triangles[:, :2] = edges[edge_rows]
        triangles[:, 2] = third
    else:
        triangles = np.zeros((0, 3), dtype=np.int64)
    return FlagComplexArrays(
        num_points=n, edges=edges, triangles=triangles, max_dimension=max_dimension
    )


def rips_sweep(
    points_or_distances: np.ndarray,
    epsilons: Sequence[float] | Iterable[float],
    max_dimension: int = 2,
    metric: MetricLike = "euclidean",
    is_distance_matrix: bool = False,
) -> List[RipsComplex]:
    """Rips complexes of one cloud at several grouping scales, sharing distances.

    The distance matrix is computed once; each returned :class:`RipsComplex`
    rebuilds only the ε-neighbourhood graph (Fig. 4's sweep pattern).
    """
    if is_distance_matrix:
        dist = np.asarray(points_or_distances, dtype=float)
    else:
        dist = pairwise_distances(points_or_distances, metric=metric)
    return [RipsComplex(dist, float(eps), max_dimension) for eps in epsilons]


def rips_complex(
    points: np.ndarray,
    epsilon: float,
    max_dimension: int = 2,
    metric: MetricLike = "euclidean",
) -> SimplicialComplex:
    """One-call convenience: the Vietoris–Rips complex of ``points`` at scale ``epsilon``."""
    return RipsComplex.from_points(points, epsilon, max_dimension, metric).complex()
