"""Vietoris–Rips complex construction (the GUDHI ``RipsComplex`` substitute).

Given a point cloud (or a precomputed distance matrix) and a grouping scale
``ε``, the Vietoris–Rips complex contains a ``k``-simplex for every set of
``k + 1`` points that are *pairwise* within ``ε``.  Equivalently, it is the
clique (flag) complex of the ε-neighbourhood graph — which is how it is built
here, reusing :func:`repro.tda.distances.epsilon_graph` and clique
enumeration on the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.tda.complexes import SimplicialComplex
from repro.tda.distances import MetricLike, epsilon_graph, pairwise_distances
from repro.utils.validation import check_integer


@dataclass
class RipsComplex:
    """Vietoris–Rips complex of a point cloud at a fixed grouping scale.

    Attributes
    ----------
    distance_matrix:
        Symmetric ``(n, n)`` matrix of pairwise distances.
    epsilon:
        Grouping scale ``ε``; pairs at distance <= ``ε`` are connected.
    max_dimension:
        Largest simplex dimension to enumerate (2 is enough for ``β_0`` and
        ``β_1``, the features used throughout the paper).
    """

    distance_matrix: np.ndarray
    epsilon: float
    max_dimension: int = 2
    _complex: Optional[SimplicialComplex] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        dist = np.asarray(self.distance_matrix, dtype=float)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("distance_matrix must be a square matrix")
        if not np.allclose(dist, dist.T, atol=1e-9):
            raise ValueError("distance_matrix must be symmetric")
        if float(self.epsilon) < 0:
            raise ValueError("epsilon must be non-negative")
        self.distance_matrix = dist
        self.epsilon = float(self.epsilon)
        self.max_dimension = check_integer(self.max_dimension, "max_dimension", minimum=0)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        epsilon: float,
        max_dimension: int = 2,
        metric: MetricLike = "euclidean",
    ) -> "RipsComplex":
        """Build from an ``(n, m)`` point cloud using ``metric`` distances."""
        return cls(pairwise_distances(points, metric=metric), epsilon, max_dimension)

    @classmethod
    def from_distance_matrix(
        cls, distance_matrix: np.ndarray, epsilon: float, max_dimension: int = 2
    ) -> "RipsComplex":
        """Build from a precomputed distance matrix."""
        return cls(np.asarray(distance_matrix, dtype=float), epsilon, max_dimension)

    # -- API --------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return int(self.distance_matrix.shape[0])

    def graph(self):
        """The ε-neighbourhood graph ``G_ε`` underlying the complex."""
        return epsilon_graph(self.distance_matrix, self.epsilon, is_distance_matrix=True)

    def complex(self) -> SimplicialComplex:
        """The simplicial complex ``K_ε`` (cached after the first call)."""
        if self._complex is None:
            self._complex = SimplicialComplex.from_graph(self.graph(), max_dimension=self.max_dimension)
        return self._complex

    def num_simplices(self, dimension: Optional[int] = None) -> int:
        """Simplex count of ``K_ε`` (all dimensions or a single one)."""
        return self.complex().num_simplices(dimension)

    def __repr__(self) -> str:
        return (
            f"RipsComplex(num_points={self.num_points}, epsilon={self.epsilon:.4g}, "
            f"max_dimension={self.max_dimension})"
        )


def rips_complex(
    points: np.ndarray,
    epsilon: float,
    max_dimension: int = 2,
    metric: MetricLike = "euclidean",
) -> SimplicialComplex:
    """One-call convenience: the Vietoris–Rips complex of ``points`` at scale ``epsilon``."""
    return RipsComplex.from_points(points, epsilon, max_dimension, metric).complex()
