"""Topological-data-analysis substrate (GUDHI / giotto-tda substitute).

Provides everything Section 2 of the paper needs:

* point-cloud geometry: pairwise distances and epsilon-neighbourhood graphs
  (:mod:`repro.tda.distances`);
* simplicial complexes and the Vietoris–Rips construction
  (:mod:`repro.tda.simplex`, :mod:`repro.tda.complexes`, :mod:`repro.tda.rips`);
* restricted boundary operators, combinatorial Laplacians and classical Betti
  numbers (:mod:`repro.tda.boundary`, :mod:`repro.tda.laplacian`,
  :mod:`repro.tda.betti`, :mod:`repro.tda.homology`);
* persistent homology for the paper's future-work extension
  (:mod:`repro.tda.filtration`, :mod:`repro.tda.persistence`);
* Takens delay embedding of time series (:mod:`repro.tda.takens`);
* incremental sliding-window geometry — distance matrices and flag complexes
  maintained under point enter/leave (:mod:`repro.tda.incremental`);
* random simplicial complexes for the Section 4 experiments
  (:mod:`repro.tda.random_complexes`).
"""

from repro.tda.distances import pairwise_distances, epsilon_graph, epsilon_edges
from repro.tda.simplex import Simplex
from repro.tda.complexes import SimplicialComplex
from repro.tda.rips import RipsComplex, rips_complex
from repro.tda.boundary import boundary_matrix, boundary_operators
from repro.tda.laplacian import (
    combinatorial_laplacian,
    combinatorial_laplacian_operator,
    laplacian_operator_from_flag_arrays,
    laplacian_spectrum,
)
from repro.tda.betti import betti_number, betti_numbers, euler_characteristic
from repro.tda.homology import betti_numbers_gf2, boundary_rank_gf2
from repro.tda.takens import TakensEmbedding, takens_embedding
from repro.tda.incremental import (
    FlagComplexDelta,
    IncrementalFlagComplex,
    SlidingDistanceMatrix,
)
from repro.tda.filtration import Filtration, rips_filtration
from repro.tda.persistence import PersistenceDiagram, persistent_betti_number, persistence_diagrams
from repro.tda.random_complexes import random_simplicial_complex, random_point_cloud_complex

__all__ = [
    "pairwise_distances",
    "epsilon_graph",
    "epsilon_edges",
    "Simplex",
    "SimplicialComplex",
    "RipsComplex",
    "rips_complex",
    "boundary_matrix",
    "boundary_operators",
    "combinatorial_laplacian",
    "combinatorial_laplacian_operator",
    "laplacian_operator_from_flag_arrays",
    "laplacian_spectrum",
    "betti_number",
    "betti_numbers",
    "euler_characteristic",
    "betti_numbers_gf2",
    "boundary_rank_gf2",
    "TakensEmbedding",
    "takens_embedding",
    "FlagComplexDelta",
    "IncrementalFlagComplex",
    "SlidingDistanceMatrix",
    "Filtration",
    "rips_filtration",
    "PersistenceDiagram",
    "persistent_betti_number",
    "persistence_diagrams",
    "random_simplicial_complex",
    "random_point_cloud_complex",
]
