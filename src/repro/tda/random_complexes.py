"""Random simplicial complexes for the Section 4 experiments.

The paper evaluates the QPE estimator on "randomly generated simplicial
complexes" for ``n ∈ {5, 10, 15}`` vertices (Fig. 3) without specifying the
generator.  Two natural generators are provided:

* :func:`random_simplicial_complex` — an Erdős–Rényi–style flag complex: a
  random graph ``G(n, p)`` whose clique complex (up to ``max_dimension``) is
  taken.  This matches the spirit of "random complex on n points" and always
  yields a valid (downward-closed) complex.
* :func:`random_point_cloud_complex` — a Vietoris–Rips complex of uniformly
  random points at a random grouping scale, the construction actually used in
  the paper's machine-learning pipeline.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx
import numpy as np

from repro.tda.complexes import SimplicialComplex
from repro.tda.rips import RipsComplex
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_integer


def random_simplicial_complex(
    num_vertices: int,
    edge_probability: float | None = None,
    max_dimension: int = 2,
    seed: SeedLike = None,
    ensure_nontrivial: bool = True,
) -> SimplicialComplex:
    """Random flag complex on ``num_vertices`` vertices.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.
    edge_probability:
        Edge probability of the underlying ``G(n, p)`` graph; when ``None`` a
        probability is drawn uniformly from ``[0.3, 0.7]`` so that repeated
        draws cover sparse and dense regimes (mirroring "random simplicial
        complexes" without a fixed density).
    max_dimension:
        Highest simplex dimension kept in the clique complex.
    seed:
        RNG seed.
    ensure_nontrivial:
        Redraw (up to a few times) if the complex has no simplices of
        dimension >= 1, so that ``Δ_1`` is not empty for the k=1 experiments.
    """
    n = check_integer(num_vertices, "num_vertices", minimum=1)
    rng = as_rng(seed)
    attempts = 8 if ensure_nontrivial else 1
    complex_ = None
    for _ in range(attempts):
        p = float(edge_probability) if edge_probability is not None else float(rng.uniform(0.3, 0.7))
        if not 0.0 <= p <= 1.0:
            raise ValueError("edge_probability must lie in [0, 1]")
        adjacency = rng.random((n, n)) < p
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        iu, ju = np.triu_indices(n, k=1)
        for i, j in zip(iu, ju):
            if adjacency[i, j]:
                graph.add_edge(int(i), int(j))
        complex_ = SimplicialComplex.from_graph(graph, max_dimension=max_dimension)
        if not ensure_nontrivial or complex_.num_simplices(1) > 0:
            return complex_
    return complex_


def random_point_cloud_complex(
    num_points: int,
    ambient_dimension: int = 3,
    epsilon: float | None = None,
    max_dimension: int = 2,
    seed: SeedLike = None,
) -> Tuple[SimplicialComplex, np.ndarray, float]:
    """Vietoris–Rips complex of a random point cloud.

    Points are drawn uniformly from the unit cube; when ``epsilon`` is not
    given it is drawn uniformly between the 25th and 75th percentile of the
    pairwise distances, which keeps the complex away from the trivial
    extremes (fully disconnected / complete).

    Returns
    -------
    (complex, points, epsilon)
    """
    n = check_integer(num_points, "num_points", minimum=1)
    dim = check_integer(ambient_dimension, "ambient_dimension", minimum=1)
    rng = as_rng(seed)
    points = rng.random((n, dim))
    rips = None
    if epsilon is None:
        from repro.tda.distances import pairwise_distances

        dist = pairwise_distances(points)
        if n > 1:
            iu, ju = np.triu_indices(n, k=1)
            lo, hi = np.percentile(dist[iu, ju], [25, 75])
            epsilon = float(rng.uniform(lo, hi))
        else:
            epsilon = 0.0
    rips = RipsComplex.from_points(points, float(epsilon), max_dimension=max_dimension)
    return rips.complex(), points, float(epsilon)
