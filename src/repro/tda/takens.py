"""Takens delay embedding (the giotto-tda ``TakensEmbedding`` substitute).

Section 5 of the paper converts each 500-sample gearbox time-series window
into a point cloud with a Takens embedding before building the Rips complex.
The embedding maps a scalar series ``x_0, x_1, ...`` to the points

    y_i = (x_i, x_{i+τ}, x_{i+2τ}, ..., x_{i+(d-1)τ}),   i = 0, s, 2s, ...

with embedding dimension ``d``, time delay ``τ`` and stride ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive_integer


def takens_embedding(series: np.ndarray, dimension: int = 3, delay: int = 1, stride: int = 1) -> np.ndarray:
    """Delay-embed a 1-D time series into ``dimension``-dimensional points.

    Parameters
    ----------
    series:
        1-D array of samples.
    dimension:
        Embedding dimension ``d`` (number of coordinates per point).
    delay:
        Time delay ``τ`` between successive coordinates.
    stride:
        Step between the starting indices of consecutive embedded points.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_points, dimension)``; raises if the series is too
        short to produce a single point.
    """
    x = np.asarray(series, dtype=float).reshape(-1)
    d = check_positive_integer(dimension, "dimension")
    tau = check_positive_integer(delay, "delay")
    s = check_positive_integer(stride, "stride")
    window = (d - 1) * tau + 1
    if x.size < window:
        raise ValueError(
            f"Series of length {x.size} is too short for dimension={d}, delay={tau} "
            f"(needs at least {window} samples)"
        )
    n_points = (x.size - window) // s + 1
    # Vectorised gather: index matrix of shape (n_points, d).
    starts = np.arange(n_points) * s
    offsets = np.arange(d) * tau
    indices = starts[:, None] + offsets[None, :]
    return x[indices]


@dataclass
class TakensEmbedding:
    """Configurable Takens embedding, mirroring giotto-tda's estimator API.

    Examples
    --------
    >>> import numpy as np
    >>> emb = TakensEmbedding(dimension=2, delay=3)
    >>> emb.transform(np.arange(10.0)).shape
    (7, 2)
    """

    dimension: int = 3
    delay: int = 1
    stride: int = 1

    def __post_init__(self):
        self.dimension = check_positive_integer(self.dimension, "dimension")
        self.delay = check_positive_integer(self.delay, "delay")
        self.stride = check_positive_integer(self.stride, "stride")

    @property
    def window_size(self) -> int:
        """Minimum series length needed to emit one embedded point."""
        return (self.dimension - 1) * self.delay + 1

    def transform(self, series: np.ndarray) -> np.ndarray:
        """Embed one 1-D series (see :func:`takens_embedding`)."""
        return takens_embedding(series, self.dimension, self.delay, self.stride)

    def transform_batch(self, batch: np.ndarray) -> list:
        """Embed each row of a 2-D array; returns a list of point clouds."""
        arr = np.asarray(batch, dtype=float)
        if arr.ndim != 2:
            raise ValueError("batch must be a 2-D array (one series per row)")
        return [self.transform(row) for row in arr]


def optimal_delay_autocorrelation(series: np.ndarray, max_delay: int = 50) -> int:
    """Heuristic delay choice: first zero crossing (or 1/e decay) of the autocorrelation.

    A standard rule of thumb in nonlinear time-series analysis; exposed so the
    gearbox example can pick a sensible ``τ`` automatically instead of
    hard-coding one.
    """
    x = np.asarray(series, dtype=float).reshape(-1)
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom == 0:
        return 1
    threshold = 1.0 / np.e
    max_delay = min(int(max_delay), x.size - 1)
    for tau in range(1, max_delay + 1):
        corr = float(np.dot(x[:-tau], x[tau:])) / denom
        if corr <= threshold:
            return tau
    return max_delay
