"""Filtered simplicial complexes.

A filtration assigns each simplex a real "appearance" value such that every
face appears no later than the simplices it bounds.  The Vietoris–Rips
filtration assigns every simplex the largest pairwise distance among its
vertices — sweeping the grouping scale ``ε`` then recovers the family of
complexes ``K_ε`` that Section 2 of the paper considers, and is the input to
persistent homology (the paper's announced future-work direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.tda.complexes import SimplicialComplex
from repro.tda.distances import MetricLike, pairwise_distances
from repro.tda.simplex import Simplex
from repro.utils.validation import check_integer


@dataclass
class Filtration:
    """A list of (value, simplex) pairs sorted by appearance value.

    The ordering breaks ties by simplex dimension (faces first) and then
    lexicographically, which guarantees a valid filtration order whenever the
    values themselves are monotone under taking faces.
    """

    entries: List[Tuple[float, Simplex]]

    def __post_init__(self):
        cleaned = [(float(v), s if isinstance(s, Simplex) else Simplex(s)) for v, s in self.entries]
        cleaned.sort(key=lambda e: (e[0], e[1].dimension, e[1].vertices))
        self.entries = cleaned
        self._validate_monotone()

    def _validate_monotone(self) -> None:
        values: Dict[Simplex, float] = {s: v for v, s in self.entries}
        for value, simplex in self.entries:
            for face in simplex.faces():
                if face not in values:
                    raise ValueError(f"Filtration is missing face {face} of {simplex}")
                if values[face] > value + 1e-12:
                    raise ValueError(
                        f"Filtration is not monotone: face {face} appears at {values[face]} "
                        f"after {simplex} at {value}"
                    )

    # -- accessors ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def simplices(self) -> List[Simplex]:
        """The simplices in filtration order."""
        return [s for _, s in self.entries]

    def values(self) -> np.ndarray:
        """The appearance values in filtration order."""
        return np.array([v for v, _ in self.entries], dtype=float)

    def max_dimension(self) -> int:
        return max((s.dimension for _, s in self.entries), default=-1)

    def complex_at(self, epsilon: float) -> SimplicialComplex:
        """The sub-complex of simplices that have appeared by value ``epsilon``."""
        simplices = [s for v, s in self.entries if v <= epsilon + 1e-12]
        if not simplices:
            raise ValueError(f"No simplices have appeared at epsilon={epsilon}")
        return SimplicialComplex(simplices)

    def critical_values(self) -> np.ndarray:
        """Sorted unique appearance values (the scales where the complex changes)."""
        return np.unique(self.values())


def rips_filtration(
    points: np.ndarray,
    max_dimension: int = 2,
    max_scale: float | None = None,
    metric: MetricLike = "euclidean",
) -> Filtration:
    """The Vietoris–Rips filtration of a point cloud.

    Each simplex's appearance value is the largest pairwise distance among
    its vertices (vertices appear at 0).  Simplices with appearance value
    above ``max_scale`` are dropped; by default every simplex up to
    ``max_dimension`` is kept.
    """
    max_dimension = check_integer(max_dimension, "max_dimension", minimum=0)
    dist = pairwise_distances(points, metric=metric)
    n = dist.shape[0]
    if max_scale is None:
        max_scale = float(dist.max()) if n > 1 else 0.0
    entries: List[Tuple[float, Simplex]] = [(0.0, Simplex([v])) for v in range(n)]
    for k in range(1, max_dimension + 1):
        for verts in combinations(range(n), k + 1):
            sub = dist[np.ix_(verts, verts)]
            value = float(sub.max())
            if value <= max_scale + 1e-12:
                entries.append((value, Simplex(verts)))
    return Filtration(entries)


def filtration_from_distance_matrix(
    distance_matrix: np.ndarray,
    max_dimension: int = 2,
    max_scale: float | None = None,
) -> Filtration:
    """Rips filtration built directly from a distance matrix."""
    dist = np.asarray(distance_matrix, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("distance_matrix must be square")
    n = dist.shape[0]
    if max_scale is None:
        max_scale = float(dist.max()) if n > 1 else 0.0
    entries: List[Tuple[float, Simplex]] = [(0.0, Simplex([v])) for v in range(n)]
    for k in range(1, int(max_dimension) + 1):
        for verts in combinations(range(n), k + 1):
            sub = dist[np.ix_(verts, verts)]
            value = float(sub.max())
            if value <= max_scale + 1e-12:
                entries.append((value, Simplex(verts)))
    return Filtration(entries)
