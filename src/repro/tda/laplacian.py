"""Combinatorial Laplacians.

The ``k``-th combinatorial Laplacian of a complex is

    Δ_k = ∂_k† ∂_k + ∂_{k+1} ∂_{k+1}†                    (Eq. 5)

a real, symmetric, positive semi-definite ``|S_k| x |S_k|`` matrix whose
kernel dimension equals the ``k``-th Betti number (Eq. 6).  The QTDA
algorithm estimates exactly that kernel dimension with QPE.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.tda.boundary import boundary_matrix
from repro.tda.complexes import SimplicialComplex
from repro.utils.validation import check_integer


def combinatorial_laplacian(complex_: SimplicialComplex, k: int, sparse_format: bool = False) -> np.ndarray | sparse.csr_matrix:
    """The combinatorial Laplacian ``Δ_k`` of ``complex_``.

    Returns a ``|S_k| x |S_k|`` matrix; when the complex has no
    ``k``-simplices the result is a ``0 x 0`` matrix (and ``β_k = 0``).
    """
    k = check_integer(k, "k", minimum=0)
    num_k = complex_.num_simplices(k)
    if num_k == 0:
        return sparse.csr_matrix((0, 0)) if sparse_format else np.zeros((0, 0))
    d_k = boundary_matrix(complex_, k, sparse_format=True)
    d_k1 = boundary_matrix(complex_, k + 1, sparse_format=True)
    down = d_k.T @ d_k if d_k.shape[0] > 0 else sparse.csr_matrix((num_k, num_k))
    up = d_k1 @ d_k1.T if d_k1.shape[1] > 0 else sparse.csr_matrix((num_k, num_k))
    lap = (down + up).tocsr()
    if sparse_format:
        return lap
    return np.asarray(lap.todense(), dtype=float)


def laplacian_spectrum(complex_: SimplicialComplex, k: int) -> np.ndarray:
    """Sorted eigenvalues of ``Δ_k`` (empty array when there are no ``k``-simplices)."""
    lap = combinatorial_laplacian(complex_, k)
    if lap.shape[0] == 0:
        return np.zeros(0)
    return np.linalg.eigvalsh(lap)


def laplacian_kernel_dimension(complex_: SimplicialComplex, k: int, atol: float = 1e-8) -> int:
    """Number of (numerically) zero eigenvalues of ``Δ_k`` — the Betti number ``β_k``."""
    spectrum = laplacian_spectrum(complex_, k)
    return int(np.count_nonzero(np.abs(spectrum) <= atol))


def hodge_decomposition_ranks(complex_: SimplicialComplex, k: int, atol: float = 1e-8) -> dict:
    """Ranks of the Hodge decomposition ``C_k = im ∂_{k+1} ⊕ im ∂_k† ⊕ ker Δ_k``.

    Returned as a dictionary with keys ``"gradient"`` (rank ∂_k),
    ``"curl"`` (rank ∂_{k+1}) and ``"harmonic"`` (dim ker Δ_k = β_k); their sum
    equals ``|S_k|``, which the property tests verify.
    """
    d_k = boundary_matrix(complex_, k)
    d_k1 = boundary_matrix(complex_, k + 1)
    rank_k = int(np.linalg.matrix_rank(d_k, tol=atol)) if d_k.size else 0
    rank_k1 = int(np.linalg.matrix_rank(d_k1, tol=atol)) if d_k1.size else 0
    harmonic = complex_.num_simplices(k) - rank_k - rank_k1
    return {"gradient": rank_k, "curl": rank_k1, "harmonic": int(harmonic)}
