"""Combinatorial Laplacians.

The ``k``-th combinatorial Laplacian of a complex is

    Δ_k = ∂_k† ∂_k + ∂_{k+1} ∂_{k+1}†                    (Eq. 5)

a real, symmetric, positive semi-definite ``|S_k| x |S_k|`` matrix whose
kernel dimension equals the ``k``-th Betti number (Eq. 6).  The QTDA
algorithm estimates exactly that kernel dimension with QPE.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.tda.boundary import boundary_matrix
from repro.tda.complexes import SimplicialComplex
from repro.utils.validation import check_integer


def combinatorial_laplacian(complex_: SimplicialComplex, k: int, sparse_format: bool = False) -> np.ndarray | sparse.csr_matrix:
    """The combinatorial Laplacian ``Δ_k`` of ``complex_``.

    Returns a ``|S_k| x |S_k|`` matrix; when the complex has no
    ``k``-simplices the result is a ``0 x 0`` matrix (and ``β_k = 0``).
    """
    k = check_integer(k, "k", minimum=0)
    num_k = complex_.num_simplices(k)
    if num_k == 0:
        return sparse.csr_matrix((0, 0)) if sparse_format else np.zeros((0, 0))
    d_k = boundary_matrix(complex_, k, sparse_format=True)
    d_k1 = boundary_matrix(complex_, k + 1, sparse_format=True)
    down = d_k.T @ d_k if d_k.shape[0] > 0 else sparse.csr_matrix((num_k, num_k))
    up = d_k1 @ d_k1.T if d_k1.shape[1] > 0 else sparse.csr_matrix((num_k, num_k))
    lap = (down + up).tocsr()
    if sparse_format:
        return lap
    return np.asarray(lap.todense(), dtype=float)


def laplacian_from_flag_arrays(arrays, k: int, sparse_format: bool = False) -> np.ndarray | sparse.csr_matrix:
    """``Δ_k`` straight from :class:`repro.tda.rips.FlagComplexArrays`.

    The array representation keeps the lexicographic simplex order of
    :class:`SimplicialComplex`, so this returns *exactly* the matrix
    :func:`combinatorial_laplacian` would build from the equivalent complex —
    without per-simplex Python objects on the batch engine's hot path.
    Supports ``k <= 2`` (the arrays hold nothing higher).
    """
    k = check_integer(k, "k", minimum=0)
    n = arrays.num_points
    edges = arrays.edges
    triangles = arrays.triangles
    num_k = arrays.num_simplices(k)
    if num_k == 0:
        return sparse.csr_matrix((0, 0)) if sparse_format else np.zeros((0, 0))
    if k == 0:
        # ∂_1 ∂_1ᵀ is the graph Laplacian: vertex degrees on the diagonal,
        # -1 per edge — built directly instead of via two sparse products
        # (same integer entries either way).
        dense = np.zeros((n, n))
        if len(edges):
            dense[edges[:, 0], edges[:, 1]] = -1.0
            dense[edges[:, 1], edges[:, 0]] = -1.0
            degrees = np.bincount(edges.reshape(-1), minlength=n).astype(float)
            np.fill_diagonal(dense, degrees)
        if sparse_format:
            return sparse.csr_matrix(dense)
        return dense
    elif k == 1:
        d1 = _flag_d1(edges, n)
        lap = (d1.T @ d1).tocsr()
        if len(triangles):
            d2 = _flag_d2(triangles, edges, n)
            lap = (lap + d2 @ d2.T).tocsr()
    elif k == 2:
        d2 = _flag_d2(triangles, edges, n)
        lap = (d2.T @ d2).tocsr()
    else:  # pragma: no cover - num_k == 0 for k > 2 always returns above
        raise ValueError("flag arrays hold no simplices above dimension 2")
    if sparse_format:
        return lap
    return np.asarray(lap.todense(), dtype=float)


def _flag_d1(edges: np.ndarray, num_points: int) -> sparse.csr_matrix:
    """``∂_1`` (shape ``(n, |S_1|)``): column for edge ``(i, j)`` is ``+1`` at ``j``, ``-1`` at ``i``."""
    m = len(edges)
    cols = np.repeat(np.arange(m), 2)
    rows = edges[:, ::-1].reshape(-1)  # (j, i) per column
    data = np.tile(np.array([1.0, -1.0]), m)
    return sparse.csr_matrix((data, (rows, cols)), shape=(num_points, m))


def _flag_d2(triangles: np.ndarray, edges: np.ndarray, num_points: int) -> sparse.csr_matrix:
    """``∂_2`` (shape ``(|S_1|, |S_2|)``): column for ``(a, b, c)`` hits faces ``(b,c), (a,c), (a,b)`` with signs ``+1, -1, +1``."""
    edge_codes = edges[:, 0] * num_points + edges[:, 1]
    t = len(triangles)
    a, b, c = triangles[:, 0], triangles[:, 1], triangles[:, 2]
    face_codes = np.stack([b * num_points + c, a * num_points + c, a * num_points + b], axis=1)
    rows = np.searchsorted(edge_codes, face_codes.reshape(-1))
    cols = np.repeat(np.arange(t), 3)
    data = np.tile(np.array([1.0, -1.0, 1.0]), t)
    return sparse.csr_matrix((data, (rows, cols)), shape=(len(edges), t))


def combinatorial_laplacian_operator(complex_: SimplicialComplex, k: int, sparse_format: bool = True):
    """``Δ_k`` wrapped as a :class:`repro.core.operators.LaplacianOperator`.

    The operator-returning variant of :func:`combinatorial_laplacian` for
    consumers that negotiate formats with estimator backends (sparse CSR by
    default — the boundary products are built sparse anyway, so the sparse
    operator is the zero-copy view).
    """
    # Imported lazily: repro.tda must stay importable without repro.core.
    from repro.core.operators import as_operator

    return as_operator(combinatorial_laplacian(complex_, k, sparse_format=sparse_format))


def laplacian_operator_from_flag_arrays(arrays, k: int, sparse_format: bool = True):
    """Operator-returning variant of :func:`laplacian_from_flag_arrays`."""
    from repro.core.operators import as_operator

    return as_operator(laplacian_from_flag_arrays(arrays, k, sparse_format=sparse_format))


def laplacian_spectrum(complex_: SimplicialComplex, k: int) -> np.ndarray:
    """Sorted eigenvalues of ``Δ_k`` (empty array when there are no ``k``-simplices)."""
    lap = combinatorial_laplacian(complex_, k)
    if lap.shape[0] == 0:
        return np.zeros(0)
    return np.linalg.eigvalsh(lap)


def laplacian_kernel_dimension(complex_: SimplicialComplex, k: int, atol: float = 1e-8) -> int:
    """Number of (numerically) zero eigenvalues of ``Δ_k`` — the Betti number ``β_k``."""
    spectrum = laplacian_spectrum(complex_, k)
    return int(np.count_nonzero(np.abs(spectrum) <= atol))


def hodge_decomposition_ranks(complex_: SimplicialComplex, k: int, atol: float = 1e-8) -> dict:
    """Ranks of the Hodge decomposition ``C_k = im ∂_{k+1} ⊕ im ∂_k† ⊕ ker Δ_k``.

    Returned as a dictionary with keys ``"gradient"`` (rank ∂_k),
    ``"curl"`` (rank ∂_{k+1}) and ``"harmonic"`` (dim ker Δ_k = β_k); their sum
    equals ``|S_k|``, which the property tests verify.
    """
    d_k = boundary_matrix(complex_, k)
    d_k1 = boundary_matrix(complex_, k + 1)
    rank_k = int(np.linalg.matrix_rank(d_k, tol=atol)) if d_k.size else 0
    rank_k1 = int(np.linalg.matrix_rank(d_k1, tol=atol)) if d_k1.size else 0
    harmonic = complex_.num_simplices(k) - rank_k - rank_k1
    return {"gradient": rank_k, "curl": rank_k1, "harmonic": int(harmonic)}
