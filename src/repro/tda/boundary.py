"""Restricted boundary operators.

For a complex ``K_ε`` with ``S_k`` the (ordered) set of ``k``-simplices, the
restricted boundary operator ``∂_k : C_k -> C_{k-1}`` acts on a simplex
``s = [v_0, ..., v_k]`` as

    ∂_k s = Σ_t (-1)^t [v_0, ..., v_{t-1}, v_{t+1}, ..., v_k]        (Eqs. 1–2)

and is represented by the ``|S_{k-1}| x |S_k|`` matrix whose column for ``s``
has ``(-1)^t`` in the row of the face obtained by dropping ``v_t`` (compare
Eqs. 14–15 of the worked example).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
from scipy import sparse

from repro.tda.complexes import SimplicialComplex
from repro.utils.validation import check_integer


def boundary_matrix(complex_: SimplicialComplex, k: int, sparse_format: bool = False) -> np.ndarray | sparse.csr_matrix:
    """The matrix of ``∂_k`` in the canonical simplex ordering of ``complex_``.

    Parameters
    ----------
    complex_:
        The simplicial complex.
    k:
        Chain dimension.  ``∂_0`` is the (conventionally) zero map onto the
        trivial space, represented as a ``0 x |S_0|`` matrix.
    sparse_format:
        Return a ``scipy.sparse.csr_matrix`` instead of a dense array (useful
        for the larger random complexes of the Fig. 3 sweeps).

    Returns
    -------
    numpy.ndarray or scipy.sparse.csr_matrix
        Shape ``(|S_{k-1}|, |S_k|)``; empty dimensions give zero-sized
        matrices so that downstream rank computations handle edge cases
        uniformly.
    """
    k = check_integer(k, "k", minimum=0)
    k_simplices = complex_.simplices(k)
    if k == 0:
        shape = (0, len(k_simplices))
        return sparse.csr_matrix(shape) if sparse_format else np.zeros(shape)
    lower_index: Dict = complex_.simplex_index(k - 1)
    shape = (len(lower_index), len(k_simplices))
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for col, simplex in enumerate(k_simplices):
        for sign, face in simplex.boundary():
            try:
                row = lower_index[face]
            except KeyError as exc:  # pragma: no cover - complexes are closed by construction
                raise ValueError(f"Complex is not closed: face {face} of {simplex} is missing") from exc
            rows.append(row)
            cols.append(col)
            data.append(float(sign))
    mat = sparse.csr_matrix((data, (rows, cols)), shape=shape)
    return mat if sparse_format else mat.toarray()


def boundary_operators(complex_: SimplicialComplex, k: int, sparse_format: bool = False):
    """The pair ``(∂_k, ∂_{k+1})`` needed to form the combinatorial Laplacian ``Δ_k``."""
    return (
        boundary_matrix(complex_, k, sparse_format=sparse_format),
        boundary_matrix(complex_, k + 1, sparse_format=sparse_format),
    )


def boundary_composition_is_zero(complex_: SimplicialComplex, k: int, atol: float = 1e-12) -> bool:
    """Check the fundamental identity ``∂_k ∘ ∂_{k+1} = 0`` for the complex."""
    if k < 1:
        return True
    d_k = boundary_matrix(complex_, k)
    d_k1 = boundary_matrix(complex_, k + 1)
    if d_k.size == 0 or d_k1.size == 0:
        return True
    return bool(np.allclose(d_k @ d_k1, 0.0, atol=atol))
