"""Classical Betti numbers.

Two independent routes are provided and cross-checked in the tests:

* rank–nullity on the boundary operators,
  ``β_k = |S_k| - rank ∂_k - rank ∂_{k+1}`` (Eq. 3–4 via the standard
  homology dimension count);
* the kernel dimension of the combinatorial Laplacian ``Δ_k`` (Eq. 6), which
  is what the quantum algorithm estimates.

These are the ground truth against which the QPE estimates (``β̃_k``) are
compared in the paper's Fig. 3 and Table 1.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.tda.boundary import boundary_matrix
from repro.tda.complexes import SimplicialComplex
from repro.tda.laplacian import laplacian_kernel_dimension
from repro.utils.validation import check_integer


def betti_number(complex_: SimplicialComplex, k: int, method: str = "rank", atol: float = 1e-8) -> int:
    """The ``k``-th Betti number of a simplicial complex.

    Parameters
    ----------
    complex_:
        The complex.
    k:
        Homology dimension.
    method:
        ``"rank"`` (rank–nullity on boundary matrices, default) or
        ``"laplacian"`` (zero-eigenvalue count of ``Δ_k``).
    atol:
        Numerical tolerance for rank / zero-eigenvalue decisions.
    """
    k = check_integer(k, "k", minimum=0)
    num_k = complex_.num_simplices(k)
    if num_k == 0:
        return 0
    if method == "laplacian":
        return laplacian_kernel_dimension(complex_, k, atol=atol)
    if method != "rank":
        raise ValueError(f"Unknown method {method!r}; use 'rank' or 'laplacian'")
    d_k = boundary_matrix(complex_, k)
    d_k1 = boundary_matrix(complex_, k + 1)
    rank_k = int(np.linalg.matrix_rank(d_k, tol=atol)) if d_k.size else 0
    rank_k1 = int(np.linalg.matrix_rank(d_k1, tol=atol)) if d_k1.size else 0
    return int(num_k - rank_k - rank_k1)


def betti_numbers(complex_: SimplicialComplex, max_dimension: int | None = None, method: str = "rank") -> List[int]:
    """Betti numbers ``[β_0, β_1, ..., β_max]`` of the complex."""
    if max_dimension is None:
        max_dimension = max(complex_.dimension, 0)
    return [betti_number(complex_, k, method=method) for k in range(max_dimension + 1)]


def euler_characteristic(complex_: SimplicialComplex) -> int:
    """``χ = Σ_k (-1)^k |S_k|`` — equals ``Σ_k (-1)^k β_k`` (Euler–Poincaré)."""
    return int(sum((-1) ** k * count for k, count in enumerate(complex_.f_vector())))


def betti_summary(complex_: SimplicialComplex, max_dimension: int | None = None) -> Dict[str, object]:
    """Diagnostic dictionary: f-vector, Betti numbers and Euler characteristic."""
    numbers = betti_numbers(complex_, max_dimension=max_dimension)
    return {
        "f_vector": complex_.f_vector(),
        "betti_numbers": numbers,
        "euler_characteristic": euler_characteristic(complex_),
        "alternating_betti_sum": int(sum((-1) ** k * b for k, b in enumerate(numbers))),
    }
