"""Simplicial complexes.

A simplicial complex ``K`` is a set of simplices closed under taking faces.
:class:`SimplicialComplex` stores the simplices grouped by dimension in a
deterministic (lexicographic) order; that order defines the rows/columns of
the boundary operators and hence of the combinatorial Laplacian, exactly as
in the worked example of Appendix A (Eqs. 13–17).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.tda.simplex import Simplex


class SimplicialComplex:
    """A finite abstract simplicial complex.

    Parameters
    ----------
    simplices:
        Any iterable of simplices (as :class:`Simplex`, tuples or lists of
        vertex indices).  Faces are *not* added automatically unless
        ``close_downward`` is true; by default the constructor validates
        closure and raises if a face is missing, because a combinatorial
        Laplacian built from a non-closed set is meaningless.
    close_downward:
        Add all missing faces instead of raising.
    """

    def __init__(self, simplices: Iterable, close_downward: bool = False):
        collected: set[Simplex] = set()
        for s in simplices:
            simplex = s if isinstance(s, Simplex) else Simplex(s)
            collected.add(simplex)
        if close_downward:
            closure: set[Simplex] = set()
            for simplex in collected:
                closure.update(simplex.all_subsimplices())
            collected = closure
        else:
            for simplex in collected:
                for face in simplex.faces():
                    if face not in collected:
                        raise ValueError(
                            f"{simplex} is present but its face {face} is missing; "
                            "pass close_downward=True to add faces automatically"
                        )
        self._by_dim: Dict[int, List[Simplex]] = {}
        for simplex in collected:
            self._by_dim.setdefault(simplex.dimension, []).append(simplex)
        for dim in self._by_dim:
            self._by_dim[dim].sort(key=lambda s: s.vertices)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_maximal_simplices(cls, maximal: Iterable) -> "SimplicialComplex":
        """Build the downward closure of a set of maximal simplices."""
        return cls(maximal, close_downward=True)

    @classmethod
    def complete_complex(cls, num_vertices: int, max_dimension: int) -> "SimplicialComplex":
        """The full complex on ``num_vertices`` vertices up to ``max_dimension``."""
        simplices = []
        for k in range(0, max_dimension + 1):
            simplices.extend(combinations(range(num_vertices), k + 1))
        return cls(simplices)

    @classmethod
    def from_graph(cls, graph: nx.Graph, max_dimension: int = 2) -> "SimplicialComplex":
        """Clique (flag) complex of a graph up to ``max_dimension``.

        This is exactly the Vietoris–Rips construction once the graph is the
        ε-neighbourhood graph: every ``(k+1)``-clique becomes a ``k``-simplex.
        """
        simplices: List[Tuple[int, ...]] = [(int(v),) for v in graph.nodes]
        if max_dimension >= 1:
            simplices.extend(tuple(sorted((int(u), int(v)))) for u, v in graph.edges)
        if max_dimension >= 2:
            for clique in nx.enumerate_all_cliques(graph):
                size = len(clique)
                if size < 3:
                    continue
                if size > max_dimension + 1:
                    break  # enumerate_all_cliques yields cliques in non-decreasing size
                simplices.append(tuple(sorted(int(v) for v in clique)))
        return cls(simplices)

    # -- accessors -----------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Largest simplex dimension present (-1 for the empty complex)."""
        return max(self._by_dim) if self._by_dim else -1

    @property
    def vertices(self) -> Tuple[int, ...]:
        """Sorted tuple of vertex labels."""
        return tuple(s.vertices[0] for s in self._by_dim.get(0, []))

    @property
    def num_vertices(self) -> int:
        return len(self._by_dim.get(0, []))

    def simplices(self, dimension: Optional[int] = None) -> List[Simplex]:
        """All simplices, or only those of the given dimension, in canonical order."""
        if dimension is not None:
            return list(self._by_dim.get(dimension, []))
        out: List[Simplex] = []
        for dim in sorted(self._by_dim):
            out.extend(self._by_dim[dim])
        return out

    def num_simplices(self, dimension: Optional[int] = None) -> int:
        """``|S_k|`` for a given ``k``, or the total count when ``k`` is omitted."""
        if dimension is not None:
            return len(self._by_dim.get(dimension, []))
        return sum(len(v) for v in self._by_dim.values())

    def simplex_index(self, dimension: int) -> Dict[Simplex, int]:
        """Mapping simplex -> column index used by the boundary matrices."""
        return {s: i for i, s in enumerate(self._by_dim.get(dimension, []))}

    def __contains__(self, simplex) -> bool:
        s = simplex if isinstance(simplex, Simplex) else Simplex(simplex)
        return s in set(self._by_dim.get(s.dimension, []))

    def __len__(self) -> int:
        return self.num_simplices()

    def f_vector(self) -> Tuple[int, ...]:
        """``(|S_0|, |S_1|, ..., |S_dim|)`` — the face-count vector."""
        if not self._by_dim:
            return ()
        return tuple(self.num_simplices(k) for k in range(self.dimension + 1))

    # -- derived structures ------------------------------------------------------
    def skeleton(self, max_dimension: int) -> "SimplicialComplex":
        """The sub-complex of all simplices of dimension <= ``max_dimension``."""
        simplices = [s for k, group in self._by_dim.items() if k <= max_dimension for s in group]
        return SimplicialComplex(simplices)

    def one_skeleton_graph(self) -> nx.Graph:
        """The underlying graph (0- and 1-simplices)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.vertices)
        graph.add_edges_from(tuple(s.vertices) for s in self._by_dim.get(1, []))
        return graph

    def star(self, vertex: int) -> List[Simplex]:
        """All simplices containing ``vertex``."""
        return [s for s in self.simplices() if vertex in s]

    def link(self, vertex: int) -> List[Simplex]:
        """The link of ``vertex``: faces of its star that do not contain it."""
        out = []
        for simplex in self.star(vertex):
            remaining = tuple(v for v in simplex.vertices if v != vertex)
            if remaining:
                out.append(Simplex(remaining))
        return sorted(set(out))

    def add_simplex(self, simplex, close_downward: bool = True) -> "SimplicialComplex":
        """Return a new complex with ``simplex`` (and its faces) added."""
        simplices = self.simplices() + [simplex if isinstance(simplex, Simplex) else Simplex(simplex)]
        return SimplicialComplex(simplices, close_downward=close_downward)

    def is_connected(self) -> bool:
        """Connectivity of the 1-skeleton (true for the empty complex)."""
        graph = self.one_skeleton_graph()
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(graph)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimplicialComplex):
            return NotImplemented
        return self.simplices() == other.simplices()

    def __repr__(self) -> str:
        return f"SimplicialComplex(f_vector={self.f_vector()})"
