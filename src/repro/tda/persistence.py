"""Persistent homology (the paper's future-work extension).

The paper's conclusion points to *persistent* Betti numbers — which are
independent of a single grouping scale — as the natural next step beyond the
fixed-ε Betti numbers it estimates.  This module provides the classical
machinery so the repository can already extract those features:

* the standard column-reduction algorithm over GF(2) on a filtration's
  boundary matrix, producing birth/death pairs;
* :class:`PersistenceDiagram` per homology dimension, with Betti-number
  queries at any scale and persistent Betti numbers ``β_k^{b, d}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.tda.filtration import Filtration, rips_filtration
from repro.tda.simplex import Simplex


@dataclass(frozen=True)
class PersistencePair:
    """One homology class: dimension, birth scale and death scale (inf = never dies)."""

    dimension: int
    birth: float
    death: float

    @property
    def persistence(self) -> float:
        """Lifetime ``death - birth`` (infinite for essential classes)."""
        return self.death - self.birth

    @property
    def is_essential(self) -> bool:
        """True when the class never dies within the filtration."""
        return np.isinf(self.death)


@dataclass
class PersistenceDiagram:
    """All persistence pairs of one homology dimension."""

    dimension: int
    pairs: List[PersistencePair] = field(default_factory=list)

    def betti_at(self, epsilon: float) -> int:
        """Betti number of the complex at scale ``epsilon`` (classes alive at ε)."""
        return sum(1 for p in self.pairs if p.birth <= epsilon + 1e-12 and epsilon < p.death - 1e-12)

    def persistent_betti(self, birth_scale: float, death_scale: float) -> int:
        """``β_k^{b, d}``: classes born by ``birth_scale`` still alive at ``death_scale``."""
        if death_scale < birth_scale:
            raise ValueError("death_scale must be >= birth_scale")
        return sum(
            1
            for p in self.pairs
            if p.birth <= birth_scale + 1e-12 and death_scale < p.death - 1e-12
        )

    def finite_pairs(self) -> List[PersistencePair]:
        """Pairs with finite death value."""
        return [p for p in self.pairs if not p.is_essential]

    def essential_pairs(self) -> List[PersistencePair]:
        """Pairs that never die (e.g. the surviving connected component in H0)."""
        return [p for p in self.pairs if p.is_essential]

    def total_persistence(self) -> float:
        """Sum of finite lifetimes — a crude scalar summary feature."""
        return float(sum(p.persistence for p in self.finite_pairs()))

    def as_array(self) -> np.ndarray:
        """``(n_pairs, 2)`` array of (birth, death) values (death may be inf)."""
        if not self.pairs:
            return np.zeros((0, 2))
        return np.array([[p.birth, p.death] for p in self.pairs], dtype=float)


def _reduce_boundary(filtration: Filtration) -> Tuple[Dict[int, int], List[int]]:
    """Standard persistence column reduction over GF(2).

    Returns
    -------
    (pairs, unpaired)
        ``pairs`` maps the index (in filtration order) of a *death* simplex to
        the index of the *birth* simplex it kills; ``unpaired`` lists indices
        of simplices that create essential classes.
    """
    simplices = filtration.simplices()
    index_of: Dict[Simplex, int] = {s: i for i, s in enumerate(simplices)}
    # Boundary columns as sorted lists of row indices (GF(2) chains).
    columns: List[set] = []
    for s in simplices:
        if s.dimension == 0:
            columns.append(set())
        else:
            columns.append({index_of[f] for f in s.faces()})
    low_to_col: Dict[int, int] = {}
    pairs: Dict[int, int] = {}
    for j in range(len(columns)):
        col = columns[j]
        while col:
            low = max(col)
            if low not in low_to_col:
                break
            col ^= columns[low_to_col[low]]
        columns[j] = col
        if col:
            low = max(col)
            low_to_col[low] = j
            pairs[j] = low
    paired_births = set(pairs.values())
    paired_deaths = set(pairs.keys())
    unpaired = [i for i in range(len(columns)) if i not in paired_births and i not in paired_deaths]
    return pairs, unpaired


def persistence_diagrams(filtration: Filtration, max_dimension: int | None = None) -> Dict[int, PersistenceDiagram]:
    """Compute persistence diagrams of a filtration, one per dimension.

    Zero-persistence pairs (birth == death) are kept — they are needed for
    the persistent-Betti bookkeeping — but can be filtered by callers via
    :meth:`PersistenceDiagram.finite_pairs`.
    """
    values = filtration.values()
    simplices = filtration.simplices()
    if max_dimension is None:
        max_dimension = max((s.dimension for s in simplices), default=0)
    pairs, unpaired = _reduce_boundary(filtration)
    diagrams = {k: PersistenceDiagram(dimension=k) for k in range(max_dimension + 1)}
    for death_idx, birth_idx in pairs.items():
        dim = simplices[birth_idx].dimension
        if dim > max_dimension:
            continue
        diagrams[dim].pairs.append(
            PersistencePair(dimension=dim, birth=float(values[birth_idx]), death=float(values[death_idx]))
        )
    for idx in unpaired:
        dim = simplices[idx].dimension
        if dim > max_dimension:
            continue
        diagrams[dim].pairs.append(
            PersistencePair(dimension=dim, birth=float(values[idx]), death=float("inf"))
        )
    for diagram in diagrams.values():
        diagram.pairs.sort(key=lambda p: (p.birth, p.death))
    return diagrams


def persistent_betti_number(
    points: np.ndarray,
    k: int,
    birth_scale: float,
    death_scale: float,
    max_dimension: int | None = None,
) -> int:
    """Persistent Betti number ``β_k^{b, d}`` of a point cloud's Rips filtration."""
    max_dim = (k + 1) if max_dimension is None else int(max_dimension)
    filtration = rips_filtration(points, max_dimension=max_dim)
    diagrams = persistence_diagrams(filtration, max_dimension=max_dim)
    if k not in diagrams:
        return 0
    return diagrams[k].persistent_betti(birth_scale, death_scale)


def persistence_features(
    points: np.ndarray,
    max_homology_dimension: int = 1,
    scales: Sequence[float] | None = None,
) -> np.ndarray:
    """Fixed-length feature vector from persistence diagrams.

    For each homology dimension up to ``max_homology_dimension`` the features
    are: number of essential classes, number of finite classes, total
    persistence, maximum lifetime, and the Betti numbers at the requested
    ``scales`` (defaults to the quartiles of the filtration's critical
    values).  Used by the persistence example to compare against the paper's
    fixed-ε Betti features.
    """
    filtration = rips_filtration(points, max_dimension=max_homology_dimension + 1)
    diagrams = persistence_diagrams(filtration, max_dimension=max_homology_dimension)
    if scales is None:
        critical = filtration.critical_values()
        scales = np.percentile(critical, [25, 50, 75]) if critical.size else np.zeros(3)
    features: List[float] = []
    for k in range(max_homology_dimension + 1):
        diagram = diagrams[k]
        finite = diagram.finite_pairs()
        lifetimes = [p.persistence for p in finite]
        features.extend(
            [
                float(len(diagram.essential_pairs())),
                float(len(finite)),
                diagram.total_persistence(),
                float(max(lifetimes)) if lifetimes else 0.0,
            ]
        )
        features.extend(float(diagram.betti_at(s)) for s in scales)
    return np.asarray(features, dtype=float)
