"""Point-cloud geometry: distance matrices and epsilon-neighbourhood graphs.

The paper's construction starts from a point cloud ``{x_i}`` with a distance
function ``d`` (Euclidean by default) and connects every pair of points at
distance at most the grouping scale ``ε``, producing the graph
``G_ε = (V, E_ε)`` from which the Vietoris–Rips complex is built.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np
import networkx as nx
from scipy.spatial.distance import cdist

MetricLike = str | Callable[[np.ndarray, np.ndarray], float]


def pairwise_distances(points: np.ndarray, metric: MetricLike = "euclidean") -> np.ndarray:
    """Symmetric matrix of pairwise distances between the rows of ``points``.

    Parameters
    ----------
    points:
        ``(n, m)`` array of ``n`` points with ``m`` features.
    metric:
        Any metric name accepted by :func:`scipy.spatial.distance.cdist`
        ("euclidean", "cityblock", "chebyshev", ...) or a callable
        ``f(x, y) -> float``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts[:, None]
    if pts.ndim != 2:
        raise ValueError(f"points must be a 2-D array, got shape {pts.shape}")
    if pts.shape[0] == 0:
        return np.zeros((0, 0))
    dist = cdist(pts, pts, metric=metric)
    # Enforce exact symmetry and a zero diagonal against floating-point noise.
    dist = (dist + dist.T) / 2.0
    np.fill_diagonal(dist, 0.0)
    return dist


def epsilon_edges(distance_matrix: np.ndarray, epsilon: float) -> List[Tuple[int, int]]:
    """Edges ``(i, j)`` (i < j) whose endpoints are within ``epsilon`` of each other."""
    dist = np.asarray(distance_matrix, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError("distance_matrix must be square")
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    iu, ju = np.triu_indices(dist.shape[0], k=1)
    mask = dist[iu, ju] <= epsilon
    return [(int(i), int(j)) for i, j in zip(iu[mask], ju[mask])]


def epsilon_graph(points_or_distances: np.ndarray, epsilon: float, *, is_distance_matrix: bool = False, metric: MetricLike = "euclidean") -> nx.Graph:
    """The ε-neighbourhood graph ``G_ε`` as a :class:`networkx.Graph`.

    Vertices are ``0..n-1``; each edge stores the pairwise distance in its
    ``weight`` attribute.

    Parameters
    ----------
    points_or_distances:
        Either an ``(n, m)`` point cloud or, when ``is_distance_matrix`` is
        true, a precomputed ``(n, n)`` distance matrix.
    epsilon:
        Grouping scale ``ε``.
    is_distance_matrix:
        Interpret the first argument as a distance matrix.
    metric:
        Distance metric when a point cloud is given.
    """
    if is_distance_matrix:
        dist = np.asarray(points_or_distances, dtype=float)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("distance matrix must be square")
    else:
        dist = pairwise_distances(points_or_distances, metric=metric)
    graph = nx.Graph()
    graph.add_nodes_from(range(dist.shape[0]))
    for i, j in epsilon_edges(dist, epsilon):
        graph.add_edge(i, j, weight=float(dist[i, j]))
    return graph


def diameter_bounds(points: np.ndarray, metric: MetricLike = "euclidean") -> Tuple[float, float]:
    """(min positive pairwise distance, max pairwise distance) of a cloud.

    Handy when choosing a grouping-scale sweep: below the lower bound the
    complex is a set of isolated vertices, above the upper bound it is a full
    simplex.  Duplicate points contribute zero distances, which are *not*
    positive and are therefore excluded from the lower bound; when every pair
    coincides (no positive distance exists) both bounds are 0.
    """
    dist = pairwise_distances(points, metric=metric)
    n = dist.shape[0]
    if n < 2:
        return (0.0, 0.0)
    iu, ju = np.triu_indices(n, k=1)
    values = dist[iu, ju]
    positive = values[values > 0.0]
    lower = float(positive.min()) if positive.size else 0.0
    return (lower, float(values.max()))
