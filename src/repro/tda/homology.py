"""Homology over GF(2).

Betti numbers over the field with two elements are computed by Gaussian
elimination of the boundary matrices mod 2.  For complexes built from real
point clouds (no torsion in low dimensions) the GF(2) Betti numbers coincide
with the real ones, which gives the test-suite a third, arithmetically exact
cross-check of :mod:`repro.tda.betti` that involves no floating-point rank
decisions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.tda.boundary import boundary_matrix
from repro.tda.complexes import SimplicialComplex
from repro.utils.validation import check_integer


def rank_gf2(matrix: np.ndarray) -> int:
    """Rank of a 0/1 (or integer) matrix over GF(2) by Gaussian elimination.

    Rows are packed into Python integers (bitsets), so elimination works on
    whole rows at a time — fast enough for the few-hundred-column boundary
    matrices that appear in the paper's experiments.
    """
    mat = np.asarray(matrix)
    if mat.size == 0:
        return 0
    bits = (np.abs(mat.astype(np.int64)) % 2).astype(np.uint8)
    rows = []
    for r in range(bits.shape[0]):
        value = 0
        for c in np.flatnonzero(bits[r]):
            value |= 1 << int(c)
        rows.append(value)
    rank = 0
    for col in range(bits.shape[1]):
        pivot_mask = 1 << col
        pivot_row = None
        for idx in range(rank, len(rows)):
            if rows[idx] & pivot_mask:
                pivot_row = idx
                break
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot_value = rows[rank]
        for idx in range(len(rows)):
            if idx != rank and rows[idx] & pivot_mask:
                rows[idx] ^= pivot_value
        rank += 1
        if rank == len(rows):
            break
    return rank


def boundary_rank_gf2(complex_: SimplicialComplex, k: int) -> int:
    """Rank of ``∂_k`` over GF(2)."""
    k = check_integer(k, "k", minimum=0)
    return rank_gf2(boundary_matrix(complex_, k))


def betti_number_gf2(complex_: SimplicialComplex, k: int) -> int:
    """``k``-th Betti number over GF(2): ``|S_k| - rank ∂_k - rank ∂_{k+1}``."""
    num_k = complex_.num_simplices(k)
    if num_k == 0:
        return 0
    return int(num_k - boundary_rank_gf2(complex_, k) - boundary_rank_gf2(complex_, k + 1))


def betti_numbers_gf2(complex_: SimplicialComplex, max_dimension: int | None = None) -> List[int]:
    """GF(2) Betti numbers ``[β_0, ..., β_max]``."""
    if max_dimension is None:
        max_dimension = max(complex_.dimension, 0)
    return [betti_number_gf2(complex_, k) for k in range(max_dimension + 1)]
