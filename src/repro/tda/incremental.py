"""Incremental sliding-window geometry: distance and flag-complex deltas.

The Section 5 workload slides a window over one long time series; adjacent
windows share almost all of their embedded points, yet the batch path
recomputes every window's distance matrix and Vietoris–Rips complex from
scratch.  This module maintains both under *point enter/leave* instead:

- :class:`SlidingDistanceMatrix` evicts the leaving points' rows/columns and
  computes only the entering points' distances (two ``cdist`` cross blocks
  plus a small corner), reproducing
  :func:`repro.tda.distances.pairwise_distances` bit for bit;
- :class:`IncrementalFlagComplex` patches the previous
  :class:`repro.tda.rips.FlagComplexArrays` with a
  :class:`FlagComplexDelta` — simplices destroyed by leaving points, created
  by entering ones — instead of re-enumerating, preserving the exact
  lexicographic row order of :func:`repro.tda.rips.flag_complex_arrays`.

Index convention (the sliding-window case): leaving points always occupy the
*lowest* indices ``0..leave-1`` and entering points are appended at the
*highest* indices.  Surviving simplices then shift by ``-leave`` and stay
lexicographically sorted; destroyed simplices are exactly those containing a
vertex ``< leave`` (testable on the minimum vertex, column 0); created
simplices are exactly those whose *maximum* vertex is an entering point.
Order-preserving ``searchsorted`` merges splice created simplices into the
survivors, so the patched arrays are bit-identical to a from-scratch
enumeration — the invariant the property suite pins down.

A full window replacement (``leave == num_points``) degenerates to a
from-scratch build through the same code path, so callers whose stride does
not map onto point enter/leave (see DESIGN.md §13) can fall back without a
second implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist

from repro.tda.distances import MetricLike, pairwise_distances
from repro.tda.rips import FlagComplexArrays, flag_complex_arrays
from repro.utils.validation import check_integer

__all__ = [
    "SlidingDistanceMatrix",
    "FlagComplexDelta",
    "IncrementalFlagComplex",
]

_EMPTY_EDGES = np.zeros((0, 2), dtype=np.int64)
_EMPTY_TRIANGLES = np.zeros((0, 3), dtype=np.int64)


class SlidingDistanceMatrix:
    """A pairwise-distance matrix maintained under point enter/leave.

    ``advance(leave, new_points)`` drops the first ``leave`` points, appends
    ``new_points`` at the end, and computes only the new cross distances.
    The maintained matrix is **bit-identical** to
    ``pairwise_distances(current_points)``: the retained block is carried
    over unchanged, and the new blocks apply the same per-pair ``cdist``
    evaluations and ``(d + dᵀ) / 2`` symmetrisation (IEEE addition is
    commutative, so both triangles agree exactly).

    Examples
    --------
    >>> import numpy as np
    >>> sdm = SlidingDistanceMatrix(np.array([[0.0], [1.0], [3.0]]))
    >>> dist = sdm.advance(1, np.array([[6.0]]))
    >>> np.array_equal(dist, pairwise_distances(np.array([[1.0], [3.0], [6.0]])))
    True
    """

    def __init__(self, points: np.ndarray, metric: MetricLike = "euclidean"):
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[:, None]
        if pts.ndim != 2:
            raise ValueError(f"points must be a 2-D array, got shape {pts.shape}")
        self._metric = metric
        self._points = pts
        self._dist = pairwise_distances(pts, metric=metric)

    @property
    def num_points(self) -> int:
        return int(self._points.shape[0])

    @property
    def points(self) -> np.ndarray:
        """The current point set, one row per point (do not mutate)."""
        return self._points

    @property
    def distances(self) -> np.ndarray:
        """The current distance matrix (do not mutate)."""
        return self._dist

    def advance(self, leave: int, new_points: np.ndarray) -> np.ndarray:
        """Drop the first ``leave`` points, append ``new_points``; new matrix.

        Only the entering points' distances are computed: an ``(e, keep)``
        cross block (symmetrised against its transpose evaluation, exactly
        like :func:`pairwise_distances` does for the full matrix) and an
        ``(e, e)`` corner with a forced-zero diagonal.  Cost is
        ``O(e · n · m)`` instead of ``O(n² · m)``.
        """
        n = self.num_points
        leave = check_integer(leave, "leave", minimum=0)
        if leave > n:
            raise ValueError(f"cannot drop {leave} of {n} points")
        new = np.asarray(new_points, dtype=float)
        if new.ndim == 1:
            new = new[:, None]
        if new.ndim != 2:
            raise ValueError(f"new_points must be a 2-D array, got shape {new.shape}")
        keep = n - leave
        kept = self._points[leave:]
        entering = new.shape[0]
        if keep and entering and new.shape[1] != self._points.shape[1]:
            raise ValueError(
                f"new points have dimension {new.shape[1]}, existing points {self._points.shape[1]}"
            )
        n_new = keep + entering
        out = np.empty((n_new, n_new), dtype=float)
        out[:keep, :keep] = self._dist[leave:, leave:]
        if entering:
            if keep:
                # Same per-pair evaluations and addition order as the full
                # (dist + dist.T) / 2 symmetrisation restricted to this block.
                cross = (
                    cdist(new, kept, metric=self._metric)
                    + cdist(kept, new, metric=self._metric).T
                ) / 2.0
                out[keep:, :keep] = cross
                out[:keep, keep:] = cross.T
            corner = cdist(new, new, metric=self._metric)
            corner = (corner + corner.T) / 2.0
            np.fill_diagonal(corner, 0.0)
            out[keep:, keep:] = corner
        self._points = np.concatenate([kept, new], axis=0) if entering else kept.copy()
        self._dist = out
        return out


@dataclass(frozen=True)
class FlagComplexDelta:
    """The simplex-level diff of one :meth:`IncrementalFlagComplex.advance`.

    Destroyed simplices carry *old* vertex labels, created ones *new* labels
    (after the ``-leave_count`` shift).  The ``*_changed`` flags compare the
    patched arrays against the previous ones **by content** — on a bitwise
    periodic stream a window advance can destroy and create simplices yet
    land on identical arrays, and the flags (not the counts) are what decide
    operator/fingerprint reuse downstream (DESIGN.md §13):

    - ``Δ_0`` depends on the vertex count and the edge array,
    - ``Δ_1`` and ``Δ_2`` depend on the edge and triangle arrays.
    """

    num_points_before: int
    num_points_after: int
    leave_count: int
    enter_count: int
    edges_destroyed: np.ndarray      # (D_1, 2) int64, old labels
    edges_created: np.ndarray        # (C_1, 2) int64, new labels
    triangles_destroyed: np.ndarray  # (D_2, 3) int64, old labels
    triangles_created: np.ndarray    # (C_2, 3) int64, new labels
    vertices_changed: bool
    edges_changed: bool
    triangles_changed: bool

    @property
    def unchanged(self) -> bool:
        """True when the patched arrays are bit-identical to the previous ones."""
        return not (self.vertices_changed or self.edges_changed or self.triangles_changed)

    @property
    def num_destroyed(self) -> int:
        """Simplices removed by the advance (vertices + edges + triangles)."""
        return self.leave_count + len(self.edges_destroyed) + len(self.triangles_destroyed)

    @property
    def num_created(self) -> int:
        """Simplices added by the advance (vertices + edges + triangles)."""
        return self.enter_count + len(self.edges_created) + len(self.triangles_created)


def _encode_rows(rows: np.ndarray, base: int) -> np.ndarray:
    """Mixed-radix row codes whose integer order equals lexicographic row order."""
    code = rows[:, 0].astype(np.int64)
    for column in range(1, rows.shape[1]):
        code = code * base + rows[:, column]
    return code


def _merge_lex_sorted(a: np.ndarray, b: np.ndarray, num_points: int) -> np.ndarray:
    """Merge two disjoint, lexicographically sorted simplex arrays in order."""
    if not len(b):
        return a
    if not len(a):
        return b
    base = max(int(num_points), 1)
    slots = np.searchsorted(_encode_rows(a, base), _encode_rows(b, base))
    out = np.empty((len(a) + len(b), a.shape[1]), dtype=np.int64)
    b_slots = slots + np.arange(len(b))
    mask = np.ones(len(out), dtype=bool)
    mask[b_slots] = False
    out[b_slots] = b
    out[mask] = a
    return out


class IncrementalFlagComplex:
    """A flag complex (as :class:`FlagComplexArrays`) patched under enter/leave.

    Holds the arrays of the *current* window's complex at a fixed grouping
    scale ε.  :meth:`advance` consumes the next window's distance matrix (as
    produced by :meth:`SlidingDistanceMatrix.advance`), classifies the old
    simplices into destroyed/surviving on the minimum vertex, enumerates
    created simplices against the entering columns only (``O(E · e)`` instead
    of the from-scratch ``O(E · n)``), and splices them in lexicographic
    order, so ``self.arrays`` stays bit-identical to
    ``flag_complex_arrays(distances, epsilon, max_dimension)``.

    Contract: the retained block of the new distance matrix must induce the
    same ε-adjacency as the retained block of the previous one (automatic
    when the matrix comes from :class:`SlidingDistanceMatrix`, whose retained
    distances are carried over verbatim).  The advance verifies this on the
    boolean adjacency — the exact invariant the complex depends on — and
    raises otherwise.
    """

    def __init__(self, distances: np.ndarray, epsilon: float, max_dimension: int = 2):
        self._arrays = flag_complex_arrays(distances, epsilon, max_dimension)
        self.epsilon = float(epsilon)
        self.max_dimension = self._arrays.max_dimension
        dist = np.asarray(distances, dtype=float)
        adjacency = dist <= self.epsilon
        np.fill_diagonal(adjacency, False)
        self._adjacency = adjacency

    @property
    def arrays(self) -> FlagComplexArrays:
        """The current window's complex (bit-identical to a from-scratch build)."""
        return self._arrays

    @property
    def num_points(self) -> int:
        return self._arrays.num_points

    def advance(self, leave: int, distances: np.ndarray) -> FlagComplexDelta:
        """Patch the complex for a window advance; returns the simplex delta.

        ``leave`` points (the lowest indices) left, and the new distance
        matrix appends any entering points at the highest indices.
        ``leave == num_points`` degenerates to a full rebuild through the
        same enumeration (the fallback route).
        """
        old = self._arrays
        n_old = old.num_points
        leave = check_integer(leave, "leave", minimum=0)
        if leave > n_old:
            raise ValueError(f"cannot drop {leave} of {n_old} points")
        dist = np.asarray(distances, dtype=float)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ValueError("distances must be a square matrix")
        keep = n_old - leave
        n_new = dist.shape[0]
        if n_new < keep:
            raise ValueError(
                f"new distance matrix has {n_new} points but {keep} were retained"
            )
        enter = n_new - keep
        adjacency = dist <= self.epsilon
        np.fill_diagonal(adjacency, False)
        if not np.array_equal(adjacency[:keep, :keep], self._adjacency[leave:, leave:]):
            raise ValueError(
                "retained points changed adjacency; incremental advance requires the "
                "retained block of the distance matrix to induce the same ε-graph "
                "(use SlidingDistanceMatrix, or advance with leave=num_points)"
            )
        max_dim = self.max_dimension

        # Old simplices: destroyed iff they contain a leaving vertex, i.e. iff
        # their minimum vertex (column 0) is < leave; survivors shift by -leave
        # and remain lexicographically sorted.
        if max_dim >= 1 and leave and len(old.edges):
            edge_survives = old.edges[:, 0] >= leave
            edges_destroyed = old.edges[~edge_survives]
            surviving_edges = old.edges[edge_survives] - leave
        else:
            edges_destroyed = _EMPTY_EDGES
            surviving_edges = old.edges
        if max_dim >= 2 and leave and len(old.triangles):
            tri_survives = old.triangles[:, 0] >= leave
            triangles_destroyed = old.triangles[~tri_survives]
            surviving_triangles = old.triangles[tri_survives] - leave
        else:
            triangles_destroyed = _EMPTY_TRIANGLES
            surviving_triangles = old.triangles

        # Created simplices are exactly those whose maximum vertex entered
        # (index >= keep): enumerate against the entering columns only.
        # np.nonzero walks rows then columns, so both batches come out in the
        # same lexicographic order flag_complex_arrays produces.
        if max_dim >= 1 and enter and n_new > 1:
            entering_cols = np.arange(keep, n_new)
            candidates = adjacency[:, keep:] & (
                np.arange(n_new)[:, None] < entering_cols[None, :]
            )
            first, offset = np.nonzero(candidates)
            edges_created = np.stack([first, keep + offset], axis=1).astype(np.int64)
        else:
            edges_created = _EMPTY_EDGES
        new_edges = _merge_lex_sorted(surviving_edges, edges_created, n_new)
        if max_dim >= 2 and enter and len(new_edges):
            entering_cols = np.arange(keep, n_new)
            candidates = adjacency[new_edges[:, 0], keep:] & adjacency[new_edges[:, 1], keep:]
            candidates &= entering_cols[None, :] > new_edges[:, 1][:, None]
            edge_rows, offset = np.nonzero(candidates)
            triangles_created = np.empty((len(edge_rows), 3), dtype=np.int64)
            triangles_created[:, :2] = new_edges[edge_rows]
            triangles_created[:, 2] = keep + offset
        else:
            triangles_created = _EMPTY_TRIANGLES
        new_triangles = _merge_lex_sorted(surviving_triangles, triangles_created, n_new)

        delta = FlagComplexDelta(
            num_points_before=n_old,
            num_points_after=n_new,
            leave_count=leave,
            enter_count=enter,
            edges_destroyed=edges_destroyed,
            edges_created=edges_created,
            triangles_destroyed=triangles_destroyed,
            triangles_created=triangles_created,
            vertices_changed=n_new != n_old,
            edges_changed=not np.array_equal(new_edges, old.edges),
            triangles_changed=not np.array_equal(new_triangles, old.triangles),
        )
        self._arrays = FlagComplexArrays(
            num_points=n_new,
            edges=new_edges,
            triangles=new_triangles,
            max_dimension=max_dim,
        )
        self._adjacency = adjacency
        return delta
