"""Quantum Fourier transform circuits.

QPE (Fig. 6 of the paper) ends with an inverse QFT on the precision
register.  The construction is the textbook one: Hadamards plus controlled
phase rotations, followed by the qubit-order-reversing swaps.

Convention: for a register of ``n`` qubits with qubit 0 the most significant
bit, :func:`qft_circuit` implements the unitary with matrix elements
``QFT[j, k] = ω^{jk} / sqrt(2^n)`` with ``ω = exp(2πi / 2^n)``, and
:func:`inverse_qft_circuit` its adjoint.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.circuit import QuantumCircuit


def qft_matrix(num_qubits: int) -> np.ndarray:
    """Dense reference matrix of the QFT on ``num_qubits`` qubits."""
    dim = 2**num_qubits
    omega = np.exp(2j * np.pi / dim)
    j, k = np.meshgrid(np.arange(dim), np.arange(dim), indexing="ij")
    return omega ** (j * k) / np.sqrt(dim)


def qft_circuit(num_qubits: int, do_swaps: bool = True, name: str = "QFT") -> QuantumCircuit:
    """Build the QFT circuit on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Register size.
    do_swaps:
        Whether to append the final bit-reversal swaps.  Leaving them out and
        compensating by re-interpreting the output bit order is a common
        optimisation; the QPE builder keeps them for clarity.
    """
    circ = QuantumCircuit(num_qubits, name=name)
    for target in range(num_qubits):
        circ.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=2):
            circ.cp(2.0 * np.pi / (2**offset), control, target)
    if do_swaps:
        for q in range(num_qubits // 2):
            circ.swap(q, num_qubits - 1 - q)
    return circ


def inverse_qft_circuit(num_qubits: int, do_swaps: bool = True, name: str = "QFT†") -> QuantumCircuit:
    """The adjoint of :func:`qft_circuit` (used at the end of QPE)."""
    inv = qft_circuit(num_qubits, do_swaps=do_swaps).inverse()
    inv.name = name
    return inv
