"""Batched ("ensemble") statevector execution engine.

The simulators in :mod:`repro.quantum.statevector` evolve one pure state at a
time.  The QTDA circuit, however, takes the *maximally mixed* state ``I/2^q``
as input, and the faithful ways to simulate that — purification on ``t + 2q``
qubits, or density-matrix evolution of a ``2^(t+q) x 2^(t+q)`` matrix — pay
for the mixedness quadratically.  This module provides the third route: store
an ensemble of ``B`` pure states as one ``(2^n, B)`` array and push *every*
gate through the whole batch with a single :func:`tensordot` contraction, so
the mixed state costs ``O(2^(t+q) · 2^q)`` flops per gate on a flat array
instead of a squared state, with no auxiliary qubits at all.

Three design points:

* **One kernel.**  :func:`apply_gate_to_ensemble` is the only contraction in
  the package — the single-state simulator's ``apply_gate_to_statevector`` is
  its batch-1 specialisation (bit-identical: the underlying GEMM sees the
  same operand bytes in the same order, the trailing batch axis of length 1
  changes nothing).
* **Gate fusion.**  The executor runs circuits through the fusion pass of
  :mod:`repro.quantum.fusion`, which merges adjacent gates acting on at most
  ``max_fuse_qubits`` qubits into one matrix and caches the fused plan per
  circuit fingerprint — QPE's repeated ``U^{2^j}``-by-repetition synthesis
  collapses dramatically, and re-running the same circuit (every chunk of a
  batched ensemble, every ε of a sweep) pays for fusion once.
* **Array-module seam.**  All array math goes through an ``xp`` module handle
  (:func:`array_module`).  It is :mod:`numpy` everywhere today; when CuPy is
  installed it is picked up automatically (or forced/suppressed with the
  ``REPRO_ARRAY_MODULE`` environment variable), which lands the ROADMAP's
  "GPU statevector backend" item without a separate code path.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.channels import NoiseSpec, QuantumChannel, apply_readout_error
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.measurement import ensemble_member_marginal_probabilities
from repro.quantum.operations import Barrier, Gate, Measurement

#: Default ceiling on the bytes a single ensemble chunk may occupy
#: (``2^n · B · 16`` bytes for complex128).  256 MiB keeps the largest chunk
#: comfortably inside typical last-level caches-plus-RAM headroom while still
#: amortising per-gate Python overhead over wide batches.
DEFAULT_MEMORY_BUDGET_BYTES = 256 * 1024 * 1024

#: Default fusion window (see :func:`repro.quantum.fusion.fuse_circuit`).
DEFAULT_MAX_FUSE_QUBITS = 3

#: Pinned column-block width of the ensemble readout routes.  BLAS GEMM
#: kernels pick different micro-kernel tails for different operand widths, so
#: the same column evolved in a 6-wide and a 16-wide batch can differ by one
#: ulp; evolving every ensemble in fixed blocks of this many columns makes
#: the readout bit-identical under any block-aligned partition of the batch
#: axis — the invariant the sharded executor's split points rely on.  16
#: columns keeps the contraction wide enough to amortise per-gate overhead.
DEFAULT_COLUMN_BLOCK = 16

_ARRAY_MODULE_OVERRIDE = None
_DETECTED_MODULE = None


def set_array_module(xp) -> None:
    """Force the array module used by new executors (``None`` re-enables autodetection).

    Intended for tests and for callers that manage device placement
    themselves; normal code should rely on :func:`array_module`.
    """
    global _ARRAY_MODULE_OVERRIDE
    _ARRAY_MODULE_OVERRIDE = xp


def array_module():
    """The active array module (``numpy``, or ``cupy`` when available).

    Resolution order: :func:`set_array_module` override, then the
    ``REPRO_ARRAY_MODULE`` environment variable (``"numpy"`` or ``"cupy"``),
    then autodetection (CuPy with a usable device wins, NumPy otherwise).
    The autodetection result is cached for the life of the process.
    """
    global _DETECTED_MODULE
    if _ARRAY_MODULE_OVERRIDE is not None:
        return _ARRAY_MODULE_OVERRIDE
    requested = os.environ.get("REPRO_ARRAY_MODULE", "").strip().lower()
    if requested in ("numpy", "np"):
        return np
    if requested == "cupy":
        import cupy  # hard requirement when explicitly requested

        return cupy
    if requested:
        # An explicit-but-unknown value must not silently fall back to
        # autodetection — the user asked for a specific device placement.
        raise ValueError(
            f"REPRO_ARRAY_MODULE must be 'numpy' or 'cupy', got {requested!r}"
        )
    if _DETECTED_MODULE is None:
        try:
            import cupy

            cupy.zeros(1)  # fails fast when no device is usable
            _DETECTED_MODULE = cupy
        except Exception:
            _DETECTED_MODULE = np
    return _DETECTED_MODULE


def to_host(array) -> np.ndarray:
    """Move an ``xp`` array to host memory (no-op for NumPy arrays)."""
    getter = getattr(array, "get", None)
    if getter is not None and not isinstance(array, np.ndarray):
        return np.asarray(getter())
    return np.asarray(array)


def derive_trajectory_seeds(rng: np.random.Generator, n_trajectories: int) -> Tuple[int, ...]:
    """Deterministic per-trajectory integer seeds drawn from ``rng``.

    One bulk draw (``rng.integers(0, 2**63 - 1, size=n)`` — the same
    derivation :func:`repro.utils.rng.spawn_rngs` uses) seeds every
    trajectory up front, so trajectory ``i``'s random stream depends only on
    the estimator seed and ``i`` — never on how the trajectories are batched
    or scheduled.  This is what lets the sharded executor
    (:mod:`repro.quantum.sharding`) split the trajectory axis across workers
    while staying bit-identical to the serial run.
    """
    n_trajectories = int(n_trajectories)
    if n_trajectories < 1:
        raise ValueError("n_trajectories must be >= 1")
    return tuple(int(s) for s in rng.integers(0, 2**63 - 1, size=n_trajectories))


def _normalised_weights(weights, count: int) -> np.ndarray:
    """Validate and normalise ensemble member weights (uniform when ``None``)."""
    if weights is None:
        return np.full(count, 1.0 / count)
    w = np.asarray(list(weights), dtype=float)
    if w.shape != (count,):
        raise ValueError("weights must match basis_states in length")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total_weight = w.sum()
    if total_weight <= 0:
        # Caught here rather than as NaNs three layers downstream.
        raise ValueError("weights must have a positive sum")
    return w / total_weight


def trajectory_mean_and_sem(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mean distribution and per-outcome standard error of trajectory rows.

    The single reduction both the serial and the sharded trajectory paths
    share: given the stacked ``(T, out_dim)`` per-trajectory distributions it
    returns ``(mean, std(ddof=1)/sqrt(T))`` (zeros for a single trajectory).
    """
    rows = np.asarray(rows, dtype=float)
    n_trajectories, out_dim = rows.shape
    mean = rows.mean(axis=0)
    if n_trajectories > 1:
        sem = rows.std(axis=0, ddof=1) / np.sqrt(n_trajectories)
    else:
        sem = np.zeros(out_dim)
    return mean, sem


def apply_gate_to_ensemble(
    states,
    gate_matrix,
    qubits: Sequence[int],
    num_qubits: int,
    xp=np,
):
    """Apply a ``k``-qubit gate to every member of a ``(2^n, B)`` ensemble at once.

    Parameters
    ----------
    states:
        ``(2^num_qubits, B)`` complex array; column ``b`` is one pure state.
    gate_matrix:
        ``2^k x 2^k`` unitary; its first index qubit is ``qubits[0]``.
    qubits:
        Target qubits (qubit 0 = most significant bit of basis labels).
    num_qubits:
        Register size ``n``.
    xp:
        Array module (:func:`array_module`); defaults to NumPy.

    Notes
    -----
    The whole batch is contracted in one ``tensordot`` — the gate's column
    indices against the target qubit axes of the rank-``n+1`` state tensor
    (batch axis last) — so the per-gate cost is ``O(2^n · 2^k · B)`` with no
    Python loop over batch members.  For ``B = 1`` the contraction is
    bit-identical to the single-state kernel it generalises.
    """
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    batch = states.shape[-1]
    psi = states.reshape([2] * num_qubits + [batch])
    gate = gate_matrix.reshape([2] * (2 * k))
    # Contract the gate's column indices (last k axes) with the target axes.
    psi = xp.tensordot(gate, psi, axes=(list(range(k, 2 * k)), qubits))
    # tensordot moves the contracted axes to the front (in gate row order);
    # put them back where the target qubits live.  The batch axis stays last.
    psi = xp.moveaxis(psi, list(range(k)), qubits)
    return xp.ascontiguousarray(psi).reshape(2**num_qubits, batch)


def _apply_member_matrices(states, matrices, qubits, num_qubits: int, xp=np):
    """Apply a *different* ``d x d`` matrix to each member of a ``(2^n, B)`` ensemble.

    ``matrices`` is ``(B, d, d)`` with ``d = 2^len(qubits)`` — the sampled
    Kraus branch of each ensemble member.  The whole batch still goes through
    one einsum: the target qubit axes are moved to the front, flattened to
    ``(d, M, B)``, and contracted against the per-member matrix stack.
    """
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    d = 2**k
    batch = states.shape[-1]
    psi = states.reshape([2] * num_qubits + [batch])
    psi = xp.moveaxis(psi, qubits, list(range(k)))
    rest_shape = psi.shape[k:]
    psi = psi.reshape(d, -1, batch)
    psi = xp.einsum("bij,jmb->imb", matrices, psi)
    psi = psi.reshape((2,) * k + tuple(rest_shape))
    psi = xp.moveaxis(psi, list(range(k)), qubits)
    return xp.ascontiguousarray(psi).reshape(2**num_qubits, batch)


def sample_channel_branches(
    channel: QuantumChannel,
    states,
    qubits: Sequence[int],
    num_qubits: int,
    rng: np.random.Generator,
    xp=np,
):
    """One trajectory step: sample a Kraus branch of ``channel`` per ensemble member.

    Mixed-unitary channels (Pauli-type — every ``K_k = √p_k U_k``) use the
    precomputed cumulative branch table: one ``searchsorted`` over ``B``
    uniforms picks each member's branch, and no renormalisation is needed
    (unitary branches preserve norm).  Members that drew an exact-identity
    branch — almost all of them at realistic strengths — are skipped
    entirely; the remaining sampled unitaries are gathered into a stack and
    applied to just those columns in a single einsum.

    General channels (amplitude damping) need per-state Born probabilities
    ``p_k(ψ_b) = ‖K_k ψ_b‖²``: every branch is applied to the full ensemble,
    the branch is sampled from each member's own distribution, and the
    selected states are renormalised by ``√p_k``.
    """
    batch = states.shape[-1]
    if channel.is_mixed_unitary:
        u = rng.random(batch)
        idx = np.searchsorted(channel.cumulative_probabilities, u, side="right")
        idx = np.clip(idx, 0, len(channel.unitary_branches) - 1)
        active = np.flatnonzero(~channel.identity_branches[idx])
        if active.size == 0:
            return states
        if active.size < batch:
            mats = xp.asarray(np.stack(channel.unitary_branches)[idx[active]])
            out = xp.array(states, copy=True)
            out[:, active] = _apply_member_matrices(
                xp.ascontiguousarray(states[:, active]), mats, qubits, num_qubits, xp=xp
            )
            return out
        mats = xp.asarray(np.stack(channel.unitary_branches)[idx])
        return _apply_member_matrices(states, mats, qubits, num_qubits, xp=xp)
    branch_states = xp.stack(
        [
            apply_gate_to_ensemble(states, xp.asarray(k), qubits, num_qubits, xp=xp)
            for k in channel.kraus_ops
        ]
    )  # (K, 2^n, B)
    probs = (xp.abs(branch_states) ** 2).sum(axis=1)  # (K, B) Born weights
    cumulative = xp.cumsum(probs, axis=0)
    u = xp.asarray(rng.random(batch)) * cumulative[-1]
    idx = (u[None, :] > cumulative).sum(axis=0)
    idx = xp.clip(idx, 0, len(channel.kraus_ops) - 1)
    members = xp.arange(batch)
    selected = branch_states[idx, :, members].T  # (2^n, B)
    norms = xp.sqrt(probs[idx, members])
    norms = xp.where(norms > 0, norms, 1.0)
    return selected / norms


class EnsembleExecutor:
    """Executes circuits on ``(2^n, B)`` ensembles of pure states.

    Parameters
    ----------
    fuse:
        Run circuits through the gate-fusion pass (cached per circuit
        fingerprint) before execution.  Fusion changes floating-point
        association, so callers that need bit-identity with the unfused
        single-state simulator must pass ``False``.
    max_fuse_qubits:
        Largest qubit support a fused block may reach.
    memory_budget_bytes:
        Ceiling on one chunk's state memory; :meth:`basis_ensemble_distribution`
        splits wider ensembles into column chunks that fit.
    column_block:
        Pinned evolution width of the ensemble readout routes (defaults to
        :data:`DEFAULT_COLUMN_BLOCK`); see :meth:`evolution_block`.
    xp:
        Array module override; defaults to :func:`array_module`.
    """

    def __init__(
        self,
        fuse: bool = True,
        max_fuse_qubits: int = DEFAULT_MAX_FUSE_QUBITS,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
        column_block: Optional[int] = None,
        xp=None,
    ):
        self.fuse = bool(fuse)
        self.max_fuse_qubits = int(max_fuse_qubits)
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.column_block = int(column_block) if column_block is not None else DEFAULT_COLUMN_BLOCK
        if self.column_block < 1:
            raise ValueError("column_block must be >= 1")
        self.xp = xp if xp is not None else array_module()

    # -- planning -------------------------------------------------------------
    def gate_plan(self, circuit: QuantumCircuit) -> Tuple[Gate, ...]:
        """The gate sequence this executor will run (fused when enabled)."""
        if self.fuse:
            from repro.quantum.fusion import fuse_circuit

            return fuse_circuit(circuit, max_fuse_qubits=self.max_fuse_qubits)
        return circuit.gates

    def max_batch(self, num_qubits: int) -> int:
        """Widest batch whose ``(2^n, B)`` complex array fits the memory budget."""
        bytes_per_state = (2**num_qubits) * 16  # complex128
        return max(1, self.memory_budget_bytes // bytes_per_state)

    def evolution_block(self, num_qubits: int) -> int:
        """The pinned column width the ensemble readout routes evolve at.

        The memory budget caps it, ``column_block`` pins it: GEMM results for
        one column depend (at the ulp level) on the operand width, so a fixed
        width — rather than "whatever fits" — is what makes the readout
        reproducible across machines with different budgets and across the
        sharded executor's block-aligned splits.
        """
        return max(1, min(self.max_batch(num_qubits), self.column_block))

    # -- execution ------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, initial_states) -> np.ndarray:
        """Evolve a ``(2^n, B)`` ensemble through ``circuit``; returns host array.

        Measurement markers and barriers are skipped, exactly as in the
        single-state simulator.  The caller sizes the batch; chunking to the
        memory budget is the job of :meth:`basis_ensemble_distribution`.
        """
        n = circuit.num_qubits
        xp = self.xp
        states = xp.asarray(initial_states, dtype=complex)
        if states.ndim == 1:
            states = states.reshape(-1, 1)
        if states.shape[0] != 2**n:
            raise ValueError(
                f"Ensemble has state dimension {states.shape[0]}, expected {2**n} for {n} qubits"
            )
        states = self._evolve(states, self._prepare(self.gate_plan(circuit)), n)
        return to_host(states)

    def _prepare(self, gates: Iterable[Gate]):
        """Device-resident ``(matrix, qubits)`` pairs for a gate plan.

        Conversion happens once per plan, not once per chunk — on the CuPy
        seam each ``asarray`` is a host-to-device transfer, and re-uploading
        the wide controlled powers for every ensemble chunk would waste
        exactly the bandwidth the batch route is meant to save.
        """
        xp = self.xp
        return [
            (xp.asarray(gate.matrix, dtype=complex), gate.qubits)
            for gate in gates
            if not isinstance(gate, (Measurement, Barrier))
        ]

    def _evolve(self, states, prepared, num_qubits: int):
        xp = self.xp
        for matrix, qubits in prepared:
            states = apply_gate_to_ensemble(states, matrix, qubits, num_qubits, xp=xp)
        return states

    def basis_ensemble_distribution(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        basis_states: Sequence[int],
        weights: Optional[Sequence[float]] = None,
        plan: Optional[Tuple[Gate, ...]] = None,
    ) -> np.ndarray:
        """Readout distribution on ``qubits`` for an ensemble of basis states.

        Evolves the ensemble ``{|basis_states[b]>}`` through ``circuit`` and
        returns the weighted average of each member's marginal probabilities
        on ``qubits`` (uniform weights by default — the maximally mixed
        ensemble).  The ensemble is processed in fixed column blocks
        (:meth:`evolution_block`); each block reduces to its per-member
        marginal matrix (:func:`~repro.quantum.measurement.
        ensemble_member_marginal_probabilities`) which is then contracted
        with the block's weights — so no per-member probability vector over
        the full register is ever materialised, and because every block is
        evolved at the same pinned width the result is bit-identical under
        any block-aligned partition of the batch axis (the invariant the
        sharded executor relies on).  ``plan`` lets callers that already
        obtained :meth:`gate_plan` for this circuit skip re-fingerprinting it.
        """
        n = circuit.num_qubits
        basis = self._validated_basis(circuit, basis_states)
        w = _normalised_weights(weights, len(basis))
        xp = self.xp
        prepared = self._prepare(plan if plan is not None else self.gate_plan(circuit))
        chunk = self.evolution_block(n)
        total: Optional[np.ndarray] = None
        for start in range(0, len(basis), chunk):
            block = basis[start : start + chunk]
            marginals = self._member_marginal_block(block, prepared, n, qubits)
            partial = to_host(marginals @ xp.asarray(w[start : start + len(block)]))
            total = partial if total is None else total + partial
        assert total is not None
        return total / total.sum()

    def basis_ensemble_member_marginals(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        basis_states: Sequence[int],
        plan: Optional[Tuple[Gate, ...]] = None,
    ) -> np.ndarray:
        """Per-member marginal readouts: an ``(out_dim, B)`` host matrix.

        Column ``b`` is the marginal distribution of ensemble member
        ``|basis_states[b]>`` on ``qubits`` after ``circuit``.  The batch is
        evolved in the same fixed column blocks as
        :meth:`basis_ensemble_distribution`; because the width of every
        evolution is pinned (:meth:`evolution_block`), the result is
        bit-identical under any block-aligned split of the members across
        workers — which is exactly how
        :class:`repro.quantum.sharding.ShardedExecutor` uses this method.
        """
        n = circuit.num_qubits
        basis = self._validated_basis(circuit, basis_states)
        prepared = self._prepare(plan if plan is not None else self.gate_plan(circuit))
        chunk = self.evolution_block(n)
        blocks = []
        for start in range(0, len(basis), chunk):
            block = basis[start : start + chunk]
            blocks.append(to_host(self._member_marginal_block(block, prepared, n, qubits)))
        return np.hstack(blocks)

    def _validated_basis(self, circuit: QuantumCircuit, basis_states) -> list:
        dim = 2**circuit.num_qubits
        basis = [int(b) for b in basis_states]
        if not basis:
            raise ValueError("basis_states must be non-empty")
        for b in basis:
            if not 0 <= b < dim:
                raise ValueError(f"basis state {b} out of range for {circuit.num_qubits} qubits")
        return basis

    def _member_marginal_block(self, block, prepared, num_qubits: int, qubits):
        """Evolve one chunk of basis columns and reduce to ``(out_dim, len(block))``."""
        xp = self.xp
        states = xp.zeros((2**num_qubits, len(block)), dtype=complex)
        for column, b in enumerate(block):
            states[b, column] = 1.0
        states = self._evolve(states, prepared, num_qubits)
        return ensemble_member_marginal_probabilities(states, num_qubits, qubits, xp=xp)

    def trajectory_basis_distribution(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        basis_states: Sequence[int],
        noise_spec: NoiseSpec,
        rng: np.random.Generator,
        n_trajectories: int = 8,
        weights: Optional[Sequence[float]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Noisy readout distribution via stochastic Kraus-branch trajectories.

        Evolves the basis-state ensemble through ``circuit`` like
        :meth:`basis_ensemble_distribution`, but after each gate samples one
        Kraus branch of every channel ``noise_spec`` places there
        (:func:`sample_channel_branches`) — per ensemble member, still one
        contraction per gate across the batch.  The whole run is repeated
        ``n_trajectories`` times; the mean over trajectories estimates the
        density-matrix result and the spread is returned as a per-outcome
        standard error (zeros for a single trajectory).

        Gate fusion is deliberately bypassed: the density route injects noise
        after every *original* gate, and fusing would move the injection
        points, so the trajectory mean would converge to a different channel
        composition.  Readout error is applied to each trajectory's marginal
        as the exact per-bit confusion contraction.

        Each trajectory runs under its own seed derived from ``rng``
        (:func:`derive_trajectory_seeds`): trajectory ``i``'s branch draws
        depend only on ``seeds[i]``, never on the other trajectories, so the
        trajectory axis can be split across shard workers bit-identically.

        Returns ``(mean_distribution, standard_error)`` as host arrays.
        """
        seeds = derive_trajectory_seeds(rng, n_trajectories)
        rows = self.trajectory_rows(circuit, qubits, basis_states, noise_spec, seeds, weights)
        return trajectory_mean_and_sem(rows)

    def trajectory_rows(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        basis_states: Sequence[int],
        noise_spec: NoiseSpec,
        seeds: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """One readout distribution per trajectory seed: a ``(T, out_dim)`` matrix.

        Row ``i`` is the (readout-error-adjusted) ensemble-averaged marginal
        of one full stochastic Kraus unravelling driven by
        ``default_rng(seeds[i])``.  Because every row depends only on its own
        seed, any slicing of ``seeds`` across workers reproduces exactly the
        corresponding rows — :class:`repro.quantum.sharding.ShardedExecutor`
        splits here.  :meth:`trajectory_basis_distribution` is the
        ``derive_trajectory_seeds`` + mean/SEM composition of this method.
        """
        n = circuit.num_qubits
        dim = 2**n
        basis = self._validated_basis(circuit, basis_states)
        w = _normalised_weights(weights, len(basis))
        xp = self.xp
        gates = [g for g in circuit.gates if not isinstance(g, (Measurement, Barrier))]
        prepared = [(xp.asarray(g.matrix, dtype=complex), g.qubits) for g in gates]
        noise_plan = [noise_spec.channels_for_gate(g) for g in gates]
        chunk = self.max_batch(n)
        out_dim = 2 ** len(list(qubits))
        per_trajectory = np.zeros((len(seeds), out_dim))
        for trajectory, seed in enumerate(seeds):
            trajectory_rng = np.random.default_rng(int(seed))
            total: Optional[np.ndarray] = None
            for start in range(0, len(basis), chunk):
                block = basis[start : start + chunk]
                states = xp.zeros((dim, len(block)), dtype=complex)
                for column, b in enumerate(block):
                    states[b, column] = 1.0
                for (matrix, gate_qubits), placed in zip(prepared, noise_plan):
                    states = apply_gate_to_ensemble(states, matrix, gate_qubits, n, xp=xp)
                    for channel, targets in placed:
                        states = sample_channel_branches(
                            channel, states, targets, n, trajectory_rng, xp=xp
                        )
                marginals = ensemble_member_marginal_probabilities(states, n, qubits, xp=xp)
                partial = to_host(marginals @ xp.asarray(w[start : start + len(block)]))
                total = partial if total is None else total + partial
            assert total is not None
            distribution = total / total.sum()
            if noise_spec.readout_error > 0:
                distribution = apply_readout_error(distribution, noise_spec.readout_error)
            per_trajectory[trajectory] = distribution
        return per_trajectory
