"""Dense statevector simulation.

The simulator stores the register as a rank-``n`` tensor of amplitudes
(one axis of length 2 per qubit, qubit 0 first) and applies each ``k``-qubit
gate with a single :func:`numpy.tensordot` contraction — the standard
vectorised approach, ``O(2^n · 2^k)`` per gate with no Python loops over
amplitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.measurement import born_probabilities, marginal_probabilities, sample_counts
from repro.quantum.operations import Barrier, Gate, Measurement
from repro.utils.rng import SeedLike, as_rng


@dataclass
class Statevector:
    """A pure state on ``num_qubits`` qubits.

    ``amplitudes[i]`` is the amplitude of basis state ``|b_0 b_1 ... b_{n-1}>``
    where ``i = Σ_j b_j 2^{n-1-j}`` (qubit 0 is the most significant bit).
    """

    amplitudes: np.ndarray

    def __post_init__(self):
        amp = np.asarray(self.amplitudes, dtype=complex).reshape(-1)
        n = int(np.log2(amp.size))
        if 2**n != amp.size:
            raise ValueError(f"Statevector length {amp.size} is not a power of two")
        self.amplitudes = amp

    @property
    def num_qubits(self) -> int:
        return int(np.log2(self.amplitudes.size))

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """``|0...0>``."""
        amp = np.zeros(2**num_qubits, dtype=complex)
        amp[0] = 1.0
        return cls(amp)

    @classmethod
    def basis_state(cls, num_qubits: int, index: int) -> "Statevector":
        """Computational basis state ``|index>``."""
        amp = np.zeros(2**num_qubits, dtype=complex)
        amp[int(index)] = 1.0
        return cls(amp)

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector."""
        return float(np.linalg.norm(self.amplitudes))

    def normalized(self) -> "Statevector":
        """Unit-norm copy."""
        n = self.norm()
        if n == 0:
            raise ValueError("Cannot normalise the zero vector")
        return Statevector(self.amplitudes / n)

    def probabilities(self) -> np.ndarray:
        """Born-rule probabilities over all ``2^n`` basis states."""
        return born_probabilities(self.amplitudes)

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Probabilities of outcomes on the sub-register ``qubits``."""
        return marginal_probabilities(self.probabilities(), self.num_qubits, qubits)

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None, seed: SeedLike = None) -> Dict[str, int]:
        """Sample measurement outcomes (bitstring -> count)."""
        qubits = list(range(self.num_qubits)) if qubits is None else list(qubits)
        probs = self.marginal_probabilities(qubits)
        return sample_counts(probs, shots, num_bits=len(qubits), seed=seed)

    def expectation(self, operator: np.ndarray) -> float:
        """Real part of ``<psi|O|psi>`` for a dense Hermitian operator."""
        op = np.asarray(operator, dtype=complex)
        return float(np.real(np.vdot(self.amplitudes, op @ self.amplitudes)))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        return float(abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)

    def density_matrix(self) -> np.ndarray:
        """Outer product ``|psi><psi|``."""
        return np.outer(self.amplitudes, self.amplitudes.conj())


def apply_gate_to_statevector(state: np.ndarray, gate_matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a ``k``-qubit gate to a flat statevector and return a new flat array.

    This is the batch-1 specialisation of :func:`repro.quantum.engine.
    apply_gate_to_ensemble` — the state is viewed as a ``(2^n, 1)`` ensemble
    and pushed through the same contraction kernel (bit-identical: the
    trailing batch axis of length 1 changes neither operand layout nor
    summation order).

    Parameters
    ----------
    state:
        Flat complex array of length ``2^num_qubits``.
    gate_matrix:
        ``2^k x 2^k`` unitary; its first index qubit is ``qubits[0]``.
    qubits:
        Target qubits (qubit 0 = most significant bit of basis labels).
    num_qubits:
        Register size.
    """
    from repro.quantum.engine import apply_gate_to_ensemble

    psi = np.asarray(state, dtype=complex).reshape(-1, 1)
    gate = np.asarray(gate_matrix, dtype=complex)
    return apply_gate_to_ensemble(psi, gate, qubits, num_qubits).reshape(-1)


class StatevectorSimulator:
    """Executes :class:`QuantumCircuit` objects on dense statevectors.

    Parameters
    ----------
    validate_unitaries, atol:
        Optionally check every gate matrix is unitary before applying it.
    fuse:
        Run circuits through the gate-fusion pass
        (:func:`repro.quantum.fusion.fuse_circuit`) before execution.  Off by
        default: fusion changes floating-point association, and this
        simulator backs the bit-identity-pinned legacy circuit routes.
    max_fuse_qubits:
        Fusion window when ``fuse`` is enabled.
    """

    def __init__(
        self,
        validate_unitaries: bool = False,
        atol: float = 1e-8,
        fuse: bool = False,
        max_fuse_qubits: int = 3,
    ):
        self.validate_unitaries = bool(validate_unitaries)
        self.atol = float(atol)
        self.fuse = bool(fuse)
        self.max_fuse_qubits = int(max_fuse_qubits)

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray | Statevector] = None,
    ) -> Statevector:
        """Simulate ``circuit`` and return the final state.

        Measurement instructions are ignored here (they only matter for
        :meth:`sample`); barriers are skipped.
        """
        n = circuit.num_qubits
        if initial_state is None:
            psi = Statevector.zero_state(n).amplitudes
        else:
            init = initial_state.amplitudes if isinstance(initial_state, Statevector) else np.asarray(initial_state, dtype=complex)
            if init.size != 2**n:
                raise ValueError(
                    f"Initial state has dimension {init.size}, expected {2**n} for {n} qubits"
                )
            psi = init.reshape(-1).astype(complex)
        if self.fuse:
            from repro.quantum.fusion import fuse_circuit

            instructions: Sequence[object] = fuse_circuit(
                circuit, max_fuse_qubits=self.max_fuse_qubits
            )
        else:
            instructions = circuit.instructions
        for op in instructions:
            if isinstance(op, Gate):
                if self.validate_unitaries:
                    op.validate_unitary(atol=self.atol)
                psi = apply_gate_to_statevector(psi, op.matrix, op.qubits, n)
            elif isinstance(op, (Measurement, Barrier)):
                continue
            else:  # pragma: no cover - defensive
                raise TypeError(f"Unsupported instruction {op!r}")
        return Statevector(psi)

    def sample(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_state: Optional[np.ndarray | Statevector] = None,
        qubits: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> Dict[str, int]:
        """Run the circuit and sample ``shots`` outcomes on ``qubits``.

        If ``qubits`` is ``None``, the circuit's measured qubits are used (or
        all qubits when the circuit has no measurement markers).
        """
        final = self.run(circuit, initial_state=initial_state)
        if qubits is None:
            qubits = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        return final.sample(shots, qubits=qubits, seed=as_rng(seed))

    def probabilities(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[np.ndarray | Statevector] = None,
        qubits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Exact outcome probabilities on ``qubits`` (default: measured or all)."""
        final = self.run(circuit, initial_state=initial_state)
        if qubits is None:
            qubits = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        return final.marginal_probabilities(qubits)
