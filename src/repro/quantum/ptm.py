"""Pauli-transfer-matrix (PTM) representation and execution of noisy circuits.

The density route contracts every gate *and* every Kraus operator against a
``2^n x 2^n`` density matrix — exact, but each noise channel is a Python-level
loop of per-qubit Kraus conjugations, and nothing fuses across the
gate/channel boundary.  This module represents the same evolution in the
*Pauli basis* (in the spirit of quantumsim's ``ptm.py``):

* the state is a real length-``4^n`` vector ``r`` with
  ``rho = sum_i r_i P~_i`` over the normalised Pauli basis
  ``P~_i = P_i / sqrt(2)`` per qubit (``Tr[P~_i P~_j] = delta_ij``);
* every ``k``-qubit gate or channel becomes its PTM — a **real**
  ``4^k x 4^k`` matrix ``R_ij = Tr[P~_i E(P~_j)]`` — and composition is plain
  matrix product, so noise channels fuse with gates exactly like gates fuse
  with gates (:func:`repro.quantum.fusion.fuse_ptm_program`);
* executing the circuit is a chain of batched ``tensordot`` contractions over
  a ``(4^n, B)`` array behind the same ``xp = numpy|cupy`` seam the ensemble
  engine uses, with the same memory-budget column chunking.

Exactness is the point: unlike the trajectory route there is no sampling —
the final Pauli vector *is* the density matrix, so the readout matches the
density route to floating-point accuracy while the per-gate noise rides
inside fused superoperators instead of per-qubit Kraus loops.

Conventions (shared with the rest of the module):

* Pauli index digits are base-4 (``0..3 = I, X, Y, Z``); the first qubit of
  a support tuple is the most significant digit, matching the
  :class:`~repro.quantum.operations.Gate` bit convention.
* A trace-preserving channel has first PTM row ``e_0`` (``Tr`` of the
  normalised identity is preserved); a unitary channel has an orthogonal
  PTM.  Both are pinned by the property tests.

Controlled powers of ``U`` are too wide for an explicit PTM (``4^k`` with
``k = 1 + q``), so they are applied by a basis round-trip: each support axis
is rotated from the Pauli basis to the matrix-unit basis (a single-qubit
unitary ``T``), the row/col bit groups are conjugated by the unitary (with a
fast path exploiting the ``I (+) V`` controlled block structure), and the
axes are rotated back — the Pauli-basis analogue of the density route's
two-sided contraction, at the same leading cost but without giving up fusion
for everything else.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache, reduce
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.quantum.channels import QuantumChannel
from repro.quantum.engine import (
    DEFAULT_COLUMN_BLOCK,
    DEFAULT_MAX_FUSE_QUBITS,
    DEFAULT_MEMORY_BUDGET_BYTES,
    array_module,
    to_host,
)

#: Single-qubit Pauli matrices in index order I, X, Y, Z (unnormalised).
PAULIS = (
    np.eye(2, dtype=complex),
    np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex),
    np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
)


@lru_cache(maxsize=8)
def pauli_basis(num_qubits: int) -> np.ndarray:
    """The normalised ``num_qubits``-qubit Pauli basis, shape ``(4^k, 2^k, 2^k)``.

    ``basis[i]`` is the tensor product of single-qubit ``P~ = P / sqrt(2)``
    selected by the base-4 digits of ``i`` (first qubit = most significant
    digit), so ``Tr[basis[i].conj().T @ basis[j]] = delta_ij``.
    """
    k = int(num_qubits)
    if k < 1:
        raise ValueError(f"num_qubits must be >= 1, got {num_qubits}")
    single = np.stack(PAULIS) / np.sqrt(2.0)
    out = single
    for _ in range(k - 1):
        dim_p, dim_m = out.shape[0], out.shape[1]
        out = np.einsum("iab,jcd->ijacbd", out, single).reshape(
            4 * dim_p, 2 * dim_m, 2 * dim_m
        )
    out.setflags(write=False)
    return out


def ptm_from_kraus(kraus_ops: Sequence[np.ndarray]) -> np.ndarray:
    """The PTM of the channel ``rho -> sum_m K_m rho K_m†``.

    Returns the real ``(4^k, 4^k)`` matrix ``R_ij = Tr[P~_i sum_m K_m P~_j
    K_m†]``; any Hermiticity-preserving map has a real PTM, so the imaginary
    part (floating-point dust) is dropped.
    """
    ops = [np.asarray(op, dtype=complex) for op in kraus_ops]
    if not ops:
        raise ValueError("at least one Kraus operator is required")
    dim = ops[0].shape[0]
    k = int(round(np.log2(dim)))
    if 2**k != dim or any(op.shape != (dim, dim) for op in ops):
        raise ValueError("Kraus operators must be square with power-of-two dimension")
    basis = pauli_basis(k)
    ptm = np.zeros((4**k, 4**k))
    for op in ops:
        conjugated = np.einsum("ab,jbc,dc->jad", op, basis, op.conj())
        ptm += np.einsum("iab,jba->ij", basis, conjugated).real
    return ptm


def gate_ptm(matrix: np.ndarray) -> np.ndarray:
    """The (orthogonal) PTM of a unitary gate — a one-Kraus channel."""
    return ptm_from_kraus([matrix])


# --- per-channel-content PTM memo -----------------------------------------
#
# `QuantumChannel` is frozen and `from_name` is lru-cached, but sweeps over
# noise strengths build fresh channel objects per strength; keying the PTM by
# the channel's *content* lets every circuit sharing a channel (and every
# repeat of a sweep point) reuse one 4^k x 4^k construction.

_PTM_MEMO_MAXSIZE = 256
_PTM_MEMO: "OrderedDict[str, np.ndarray]" = OrderedDict()
_PTM_MEMO_LOCK = threading.Lock()
_PTM_MEMO_HITS = 0
_PTM_MEMO_MISSES = 0


def channel_content_key(channel: QuantumChannel) -> str:
    """A digest of the channel's mathematical content (name + Kraus bytes)."""
    digest = hashlib.sha256()
    digest.update(channel.name.encode())
    digest.update(str(int(channel.arity)).encode())
    for op in channel.kraus_ops:
        digest.update(np.ascontiguousarray(op, dtype=complex).tobytes())
    return digest.hexdigest()


def channel_ptm(channel: QuantumChannel) -> np.ndarray:
    """The channel's PTM, memoised per channel content (read-only array)."""
    global _PTM_MEMO_HITS, _PTM_MEMO_MISSES
    key = channel_content_key(channel)
    with _PTM_MEMO_LOCK:
        cached = _PTM_MEMO.get(key)
        if cached is not None:
            _PTM_MEMO.move_to_end(key)
            _PTM_MEMO_HITS += 1
            return cached
    ptm = ptm_from_kraus(channel.kraus_ops)
    ptm.setflags(write=False)
    with _PTM_MEMO_LOCK:
        _PTM_MEMO_MISSES += 1
        if key not in _PTM_MEMO:
            _PTM_MEMO[key] = ptm
            while len(_PTM_MEMO) > _PTM_MEMO_MAXSIZE:
                _PTM_MEMO.popitem(last=False)
        else:
            ptm = _PTM_MEMO[key]
    return ptm


def ptm_memo_info() -> Dict[str, int]:
    """Hit/miss/size counters of the per-channel PTM memo."""
    with _PTM_MEMO_LOCK:
        return {
            "hits": _PTM_MEMO_HITS,
            "misses": _PTM_MEMO_MISSES,
            "entries": len(_PTM_MEMO),
        }


def clear_ptm_memo() -> None:
    """Drop the channel-PTM memo and reset its counters (tests)."""
    global _PTM_MEMO_HITS, _PTM_MEMO_MISSES
    with _PTM_MEMO_LOCK:
        _PTM_MEMO.clear()
        _PTM_MEMO_HITS = 0
        _PTM_MEMO_MISSES = 0


# --- Pauli-vector states and readout ---------------------------------------

#: Pauli coefficients of |0><0| = (I + Z)/2 in the normalised basis.
_ZERO_FACTOR = np.array([1.0, 0.0, 0.0, 1.0]) / np.sqrt(2.0)
#: Pauli coefficients of the maximally mixed single-qubit state I/2.
_MIXED_FACTOR = np.array([1.0, 0.0, 0.0, 0.0]) / np.sqrt(2.0)


def qtda_initial_pauli_vector(precision_qubits: int, system_qubits: int) -> np.ndarray:
    """Pauli vector of ``|0><0|^t (x) I/2^q`` — the QTDA mixed input state.

    Shape ``(4^(t+q),)``; a Kronecker product of per-qubit factors, so no
    density matrix is ever materialised.
    """
    t, q = int(precision_qubits), int(system_qubits)
    if t < 0 or q < 0 or t + q < 1:
        raise ValueError("need at least one qubit")
    factors = [_ZERO_FACTOR] * t + [_MIXED_FACTOR] * q
    return reduce(np.kron, factors)


def apply_ptm_to_ensemble(vectors, ptm, qubits: Sequence[int], num_qubits: int, xp=np):
    """Apply a ``k``-qubit PTM to every column of a ``(4^n, B)`` Pauli array.

    The Pauli-basis twin of :func:`repro.quantum.engine.
    apply_gate_to_ensemble`: one ``tensordot`` of the superoperator's column
    digits against the target qubit axes of the rank-``n+1`` tensor (batch
    axis last), so a fused noise+gate block costs one sweep of the array.
    """
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    batch = vectors.shape[-1]
    tensor = vectors.reshape([4] * num_qubits + [batch])
    op = ptm.reshape([4] * (2 * k))
    tensor = xp.tensordot(op, tensor, axes=(list(range(k, 2 * k)), qubits))
    tensor = xp.moveaxis(tensor, list(range(k)), qubits)
    return xp.ascontiguousarray(tensor).reshape(4**num_qubits, batch)


@lru_cache(maxsize=1)
def _pauli_to_matrix_unit() -> np.ndarray:
    """Unitary ``T`` with ``T[2r + c, i] = P~_i[r, c]`` (Pauli -> matrix unit)."""
    t = pauli_basis(1).reshape(4, 4).T.copy()
    t.setflags(write=False)
    return t


#: Axes converted per pass in the wide-gate basis round-trip.  Each pass
#: sweeps the whole tensor, so grouping (a ``4^g x 4^g`` Kronecker power of
#: ``T`` per pass) trades tiny-matrix passes for fewer full-array sweeps.
_CONVERT_GROUP = 3


@lru_cache(maxsize=8)
def _convert_kron(group: int, inverse: bool) -> np.ndarray:
    """``T`` (or ``T†``) Kronecker-powered over ``group`` qubits."""
    single = _pauli_to_matrix_unit()
    if inverse:
        single = single.conj().T
    out = single
    for _ in range(group - 1):
        out = np.kron(out, single)
    out = np.ascontiguousarray(out)
    out.setflags(write=False)
    return out


def _convert_leading_axes(tensor, k: int, xp, inverse: bool):
    """Rotate the ``k`` leading size-4 axes between Pauli and matrix-unit
    bases, ``_CONVERT_GROUP`` axes per full-tensor pass."""
    start = 0
    while start < k:
        group = min(_CONVERT_GROUP, k - start)
        conv = xp.asarray(_convert_kron(group, inverse)).reshape([4] * (2 * group))
        tensor = xp.moveaxis(
            xp.tensordot(
                conv,
                tensor,
                axes=(list(range(group, 2 * group)), list(range(start, start + group))),
            ),
            list(range(group)),
            list(range(start, start + group)),
        )
        start += group
    return tensor


def controlled_block(matrix: np.ndarray) -> Optional[np.ndarray]:
    """The ``V`` of ``U = I (+) V`` if ``matrix`` has exact controlled block
    structure (control = most significant qubit), else ``None``."""
    matrix = np.asarray(matrix)
    half = matrix.shape[0] // 2
    if half < 1:
        return None
    if (
        np.array_equal(matrix[:half, :half], np.eye(half, dtype=matrix.dtype))
        and not matrix[:half, half:].any()
        and not matrix[half:, :half].any()
    ):
        return matrix[half:, half:]
    return None


def apply_unitary_to_pauli_ensemble(
    vectors,
    unitary,
    qubits: Sequence[int],
    num_qubits: int,
    xp=np,
    block: Optional[np.ndarray] = None,
):
    """Conjugate a ``(4^n, B)`` Pauli array by a unitary too wide for a PTM.

    Each support axis is rotated to the matrix-unit basis (``T``, 4x4), the
    grouped row/col bit axes are conjugated as ``U rho U†``, and the axes are
    rotated back; the result is real up to floating-point dust, which is
    dropped.  ``block`` (from :func:`controlled_block`) enables the
    controlled fast path: with ``U = I (+) V`` only the control=1 half of the
    rows/columns is touched, at a quarter of the generic contraction cost.
    """
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    batch = vectors.shape[-1]
    dim = 2**k
    tensor = xp.asarray(vectors).astype(complex).reshape([4] * num_qubits + [batch])
    tensor = xp.moveaxis(tensor, qubits, list(range(k)))
    rest_shape = tensor.shape[k:]
    tensor = _convert_leading_axes(tensor, k, xp, inverse=False)
    # Split each support axis 4 -> (row bit, col bit), then group all row
    # bits and all col bits so the conjugation is two plain contractions.
    tensor = tensor.reshape((2, 2) * k + tuple(rest_shape))
    row_axes = list(range(0, 2 * k, 2))
    col_axes = list(range(1, 2 * k, 2))
    tensor = xp.moveaxis(tensor, row_axes + col_axes, list(range(2 * k)))
    tensor = xp.ascontiguousarray(tensor).reshape(dim, dim, -1)
    if block is not None:
        half = dim // 2
        v = xp.asarray(block).astype(complex)
        tensor[half:, :, :] = xp.tensordot(v, tensor[half:, :, :], axes=([1], [0]))
        tensor[:, half:, :] = xp.moveaxis(
            xp.tensordot(xp.conj(v), tensor[:, half:, :], axes=([1], [1])), 0, 1
        )
    else:
        u = xp.asarray(unitary).astype(complex)
        tensor = xp.tensordot(u, tensor, axes=([1], [0]))
        tensor = xp.moveaxis(xp.tensordot(xp.conj(u), tensor, axes=([1], [1])), 0, 1)
    tensor = tensor.reshape((2,) * (2 * k) + tuple(rest_shape))
    tensor = xp.moveaxis(tensor, list(range(2 * k)), row_axes + col_axes)
    tensor = tensor.reshape((4,) * k + tuple(rest_shape))
    tensor = _convert_leading_axes(tensor, k, xp, inverse=True)
    tensor = xp.real(tensor)
    tensor = xp.moveaxis(tensor, list(range(k)), qubits)
    return xp.ascontiguousarray(tensor).reshape(4**num_qubits, batch)


#: Trace over a qubit: ``Tr[P~_i] = sqrt(2) delta_i0``.
_TRACE_FACTOR = np.array([np.sqrt(2.0), 0.0, 0.0, 0.0])
#: Readout row ``b``: ``Tr[P~_i (I + (-1)^b Z)/2]`` — maps (I, Z) to (p0, p1).
_READOUT = np.array([[1.0, 0.0, 0.0, 1.0], [1.0, 0.0, 0.0, -1.0]]) / np.sqrt(2.0)


def pauli_vector_marginals(vectors, num_qubits: int, qubits: Sequence[int], xp=np):
    """Measurement marginals of a ``(4^n, B)`` Pauli array over ``qubits``.

    Returns a ``(2^k, B)`` array of probabilities; ``qubits[0]`` is the most
    significant readout bit, matching :func:`repro.quantum.measurement.
    marginal_probabilities`.  Unmeasured qubits are traced out (their ``I``
    component), measured axes are projected through the (I, Z) -> (p0, p1)
    readout map.
    """
    qubits = [int(q) for q in qubits]
    batch = vectors.shape[-1]
    tensor = vectors.reshape([4] * num_qubits + [batch])
    trace = xp.asarray(_TRACE_FACTOR)
    readout = xp.asarray(_READOUT)
    for axis in sorted(set(range(num_qubits)) - set(qubits), reverse=True):
        tensor = xp.tensordot(tensor, trace, axes=([axis], [0]))
    remaining = sorted(qubits)
    for qubit in qubits:
        position = remaining.index(qubit)
        tensor = xp.tensordot(tensor, readout, axes=([position], [1]))
        remaining.pop(position)
    # Axes now: batch, then one bit per measured qubit in request order.
    tensor = xp.moveaxis(tensor, 0, -1)
    return xp.ascontiguousarray(tensor).reshape(2 ** len(qubits), batch)


# --- the PTM program IR ------------------------------------------------------


@dataclass(frozen=True)
class PTMOp:
    """One fused superoperator: a real ``4^k x 4^k`` PTM on ``qubits``."""

    qubits: Tuple[int, ...]
    matrix: np.ndarray
    #: How many source gate/channel PTMs were fused into this block.
    sources: int = 1
    name: str = "ptm"


@dataclass(frozen=True)
class WideUnitaryOp:
    """A unitary too wide for an explicit PTM, applied by basis round-trip."""

    qubits: Tuple[int, ...]
    matrix: np.ndarray
    name: str = "unitary"
    #: ``V`` of the ``I (+) V`` controlled structure, when present.
    block: Optional[np.ndarray] = None


PTMProgramOp = Union[PTMOp, WideUnitaryOp]


@dataclass(frozen=True)
class PTMProgram:
    """A noisy circuit lowered to Pauli-transfer form: ops applied in order."""

    num_qubits: int
    ops: Tuple[PTMProgramOp, ...]
    #: Gate + channel count of the source circuit before fusion.
    source_ops: int

    @property
    def num_superops(self) -> int:
        """Fused superoperator count (the provenance ``fused_gates`` value)."""
        return sum(1 for op in self.ops if isinstance(op, PTMOp))

    @property
    def num_wide(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, WideUnitaryOp))

    def nbytes(self) -> int:
        """Approximate retained size (the op matrices)."""
        total = 0
        for op in self.ops:
            total += op.matrix.nbytes
            if isinstance(op, WideUnitaryOp) and op.block is not None:
                total += op.block.nbytes
        return total


class PTMExecutor:
    """Executes :class:`PTMProgram` s over batched Pauli-vector arrays.

    Mirrors :class:`~repro.quantum.engine.EnsembleExecutor`: the batch axis
    is processed in pinned column blocks (``evolution_block``) sized to a
    byte budget, so any batch-axis split at block boundaries is bit-identical
    to the unsharded run; the array module is the ``xp`` seam
    (:func:`~repro.quantum.engine.array_module`).  The QTDA route runs a
    single column (the one mixed initial state), but the batched form is what
    sharding and ensemble workloads build on.
    """

    def __init__(
        self,
        max_fuse_qubits: int = DEFAULT_MAX_FUSE_QUBITS,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
        column_block: Optional[int] = None,
        xp=None,
    ):
        self.max_fuse_qubits = int(max_fuse_qubits)
        self.memory_budget_bytes = int(memory_budget_bytes)
        self.column_block = column_block
        self.xp = xp if xp is not None else array_module()

    def program(self, circuit, noise_spec=None) -> PTMProgram:
        """The circuit's fused PTM program (cached per circuit + spec)."""
        from repro.quantum.fusion import fuse_ptm_program

        return fuse_ptm_program(
            circuit, noise_spec=noise_spec, max_fuse_qubits=self.max_fuse_qubits
        )

    def max_batch(self, num_qubits: int) -> int:
        """Columns that fit the byte budget (complex wide-gate intermediates
        dominate at 16 bytes per entry)."""
        bytes_per_column = (4**num_qubits) * 16
        return max(1, self.memory_budget_bytes // bytes_per_column)

    def evolution_block(self, num_qubits: int) -> int:
        """Pinned column-block width (budget-capped), for stable chunk cuts."""
        block = self.column_block if self.column_block is not None else DEFAULT_COLUMN_BLOCK
        return max(1, min(self.max_batch(num_qubits), int(block)))

    def run(self, program: PTMProgram, vectors) -> np.ndarray:
        """Apply the program to a ``(4^n, B)`` Pauli array, returning on host."""
        n = program.num_qubits
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim == 1:
            vectors = vectors[:, None]
        if vectors.shape[0] != 4**n:
            raise ValueError(
                f"expected leading dimension {4**n} for {n} qubits, got {vectors.shape[0]}"
            )
        xp = self.xp
        prepared = self._prepare(program)
        block = self.evolution_block(n)
        out = np.empty_like(vectors)
        for start in range(0, vectors.shape[1], block):
            chunk = xp.asarray(vectors[:, start : start + block])
            out[:, start : start + block] = to_host(self._evolve(chunk, prepared, n))
        return out

    def _prepare(self, program: PTMProgram):
        """Device-resident op matrices (one transfer per run)."""
        xp = self.xp
        prepared = []
        for op in program.ops:
            if isinstance(op, PTMOp):
                prepared.append((op, xp.asarray(op.matrix), None))
            else:
                block = xp.asarray(op.block) if op.block is not None else None
                prepared.append((op, xp.asarray(op.matrix), block))
        return prepared

    def _evolve(self, chunk, prepared, num_qubits: int):
        xp = self.xp
        for op, matrix, block in prepared:
            if isinstance(op, PTMOp):
                chunk = apply_ptm_to_ensemble(chunk, matrix, op.qubits, num_qubits, xp=xp)
            else:
                chunk = apply_unitary_to_pauli_ensemble(
                    chunk, matrix, op.qubits, num_qubits, xp=xp, block=block
                )
        return chunk

    def qtda_distribution(
        self,
        circuit,
        precision_qubits: Sequence[int],
        precision_count: int,
        system_count: int,
        noise_spec=None,
        program: Optional[PTMProgram] = None,
    ) -> np.ndarray:
        """Readout distribution of the mixed-input QTDA circuit, exactly.

        Builds (or reuses) the fused program, evolves the single
        ``|0><0|^t (x) I/2^q`` Pauli vector, and returns the host
        ``(2^t,)`` marginal over ``precision_qubits``.
        """
        if program is None:
            program = self.program(circuit, noise_spec=noise_spec)
        initial = qtda_initial_pauli_vector(precision_count, system_count)
        final = self.run(program, initial)
        marginal = pauli_vector_marginals(
            final, program.num_qubits, list(precision_qubits), xp=np
        )
        return np.ascontiguousarray(marginal[:, 0])
