"""Quantum circuit container and builder API.

:class:`QuantumCircuit` stores an ordered list of instructions and offers a
small PennyLane/Qiskit-flavoured builder API (``h``, ``x``, ``cnot``,
``rz``, ``unitary``, ``controlled_unitary`` ...).  It performs no simulation
itself; see :mod:`repro.quantum.statevector` and
:mod:`repro.quantum.density_matrix` for execution backends.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum import gates as glib
from repro.quantum.operations import Barrier, Gate, Measurement
from repro.utils.validation import check_integer


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Register size.  Qubit 0 is the most significant bit of basis-state
        labels (see the package docstring for the full convention).
    name:
        Optional label used when drawing/composing.
    """

    def __init__(self, num_qubits: int, name: str = "circuit"):
        self._num_qubits = check_integer(num_qubits, "num_qubits", minimum=1)
        self.name = str(name)
        self._instructions: List[object] = []

    # -- basic accessors ----------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Register size."""
        return self._num_qubits

    @property
    def instructions(self) -> Tuple[object, ...]:
        """The instruction list (gates, measurements, barriers) in order."""
        return tuple(self._instructions)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """Only the unitary gates, in order."""
        return tuple(op for op in self._instructions if isinstance(op, Gate))

    @property
    def num_gates(self) -> int:
        """Number of unitary gates (barriers/measurements excluded)."""
        return sum(1 for op in self._instructions if isinstance(op, Gate))

    def depth(self) -> int:
        """Circuit depth counting each gate as one layer on its qubits."""
        frontier = [0] * self._num_qubits
        for op in self._instructions:
            if not isinstance(op, Gate):
                continue
            level = max(frontier[q] for q in op.qubits) + 1
            for q in op.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def count_ops(self) -> dict:
        """Histogram of gate names."""
        counts: dict = {}
        for op in self._instructions:
            if isinstance(op, Gate):
                counts[op.name] = counts.get(op.name, 0) + 1
        return counts

    def _check_qubits(self, qubits: Iterable[int]) -> Tuple[int, ...]:
        qs = tuple(int(q) for q in qubits)
        for q in qs:
            if not 0 <= q < self._num_qubits:
                raise ValueError(f"Qubit {q} out of range for a {self._num_qubits}-qubit circuit")
        return qs

    # -- generic builders ----------------------------------------------------
    def append(self, instruction: object) -> "QuantumCircuit":
        """Append a pre-built Gate/Measurement/Barrier."""
        if isinstance(instruction, Gate):
            self._check_qubits(instruction.qubits)
        elif isinstance(instruction, (Measurement, Barrier)):
            self._check_qubits(instruction.qubits)
        else:
            raise TypeError(f"Unsupported instruction {instruction!r}")
        self._instructions.append(instruction)
        return self

    def unitary(
        self,
        matrix: np.ndarray,
        qubits: Sequence[int],
        name: str = "U",
        params: Sequence[float] = (),
    ) -> "QuantumCircuit":
        """Apply an arbitrary unitary ``matrix`` to ``qubits``."""
        qs = self._check_qubits(qubits)
        self._instructions.append(Gate(name=name, qubits=qs, matrix=np.asarray(matrix, dtype=complex), params=tuple(params)))
        return self

    def controlled_unitary(
        self,
        matrix: np.ndarray,
        controls: Sequence[int],
        targets: Sequence[int],
        name: str = "CU",
    ) -> "QuantumCircuit":
        """Apply ``matrix`` to ``targets`` controlled on every qubit in ``controls``."""
        controls = list(controls)
        targets = list(targets)
        full = glib.controlled(np.asarray(matrix, dtype=complex), num_controls=len(controls))
        return self.unitary(full, list(controls) + list(targets), name=name)

    def barrier(self, qubits: Optional[Sequence[int]] = None, label: Optional[str] = None) -> "QuantumCircuit":
        """Insert a barrier (drawing aid; no simulation effect)."""
        qs = self._check_qubits(qubits) if qubits is not None else tuple(range(self._num_qubits))
        self._instructions.append(Barrier(qubits=qs, label=label))
        return self

    def measure(self, qubits: Optional[Sequence[int]] = None, label: Optional[str] = None) -> "QuantumCircuit":
        """Mark ``qubits`` (default: all) for computational-basis measurement."""
        qs = self._check_qubits(qubits) if qubits is not None else tuple(range(self._num_qubits))
        self._instructions.append(Measurement(qubits=qs, label=label))
        return self

    @property
    def measured_qubits(self) -> Tuple[int, ...]:
        """Union of all measured qubits, in first-marked order."""
        seen: List[int] = []
        for op in self._instructions:
            if isinstance(op, Measurement):
                for q in op.qubits:
                    if q not in seen:
                        seen.append(q)
        return tuple(seen)

    # -- named single-qubit gates ---------------------------------------------
    def i(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.IDENTITY, [qubit], name="I")

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.PAULI_X, [qubit], name="X")

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.PAULI_Y, [qubit], name="Y")

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.PAULI_Z, [qubit], name="Z")

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.HADAMARD, [qubit], name="H")

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.S_GATE, [qubit], name="S")

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.S_DAGGER, [qubit], name="S†")

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.T_GATE, [qubit], name="T")

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.T_DAGGER, [qubit], name="T†")

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.rx(theta), [qubit], name="RX", params=(theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.ry(theta), [qubit], name="RY", params=(theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.rz(theta), [qubit], name="RZ", params=(theta,))

    def p(self, phi: float, qubit: int) -> "QuantumCircuit":
        return self.unitary(glib.phase_shift(phi), [qubit], name="P", params=(phi,))

    def global_phase(self, phi: float) -> "QuantumCircuit":
        """Multiply the state by ``e^{iφ}`` (implemented as a 1-qubit diagonal gate)."""
        return self.unitary(np.exp(1j * phi) * glib.IDENTITY, [0], name="GPhase", params=(phi,))

    # -- named multi-qubit gates -----------------------------------------------
    def cnot(self, control: int, target: int) -> "QuantumCircuit":
        return self.unitary(glib.CNOT, [control, target], name="CNOT")

    cx = cnot

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.unitary(glib.CZ, [control, target], name="CZ")

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.unitary(glib.SWAP, [qubit_a, qubit_b], name="SWAP")

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.unitary(glib.TOFFOLI, [control_a, control_b, target], name="CCX")

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.unitary(glib.crx(theta), [control, target], name="CRX", params=(theta,))

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.unitary(glib.cry(theta), [control, target], name="CRY", params=(theta,))

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.unitary(glib.crz(theta), [control, target], name="CRZ", params=(theta,))

    def cp(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        return self.unitary(glib.cphase(phi), [control, target], name="CP", params=(phi,))

    # -- composition -------------------------------------------------------------
    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Append ``other``'s instructions, mapping its qubit ``i`` to ``qubits[i]``.

        Returns ``self`` (mutating compose), matching the builder style of the
        rest of the class.
        """
        if qubits is None:
            if other.num_qubits > self._num_qubits:
                raise ValueError("Composed circuit is larger than the target circuit")
            mapping = list(range(other.num_qubits))
        else:
            mapping = [int(q) for q in qubits]
            if len(mapping) != other.num_qubits:
                raise ValueError("qubit mapping length must equal the composed circuit's size")
        self._check_qubits(mapping)
        for op in other._instructions:
            if isinstance(op, Gate):
                self.append(op.remapped(mapping))
            elif isinstance(op, Measurement):
                self.append(Measurement(qubits=tuple(mapping[q] for q in op.qubits), label=op.label))
            elif isinstance(op, Barrier):
                self.append(Barrier(qubits=tuple(mapping[q] for q in op.qubits), label=op.label))
        return self

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (gates reversed and daggered; measurements dropped)."""
        inv = QuantumCircuit(self._num_qubits, name=f"{self.name}_dg")
        for op in reversed(self._instructions):
            if isinstance(op, Gate):
                inv.append(op.dagger())
        return inv

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (instructions are immutable, so sharing them is safe)."""
        dup = QuantumCircuit(self._num_qubits, name=self.name)
        dup._instructions = list(self._instructions)
        return dup

    def fingerprint(self) -> str:
        """Content hash of the circuit's unitary semantics.

        Hashes the register size plus every gate's target qubits and matrix
        bytes, in order; names, params, measurements and barriers are
        excluded (they do not affect simulation).  Two circuits with equal
        fingerprints evolve states identically, so the fingerprint keys the
        gate-fusion plan cache (:mod:`repro.quantum.fusion`).  Gate objects
        shared across repetitions (the QPE power-by-repetition synthesis)
        are hashed once via an identity memo.
        """
        digest = hashlib.sha256()
        digest.update(str(self._num_qubits).encode())
        matrix_digests: dict = {}
        for op in self._instructions:
            if not isinstance(op, Gate):
                continue
            key = id(op.matrix)
            cached = matrix_digests.get(key)
            if cached is None:
                cached = hashlib.sha256(
                    np.ascontiguousarray(op.matrix).tobytes()
                ).digest()
                matrix_digests[key] = cached
            digest.update(b"G")
            digest.update(",".join(str(q) for q in op.qubits).encode())
            digest.update(cached)
        return digest.hexdigest()

    # -- dense realisation --------------------------------------------------------
    def to_unitary(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` unitary of the whole circuit (measurements ignored).

        Only sensible for small registers; used in tests and by the exact QPE
        backend for cross-validation.
        """
        from repro.quantum.statevector import StatevectorSimulator

        sim = StatevectorSimulator()
        dim = 2**self._num_qubits
        columns = np.empty((dim, dim), dtype=complex)
        for basis in range(dim):
            state = np.zeros(dim, dtype=complex)
            state[basis] = 1.0
            columns[:, basis] = sim.run(self, initial_state=state).amplitudes
        return columns

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"num_gates={self.num_gates}, depth={self.depth()})"
        )
