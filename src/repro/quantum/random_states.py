"""Random quantum objects for tests and property-based checks.

Haar-random states and unitaries are used by the property tests to verify
simulator invariants (norm preservation, unitarity of composed circuits,
agreement between the statevector and density-matrix backends) on inputs that
are not hand-picked.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.statevector import Statevector
from repro.utils.rng import SeedLike, as_rng


def random_statevector(num_qubits: int, seed: SeedLike = None) -> Statevector:
    """Haar-random pure state on ``num_qubits`` qubits."""
    rng = as_rng(seed)
    dim = 2**num_qubits
    amplitudes = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    amplitudes /= np.linalg.norm(amplitudes)
    return Statevector(amplitudes)


def random_unitary(num_qubits: int, seed: SeedLike = None) -> np.ndarray:
    """Haar-random unitary via the QR decomposition of a Ginibre matrix."""
    rng = as_rng(seed)
    dim = 2**num_qubits
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    # Fix the phase ambiguity so the distribution is Haar.
    phases = np.diag(r) / np.abs(np.diag(r))
    return q * phases


def random_hermitian(num_qubits: int, seed: SeedLike = None, scale: float = 1.0) -> np.ndarray:
    """Random Hermitian matrix (GUE-like) on ``num_qubits`` qubits."""
    rng = as_rng(seed)
    dim = 2**num_qubits
    a = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    return scale * (a + a.conj().T) / 2.0


def random_density_matrix(num_qubits: int, rank: int | None = None, seed: SeedLike = None) -> np.ndarray:
    """Random mixed state of the given rank (default: full rank)."""
    rng = as_rng(seed)
    dim = 2**num_qubits
    rank = dim if rank is None else int(rank)
    if not 1 <= rank <= dim:
        raise ValueError("rank must be between 1 and 2**num_qubits")
    ginibre = rng.normal(size=(dim, rank)) + 1j * rng.normal(size=(dim, rank))
    rho = ginibre @ ginibre.conj().T
    return rho / np.trace(rho)
