"""Measurement utilities: Born probabilities, marginals, shot sampling.

These helpers operate on plain probability vectors so they are shared by the
statevector simulator, the density-matrix simulator and the analytical QPE
backend (which produces outcome distributions directly without a circuit).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_integer


def born_probabilities(amplitudes: np.ndarray) -> np.ndarray:
    """``|amplitude|^2`` normalised to sum to one (guards against drift)."""
    amp = np.asarray(amplitudes, dtype=complex).reshape(-1)
    probs = np.abs(amp) ** 2
    total = probs.sum()
    if total <= 0:
        raise ValueError("State has zero norm; cannot compute probabilities")
    return probs / total


def marginal_probabilities(probabilities: np.ndarray, num_qubits: int, qubits: Sequence[int]) -> np.ndarray:
    """Marginalise a full ``2^n`` distribution onto the sub-register ``qubits``.

    The output is indexed by the bitstring of ``qubits`` in the order given
    (first listed qubit = most significant bit of the outcome index).
    """
    probs = np.asarray(probabilities, dtype=float).reshape([2] * num_qubits)
    qubits = [int(q) for q in qubits]
    if len(set(qubits)) != len(qubits):
        raise ValueError("qubits must be distinct")
    for q in qubits:
        if not 0 <= q < num_qubits:
            raise ValueError(f"qubit {q} out of range for {num_qubits} qubits")
    keep = qubits
    drop = [q for q in range(num_qubits) if q not in keep]
    if drop:
        probs = probs.sum(axis=tuple(drop))
    # After the sum the remaining axes correspond to the kept qubits in
    # increasing qubit order; permute them into the requested order.
    remaining = sorted(keep)
    order = [remaining.index(q) for q in keep]
    probs = np.transpose(probs, order)
    return np.ascontiguousarray(probs).reshape(-1)


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    num_bits: int | None = None,
    seed: SeedLike = None,
) -> Dict[str, int]:
    """Draw ``shots`` samples from a distribution; return bitstring -> count.

    Sampling uses a single multinomial draw, which is exactly equivalent to
    ``shots`` independent categorical draws but vastly faster for the large
    shot counts of Fig. 3 (up to 10^6 shots).
    """
    shots = check_positive_integer(shots, "shots")
    probs = np.asarray(probabilities, dtype=float).reshape(-1)
    if np.any(probs < -1e-12):
        raise ValueError("probabilities must be non-negative")
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probabilities sum to zero")
    probs = probs / total
    if num_bits is None:
        num_bits = int(np.ceil(np.log2(probs.size))) or 1
    rng = as_rng(seed)
    draws = rng.multinomial(shots, probs)
    counts: Dict[str, int] = {}
    for index in np.flatnonzero(draws):
        counts[format(int(index), f"0{num_bits}b")] = int(draws[index])
    return counts


def counts_to_probabilities(counts: Dict[str, int], num_bits: int | None = None) -> np.ndarray:
    """Convert a counts dictionary back into an empirical probability vector."""
    if not counts:
        raise ValueError("counts is empty")
    if num_bits is None:
        num_bits = max(len(k) for k in counts)
    probs = np.zeros(2**num_bits, dtype=float)
    total = 0
    for bitstring, count in counts.items():
        if len(bitstring) != num_bits:
            raise ValueError(f"bitstring {bitstring!r} does not have {num_bits} bits")
        probs[int(bitstring, 2)] += count
        total += count
    if total <= 0:
        raise ValueError("counts sum to zero")
    return probs / total


def outcome_probability(counts: Dict[str, int], bitstring: str) -> float:
    """Empirical probability of one particular outcome in a counts dictionary."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("counts sum to zero")
    return counts.get(bitstring, 0) / total
