"""Measurement utilities: Born probabilities, marginals, shot sampling.

These helpers operate on plain probability vectors so they are shared by the
statevector simulator, the density-matrix simulator and the analytical QPE
backend (which produces outcome distributions directly without a circuit).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_integer


def born_probabilities(amplitudes: np.ndarray) -> np.ndarray:
    """``|amplitude|^2`` normalised to sum to one (guards against drift)."""
    amp = np.asarray(amplitudes, dtype=complex).reshape(-1)
    probs = np.abs(amp) ** 2
    total = probs.sum()
    if total <= 0:
        raise ValueError("State has zero norm; cannot compute probabilities")
    return probs / total


def _marginal_axes(num_qubits: int, qubits: Sequence[int]) -> tuple:
    """Validated ``(keep, drop, order)`` axis bookkeeping for marginalisation.

    ``drop`` are the traced-out qubit axes; ``order`` permutes the surviving
    axes (which a sum leaves in increasing qubit order) into the caller's
    requested qubit order.
    """
    keep = [int(q) for q in qubits]
    if len(set(keep)) != len(keep):
        raise ValueError("qubits must be distinct")
    for q in keep:
        if not 0 <= q < num_qubits:
            raise ValueError(f"qubit {q} out of range for {num_qubits} qubits")
    drop = [q for q in range(num_qubits) if q not in keep]
    remaining = sorted(keep)
    order = [remaining.index(q) for q in keep]
    return keep, drop, order


def marginal_probabilities(probabilities: np.ndarray, num_qubits: int, qubits: Sequence[int]) -> np.ndarray:
    """Marginalise a full ``2^n`` distribution onto the sub-register ``qubits``.

    The output is indexed by the bitstring of ``qubits`` in the order given
    (first listed qubit = most significant bit of the outcome index).  The
    reduction is a reshape-and-sum over the traced axes — no intermediate
    per-outcome loops.
    """
    probs = np.asarray(probabilities, dtype=float).reshape([2] * num_qubits)
    _, drop, order = _marginal_axes(num_qubits, qubits)
    if drop:
        probs = probs.sum(axis=tuple(drop))
    probs = np.transpose(probs, order)
    return np.ascontiguousarray(probs).reshape(-1)


def ensemble_marginal_probabilities(
    states: np.ndarray,
    num_qubits: int,
    qubits: Sequence[int],
    weights: np.ndarray | None = None,
    normalize: bool = True,
    xp=np,
) -> np.ndarray:
    """Weighted-average marginal readout of a ``(2^n, B)`` ensemble of pure states.

    Computes ``p(m) = Σ_b w_b · P_b(m)`` where ``P_b`` is member ``b``'s
    marginal distribution on ``qubits``, in a single reshape-and-sum over the
    traced qubit axes and the batch axis — no per-member full-register
    probability vector is ever materialised, which is what makes the batched
    (``ensemble``) circuit route's readout linear in ``2^n · B``.

    Parameters
    ----------
    states:
        ``(2^num_qubits, B)`` complex amplitude array (batch axis last).
    num_qubits, qubits:
        As in :func:`marginal_probabilities`.
    weights:
        Length-``B`` non-negative weights; uniform ``1/B`` when omitted.
        Weights are applied as given (callers chunking a larger ensemble pass
        sub-batches of an already-normalised weight vector).
    normalize:
        Rescale the result to sum to one (guards against floating-point
        drift).  Chunked callers pass ``False`` and normalise the final sum.
    xp:
        Array module (NumPy default; CuPy via the engine seam).
    """
    batch = states.shape[-1]
    keep, drop, order = _marginal_axes(num_qubits, qubits)
    probs = (states.real**2 + states.imag**2).reshape([2] * num_qubits + [batch])
    if weights is None:
        weights = xp.full(batch, 1.0 / batch)
    # Sum the traced qubit axes, then contract the batch axis with the
    # weights; both reductions stay on the (reshaped) ensemble array.
    if drop:
        probs = probs.sum(axis=tuple(drop))
    probs = xp.tensordot(probs, weights, axes=([len(keep)], [0]))
    probs = xp.transpose(probs, order)
    probs = xp.ascontiguousarray(probs).reshape(-1)
    if normalize:
        total = probs.sum()
        if total <= 0:
            raise ValueError("Ensemble has zero readout mass; cannot normalise")
        probs = probs / total
    return probs


def ensemble_member_marginal_probabilities(
    states: np.ndarray,
    num_qubits: int,
    qubits: Sequence[int],
    xp=np,
) -> np.ndarray:
    """Per-member marginal readouts of a ``(2^n, B)`` ensemble: an ``(out_dim, B)`` matrix.

    Column ``b`` is member ``b``'s marginal distribution on ``qubits`` (first
    listed qubit = most significant bit of the outcome index) — the
    *uncontracted* form of :func:`ensemble_marginal_probabilities`, which is
    its weighted column average.

    The reduction is deliberately **batch-major**: the probability tensor is
    transposed to ``[B] + [2]*n`` before the traced axes are summed, so every
    member's reduction runs over a contiguous block with strides that do not
    depend on the batch width.  That makes the result *bit-identical under
    any partition of the batch axis* — computing columns ``[s:e]`` from the
    sliced ensemble yields exactly the bytes of ``result[:, s:e]`` — which is
    the invariant the sharded executor (:mod:`repro.quantum.sharding`) builds
    on.  (The batch-last layout of :func:`ensemble_marginal_probabilities`
    does not have this property: NumPy's pairwise-summation tree over strided
    axes changes with the trailing batch width.)
    """
    batch = states.shape[-1]
    keep, drop, order = _marginal_axes(num_qubits, qubits)
    probs = states.real**2 + states.imag**2
    probs = xp.ascontiguousarray(probs.T).reshape([batch] + [2] * num_qubits)
    if drop:
        probs = probs.sum(axis=tuple(axis + 1 for axis in drop))
    # Surviving axes sit in increasing qubit order after the batch axis;
    # permute them into the caller's qubit order and put the batch axis last.
    probs = xp.transpose(probs, [axis + 1 for axis in order] + [0])
    return xp.ascontiguousarray(probs).reshape(-1, batch)


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    num_bits: int | None = None,
    seed: SeedLike = None,
) -> Dict[str, int]:
    """Draw ``shots`` samples from a distribution; return bitstring -> count.

    Sampling uses a single multinomial draw, which is exactly equivalent to
    ``shots`` independent categorical draws but vastly faster for the large
    shot counts of Fig. 3 (up to 10^6 shots).
    """
    shots = check_positive_integer(shots, "shots")
    probs = np.asarray(probabilities, dtype=float).reshape(-1)
    if np.any(probs < -1e-12):
        raise ValueError("probabilities must be non-negative")
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probabilities sum to zero")
    probs = probs / total
    if num_bits is None:
        num_bits = int(np.ceil(np.log2(probs.size))) or 1
    rng = as_rng(seed)
    draws = rng.multinomial(shots, probs)
    counts: Dict[str, int] = {}
    for index in np.flatnonzero(draws):
        counts[format(int(index), f"0{num_bits}b")] = int(draws[index])
    return counts


def counts_to_probabilities(counts: Dict[str, int], num_bits: int | None = None) -> np.ndarray:
    """Convert a counts dictionary back into an empirical probability vector."""
    if not counts:
        raise ValueError("counts is empty")
    if num_bits is None:
        num_bits = max(len(k) for k in counts)
    probs = np.zeros(2**num_bits, dtype=float)
    total = 0
    for bitstring, count in counts.items():
        if len(bitstring) != num_bits:
            raise ValueError(f"bitstring {bitstring!r} does not have {num_bits} bits")
        probs[int(bitstring, 2)] += count
        total += count
    if total <= 0:
        raise ValueError("counts sum to zero")
    return probs / total


def outcome_probability(counts: Dict[str, int], bitstring: str) -> float:
    """Empirical probability of one particular outcome in a counts dictionary."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("counts sum to zero")
    return counts.get(bitstring, 0) / total
