"""Quantum phase estimation (QPE).

Two complementary views of the same algorithm are provided:

* :func:`phase_estimation_circuit` builds the explicit circuit of the paper's
  Fig. 6 — Hadamards on the precision register, controlled powers
  ``U^{2^j}`` and an inverse QFT — either from a dense unitary (exact
  controlled powers) or from a circuit realisation of ``U`` (each gate gets a
  control, powers are realised by repetition, exactly what a compiler would
  emit for hardware).
* :func:`qpe_outcome_distribution` evaluates the *analytical* outcome
  distribution of ideal QPE (the Fejér/Dirichlet kernel), given the
  eigenphases of ``U`` and the weights with which the input state populates
  the corresponding eigenvectors.  For the maximally mixed input used by the
  QTDA algorithm the weights are uniform, which makes this the fast backend
  for the paper's large parameter sweeps.

Conventions: precision qubits come first (qubit 0 = most significant bit of
the phase readout), followed by the system qubits; ``U |ψ> = e^{2πiθ} |ψ>``
with ``θ ∈ [0, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import matrix_power_unitary
from repro.quantum.qft import inverse_qft_circuit
from repro.utils.validation import check_positive_integer


# ---------------------------------------------------------------------------
# Circuit construction (Fig. 6)
# ---------------------------------------------------------------------------


@dataclass
class SpectralUnitary:
    """``U = exp(iH)`` held as one eigendecomposition of the Hermitian ``H``.

    QPE needs all ``t`` controlled powers ``U^{2^j}`` of the same unitary.
    Powering the dense matrix independently per precision qubit repeats
    ``O(log 2^j)`` matrix products each time; in the eigenbasis every power
    is diagonal, so a *single* decomposition yields each power as one phase
    array plus two matrix products:

        ``U^p = V · diag(e^{i p λ}) · V†``.

    Build it with :meth:`from_hermitian` (one ``eigh`` of ``H`` — no ``expm``
    at all) when the Hamiltonian is at hand, or :meth:`from_unitary` (one
    Schur decomposition) from a dense unitary.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray

    def __post_init__(self):
        self.eigenvalues = np.asarray(self.eigenvalues, dtype=float).reshape(-1)
        self.eigenvectors = np.asarray(self.eigenvectors, dtype=complex)
        dim = self.eigenvalues.size
        if self.eigenvectors.shape != (dim, dim):
            raise ValueError(
                f"eigenvectors shape {self.eigenvectors.shape} does not match "
                f"{dim} eigenvalues"
            )

    @classmethod
    def from_hermitian(cls, hamiltonian: np.ndarray) -> "SpectralUnitary":
        """Spectral form of ``exp(iH)`` from one ``eigh`` of the Hermitian ``H``."""
        eigenvalues, eigenvectors = np.linalg.eigh(np.asarray(hamiltonian, dtype=complex))
        return cls(eigenvalues=eigenvalues, eigenvectors=eigenvectors)

    @classmethod
    def from_unitary(cls, unitary: np.ndarray) -> "SpectralUnitary":
        """Spectral form of a dense unitary via one (complex) Schur decomposition.

        Unitaries are normal, so the Schur factor is diagonal and its
        diagonal's angles are the eigenphases (an effective Hermitian
        generator with eigenvalues in ``(-π, π]``).
        """
        from scipy.linalg import schur

        triangular, vectors = schur(np.asarray(unitary, dtype=complex), output="complex")
        return cls(eigenvalues=np.angle(np.diag(triangular)), eigenvectors=vectors)

    @property
    def dim(self) -> int:
        return self.eigenvalues.size

    @property
    def num_qubits(self) -> int:
        q = int(np.log2(self.dim))
        if 2**q != self.dim:
            raise ValueError("dimension must be a power of two")
        return q

    def power(self, power: float) -> np.ndarray:
        """Dense ``U^power`` reconstructed from the stored eigendecomposition."""
        phases = np.exp(1j * float(power) * self.eigenvalues)
        return (self.eigenvectors * phases) @ self.eigenvectors.conj().T


def phase_estimation_circuit(
    unitary: np.ndarray | QuantumCircuit | SpectralUnitary,
    num_precision: int,
    num_system: Optional[int] = None,
    num_auxiliary: int = 0,
    name: str = "QPE",
    power_synthesis: str = "chain",
) -> QuantumCircuit:
    """Build the QPE circuit.

    Parameters
    ----------
    unitary:
        One of: a dense ``2^q x 2^q`` unitary (controlled powers are exact
        matrix powers), a :class:`SpectralUnitary` (all powers share its one
        eigendecomposition), or a :class:`QuantumCircuit` implementing ``U``
        on the system register (each of its gates is individually controlled
        and the power ``2^j`` is realised by repetition — the faithful
        "implementation perspective" of the paper).
    num_precision:
        Number of precision (phase-readout) qubits ``t``.
    num_system:
        Number of system qubits ``q``; inferred from ``unitary`` if omitted.
    num_auxiliary:
        Extra qubits appended after the system register (used by the QTDA
        circuit for the mixed-state purification of Fig. 2). They are left
        untouched by QPE itself.
    name:
        Circuit name.
    power_synthesis:
        How the ``t`` controlled powers of a *dense* unitary are computed:
        ``"chain"`` (default) keeps the historical independent
        repeated-squaring per precision qubit — bit-identical to every
        pre-engine release — while ``"spectral"`` performs one Schur
        decomposition and raises the eigenphases to ``2^j``
        (:class:`SpectralUnitary`).  Ignored for circuit-valued and
        already-spectral unitaries.

    Returns
    -------
    QuantumCircuit
        Circuit on ``num_precision + num_system + num_auxiliary`` qubits with
        a measurement marker on the precision register.
    """
    t = check_positive_integer(num_precision, "num_precision")
    if power_synthesis not in ("chain", "spectral"):
        raise ValueError(
            f"power_synthesis must be 'chain' or 'spectral', got {power_synthesis!r}"
        )
    unitary_circuit: Optional[QuantumCircuit] = None
    unitary_matrix: Optional[np.ndarray] = None
    spectral: Optional[SpectralUnitary] = None
    if isinstance(unitary, QuantumCircuit):
        q = unitary.num_qubits if num_system is None else int(num_system)
        if q != unitary.num_qubits:
            raise ValueError("num_system does not match the unitary circuit size")
        unitary_circuit = unitary
    elif isinstance(unitary, SpectralUnitary):
        q = unitary.num_qubits if num_system is None else int(num_system)
        if 2**q != unitary.dim:
            raise ValueError("num_system does not match the spectral unitary's dimension")
        spectral = unitary
    else:
        mat = np.asarray(unitary, dtype=complex)
        q = int(np.log2(mat.shape[0])) if num_system is None else int(num_system)
        if mat.shape != (2**q, 2**q):
            raise ValueError(f"unitary shape {mat.shape} does not match {q} system qubits")
        if power_synthesis == "spectral":
            spectral = SpectralUnitary.from_unitary(mat)
        else:
            unitary_matrix = mat

    total = t + q + int(num_auxiliary)
    circ = QuantumCircuit(total, name=name)
    precision_qubits = list(range(t))
    system_qubits = list(range(t, t + q))

    # 1. Hadamards on the precision register.
    for p in precision_qubits:
        circ.h(p)
    circ.barrier(label="H layer")

    # 2. Controlled powers: precision qubit j controls U^{2^{t-1-j}} so that
    #    qubit 0 (MSB of the readout) carries the highest power.
    for j, control in enumerate(precision_qubits):
        power = 2 ** (t - 1 - j)
        if spectral is not None:
            powered = spectral.power(power)
            circ.controlled_unitary(powered, [control], system_qubits, name=f"c-U^{power}")
        elif unitary_matrix is not None:
            powered = matrix_power_unitary(unitary_matrix, power)
            circ.controlled_unitary(powered, [control], system_qubits, name=f"c-U^{power}")
        else:
            for _ in range(power):
                _append_controlled_circuit(circ, unitary_circuit, control, system_qubits)
    circ.barrier(label="controlled-U")

    # 3. Inverse QFT on the precision register.
    circ.compose(inverse_qft_circuit(t), qubits=precision_qubits)
    circ.measure(precision_qubits, label="phase")
    return circ


def _append_controlled_circuit(
    target_circuit: QuantumCircuit,
    unitary_circuit: QuantumCircuit,
    control: int,
    system_qubits: Sequence[int],
) -> None:
    """Append a controlled copy of ``unitary_circuit`` gate by gate."""
    for gate in unitary_circuit.gates:
        mapped_targets = [system_qubits[q] for q in gate.qubits]
        target_circuit.controlled_unitary(gate.matrix, [control], mapped_targets, name=f"c-{gate.name}")


# ---------------------------------------------------------------------------
# Analytical outcome distribution
# ---------------------------------------------------------------------------

def qpe_probability_kernel(theta: float | np.ndarray, num_precision: int) -> np.ndarray:
    """Probability of each QPE readout ``m`` for a state of exact phase ``theta``.

    For ``t`` precision qubits and ``M = 2^t`` the textbook result is

        P(m | θ) = |(1/M) Σ_{k=0}^{M-1} e^{2πik(θ - m/M)}|^2
                 = sin²(π M Δ) / (M² sin²(π Δ)),   Δ = θ - m/M,

    with the removable singularity ``P = 1`` when ``Δ`` is an integer.

    Parameters
    ----------
    theta:
        Scalar phase or array of phases in ``[0, 1)`` (values outside are
        wrapped).
    num_precision:
        Number of precision qubits ``t``.

    Returns
    -------
    numpy.ndarray
        Shape ``(..., 2^t)`` array of outcome probabilities (last axis sums
        to 1).
    """
    t = check_positive_integer(num_precision, "num_precision")
    M = 2**t
    theta_arr = np.atleast_1d(np.asarray(theta, dtype=float)) % 1.0
    m = np.arange(M)
    delta = theta_arr[..., None] - m / M
    # sin(pi*M*delta)^2 / (M^2 sin(pi*delta)^2), with limit 1 when delta ∈ Z.
    numerator = np.sin(np.pi * M * delta) ** 2
    denominator = (M**2) * np.sin(np.pi * delta) ** 2
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(denominator > 1e-300, numerator / np.where(denominator == 0, 1.0, denominator), 0.0)
    exact = np.isclose(delta - np.round(delta), 0.0, atol=1e-12)
    probs = np.where(exact, 1.0, probs)
    # Normalise defensively against floating-point drift.
    probs = probs / probs.sum(axis=-1, keepdims=True)
    if np.isscalar(theta) or np.ndim(theta) == 0:
        return probs[0]
    return probs.reshape(np.shape(theta) + (M,))


def qpe_outcome_distribution(
    eigenphases: Sequence[float],
    num_precision: int,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Outcome distribution of QPE for a mixed input over eigenvectors.

    Parameters
    ----------
    eigenphases:
        Phases ``θ_j ∈ [0, 1)`` of the unitary's eigenvalues ``e^{2πiθ_j}``.
    num_precision:
        Number of precision qubits.
    weights:
        Probability with which the input state populates each eigenvector.
        Defaults to uniform — the maximally mixed state of the QTDA
        algorithm, where each of the ``2^q`` eigenvectors carries ``1/2^q``.

    Returns
    -------
    numpy.ndarray
        Length ``2^t`` probability vector over phase readouts.
    """
    phases = np.asarray(list(eigenphases), dtype=float)
    if phases.size == 0:
        raise ValueError("eigenphases must be non-empty")
    if weights is None:
        w = np.full(phases.size, 1.0 / phases.size)
    else:
        w = np.asarray(list(weights), dtype=float)
        if w.shape != phases.shape:
            raise ValueError("weights must match eigenphases in length")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        w = w / w.sum()
    kernels = qpe_probability_kernel(phases, num_precision)
    return np.einsum("j,jm->m", w, kernels)


@dataclass
class PhaseEstimation:
    """Convenience wrapper bundling a unitary with a precision-register size.

    Used by the exact estimator backend and in tests; the heavy lifting lives
    in the module-level functions.
    """

    unitary: np.ndarray
    num_precision: int

    def __post_init__(self):
        self.unitary = np.asarray(self.unitary, dtype=complex)
        self.num_precision = check_positive_integer(self.num_precision, "num_precision")
        if self.unitary.ndim != 2 or self.unitary.shape[0] != self.unitary.shape[1]:
            raise ValueError("unitary must be square")

    @property
    def num_system_qubits(self) -> int:
        q = int(np.log2(self.unitary.shape[0]))
        if 2**q != self.unitary.shape[0]:
            raise ValueError("unitary dimension must be a power of two")
        return q

    def eigenphases(self) -> np.ndarray:
        """Phases ``θ_j ∈ [0, 1)`` of the unitary's eigenvalues."""
        eigvals = np.linalg.eigvals(self.unitary)
        return np.angle(eigvals) / (2 * np.pi) % 1.0

    def outcome_distribution(self, weights: Optional[Sequence[float]] = None) -> np.ndarray:
        """Analytical QPE readout distribution (see :func:`qpe_outcome_distribution`)."""
        return qpe_outcome_distribution(self.eigenphases(), self.num_precision, weights)

    def circuit(self, num_auxiliary: int = 0) -> QuantumCircuit:
        """The explicit QPE circuit with exact controlled powers."""
        return phase_estimation_circuit(self.unitary, self.num_precision, num_auxiliary=num_auxiliary)
