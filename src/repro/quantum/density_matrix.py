"""Density-matrix simulation.

The QTDA algorithm's input register is the *maximally mixed state*
``I/2^q`` (Section 3 of the paper).  Two equivalent simulation routes are
supported by the library:

* purification — prepare the mixed state with auxiliary qubits and Bell pairs
  (Fig. 2) and run the statevector simulator on the enlarged register;
* direct density-matrix evolution — this module — which also supports noise
  channels (Kraus maps) for the NISQ-robustness extension discussed in the
  paper's conclusion.

States are stored as dense ``2^n x 2^n`` matrices; gates are applied as
``ρ -> U ρ U†`` with the same tensor-contraction kernel used for
statevectors, applied to the row and column indices in turn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.measurement import marginal_probabilities, sample_counts
from repro.quantum.operations import Barrier, Gate, Measurement
from repro.quantum.statevector import Statevector
from repro.utils.rng import SeedLike


@dataclass
class DensityMatrix:
    """A (generally mixed) quantum state ``ρ`` on ``num_qubits`` qubits."""

    matrix: np.ndarray

    def __post_init__(self):
        mat = np.asarray(self.matrix, dtype=complex)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise ValueError("Density matrix must be square")
        n = int(np.log2(mat.shape[0]))
        if 2**n != mat.shape[0]:
            raise ValueError("Density matrix dimension must be a power of two")
        self.matrix = mat

    @property
    def num_qubits(self) -> int:
        return int(np.log2(self.matrix.shape[0]))

    # -- constructors ---------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """``|0...0><0...0|``."""
        dim = 2**num_qubits
        mat = np.zeros((dim, dim), dtype=complex)
        mat[0, 0] = 1.0
        return cls(mat)

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """``I / 2^n`` — the input state of the QTDA algorithm."""
        dim = 2**num_qubits
        return cls(np.eye(dim, dtype=complex) / dim)

    @classmethod
    def from_statevector(cls, state: Statevector | np.ndarray) -> "DensityMatrix":
        """Pure-state density matrix ``|psi><psi|``."""
        amp = state.amplitudes if isinstance(state, Statevector) else np.asarray(state, dtype=complex).reshape(-1)
        return cls(np.outer(amp, amp.conj()))

    # -- diagnostics ----------------------------------------------------------
    def trace(self) -> complex:
        return complex(np.trace(self.matrix))

    def purity(self) -> float:
        """``Tr(ρ^2)`` — 1 for pure states, ``1/2^n`` for the maximally mixed state."""
        return float(np.real(np.trace(self.matrix @ self.matrix)))

    def is_valid(self, atol: float = 1e-8) -> bool:
        """Hermitian, unit trace, positive semi-definite (to tolerance)."""
        mat = self.matrix
        if not np.allclose(mat, mat.conj().T, atol=atol):
            return False
        if not np.isclose(np.trace(mat).real, 1.0, atol=atol):
            return False
        eigvals = np.linalg.eigvalsh(mat)
        return bool(np.all(eigvals > -atol))

    def probabilities(self) -> np.ndarray:
        """Diagonal of ``ρ`` (computational-basis outcome probabilities)."""
        probs = np.real(np.diag(self.matrix)).copy()
        probs = np.clip(probs, 0.0, None)
        return probs / probs.sum()

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        return marginal_probabilities(self.probabilities(), self.num_qubits, qubits)

    def sample(self, shots: int, qubits: Optional[Sequence[int]] = None, seed: SeedLike = None) -> Dict[str, int]:
        qubits = list(range(self.num_qubits)) if qubits is None else list(qubits)
        return sample_counts(self.marginal_probabilities(qubits), shots, num_bits=len(qubits), seed=seed)

    def expectation(self, operator: np.ndarray) -> float:
        """``Re Tr(ρ O)``."""
        return float(np.real(np.trace(self.matrix @ np.asarray(operator, dtype=complex))))

    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not in ``keep`` (kept qubits stay in listed order)."""
        n = self.num_qubits
        keep = [int(q) for q in keep]
        drop = [q for q in range(n) if q not in keep]
        tensor = self.matrix.reshape([2] * (2 * n))
        # Row axis of qubit q is q; column axis is n + q.
        for q in sorted(drop, reverse=True):
            tensor = np.trace(tensor, axis1=q, axis2=tensor.ndim // 2 + q)
        k = len(keep)
        remaining = sorted(keep)
        order = [remaining.index(q) for q in keep]
        tensor = np.transpose(tensor, order + [k + o for o in order])
        dim = 2**k
        return DensityMatrix(tensor.reshape(dim, dim))


def _apply_matrix_rows(rho_tensor: np.ndarray, gate: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply ``gate`` to the row indices of the density tensor."""
    k = len(qubits)
    gate_tensor = gate.reshape([2] * (2 * k))
    out = np.tensordot(gate_tensor, rho_tensor, axes=(list(range(k, 2 * k)), list(qubits)))
    return np.moveaxis(out, list(range(k)), list(qubits))


class DensityMatrixSimulator:
    """Executes circuits (optionally with a noise model) on density matrices."""

    def __init__(self, noise_model: Optional["NoiseModel"] = None):  # noqa: F821 - forward ref
        self.noise_model = noise_model

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Optional[DensityMatrix | Statevector | np.ndarray] = None,
    ) -> DensityMatrix:
        """Evolve ``initial_state`` (default ``|0...0>``) through ``circuit``."""
        n = circuit.num_qubits
        rho = self._coerce_initial(initial_state, n)
        tensor = rho.matrix.reshape([2] * (2 * n))
        for op in circuit.instructions:
            if isinstance(op, Gate):
                qubits = list(op.qubits)
                col_qubits = [n + q for q in qubits]
                # U ρ U†: rows with U, columns with U* (conjugate).
                tensor = _apply_matrix_rows(tensor, op.matrix, qubits, 2 * n)
                tensor = _apply_matrix_rows(tensor, op.matrix.conj(), col_qubits, 2 * n)
                if self.noise_model is not None:
                    tensor = self.noise_model.apply_after_gate(tensor, op, n)
            elif isinstance(op, (Measurement, Barrier)):
                continue
            else:  # pragma: no cover - defensive
                raise TypeError(f"Unsupported instruction {op!r}")
        dim = 2**n
        return DensityMatrix(tensor.reshape(dim, dim))

    def sample(
        self,
        circuit: QuantumCircuit,
        shots: int,
        initial_state: Optional[DensityMatrix | Statevector | np.ndarray] = None,
        qubits: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> Dict[str, int]:
        """Run and sample shot counts on ``qubits`` (default: measured or all)."""
        final = self.run(circuit, initial_state=initial_state)
        if qubits is None:
            qubits = circuit.measured_qubits or tuple(range(circuit.num_qubits))
        return final.sample(shots, qubits=qubits, seed=seed)

    @staticmethod
    def _coerce_initial(initial_state, num_qubits: int) -> DensityMatrix:
        if initial_state is None:
            return DensityMatrix.zero_state(num_qubits)
        if isinstance(initial_state, DensityMatrix):
            rho = initial_state
        elif isinstance(initial_state, Statevector):
            rho = DensityMatrix.from_statevector(initial_state)
        else:
            arr = np.asarray(initial_state, dtype=complex)
            rho = DensityMatrix(arr) if arr.ndim == 2 else DensityMatrix.from_statevector(arr)
        if rho.num_qubits != num_qubits:
            raise ValueError(
                f"Initial state has {rho.num_qubits} qubits, circuit has {num_qubits}"
            )
        return rho


def apply_kraus(rho_tensor: np.ndarray, kraus_ops: Iterable[np.ndarray], qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a Kraus channel ``ρ -> Σ_k K_k ρ K_k†`` on ``qubits`` of a density tensor.

    ``rho_tensor`` has ``2 * num_qubits`` axes (rows then columns); the
    function returns a tensor of the same shape.
    """
    qubits = list(qubits)
    col_qubits = [num_qubits + q for q in qubits]
    out = np.zeros_like(rho_tensor)
    for kraus in kraus_ops:
        term = _apply_matrix_rows(rho_tensor, kraus, qubits, 2 * num_qubits)
        term = _apply_matrix_rows(term, kraus.conj(), col_qubits, 2 * num_qubits)
        out = out + term
    return out
