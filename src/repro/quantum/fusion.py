"""Gate fusion: merge adjacent small-support gates into single matrices.

The faithful QTDA circuits are dominated by *long runs of small gates*: the
Trotterised ``U^{2^j}`` powers inside QPE are realised by repeating the same
few controlled 1–3-qubit gates ``2^j`` times, and the inverse QFT is a dense
run of Hadamards and controlled phases.  Applying each of those gates to a
``2^n`` state (let alone a ``(2^n, B)`` ensemble) pays the full ``O(2^n)``
sweep per gate.

:func:`fuse_circuit` walks the gate list once and greedily multiplies
adjacent gates together while their combined qubit support stays within
``max_fuse_qubits``, emitting one fused :class:`~repro.quantum.operations.
Gate` per block.  A repetition chain over a fixed support collapses to a
single matrix, so the downstream executor sweeps the state once instead of
``2^j`` times.  Gates wider than the window (the exact controlled powers)
pass through untouched and act as block boundaries, preserving order.

Fused plans are cached per ``(circuit fingerprint, window)`` — the same
circuit is re-planned by every ensemble chunk, every repeated sample of a
batch and every shot-count/precision sweep that revisits a Laplacian, and
the fingerprint (:meth:`~repro.quantum.circuit.QuantumCircuit.fingerprint`)
lets all of them share one fusion pass.  (Distinct ε values produce distinct
Hamiltonians, hence distinct fingerprints — those pay for their own pass.)
The cache is bounded by *bytes* (a plan retains its gate matrices, including
the wide controlled powers that pass through unfused, and can pin them long
after the circuit itself is garbage), with an entry-count backstop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.quantum.channels import NoiseSpec
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Gate

#: Byte budget for retained plans (gate matrices dominate; wide pass-through
#: controlled powers are counted too — at q system qubits each is a
#: ``2^(1+q) x 2^(1+q)`` complex matrix).
FUSION_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Entry-count backstop on top of the byte budget.
FUSION_CACHE_MAXSIZE = 128

_CACHE: "OrderedDict[Tuple[str, int], Tuple[Gate, ...]]" = OrderedDict()
_CACHE_BYTES: Dict[Tuple[str, int], int] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0
_CACHE_TOTAL_BYTES = 0


def _plan_bytes(plan: Tuple[Gate, ...]) -> int:
    """Approximate retained size of a plan (its gate matrices)."""
    return sum(gate.matrix.nbytes for gate in plan)


def fusion_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the fused-plan cache."""
    with _CACHE_LOCK:
        return {
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
            "entries": len(_CACHE),
            "bytes": _CACHE_TOTAL_BYTES,
        }


def clear_fusion_cache() -> None:
    """Drop every cached fused plan and reset the counters (tests)."""
    global _CACHE_HITS, _CACHE_MISSES, _CACHE_TOTAL_BYTES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_BYTES.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0
        _CACHE_TOTAL_BYTES = 0


def _embed_matrix(matrix: np.ndarray, qubits: Tuple[int, ...], support: Tuple[int, ...]) -> np.ndarray:
    """Expand a gate matrix on ``qubits`` to the full ``support`` register.

    ``support`` is an ordered tuple of qubit labels defining the fused
    block's index space (first label = most significant bit, matching the
    :class:`Gate` convention).  The embedding reuses the ensemble kernel:
    applying the gate to the ``2^s`` basis states (the identity matrix viewed
    as an ensemble) produces exactly the full matrix, column by column.
    """
    if tuple(qubits) == tuple(support):
        return np.asarray(matrix, dtype=complex)
    from repro.quantum.engine import apply_gate_to_ensemble

    positions = [support.index(q) for q in qubits]
    s = len(support)
    identity = np.eye(2**s, dtype=complex)
    return apply_gate_to_ensemble(identity, np.asarray(matrix, dtype=complex), positions, s)


def fuse_circuit(circuit: QuantumCircuit, max_fuse_qubits: int = 3) -> Tuple[Gate, ...]:
    """The circuit's gates with adjacent small-support runs fused.

    Parameters
    ----------
    circuit:
        Circuit to plan (measurements/barriers are ignored — they carry no
        unitary semantics).
    max_fuse_qubits:
        Largest combined qubit support a fused block may reach.  Gates wider
        than this pass through unfused and split the surrounding blocks.

    Returns
    -------
    tuple of Gate
        Equivalent gate sequence: applying the returned gates in order equals
        applying the original gates in order (up to floating-point
        association inside each fused product).  Single-gate blocks return
        the *original* gate object, so an unfusable circuit round-trips
        unchanged.
    """
    if max_fuse_qubits < 1:
        raise ValueError(f"max_fuse_qubits must be >= 1, got {max_fuse_qubits}")
    key = (circuit.fingerprint(), int(max_fuse_qubits))
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _CACHE_HITS += 1
            return cached

    fused: List[Gate] = []
    support: Optional[Tuple[int, ...]] = None
    matrix: Optional[np.ndarray] = None
    block: List[Gate] = []

    def flush() -> None:
        nonlocal support, matrix, block
        if support is None:
            return
        if len(block) == 1:
            fused.append(block[0])
        else:
            fused.append(
                Gate(name=f"fused[{len(block)}]", qubits=support, matrix=matrix)
            )
        support, matrix, block = None, None, []

    for gate in circuit.gates:
        if gate.num_qubits > max_fuse_qubits:
            flush()
            fused.append(gate)
            continue
        if support is None:
            support = tuple(sorted(gate.qubits))
            matrix = _embed_matrix(gate.matrix, gate.qubits, support)
            block = [gate]
            continue
        union = tuple(sorted(set(support) | set(gate.qubits)))
        if len(union) <= max_fuse_qubits:
            if union != support:
                matrix = _embed_matrix(matrix, support, union)
            # Later gate acts after the block: left-multiply its embedding.
            matrix = _embed_matrix(gate.matrix, gate.qubits, union) @ matrix
            support = union
            block.append(gate)
        else:
            flush()
            support = tuple(sorted(gate.qubits))
            matrix = _embed_matrix(gate.matrix, gate.qubits, support)
            block = [gate]
    flush()

    plan = tuple(fused)
    plan_bytes = _plan_bytes(plan)
    global _CACHE_TOTAL_BYTES
    with _CACHE_LOCK:
        _CACHE_MISSES += 1
        # Two threads can miss the same key concurrently (the lock is
        # released while the plan is computed); only the first insert may
        # account bytes, or eviction could never reclaim the double-count.
        if plan_bytes <= FUSION_CACHE_MAX_BYTES and key not in _CACHE:
            _CACHE[key] = plan
            _CACHE_BYTES[key] = plan_bytes
            _CACHE_TOTAL_BYTES += plan_bytes
            _CACHE.move_to_end(key)
            while len(_CACHE) > FUSION_CACHE_MAXSIZE or _CACHE_TOTAL_BYTES > FUSION_CACHE_MAX_BYTES:
                evicted, _ = _CACHE.popitem(last=False)
                _CACHE_TOTAL_BYTES -= _CACHE_BYTES.pop(evicted)
        # Plans larger than the whole budget are returned uncached: callers
        # still get the fusion win for the current run without the cache
        # pinning a giant matrix set.
    return plan


# --- PTM-program fusion (the noisy twin of fuse_circuit) --------------------
#
# In the Pauli-transfer representation (repro.quantum.ptm, DESIGN.md §16)
# noise channels compose exactly like gates: both are real superoperator
# matrices that left-multiply.  The greedy walk below is therefore the same
# algorithm as fuse_circuit, run over the interleaved stream of gate-PTMs and
# their attached channel-PTMs (NoiseSpec.channels_for_gate, the placement the
# density route uses), so an entire gate+noise run collapses into one fused
# superoperator per `max_fuse_qubits` window.  Wide controlled powers cannot
# have explicit PTMs (4^(1+q) blows up); they pass through as unitaries with
# a precomputed controlled-block fast path and act as block boundaries — but
# their *noise* is small and keeps fusing on either side.

PTM_CACHE_MAX_BYTES = 256 * 1024 * 1024

PTM_CACHE_MAXSIZE = 64

_PTM_CACHE: "OrderedDict[Tuple[str, str, int], object]" = OrderedDict()
_PTM_CACHE_BYTES: Dict[Tuple[str, str, int], int] = {}
_PTM_CACHE_LOCK = threading.Lock()
_PTM_CACHE_HITS = 0
_PTM_CACHE_MISSES = 0
_PTM_CACHE_TOTAL_BYTES = 0


def ptm_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the fused PTM-program cache."""
    with _PTM_CACHE_LOCK:
        return {
            "hits": _PTM_CACHE_HITS,
            "misses": _PTM_CACHE_MISSES,
            "entries": len(_PTM_CACHE),
            "bytes": _PTM_CACHE_TOTAL_BYTES,
        }


def clear_ptm_cache() -> None:
    """Drop every cached PTM program and reset the counters (tests)."""
    global _PTM_CACHE_HITS, _PTM_CACHE_MISSES, _PTM_CACHE_TOTAL_BYTES
    with _PTM_CACHE_LOCK:
        _PTM_CACHE.clear()
        _PTM_CACHE_BYTES.clear()
        _PTM_CACHE_HITS = 0
        _PTM_CACHE_MISSES = 0
        _PTM_CACHE_TOTAL_BYTES = 0


def _noise_spec_key(noise_spec: Optional[NoiseSpec]) -> str:
    """Canonical cache-key form of the spec's *gate* noise.

    ``readout_error`` is applied to the readout distribution, not the
    program, so strength sweeps that only vary it share one program.
    """
    if noise_spec is None or not noise_spec.has_gate_noise:
        return "noise-free"
    data = dict(noise_spec.as_dict())
    data.pop("readout_error", None)
    return repr(sorted((k, repr(v)) for k, v in data.items()))


def _embed_ptm(matrix: np.ndarray, qubits: Tuple[int, ...], support: Tuple[int, ...]) -> np.ndarray:
    """Expand a PTM on ``qubits`` to the full ``support`` register.

    The dim-4 twin of :func:`_embed_matrix`: applying the superoperator to
    the ``4^s`` Pauli basis vectors (the identity matrix viewed as an
    ensemble) produces the embedded matrix column by column.
    """
    if tuple(qubits) == tuple(support):
        return np.asarray(matrix, dtype=float)
    from repro.quantum.ptm import apply_ptm_to_ensemble

    positions = [support.index(q) for q in qubits]
    s = len(support)
    identity = np.eye(4**s)
    return apply_ptm_to_ensemble(identity, np.asarray(matrix, dtype=float), positions, s)


def _ptm_op_stream(circuit: QuantumCircuit, noise_spec: Optional[NoiseSpec]):
    """Yield ``(qubits, gate_or_channel_ptm, is_gate)`` in execution order.

    Mirrors the density simulator's op walk: each gate, then the channels
    :meth:`NoiseSpec.channels_for_gate` attaches to it (channels arrive
    already lowered to their memoised PTMs).
    """
    from repro.quantum.ptm import channel_ptm

    noisy = noise_spec is not None and noise_spec.has_gate_noise
    for gate in circuit.gates:
        yield gate.qubits, gate, True
        if noisy:
            for channel, qubits in noise_spec.channels_for_gate(gate):
                yield qubits, channel_ptm(channel), False


def fuse_ptm_program(
    circuit: QuantumCircuit,
    noise_spec: Optional[NoiseSpec] = None,
    max_fuse_qubits: int = 3,
):
    """The circuit + noise lowered to a fused :class:`~repro.quantum.ptm.
    PTMProgram` (cached per circuit fingerprint + NoiseSpec + window).

    Gates within the window and every attached noise channel become PTMs and
    fuse greedily into single superoperators; wider gates pass through as
    :class:`~repro.quantum.ptm.WideUnitaryOp` boundaries.  Applying the
    returned ops in order equals the density route's gate-then-Kraus walk
    exactly (up to floating-point association inside each fused product).
    """
    from repro.quantum.ptm import (
        PTMOp,
        PTMProgram,
        WideUnitaryOp,
        controlled_block,
        gate_ptm,
    )

    if max_fuse_qubits < 1:
        raise ValueError(f"max_fuse_qubits must be >= 1, got {max_fuse_qubits}")
    key = (circuit.fingerprint(), _noise_spec_key(noise_spec), int(max_fuse_qubits))
    global _PTM_CACHE_HITS, _PTM_CACHE_MISSES
    with _PTM_CACHE_LOCK:
        cached = _PTM_CACHE.get(key)
        if cached is not None:
            _PTM_CACHE.move_to_end(key)
            _PTM_CACHE_HITS += 1
            return cached

    ops: List[object] = []
    support: Optional[Tuple[int, ...]] = None
    matrix: Optional[np.ndarray] = None
    sources = 0
    source_ops = 0

    def flush() -> None:
        nonlocal support, matrix, sources
        if support is None:
            return
        ops.append(
            PTMOp(
                qubits=support,
                matrix=matrix,
                sources=sources,
                name=f"ptm[{sources}]",
            )
        )
        support, matrix, sources = None, None, 0

    for qubits, payload, is_gate in _ptm_op_stream(circuit, noise_spec):
        if is_gate and payload.num_qubits > max_fuse_qubits:
            flush()
            wide = np.asarray(payload.matrix, dtype=complex)
            ops.append(
                WideUnitaryOp(
                    qubits=payload.qubits,
                    matrix=wide,
                    name=payload.name,
                    block=controlled_block(wide),
                )
            )
            source_ops += 1
            continue
        ptm = gate_ptm(payload.matrix) if is_gate else payload
        source_ops += 1
        if support is None:
            support = tuple(sorted(qubits))
            matrix = _embed_ptm(ptm, qubits, support)
            sources = 1
            continue
        union = tuple(sorted(set(support) | set(qubits)))
        if len(union) <= max_fuse_qubits:
            if union != support:
                matrix = _embed_ptm(matrix, support, union)
            # Later op acts after the block: left-multiply its embedding.
            matrix = _embed_ptm(ptm, qubits, union) @ matrix
            support = union
            sources += 1
        else:
            flush()
            support = tuple(sorted(qubits))
            matrix = _embed_ptm(ptm, qubits, support)
            sources = 1
    flush()

    program = PTMProgram(
        num_qubits=circuit.num_qubits, ops=tuple(ops), source_ops=source_ops
    )
    program_bytes = program.nbytes()
    global _PTM_CACHE_TOTAL_BYTES
    with _PTM_CACHE_LOCK:
        _PTM_CACHE_MISSES += 1
        # Same double-miss guard as the gate-fusion cache: only the first
        # concurrent insert may account bytes.
        if program_bytes <= PTM_CACHE_MAX_BYTES and key not in _PTM_CACHE:
            _PTM_CACHE[key] = program
            _PTM_CACHE_BYTES[key] = program_bytes
            _PTM_CACHE_TOTAL_BYTES += program_bytes
            _PTM_CACHE.move_to_end(key)
            while (
                len(_PTM_CACHE) > PTM_CACHE_MAXSIZE
                or _PTM_CACHE_TOTAL_BYTES > PTM_CACHE_MAX_BYTES
            ):
                evicted, _ = _PTM_CACHE.popitem(last=False)
                _PTM_CACHE_TOTAL_BYTES -= _PTM_CACHE_BYTES.pop(evicted)
    return program
