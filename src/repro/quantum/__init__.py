"""Quantum-simulation substrate (the PennyLane substitute).

The paper runs its QTDA circuits on PennyLane's ideal simulators.  This
subpackage provides everything those simulations need, implemented from
scratch on NumPy:

* a gate library (:mod:`repro.quantum.gates`) and circuit container
  (:mod:`repro.quantum.circuit`);
* a dense statevector simulator (:mod:`repro.quantum.statevector`) and a
  density-matrix simulator with noise channels
  (:mod:`repro.quantum.density_matrix`, :mod:`repro.quantum.noise`);
* a batched ("ensemble") execution engine that evolves many pure states as
  one ``(2^n, B)`` array behind an array-module seam (NumPy/CuPy), plus a
  gate-fusion pass cached per circuit fingerprint
  (:mod:`repro.quantum.engine`, :mod:`repro.quantum.fusion`);
* a sharded execution layer that splits the ensemble batch axis (and the
  trajectory axis) across CPU processes or CuPy device contexts while
  staying bit-identical to the unsharded engine
  (:mod:`repro.quantum.sharding`);
* measurement / shot sampling (:mod:`repro.quantum.measurement`);
* the quantum Fourier transform and quantum phase estimation circuit
  builders (:mod:`repro.quantum.qft`, :mod:`repro.quantum.qpe`);
* Pauli-evolution (Trotter) circuit synthesis used to compile
  ``U = exp(iH)`` from a Pauli decomposition (:mod:`repro.quantum.trotter`),
  the construction drawn in Fig. 7 of the paper;
* an ASCII circuit drawer (:mod:`repro.quantum.drawer`).

Qubit ordering convention: qubit 0 is the most significant bit of a basis
state label, i.e. basis state ``|b_0 b_1 ... b_{n-1}>`` has integer index
``Σ_j b_j 2^{n-1-j}``.  This matches the tensor-product order used for Pauli
strings in :mod:`repro.paulis` ("XXI" acts with X on qubits 0 and 1).
"""

from repro.quantum.gates import (
    CNOT,
    CZ,
    HADAMARD,
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    S_GATE,
    SWAP,
    T_GATE,
    controlled,
    crx,
    cry,
    crz,
    cphase,
    rx,
    ry,
    rz,
    phase_shift,
    u3,
)
from repro.quantum.operations import Gate, Measurement, Barrier
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import StatevectorSimulator, Statevector
from repro.quantum.density_matrix import DensityMatrixSimulator, DensityMatrix
from repro.quantum.engine import (
    EnsembleExecutor,
    apply_gate_to_ensemble,
    array_module,
    derive_trajectory_seeds,
    sample_channel_branches,
    trajectory_mean_and_sem,
)
from repro.quantum.sharding import (
    SHARD_BACKENDS,
    ShardPlan,
    ShardedExecutor,
    device_backend_available,
    get_shard_pool,
    merge_moments,
    moments_from_rows,
    moments_mean_and_sem,
    shutdown_shard_pools,
)
from repro.quantum.channels import (
    NOISE_CHANNELS,
    TWO_QUBIT_NOISE_CHANNELS,
    NoiseSpec,
    QuantumChannel,
    apply_readout_error,
    correlated_zz_kraus,
    two_qubit_depolarizing_kraus,
)
from repro.quantum.fusion import fuse_circuit, fusion_cache_info
from repro.quantum.measurement import (
    born_probabilities,
    ensemble_marginal_probabilities,
    ensemble_member_marginal_probabilities,
    marginal_probabilities,
    sample_counts,
    counts_to_probabilities,
)
from repro.quantum.qft import qft_circuit, inverse_qft_circuit
from repro.quantum.qpe import (
    PhaseEstimation,
    SpectralUnitary,
    phase_estimation_circuit,
    qpe_outcome_distribution,
    qpe_probability_kernel,
)
from repro.quantum.trotter import (
    pauli_evolution_circuit,
    pauli_string_evolution_circuit,
    trotter_unitary_error,
)
from repro.quantum.noise import (
    NoiseModel,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    phase_flip_kraus,
)
from repro.quantum.drawer import draw_circuit

__all__ = [
    "CNOT",
    "CZ",
    "HADAMARD",
    "IDENTITY",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "S_GATE",
    "SWAP",
    "T_GATE",
    "controlled",
    "crx",
    "cry",
    "crz",
    "cphase",
    "rx",
    "ry",
    "rz",
    "phase_shift",
    "u3",
    "Gate",
    "Measurement",
    "Barrier",
    "QuantumCircuit",
    "StatevectorSimulator",
    "Statevector",
    "DensityMatrixSimulator",
    "DensityMatrix",
    "EnsembleExecutor",
    "apply_gate_to_ensemble",
    "array_module",
    "derive_trajectory_seeds",
    "sample_channel_branches",
    "trajectory_mean_and_sem",
    "SHARD_BACKENDS",
    "ShardPlan",
    "ShardedExecutor",
    "device_backend_available",
    "get_shard_pool",
    "merge_moments",
    "moments_from_rows",
    "moments_mean_and_sem",
    "shutdown_shard_pools",
    "NOISE_CHANNELS",
    "TWO_QUBIT_NOISE_CHANNELS",
    "NoiseSpec",
    "QuantumChannel",
    "apply_readout_error",
    "correlated_zz_kraus",
    "two_qubit_depolarizing_kraus",
    "fuse_circuit",
    "fusion_cache_info",
    "born_probabilities",
    "ensemble_marginal_probabilities",
    "ensemble_member_marginal_probabilities",
    "marginal_probabilities",
    "sample_counts",
    "counts_to_probabilities",
    "qft_circuit",
    "inverse_qft_circuit",
    "PhaseEstimation",
    "SpectralUnitary",
    "phase_estimation_circuit",
    "qpe_outcome_distribution",
    "qpe_probability_kernel",
    "pauli_evolution_circuit",
    "pauli_string_evolution_circuit",
    "trotter_unitary_error",
    "NoiseModel",
    "amplitude_damping_kraus",
    "bit_flip_kraus",
    "depolarizing_kraus",
    "phase_flip_kraus",
    "draw_circuit",
]
