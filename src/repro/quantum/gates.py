"""Gate matrices.

Every function/constant here returns a dense unitary as a complex NumPy
array.  Matrices for multi-qubit gates are given in the standard tensor
ordering where the *first* listed qubit is the most significant bit — the
same convention used throughout :mod:`repro.quantum`.
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Fixed gates
# ---------------------------------------------------------------------------

IDENTITY = np.eye(2, dtype=complex)

PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)

#: Phase gate S = diag(1, i).
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
#: S† = diag(1, -i).
S_DAGGER = S_GATE.conj().T
#: T = diag(1, e^{iπ/4}).
T_GATE = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
T_DAGGER = T_GATE.conj().T

#: CNOT with qubit order (control, target).
CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)

#: Controlled-Z (symmetric in control/target).
CZ = np.diag([1, 1, 1, -1]).astype(complex)

#: SWAP of two qubits.
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)

#: Toffoli (CCX) with qubit order (control, control, target).
TOFFOLI = np.eye(8, dtype=complex)
TOFFOLI[[6, 7], :] = TOFFOLI[[7, 6], :]


# ---------------------------------------------------------------------------
# Parametric gates
# ---------------------------------------------------------------------------

def rx(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i θ X / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i θ Y / 2)``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i θ Z / 2)``."""
    phase = np.exp(-1j * theta / 2.0)
    return np.array([[phase, 0], [0, np.conj(phase)]], dtype=complex)


def phase_shift(phi: float) -> np.ndarray:
    """Phase gate ``diag(1, e^{iφ})`` (PennyLane's ``PhaseShift``)."""
    return np.array([[1, 0], [0, np.exp(1j * phi)]], dtype=complex)


def global_phase(phi: float, num_qubits: int = 1) -> np.ndarray:
    """``e^{iφ} I`` on ``num_qubits`` qubits."""
    return np.exp(1j * phi) * np.eye(2**num_qubits, dtype=complex)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit unitary with the standard (θ, φ, λ) Euler angles."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def controlled(unitary: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Controlled version of ``unitary`` with ``num_controls`` control qubits.

    Controls are the most significant qubits: the returned matrix acts as the
    identity unless all controls are ``|1>``, in which case it applies
    ``unitary`` to the remaining (least significant) qubits.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        raise ValueError("unitary must be a square matrix")
    if num_controls < 1:
        raise ValueError("num_controls must be >= 1")
    dim = unitary.shape[0]
    total = dim * (2**num_controls)
    out = np.eye(total, dtype=complex)
    out[total - dim :, total - dim :] = unitary
    return out


def crx(theta: float) -> np.ndarray:
    """Controlled-RX."""
    return controlled(rx(theta))


def cry(theta: float) -> np.ndarray:
    """Controlled-RY."""
    return controlled(ry(theta))


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ."""
    return controlled(rz(theta))


def cphase(phi: float) -> np.ndarray:
    """Controlled phase gate ``diag(1, 1, 1, e^{iφ})``."""
    return controlled(phase_shift(phi))


def matrix_power_unitary(unitary: np.ndarray, power: int) -> np.ndarray:
    """``U^power`` computed by repeated squaring (power >= 0)."""
    unitary = np.asarray(unitary, dtype=complex)
    if power < 0:
        raise ValueError("power must be non-negative")
    result = np.eye(unitary.shape[0], dtype=complex)
    base = unitary.copy()
    p = power
    while p:
        if p & 1:
            result = result @ base
        base = base @ base
        p >>= 1
    return result


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Check ``M† M = I`` to tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    eye = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, eye, atol=atol))


#: Name -> constant matrix, used by the circuit drawer and the gate parser.
NAMED_GATES = {
    "I": IDENTITY,
    "X": PAULI_X,
    "Y": PAULI_Y,
    "Z": PAULI_Z,
    "H": HADAMARD,
    "S": S_GATE,
    "SDG": S_DAGGER,
    "T": T_GATE,
    "TDG": T_DAGGER,
    "CNOT": CNOT,
    "CX": CNOT,
    "CZ": CZ,
    "SWAP": SWAP,
    "CCX": TOFFOLI,
    "TOFFOLI": TOFFOLI,
}
