"""Circuit instruction objects.

A :class:`QuantumCircuit` is an ordered list of instructions.  The only
instruction the simulators need to execute is :class:`Gate` (a unitary on a
subset of qubits); :class:`Measurement` and :class:`Barrier` are bookkeeping
markers used by the drawer and by shot-sampling helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.quantum.gates import is_unitary


@dataclass(frozen=True)
class Gate:
    """A unitary applied to an ordered tuple of qubits.

    Attributes
    ----------
    name:
        Human-readable label ("H", "CNOT", "RZ", "exp(iH)t", ...), used by the
        drawer and in reprs; it carries no semantics for simulation.
    qubits:
        Qubits the matrix acts on.  ``qubits[0]`` corresponds to the most
        significant bit of the matrix's index space.
    matrix:
        Dense ``2^k x 2^k`` unitary where ``k = len(qubits)``.
    params:
        Optional gate parameters (angles), kept for introspection/drawing.
    """

    name: str
    qubits: Tuple[int, ...]
    matrix: np.ndarray
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self):
        qubits = tuple(int(q) for q in self.qubits)
        object.__setattr__(self, "qubits", qubits)
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"Gate {self.name!r} has duplicate qubits {qubits}")
        mat = np.asarray(self.matrix, dtype=complex)
        expected = 2 ** len(qubits)
        if mat.shape != (expected, expected):
            raise ValueError(
                f"Gate {self.name!r} acts on {len(qubits)} qubit(s) but its matrix has shape {mat.shape}"
            )
        object.__setattr__(self, "matrix", mat)
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate touches."""
        return len(self.qubits)

    def validate_unitary(self, atol: float = 1e-8) -> None:
        """Raise if the stored matrix is not unitary to tolerance ``atol``."""
        if not is_unitary(self.matrix, atol=atol):
            raise ValueError(f"Gate {self.name!r} matrix is not unitary")

    def dagger(self) -> "Gate":
        """The inverse gate (conjugate transpose of the matrix)."""
        return Gate(
            name=f"{self.name}†" if not self.name.endswith("†") else self.name[:-1],
            qubits=self.qubits,
            matrix=self.matrix.conj().T,
            params=tuple(-p for p in self.params),
        )

    def remapped(self, mapping: Sequence[int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each original qubit ``q``."""
        return Gate(
            name=self.name,
            qubits=tuple(int(mapping[q]) for q in self.qubits),
            matrix=self.matrix,
            params=self.params,
        )

    def __repr__(self) -> str:
        params = f", params={self.params}" if self.params else ""
        return f"Gate({self.name!r}, qubits={self.qubits}{params})"


@dataclass(frozen=True)
class Measurement:
    """Computational-basis measurement marker on a set of qubits."""

    qubits: Tuple[int, ...]
    label: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)


@dataclass(frozen=True)
class Barrier:
    """Visual/structural separator; ignored by the simulators."""

    qubits: Tuple[int, ...] = ()
    label: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))


Instruction = object  # Gate | Measurement | Barrier — kept loose for typing simplicity.
