"""ASCII circuit drawing.

The paper devotes three figures (2, 6 and 7) to circuit diagrams; this module
lets the examples and tests render the corresponding circuits as text so the
constructions can be inspected without a plotting stack.

The drawer is deliberately simple: one column per instruction, one row per
qubit, with multi-qubit gates marked by a box on each involved wire and a
vertical connector implied by shared column position.
"""

from __future__ import annotations

from typing import List

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Barrier, Gate, Measurement


def _gate_cell(gate: Gate, qubit: int) -> str:
    """Cell text for ``gate`` on wire ``qubit``."""
    if gate.name in ("CNOT", "CX") and len(gate.qubits) == 2:
        return "●" if qubit == gate.qubits[0] else "⊕"
    if gate.name == "CZ" and len(gate.qubits) == 2:
        return "●"
    if gate.name == "SWAP" and len(gate.qubits) == 2:
        return "x"
    if gate.name.startswith(("c-", "C")) and len(gate.qubits) >= 2 and qubit == gate.qubits[0]:
        return "●"
    label = gate.name
    if gate.params:
        label = f"{label}({gate.params[0]:.2f})" if len(gate.params) == 1 else label
    return f"[{label}]"


def draw_circuit(circuit: QuantumCircuit, max_width: int = 120) -> str:
    """Render ``circuit`` as an ASCII diagram.

    Parameters
    ----------
    circuit:
        The circuit to render.
    max_width:
        Wrap the diagram into blocks of at most this many characters per line.
    """
    n = circuit.num_qubits
    columns: List[List[str]] = []
    for op in circuit.instructions:
        col = [""] * n
        if isinstance(op, Gate):
            for q in op.qubits:
                col[q] = _gate_cell(op, q)
        elif isinstance(op, Measurement):
            for q in op.qubits:
                col[q] = "[M]"
        elif isinstance(op, Barrier):
            for q in range(n):
                col[q] = "║" if q in op.qubits else ""
        columns.append(col)

    # Pad each column to uniform width.
    widths = [max(len(cell) for cell in col) or 1 for col in columns]
    rows: List[str] = []
    for q in range(n):
        parts = [f"q{q}: "]
        for col, width in zip(columns, widths):
            cell = col[q]
            filler = "─" if cell == "" else cell.center(width, "─") if cell in ("●", "⊕", "x", "║") else cell.center(width, "─")
            if cell == "":
                filler = "─" * width
            parts.append(filler + "─")
        rows.append("".join(parts))

    # Wrap long diagrams into stacked blocks.
    if not rows or len(rows[0]) <= max_width:
        return "\n".join(rows)
    blocks: List[str] = []
    start = 0
    prefix_len = len(f"q{n - 1}: ")
    body_width = max_width - prefix_len
    body = [row[prefix_len:] for row in rows]
    prefixes = [row[:prefix_len] for row in rows]
    while start < len(body[0]):
        chunk = [prefixes[q] + body[q][start : start + body_width] for q in range(n)]
        blocks.append("\n".join(chunk))
        start += body_width
    return ("\n" + "…\n").join(blocks)


def circuit_summary(circuit: QuantumCircuit) -> str:
    """One-paragraph text summary: size, depth and gate histogram."""
    counts = circuit.count_ops()
    histogram = ", ".join(f"{name}×{count}" for name, count in sorted(counts.items()))
    return (
        f"{circuit.name}: {circuit.num_qubits} qubits, {circuit.num_gates} gates, "
        f"depth {circuit.depth()} [{histogram}]"
    )
