"""First-class quantum channels: the Kraus IR shared by every noise route.

Historically noise lived entirely inside :class:`repro.quantum.noise.
NoiseModel` as a density-tensor-only operation, which forced every noisy run
onto the quadratic density-matrix route.  This module lifts the channel into
a standalone IR consumed by *three* execution paths:

* the density-matrix simulator (exact Kraus contraction, legacy route);
* the ensemble engine's **trajectory** route (stochastic Kraus-branch
  unravelling — sample one branch per ensemble member per gate, see
  :mod:`repro.quantum.engine`);
* the classical readout stage (:func:`apply_readout_error` — measurement
  bit-flip error as an exact per-bit confusion-matrix contraction).

Two objects matter:

:class:`QuantumChannel`
    A named, validated set of Kraus operators of fixed arity.  Channels that
    are *mixed-unitary* (every ``K_k†K_k ∝ I``, e.g. the Pauli channels) get
    their branch probabilities precomputed once — trajectory sampling is then
    state-independent (one cumulative-probability table for the whole
    ensemble).  General channels (amplitude damping) fall back to per-state
    Born sampling, ``p_k(ψ) = ‖K_k ψ‖²``.

:class:`NoiseSpec`
    The serialisable generalisation of the old ``(noise_channel,
    noise_strength)`` pair: per-gate-class strength overrides, an optional
    correlated two-qubit channel injected after two-qubit gates (CNOT and
    friends), and readout error.  ``QTDAConfig`` carries its fields as plain
    data; :meth:`NoiseSpec.channels_for_gate` is the single source of noise
    *placement* shared by the density and trajectory routes (which is what
    makes the trajectory mean converge to the density result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.operations import Gate
from repro.utils.validation import check_probability

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


# ---------------------------------------------------------------------------
# Kraus factories (single-qubit)
# ---------------------------------------------------------------------------


def bit_flip_kraus(p: float) -> List[np.ndarray]:
    """Bit-flip channel: X applied with probability ``p``."""
    p = check_probability(p, "p")
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _X]


def phase_flip_kraus(p: float) -> List[np.ndarray]:
    """Phase-flip channel: Z applied with probability ``p``."""
    p = check_probability(p, "p")
    return [np.sqrt(1 - p) * _I, np.sqrt(p) * _Z]


def depolarizing_kraus(p: float) -> List[np.ndarray]:
    """Single-qubit depolarising channel with error probability ``p``.

    With probability ``p`` the qubit is replaced by the maximally mixed state,
    implemented as the uniform Pauli twirl ``{X, Y, Z}`` each with ``p/3``.
    """
    p = check_probability(p, "p")
    return [
        np.sqrt(1 - p) * _I,
        np.sqrt(p / 3.0) * _X,
        np.sqrt(p / 3.0) * _Y,
        np.sqrt(p / 3.0) * _Z,
    ]


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Amplitude damping (T1 decay) with damping probability ``gamma``."""
    gamma = check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


# ---------------------------------------------------------------------------
# Kraus factories (two-qubit, correlated)
# ---------------------------------------------------------------------------


def two_qubit_depolarizing_kraus(p: float) -> List[np.ndarray]:
    """Two-qubit depolarising channel: uniform twirl over the 15 non-identity
    Pauli pairs, each with ``p/15`` — the standard correlated error model for
    entangling gates (CNOT error rates dominate on real devices)."""
    p = check_probability(p, "p")
    paulis = (_I, _X, _Y, _Z)
    ops = [np.sqrt(1 - p) * np.kron(_I, _I)]
    for a in range(4):
        for b in range(4):
            if a == 0 and b == 0:
                continue
            ops.append(np.sqrt(p / 15.0) * np.kron(paulis[a], paulis[b]))
    return ops


def correlated_zz_kraus(p: float) -> List[np.ndarray]:
    """Correlated dephasing: ``Z⊗Z`` applied with probability ``p``.

    Models the residual-ZZ crosstalk that entangling gates leave on their
    qubit pair — the phases of the two qubits flip *together*, which no
    product of single-qubit channels can express.
    """
    p = check_probability(p, "p")
    return [np.sqrt(1 - p) * np.kron(_I, _I), np.sqrt(p) * np.kron(_Z, _Z)]


#: Channel-name -> (factory, arity).  The single-qubit names are the legacy
#: ``NOISE_CHANNELS`` consumed by ``QTDAConfig.noise_channel``; the two-qubit
#: names are valid for ``QTDAConfig.noise_two_qubit_channel``.
_CHANNEL_FACTORIES: Dict[str, Tuple[object, int]] = {
    "depolarizing": (depolarizing_kraus, 1),
    "bit-flip": (bit_flip_kraus, 1),
    "phase-flip": (phase_flip_kraus, 1),
    "amplitude-damping": (amplitude_damping_kraus, 1),
    "two-qubit-depolarizing": (two_qubit_depolarizing_kraus, 2),
    "correlated-zz": (correlated_zz_kraus, 2),
}

#: Single-qubit channel names (the legacy ``QTDAConfig.noise_channel`` values).
NOISE_CHANNELS = tuple(sorted(n for n, (_, a) in _CHANNEL_FACTORIES.items() if a == 1))

#: Two-qubit channel names (``QTDAConfig.noise_two_qubit_channel`` values).
TWO_QUBIT_NOISE_CHANNELS = tuple(sorted(n for n, (_, a) in _CHANNEL_FACTORIES.items() if a == 2))


def is_trace_preserving(kraus_ops: Sequence[np.ndarray], atol: float = 1e-9) -> bool:
    """Check the completeness relation ``Σ_k K_k† K_k = I``."""
    dim = kraus_ops[0].shape[0]
    total = sum(k.conj().T @ k for k in kraus_ops)
    return bool(np.allclose(total, np.eye(dim), atol=atol))


# ---------------------------------------------------------------------------
# The channel IR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QuantumChannel:
    """A named, validated Kraus channel of fixed arity.

    Attributes
    ----------
    name:
        Human-readable identifier (stamped into provenance/describe output).
    kraus_ops:
        Tuple of ``2^arity x 2^arity`` complex matrices satisfying the
        completeness relation.
    arity:
        Number of qubits the channel acts on (1 or 2 for the built-ins).
    branch_probabilities, cumulative_probabilities, unitary_branches, identity_branches:
        Populated iff the channel is *mixed-unitary* (every ``K_k†K_k = p_k I``):
        ``K_k = √p_k U_k`` with precomputed ``p_k``, their cumulative sums
        and the unit-norm branch unitaries.  Trajectory sampling then draws a
        branch from one fixed categorical distribution for the whole
        ensemble; non-mixed-unitary channels (``None`` here) need per-state
        Born sampling instead (see ``repro.quantum.engine``).
    """

    name: str
    kraus_ops: Tuple[np.ndarray, ...]
    arity: int
    branch_probabilities: Optional[np.ndarray] = field(default=None, compare=False)
    cumulative_probabilities: Optional[np.ndarray] = field(default=None, compare=False)
    unitary_branches: Optional[Tuple[np.ndarray, ...]] = field(default=None, compare=False)
    identity_branches: Optional[np.ndarray] = field(default=None, compare=False)

    def __post_init__(self):
        ops = tuple(np.asarray(k, dtype=complex) for k in self.kraus_ops)
        if not ops:
            raise ValueError("QuantumChannel needs at least one Kraus operator")
        arity = int(self.arity)
        dim = 2**arity
        if any(k.shape != (dim, dim) for k in ops):
            raise ValueError(
                f"channel {self.name!r}: every Kraus operator must be {dim}x{dim} "
                f"for arity {arity}"
            )
        if not is_trace_preserving(ops):
            raise ValueError(
                f"channel {self.name!r}: Kraus operators do not satisfy the "
                "completeness relation"
            )
        object.__setattr__(self, "kraus_ops", ops)
        object.__setattr__(self, "arity", arity)
        # Mixed-unitary detection: K†K = p·I for every branch.  Pauli-type
        # channels qualify; amplitude damping does not.
        probs = []
        unitaries = []
        mixed_unitary = True
        for k in ops:
            gram = k.conj().T @ k
            p = float(gram.trace().real) / dim
            if not np.allclose(gram, p * np.eye(dim), atol=1e-12):
                mixed_unitary = False
                break
            probs.append(p)
            # Zero-probability branches (e.g. depolarizing at p=0) keep an
            # identity placeholder; the cumulative table never selects them.
            unitaries.append(k / np.sqrt(p) if p > 0 else np.eye(dim, dtype=complex))
        if mixed_unitary:
            p_arr = np.asarray(probs, dtype=float)
            eye = np.eye(dim, dtype=complex)
            object.__setattr__(self, "branch_probabilities", p_arr)
            object.__setattr__(self, "cumulative_probabilities", np.cumsum(p_arr))
            object.__setattr__(self, "unitary_branches", tuple(unitaries))
            # Exact-identity branches (the √(1−p)·I branch of the Pauli-type
            # channels divides out to I bit-exactly) are no-ops the trajectory
            # sampler can skip; at realistic strengths that is the sampled
            # branch for almost every ensemble member.
            object.__setattr__(
                self,
                "identity_branches",
                np.array([np.array_equal(u, eye) for u in unitaries], dtype=bool),
            )
        else:
            object.__setattr__(self, "branch_probabilities", None)
            object.__setattr__(self, "cumulative_probabilities", None)
            object.__setattr__(self, "unitary_branches", None)
            object.__setattr__(self, "identity_branches", None)

    @property
    def is_mixed_unitary(self) -> bool:
        """Whether trajectory sampling can use the precomputed branch table."""
        return self.branch_probabilities is not None

    @classmethod
    def from_name(cls, name: str, strength: float) -> "QuantumChannel":
        """Build a built-in channel by registry name (cached per (name, strength))."""
        return _channel_from_name(name, float(strength))


@lru_cache(maxsize=256)
def _channel_from_name(name: str, strength: float) -> QuantumChannel:
    try:
        factory, arity = _CHANNEL_FACTORIES[name]
    except KeyError:
        available = ", ".join(sorted(_CHANNEL_FACTORIES))
        raise ValueError(
            f"Unknown noise channel {name!r}; available channels: {available}"
        ) from None
    return QuantumChannel(name=name, kraus_ops=tuple(factory(strength)), arity=arity)


# ---------------------------------------------------------------------------
# Readout error
# ---------------------------------------------------------------------------


def apply_readout_error(distribution: np.ndarray, p: float) -> np.ndarray:
    """Symmetric per-bit readout error applied to a readout distribution.

    Each measured bit independently flips with probability ``p``; this is the
    exact expectation of that stochastic process — a ``[[1-p, p], [p, 1-p]]``
    confusion matrix contracted over every bit axis of the ``2^t``
    distribution.  Exactness (rather than sampled flips) keeps infinite-shot
    runs deterministic; finite-shot noise is still layered on top by the
    estimator's usual shot sampling.
    """
    p = check_probability(p, "readout_error")
    dist = np.asarray(distribution, dtype=float)
    if p == 0.0:
        return dist
    num_bits = int(round(np.log2(dist.size)))
    if 2**num_bits != dist.size:
        raise ValueError(f"distribution length {dist.size} is not a power of two")
    confusion = np.array([[1.0 - p, p], [p, 1.0 - p]])
    tensor = dist.reshape([2] * num_bits)
    for axis in range(num_bits):
        tensor = np.tensordot(confusion, tensor, axes=([1], [axis]))
        tensor = np.moveaxis(tensor, 0, axis)
    return np.ascontiguousarray(tensor).reshape(-1)


# ---------------------------------------------------------------------------
# NoiseSpec — the serialisable noise description
# ---------------------------------------------------------------------------


def _normalise_gate_strengths(value) -> Dict[str, float]:
    """Accept a mapping or a (frozen) tuple of ``(name, strength)`` pairs.

    The wire layer (:func:`repro.core.api._freeze`) turns mappings into
    sorted tuples of pairs on request round-trips, so both shapes must
    rebuild into the same plain dict.
    """
    if value is None:
        return {}
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = [tuple(pair) for pair in value]
    out: Dict[str, float] = {}
    for name, strength in items:
        out[str(name)] = check_probability(strength, f"gate_strengths[{name!r}]")
    # Sorted by gate name so the dict (and hence every serialisation of it)
    # is canonical: ``{"h": .., "cp": ..}`` and ``(("cp", ..), ("h", ..))``
    # normalise to byte-identical wire documents.
    return {name: out[name] for name in sorted(out)}


@dataclass(frozen=True)
class NoiseSpec:
    """Plain-data noise description consumed by every noisy execution route.

    Generalises the legacy ``(noise_channel, noise_strength)`` pair:

    Attributes
    ----------
    channel, strength:
        The baseline single-qubit channel applied to every qubit a gate
        touches, immediately after the gate (``None`` channel = no gate
        noise from this term).
    gate_strengths:
        Per-gate-class strength overrides keyed by gate *name* (``"H"``,
        ``"CNOT"``, ``"CU"``, ...): that gate class runs ``channel`` at the
        override strength instead of the baseline (``0.0`` disables noise
        for the class).  Requires ``channel``.
    two_qubit_channel, two_qubit_strength:
        Optional correlated two-qubit channel (``"two-qubit-depolarizing"``
        or ``"correlated-zz"``) injected after every gate acting on exactly
        two qubits — CNOT and the other entangling gates, whose error rates
        dominate on hardware.
    readout_error:
        Symmetric measurement bit-flip probability applied to the final
        readout marginal (:func:`apply_readout_error`).
    """

    channel: Optional[str] = None
    strength: float = 0.0
    gate_strengths: Mapping[str, float] = field(default_factory=dict)
    two_qubit_channel: Optional[str] = None
    two_qubit_strength: float = 0.0
    readout_error: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "gate_strengths", _normalise_gate_strengths(self.gate_strengths))
        object.__setattr__(self, "strength", check_probability(self.strength, "strength"))
        object.__setattr__(
            self, "two_qubit_strength", check_probability(self.two_qubit_strength, "two_qubit_strength")
        )
        object.__setattr__(self, "readout_error", check_probability(self.readout_error, "readout_error"))
        if self.channel is not None and self.channel not in NOISE_CHANNELS:
            raise ValueError(
                f"channel must be one of {NOISE_CHANNELS}, got {self.channel!r}"
            )
        if self.two_qubit_channel is not None and self.two_qubit_channel not in TWO_QUBIT_NOISE_CHANNELS:
            raise ValueError(
                f"two_qubit_channel must be one of {TWO_QUBIT_NOISE_CHANNELS}, "
                f"got {self.two_qubit_channel!r}"
            )
        if self.gate_strengths and self.channel is None:
            raise ValueError("gate_strengths requires a baseline channel")
        if self.strength > 0 and self.channel is None:
            raise ValueError(f"strength={self.strength} requires a channel")
        if self.two_qubit_strength > 0 and self.two_qubit_channel is None:
            raise ValueError(
                f"two_qubit_strength={self.two_qubit_strength} requires a two_qubit_channel"
            )

    # -- classification -------------------------------------------------------
    @property
    def has_gate_noise(self) -> bool:
        """Whether any Kraus channel is injected after gates (routes on this)."""
        if self.channel is not None and (
            self.strength > 0 or any(s > 0 for s in self.gate_strengths.values())
        ):
            return True
        return self.two_qubit_channel is not None and self.two_qubit_strength > 0

    @property
    def is_noiseless(self) -> bool:
        """No gate noise and no readout error — the identity spec."""
        return not self.has_gate_noise and self.readout_error == 0.0

    # -- placement ------------------------------------------------------------
    def strength_for_gate(self, gate_name: str) -> float:
        """The baseline channel's strength for one gate class."""
        return float(self.gate_strengths.get(gate_name, self.strength))

    def channels_for_gate(self, gate: Gate) -> List[Tuple[QuantumChannel, Tuple[int, ...]]]:
        """The ``(channel, target qubits)`` list injected after ``gate``.

        The single source of noise *placement*: the density route contracts
        each returned channel into the density tensor, the trajectory route
        samples one Kraus branch of each per ensemble member.  Order: the
        per-qubit single-qubit channel on every touched qubit, then the
        correlated two-qubit channel when the gate acts on exactly two
        qubits.
        """
        placed: List[Tuple[QuantumChannel, Tuple[int, ...]]] = []
        if self.channel is not None:
            strength = self.strength_for_gate(gate.name)
            if strength > 0:
                channel = QuantumChannel.from_name(self.channel, strength)
                for q in gate.qubits:
                    placed.append((channel, (int(q),)))
        if (
            self.two_qubit_channel is not None
            and self.two_qubit_strength > 0
            and len(gate.qubits) == 2
        ):
            channel = QuantumChannel.from_name(self.two_qubit_channel, self.two_qubit_strength)
            placed.append((channel, tuple(int(q) for q in gate.qubits)))
        return placed

    # -- serialisation --------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-safe view, round-trippable through :meth:`from_dict`."""
        return {
            "channel": self.channel,
            "strength": self.strength,
            "gate_strengths": dict(self.gate_strengths),
            "two_qubit_channel": self.two_qubit_channel,
            "two_qubit_strength": self.two_qubit_strength,
            "readout_error": self.readout_error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "NoiseSpec":
        """Inverse of :meth:`as_dict` (re-runs all validation)."""
        return cls(**dict(data))

    @classmethod
    def from_legacy(cls, channel: Optional[str], strength: float) -> "NoiseSpec":
        """Lift the legacy ``(noise_channel, noise_strength)`` pair."""
        return cls(channel=channel, strength=strength if channel is not None else 0.0)

    def describe(self) -> Dict[str, object]:
        """Summary dictionary (experiment reports, ``NoiseModel.describe``)."""
        summary = self.as_dict()
        summary["is_noiseless"] = self.is_noiseless
        return summary
